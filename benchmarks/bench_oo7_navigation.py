"""The paper's closing claim, measured end to end.

"Our conclusion is that O2's performance on associative accesses could
be greatly improved without hurting those of main memory navigation"
(Section 1/4.4).  Two workloads, four handle regimes:

* **OO7 T1 warm** — the main-memory navigation object benchmarks (and
  O2's handle design) optimize for;
* **Derby cold 90 % selection** — the associative access the paper found
  wanting.

Every proposed cure must leave the first untouched and improve the
second.
"""

from __future__ import annotations

from repro.bench import ExperimentRunner
from repro.bench.report import Table
from repro.cluster import load_derby
from repro.derby import DerbyConfig
from repro.objects.handle import HandleMode
from repro.oo7 import OO7Config, build_oo7, traversal_t1


def test_cures_help_associative_not_navigation(benchmark, save_table):
    def run():
        rows = {}
        for mode in HandleMode:
            # Warm OO7 navigation.
            oo7 = build_oo7(OO7Config(), handle_mode=mode)
            oo7.start_cold_run()
            traversal_t1(oo7)
            warm_before = oo7.db.clock.elapsed_s
            traversal_t1(oo7)
            warm_t1 = oo7.db.clock.elapsed_s - warm_before
            # Cold associative selection.
            derby = load_derby(
                DerbyConfig.db_1to1000(scale=0.005), handle_mode=mode
            )
            runner = ExperimentRunner(derby)
            cold = runner.run_selection("scan", 90, project="name").elapsed_s
            rows[mode] = (warm_t1, cold)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        "Handle regimes: warm OO7 T1 navigation vs cold 90% selection (sec)",
        ["Handle mode", "OO7 T1 warm", "Cold selection", "Selection gain"],
    )
    full_warm, full_cold = rows[HandleMode.FULL]
    for mode, (warm, cold) in rows.items():
        table.add(mode.value, warm, cold, full_cold / cold)
    table.note("The paper's conclusion: cures must improve the associative")
    table.note("column without degrading the navigation column.")
    save_table("oo7_navigation_vs_associative", table)

    for mode, (warm, cold) in rows.items():
        if mode is HandleMode.FULL:
            continue
        assert warm <= full_warm * 1.01, f"{mode} hurt warm navigation"
        assert cold < full_cold, f"{mode} did not help associative access"
    # Bulk allocation is the biggest associative win.
    assert rows[HandleMode.BULK][1] < full_cold * 0.95
    benchmark.extra_info["bulk_gain"] = full_cold / rows[HandleMode.BULK][1]
