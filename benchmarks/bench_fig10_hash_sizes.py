"""Figure 10 — hash-table size approximations for PHJ and CHJ.

Purely analytic (the paper's own table is an approximation): the size
model must reproduce the paper's eight MB figures at full database
scale.
"""

from __future__ import annotations

import pytest

from repro.bench.figures import figure10

#: The paper's Figure 10 values, MB, in row order.
PAPER_SIZES_MB = (0.0128, 0.1152, 6.4, 57.6, 1.72, 14.52, 62.4, 81.6)


def test_figure10(benchmark, save_table):
    table = benchmark.pedantic(figure10, rounds=1, iterations=1)
    save_table("figure10_hash_sizes", table)

    ours = [row[5] for row in table.rows]
    for mine, paper in zip(ours, PAPER_SIZES_MB):
        # The paper rounds 64-byte entries to decimal MB; allow 5%.
        assert mine == pytest.approx(paper, rel=0.05)
    benchmark.extra_info["max_table_mb"] = max(ours)
