"""Multi-client throughput: the workload the paper never ran.

The paper measures every query as a single cold client (Section 2's
shutdown-between-runs discipline).  This benchmark drives the new
query service instead: N concurrent sessions — navigators, scanners and
updaters dealt round-robin — contend for one shared server cache and one
lock table.  Two sweeps:

* **client count** (1, 2, 8, 32): aggregate throughput and how it decays
  as sessions steal server-cache frames from each other and queue on the
  hot-set locks;
* **server-cache size** at a fixed 8 clients: the multi-client analogue
  of the paper's Section 3.2 cache-size observation — more shared cache,
  fewer disk reads, more transactions per simulated second.

Results land in ``results/multiclient_throughput.txt``.
"""

from __future__ import annotations

from repro.bench.report import Table
from repro.cluster import load_derby
from repro.derby import DerbyConfig
from repro.service import MixConfig, WorkloadMixer

import pytest

CLIENT_COUNTS = (1, 2, 8, 32)
SERVER_CACHE_PAGES = (2, 32, 256)
OPS_PER_CLIENT = 2
SEED = 11
SCALE = 0.005


@pytest.fixture(scope="module")
def mix_derby():
    """A dedicated small database (the mixes mutate patient ages, so we
    do not share the figure benchmarks' cached databases)."""
    return load_derby(DerbyConfig.db_1to1000(scale=SCALE))


def _run_mix(derby, clients: int, server_cache_pages: int | None):
    config = MixConfig.from_clients(
        clients,
        ops_per_client=OPS_PER_CLIENT,
        seed=SEED,
        server_cache_pages=server_cache_pages,
    )
    return WorkloadMixer(derby, config).run()


def test_throughput_vs_client_count(benchmark, mix_derby, save_table):
    reports = benchmark.pedantic(
        lambda: {n: _run_mix(mix_derby, n, None) for n in CLIENT_COUNTS},
        rounds=1,
        iterations=1,
    )

    table = Table(
        "Aggregate throughput vs client count "
        f"(default server cache, {OPS_PER_CLIENT} ops/client)",
        ["Clients", "Committed", "Aborted", "Deadlocks", "Timeouts",
         "Elapsed (s)", "Txn/s", "Disk reads", "Lock wait (s)"],
    )
    for n in CLIENT_COUNTS:
        r = reports[n]
        wait = sum(s.metrics.lock_wait_s for s in r.sessions)
        reads = sum(s.metrics.meters.disk_reads for s in r.sessions)
        table.add(n, r.committed, r.aborted, r.deadlocks, r.timeouts,
                  r.elapsed_s, r.throughput_ops_s, reads, wait)
    table.note("one shared server cache + lock table; deterministic "
               "round-robin interleaving at page-fault/lock boundaries")
    save_table("multiclient_throughput", table)

    # Work scales with clients; the timeline must stretch accordingly.
    assert reports[32].elapsed_s > reports[8].elapsed_s > reports[1].elapsed_s
    # Everyone eventually commits their ops (retries absorb aborts).
    for n in CLIENT_COUNTS:
        assert reports[n].committed == n * OPS_PER_CLIENT
    # Throughput must actually vary with the client count: contention
    # for the shared tiers is visible, not hidden by perfect scaling.
    rates = [reports[n].throughput_ops_s for n in CLIENT_COUNTS]
    assert max(rates) / min(rates) > 1.05
    benchmark.extra_info["throughput_txn_s"] = {
        n: round(reports[n].throughput_ops_s, 3) for n in CLIENT_COUNTS
    }


def test_throughput_vs_server_cache(benchmark, mix_derby, save_table):
    clients = 8
    reports = benchmark.pedantic(
        lambda: {
            pages: _run_mix(mix_derby, clients, pages)
            for pages in SERVER_CACHE_PAGES
        },
        rounds=1,
        iterations=1,
    )

    table = Table(
        f"Aggregate throughput vs server-cache size ({clients} clients)",
        ["Server pages", "Committed", "Elapsed (s)", "Txn/s", "Disk reads"],
    )
    for pages in SERVER_CACHE_PAGES:
        r = reports[pages]
        reads = sum(s.metrics.meters.disk_reads for s in r.sessions)
        table.add(pages, r.committed, r.elapsed_s, r.throughput_ops_s, reads)
    save_table("multiclient_cache_sweep", table)

    small, large = SERVER_CACHE_PAGES[0], SERVER_CACHE_PAGES[-1]
    reads_small = sum(
        s.metrics.meters.disk_reads for s in reports[small].sessions
    )
    reads_large = sum(
        s.metrics.meters.disk_reads for s in reports[large].sessions
    )
    # A bigger shared cache absorbs the cross-session re-reads.
    assert reads_large < reads_small
    assert (
        reports[large].throughput_ops_s > reports[small].throughput_ops_s
    )
    benchmark.extra_info["throughput_txn_s"] = {
        pages: round(reports[pages].throughput_ops_s, 3)
        for pages in SERVER_CACHE_PAGES
    }
