"""Extensions the paper names but does not measure.

* The sort-merge pointer join it "started testing ... and dropped";
* hybrid hashing [17], which Section 5.1 flags as the obvious fix for
  the memory-bound hash joins;
* the association organization of Carey & Lapis [4] (children ordered
  by parent but in their own file), which Section 5.3 predicts combines
  composition-like navigation with class-like scans.
"""

from __future__ import annotations

from repro.bench import ExperimentRunner
from repro.bench.figures import cell_times, extensions_figure, rank_table


def test_extended_algorithms(benchmark, derby_cache, save_table):
    derby = derby_cache("1:3", "class")
    runner = ExperimentRunner(derby)

    table, ms = benchmark.pedantic(
        lambda: extensions_figure(runner), rounds=1, iterations=1
    )
    save_table("ablation_extensions_algorithms", table)

    # Hybrid hashing fixes PHJ exactly where the paper predicts: the
    # memory-bound 90/90 cell.
    t = cell_times(ms, 90, 90)
    assert t["PHJ-HYBRID"] < t["PHJ"]
    # There, hashing with real memory management keeps up with the
    # sort-based plan (both replace thrashing by sequential spill I/O).
    assert t["PHJ-HYBRID"] < 1.2 * t["SMJ"]
    # And hybrid costs about the same as plain PHJ when memory suffices.
    t = cell_times(ms, 10, 10)
    assert t["PHJ-HYBRID"] < 1.3 * t["PHJ"]
    # On memory-light cells the sort-merge join never wins — which is
    # why the paper dropped it.
    for sel in ((10, 10), (90, 10)):
        cell = cell_times(ms, *sel)
        assert min(cell, key=cell.get) != "SMJ"


def test_association_organization(benchmark, derby_cache, save_table):
    """Carey & Lapis [4]: navigation stays composition-fast while the
    child-only scans stay class-fast."""
    assoc = ExperimentRunner(derby_cache("1:3", "association"))
    comp = ExperimentRunner(derby_cache("1:3", "composition"))

    def run():
        return (
            assoc.run_join_grid(("NL", "PHJ"), ((10, 10), (90, 90))),
            comp.run_join_grid(("NL", "PHJ"), ((10, 10), (90, 90))),
        )

    assoc_ms, comp_ms = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table(
        "ablation_association_clustering",
        rank_table(
            assoc_ms,
            "Association organization of Carey & Lapis [4] (1:3)",
            grid=((10, 10), (90, 90)),
        ),
    )

    # Navigation stays competitive under association clustering...
    assert cell_times(assoc_ms, 10, 10)["NL"] < 2.5 * (
        cell_times(comp_ms, 10, 10)["NL"]
    )
    # ...while the hash join improves over composition (children can be
    # scanned without dragging every parent page along).
    assert cell_times(assoc_ms, 90, 90)["PHJ"] < (
        cell_times(comp_ms, 90, 90)["PHJ"]
    )
