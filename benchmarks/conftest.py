"""Shared fixtures for the figure benchmarks.

Databases are expensive to build, so they are loaded once per session
and shared; each measured run starts from a cold cache anyway
(``start_cold_run``), exactly as the paper ran its experiments.

Scale defaults to 1/100 of the paper's databases and can be overridden
with the ``REPRO_SCALE`` environment variable (e.g. ``REPRO_SCALE=0.05``
for a closer-to-paper run).  Every figure table is also written to
``results/`` for inspection.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench import ExperimentRunner
from repro.bench.runner import JoinMeasurement
from repro.cluster import DerbyDatabase, load_derby
from repro.derby import DerbyConfig
from repro.derby.config import Clustering

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

_CLUSTERINGS = {
    "class": Clustering.CLASS,
    "random": Clustering.RANDOM,
    "composition": Clustering.COMPOSITION,
    "association": Clustering.ASSOCIATION,
}


@pytest.fixture(scope="session")
def derby_cache():
    """Lazily build and cache one database per (relationship, org)."""
    cache: dict[tuple[str, str], DerbyDatabase] = {}

    def get(relationship: str, clustering: str) -> DerbyDatabase:
        key = (relationship, clustering)
        if key not in cache:
            maker = (
                DerbyConfig.db_1to1000
                if relationship == "1:1000"
                else DerbyConfig.db_1to3
            )
            config = maker(clustering=_CLUSTERINGS[clustering])
            cache[key] = load_derby(config)
        return cache[key]

    return get


@pytest.fixture(scope="session")
def join_measurements(derby_cache):
    """Cache of full selectivity-grid measurements per (rel, org), so
    Figure 15 reuses what Figures 11-14 already ran."""
    from repro.bench.figures import PAPER_ALGORITHMS
    from repro.bench.workloads import SELECTIVITY_GRID

    cache: dict[tuple[str, str], list[JoinMeasurement]] = {}

    def get(relationship: str, clustering: str) -> list[JoinMeasurement]:
        key = (relationship, clustering)
        if key not in cache:
            runner = ExperimentRunner(derby_cache(relationship, clustering))
            cache[key] = runner.run_join_grid(PAPER_ALGORITHMS, SELECTIVITY_GRID)
        return cache[key]

    return get


@pytest.fixture(scope="session")
def save_table():
    """Write a rendered figure table under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def save(name: str, table) -> str:
        text = str(table)
        (RESULTS_DIR / f"{name}.txt").write_text(text)
        print("\n" + text)
        return text

    return save
