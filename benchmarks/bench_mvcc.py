"""MVCC snapshot isolation vs strict 2PL: the concurrency benchmark.

The MVCC refactor (``repro.txn.mvcc``) must pay for its version chains
the way every subsystem here does — against measured, gated truth.  One
mixed workload (navigators + scanners + updaters over the Derby hot
set) runs twice on identically-seeded fresh databases: once under
strict two-phase locking, once under snapshot isolation.  Updaters use
``update_values="keyed"`` so the committed end state is a pure function
of the op set — retries and commit order cannot change it — which makes
the two isolation levels directly comparable, digest for digest.

Hard gates — the script exits nonzero if any fails:

* **zero read locks**: under SI no navigator or scanner session ever
  blocks on a lock (``lock_waits == 0`` for every non-updater);
* **throughput**: the SI mix commits more transactions per simulated
  second than the identical 2PL mix (readers no longer queue behind
  updaters' X locks);
* **no give-ups**: both runs commit every operation (retries absorb
  deadlocks, timeouts and write conflicts);
* **same answer**: the hot-set end state (patient ages) is identical
  between the 2PL and the SI run — MVCC changes the schedule, never
  the committed result.

Outputs: ``BENCH_mvcc.json`` (repo root), ``results/mvcc_mix.txt`` and
``results/mvcc_mix.csv`` (per-session metrics for both isolations).
Run standalone with ``python benchmarks/bench_mvcc.py [--smoke]``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pathlib
import sys
from dataclasses import asdict, dataclass, replace

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.cluster import load_derby
from repro.derby import DerbyConfig
from repro.service import MixConfig, WorkloadMixer
from repro.stats import mix_to_csv

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO_ROOT / "results"

SCALE = 0.005         # 5_000 providers / 15_000 patients
SMOKE_SCALE = 0.0005  # 500 providers / 1_500 patients (CI)
ISOLATIONS = ("2pl", "si")

#: The shared mix both isolation levels run: enough updaters that the
#: hot set is contended, enough readers that 2PL's S/X queueing shows.
BASE_CONFIG = MixConfig(
    navigators=2,
    scanners=3,
    updaters=3,
    ops_per_client=4,
    seed=11,
    lock_timeout_s=2.0,
    max_retries=10,
    hot_set=8,
    update_values="keyed",
    # 2PL pays physical logging too, so the comparison is isolation
    # level against isolation level — not logging mode against logging
    # mode ("si" would force recovery on anyway).
    recovery=True,
)
SMOKE_OPS = 3
#: Smoke transactions are short (tiny scans), so a long lock timeout
#: lets 2PL simply wait out all contention; the tighter bound keeps the
#: abort/retry dynamics the full run exhibits.
SMOKE_LOCK_TIMEOUT_S = 0.5


@dataclass
class IsolationRun:
    """One isolation level's aggregate outcome."""

    isolation: str
    committed: int
    aborted: int
    retries: int
    gave_up: int
    deadlocks: int
    timeouts: int
    conflicts: int
    lock_waits: int
    reader_lock_waits: int
    elapsed_s: float
    throughput_ops_s: float
    context_switches: int
    end_state_digest: str


def _digest(values: list[int]) -> str:
    return hashlib.sha256(
        ",".join(str(v) for v in values).encode()
    ).hexdigest()[:16]


def run_isolation(
    isolation: str, config: MixConfig, scale: float
) -> tuple[IsolationRun, object]:
    print(f"running {isolation} mix at scale {scale} ...", file=sys.stderr)
    derby = load_derby(DerbyConfig.db_1to3(scale=scale))
    mixer = WorkloadMixer(derby, replace(config, isolation=isolation))
    report = mixer.run()
    hot = derby.patient_rids[: config.hot_set]
    om = derby.db.manager
    end_state = [int(om.get_attr_at(rid, "age")) for rid in hot]
    reader_waits = sum(
        s.metrics.lock_waits
        for s in report.sessions
        if s.profile != "updater"
    )
    return (
        IsolationRun(
            isolation=isolation,
            committed=report.committed,
            aborted=report.aborted,
            retries=report.retries,
            gave_up=report.gave_up,
            deadlocks=report.deadlocks,
            timeouts=report.timeouts,
            conflicts=report.conflicts,
            lock_waits=report.lock_waits,
            reader_lock_waits=reader_waits,
            elapsed_s=report.elapsed_s,
            throughput_ops_s=report.throughput_ops_s,
            context_switches=report.context_switches,
            end_state_digest=_digest(end_state),
        ),
        report,
    )


def check(runs: dict[str, IsolationRun]) -> list[str]:
    failures = []
    si, tpl = runs["si"], runs["2pl"]
    if si.reader_lock_waits:
        failures.append(
            f"si readers blocked on {si.reader_lock_waits} lock(s); "
            "snapshot reads must be lock-free"
        )
    if si.throughput_ops_s <= tpl.throughput_ops_s:
        failures.append(
            f"si throughput {si.throughput_ops_s:.3f} txn/s does not "
            f"beat 2pl {tpl.throughput_ops_s:.3f} txn/s"
        )
    for run in runs.values():
        if run.gave_up:
            failures.append(
                f"{run.isolation} mix gave up on {run.gave_up} op(s)"
            )
    if si.end_state_digest != tpl.end_state_digest:
        failures.append(
            f"committed end states diverge: 2pl {tpl.end_state_digest} "
            f"!= si {si.end_state_digest} (keyed updates must make the "
            "result schedule-independent)"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny database and fewer ops (CI); same gates",
    )
    parser.add_argument(
        "--json", default=str(REPO_ROOT / "BENCH_mvcc.json"),
        help="output path for the machine-readable results",
    )
    parser.add_argument(
        "--out", default=str(RESULTS_DIR / "mvcc_mix.txt"),
        help="output path for the rendered tables",
    )
    parser.add_argument(
        "--csv", default=str(RESULTS_DIR / "mvcc_mix.csv"),
        help="output path for the per-session CSV export",
    )
    args = parser.parse_args(argv)

    scale = SMOKE_SCALE if args.smoke else SCALE
    config = BASE_CONFIG
    if args.smoke:
        config = replace(
            config,
            ops_per_client=SMOKE_OPS,
            lock_timeout_s=SMOKE_LOCK_TIMEOUT_S,
        )

    runs: dict[str, IsolationRun] = {}
    tables: list[str] = []
    csv_lines: list[str] = []
    for isolation in ISOLATIONS:
        run, report = run_isolation(isolation, config, scale)
        runs[isolation] = run
        tables.append(f"=== isolation={isolation} ===\n{report.table()}")
        header, *rows = mix_to_csv(report).splitlines()
        if not csv_lines:  # one header for the whole file
            csv_lines.append(header + ",isolation")
        csv_lines.extend(f"{row},{isolation}" for row in rows)

    si, tpl = runs["si"], runs["2pl"]
    verdict = (
        f"2pl: {tpl.committed} committed in {tpl.elapsed_s:.2f} s "
        f"({tpl.throughput_ops_s:.3f} txn/s, {tpl.lock_waits} lock "
        f"waits)\n"
        f"si:  {si.committed} committed in {si.elapsed_s:.2f} s "
        f"({si.throughput_ops_s:.3f} txn/s, {si.lock_waits} lock waits, "
        f"{si.conflicts} write conflicts, reader lock waits "
        f"{si.reader_lock_waits})\n"
        f"end-state digests: 2pl {tpl.end_state_digest} / "
        f"si {si.end_state_digest}\n"
    )
    body = "\n\n".join(tables) + "\n\n" + verdict
    print(body)

    out = pathlib.Path(args.out)
    out.parent.mkdir(exist_ok=True)
    out.write_text(body)
    pathlib.Path(args.csv).write_text("\n".join(csv_lines) + "\n")
    payload = {
        "benchmark": "mvcc_mix",
        "scale": scale,
        "smoke": args.smoke,
        "config": {
            "clients": config.total_clients,
            "ops_per_client": config.ops_per_client,
            "seed": config.seed,
            "hot_set": config.hot_set,
            "lock_timeout_s": config.lock_timeout_s,
            "update_values": config.update_values,
        },
        "runs": {k: asdict(v) for k, v in runs.items()},
        "speedup": (
            si.throughput_ops_s / tpl.throughput_ops_s
            if tpl.throughput_ops_s > 0
            else None
        ),
        "digest_match": si.end_state_digest == tpl.end_state_digest,
    }
    pathlib.Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}, {args.csv}, {args.json}", file=sys.stderr)

    failures = check(runs)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(
            f"PASS: si {si.throughput_ops_s:.3f} txn/s vs 2pl "
            f"{tpl.throughput_ops_s:.3f} txn/s "
            f"({si.throughput_ops_s / tpl.throughput_ops_s:.2f}x), "
            "0 reader lock waits, identical end state",
            file=sys.stderr,
        )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
