"""Parameter sweeps around the paper's point measurements.

* Locates Figure 6's index-vs-scan crossover selectivity by bisection —
  the paper brackets it "between 1 and 5%".
* Traces hash-join time against the query-memory budget — the
  continuous version of Figure 10's swap predictions.
"""

from __future__ import annotations

from repro.bench import ExperimentRunner
from repro.bench.report import Table
from repro.bench.sweeps import find_crossover, memory_pressure_sweep


def test_figure6_crossover(benchmark, derby_cache, save_table):
    runner = ExperimentRunner(derby_cache("1:1000", "class"))

    crossover = benchmark.pedantic(
        lambda: find_crossover(runner, "index", "scan", 0.2, 20.0),
        rounds=1,
        iterations=1,
    )
    table = Table(
        "Figure 6 crossover — where the unclustered index stops winning",
        ["Quantity", "Value"],
    )
    table.add("crossover selectivity (%)", crossover)
    table.note('Paper: "a threshold selectivity situated between 1 and 5%".')
    save_table("sweep_fig6_crossover", table)

    assert 0.5 < crossover < 6.0
    benchmark.extra_info["crossover_pct"] = crossover


def test_memory_pressure_curve(benchmark, derby_cache, save_table):
    runner = ExperimentRunner(derby_cache("1:3", "class"))
    fractions = (1.0, 0.5, 0.2, 0.1, 0.02)

    points = benchmark.pedantic(
        lambda: memory_pressure_sweep(runner, fractions, algo="PHJ"),
        rounds=1,
        iterations=1,
    )
    table = Table(
        "PHJ at 90/90 vs query memory budget (1:3, class clustering)",
        ["Budget fraction", "Elapsed (sec)", "Swap faults"],
    )
    for p in points:
        table.add(p.x, p.elapsed_s, p.page_reads)
    save_table("sweep_memory_pressure", table)

    times = {p.x: p.elapsed_s for p in points}
    # Monotone: less memory can only hurt, and deep pressure hurts a lot.
    assert times[0.02] > times[1.0]
    assert times[0.1] >= times[0.5] >= times[1.0] * 0.999
    benchmark.extra_info["slowdown_at_2pct"] = times[0.02] / times[1.0]
