"""Pipelined execution: batch size vs latency, memory and interleaving.

The operator pipeline (``repro.exec.operators``) trades three currencies
against the batch size:

* **time-to-first-row** — a streaming consumer sees rows after one batch
  (plus any blocking prefix such as a sort or hash build), so smaller
  batches surface results sooner;
* **peak live rows** — bounded by ``batch_size x tree depth`` for
  streaming plans, so smaller batches cap the pipeline's memory;
* **scheduler interleaving** — the query service yields the baton at
  every batch boundary (``CooperativeScheduler.batch_point``), so
  smaller batches interleave a multi-client mix more finely.

Two sweeps, both deterministic:

* a **single-client sweep** over one selection on the 1:1000 database:
  full drain vs ``limit 10`` early exit, per batch size — total cost is
  batch-size *invariant* (the equivalence guarantee) while
  time-to-first-row, peak rows and the early-exit I/O are not;
* a **mix sweep**: the same navigator/scanner/updater mix per batch
  size — commits/aborts stay identical while batch yields rise as
  batches shrink.

Results land in ``results/pipeline_batch_sweep.txt``.  Run standalone
with ``python benchmarks/bench_pipeline.py [--smoke]`` (no pytest
needed) or through pytest for the benchmark harness.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.bench.report import Table
from repro.cluster import load_derby
from repro.derby import DerbyConfig
from repro.oql import Catalog, OQLEngine
from repro.service import MixConfig, WorkloadMixer

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

BATCH_SIZES = (8, 32, 128, 512)
SMOKE_BATCH_SIZES = (8, 128)
SCALE = 0.01
SMOKE_SCALE = 0.002
MIX_CLIENTS = 6
MIX_OPS = 2
MIX_SEED = 7


def _fresh_derby(scale: float):
    return load_derby(DerbyConfig.db_1to1000(scale=scale))


# -- single-client sweep: TTFR and early exit -------------------------------

def run_query_sweep(derby, batch_sizes) -> Table:
    """Drain vs ``limit 10`` for one selection, per batch size."""
    catalog = Catalog.from_derby(derby)
    threshold = derby.config.num_threshold(50)
    full_q = f"select p.age from p in Patients where p.num > {threshold}"
    limit_q = full_q + " limit 10"

    table = Table(
        "Batch size vs TTFR / peak rows / limit early-exit "
        f"({derby.config.n_patients} patients, num > 50%)",
        ["Batch", "Query", "Rows", "Elapsed (s)", "First row (ms)",
         "Peak rows", "Disk reads"],
    )
    for batch_size in batch_sizes:
        engine = OQLEngine(catalog, batch_size=batch_size)
        for label, q in (("full", full_q), ("limit 10", limit_q)):
            derby.start_cold_run()
            start_s = derby.db.clock.elapsed_s
            reads_before = derby.db.counters.snapshot().disk_reads
            rows = engine.execute(q)
            stats = engine.last_stats
            table.add(
                batch_size, label, len(rows),
                derby.db.clock.elapsed_s - start_s,
                stats.first_row_ms, stats.peak_rows,
                derby.db.counters.snapshot().disk_reads - reads_before,
            )
    table.note(
        "full-drain elapsed is batch-size invariant (cost equivalence); "
        "first-row time and peak rows scale with the batch; limit 10 "
        "stops after one batch of the scan"
    )
    return table


# -- mix sweep: interleaving at batch boundaries ----------------------------

def run_mix_sweep(derby, batch_sizes) -> Table:
    """The same deterministic mix per batch size."""
    table = Table(
        f"Batch size vs mix interleaving ({MIX_CLIENTS} clients, "
        f"{MIX_OPS} ops each, seed {MIX_SEED})",
        ["Batch", "Committed", "Aborted", "Deadlocks", "Elapsed (s)",
         "Batch yields", "Ctx switches", "Scan first row (ms)",
         "Peak rows"],
    )
    for batch_size in batch_sizes:
        config = MixConfig.from_clients(
            MIX_CLIENTS,
            ops_per_client=MIX_OPS,
            seed=MIX_SEED,
            batch_size=batch_size,
        )
        mixer = WorkloadMixer(derby, config)
        report = mixer.run()
        scanners = [s for s in report.sessions if s.profile == "scanner"]
        first_row_ms = (
            sum(s.metrics.mean_first_row_ms for s in scanners)
            / len(scanners)
        )
        table.add(
            batch_size, report.committed, report.aborted, report.deadlocks,
            report.elapsed_s, mixer.service.scheduler.batch_yields,
            report.context_switches, first_row_ms,
            max(s.metrics.peak_rows for s in report.sessions),
        )
    table.note(
        "smaller batches -> more batch-boundary yields and finer "
        "interleaving; commit/abort outcomes are batch-size independent"
    )
    return table


# -- pytest harness ---------------------------------------------------------

@pytest.fixture(scope="module")
def pipeline_derby():
    return _fresh_derby(SCALE)


def test_pipeline_batch_sweep(benchmark, pipeline_derby, save_table):
    tables = benchmark.pedantic(
        lambda: (
            run_query_sweep(pipeline_derby, BATCH_SIZES),
            run_mix_sweep(pipeline_derby, BATCH_SIZES),
        ),
        rounds=1,
        iterations=1,
    )
    query_table, mix_table = tables
    save_table(
        "pipeline_batch_sweep", f"{query_table}\n\n{mix_table}"
    )
    _check_tables(query_table, mix_table, BATCH_SIZES)


def _check_tables(query_table: Table, mix_table: Table, batch_sizes) -> None:
    rows = query_table.rows
    full = {r[0]: r for r in rows if r[1] == "full"}
    limited = {r[0]: r for r in rows if r[1] == "limit 10"}
    # Full-drain cost is batch-size invariant (the equivalence guarantee).
    elapsed = {f"{full[b][3]:.9f}" for b in batch_sizes}
    assert len(elapsed) == 1, f"full-drain elapsed varied: {elapsed}"
    for b in batch_sizes:
        # limit 10 exits early: strictly cheaper than the full drain.
        assert limited[b][3] < full[b][3]
        assert limited[b][6] < full[b][6]
    # Smaller batches buffer fewer live rows at the high-water mark.
    assert full[batch_sizes[0]][5] < full[batch_sizes[-1]][5]
    # The mix interleaves more finely as batches shrink, with the same
    # transactional outcome.
    mix = {r[0]: r for r in mix_table.rows}
    assert mix[batch_sizes[0]][5] > mix[batch_sizes[-1]][5]
    assert len({mix[b][1] for b in batch_sizes}) == 1


# -- standalone entry point -------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny database + reduced batch grid (CI)",
    )
    parser.add_argument(
        "--out", default=str(RESULTS_DIR / "pipeline_batch_sweep.txt"),
        help="output path for the rendered tables",
    )
    args = parser.parse_args(argv)

    scale = SMOKE_SCALE if args.smoke else SCALE
    batch_sizes = SMOKE_BATCH_SIZES if args.smoke else BATCH_SIZES
    print(f"loading 1:1000 database at scale {scale} ...", file=sys.stderr)
    derby = _fresh_derby(scale)
    query_table = run_query_sweep(derby, batch_sizes)
    mix_table = run_mix_sweep(derby, batch_sizes)
    _check_tables(query_table, mix_table, batch_sizes)
    text = f"{query_table}\n\n{mix_table}"
    print(text)
    out = pathlib.Path(args.out)
    out.parent.mkdir(exist_ok=True)
    out.write_text(text + "\n")
    print(f"wrote {out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
