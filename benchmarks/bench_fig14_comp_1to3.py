"""Figure 14 — composition clustering, 10^6 providers / 3x10^6 patients.

Expected shape (paper): navigation wins everywhere (NL in three cells,
NOJOIN at 10/90); CHJ/PHJ pay memory-driven penalties at high
selectivities.
"""

from __future__ import annotations

from repro.bench.figures import cell_times, rank_table


def test_figure14(benchmark, join_measurements, save_table):
    ms = benchmark.pedantic(
        lambda: join_measurements("1:3", "composition"), rounds=1, iterations=1
    )
    save_table(
        "figure14_comp_1to3",
        rank_table(ms, "Figure 14 — Composition Cluster, 1:3"),
    )

    t = cell_times(ms, 10, 10)
    assert min(t, key=t.get) == "NL"          # paper: NL, ~9x margin
    assert t["NOJOIN"] > 3 * t["NL"]

    t = cell_times(ms, 10, 90)
    assert min(t, key=t.get) == "NOJOIN"      # paper: NOJOIN wins this cell
    assert t["PHJ"] > 2 * t["NOJOIN"]         # paper: 5.1x

    t = cell_times(ms, 90, 10)
    order = sorted(t, key=t.get)
    assert order[0] == "NL"                   # paper: NL, PHJ, NOJOIN, CHJ
    assert order[-1] == "CHJ"

    t = cell_times(ms, 90, 90)
    assert min(t, key=t.get) == "NL"
    assert t["NOJOIN"] < 1.5 * t["NL"]        # paper: 1.22x
    assert t["PHJ"] > 2 * t["NL"]             # paper: 3.78x
    benchmark.extra_info["nl_9090_s"] = t["NL"]
