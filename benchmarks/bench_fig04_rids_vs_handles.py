"""Section 4.1 — hash tables: Rids or Handles?

The experience that started the paper's Section 4 investigation: a hash
table whose payloads are full Handles pins a 60+-byte structure per
selected object, while a table of Rids stays small and re-fetches
through the (now warm) cache on use.
"""

from __future__ import annotations

from repro.bench import ExperimentRunner
from repro.bench.figures import figure4_rids_vs_handles


def test_figure4(benchmark, derby_cache, save_table):
    derby = derby_cache("1:1000", "class")
    runner = ExperimentRunner(derby)

    table = benchmark.pedantic(
        lambda: figure4_rids_vs_handles(runner, selectivity_pct=90),
        rounds=1,
        iterations=1,
    )
    save_table("figure04_rids_vs_handles", table)

    handles_row, rids_row = table.rows
    assert handles_row[2] > 10 * rids_row[2]  # table MB
    benchmark.extra_info["handles_s"] = handles_row[3]
    benchmark.extra_info["rids_s"] = rids_row[3]
