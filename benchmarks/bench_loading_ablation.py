"""Section 3.2 — loading ablation: the 12-hours-to-5-hours story.

Compares bulk-load configurations on the same logical database:

* transactions on (log + locks + commit flushes) vs the transaction-off
  loading mode;
* indexes declared before population (objects born with header slots)
  vs created afterwards (full rewrite pass, record moves for the first
  index).
"""

from __future__ import annotations

from repro.bench.report import Table
from repro.cluster import load_derby
from repro.derby import DerbyConfig
from repro.derby.config import Clustering


def _load(scale: float, logged: bool, index_first: bool):
    config = DerbyConfig.db_1to3(
        scale=scale,
        clustering=Clustering.CLASS,
        logged_load=logged,
        index_first=index_first,
    )
    return load_derby(config).load_report


def test_loading_ablation(benchmark, save_table):
    scale = 0.002  # smaller than the figures: four full loads

    def run():
        return {
            (logged, index_first): _load(scale, logged, index_first)
            for logged in (False, True)
            for index_first in (True, False)
        }

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        f"Section 3.2 — Loading ablation (1:3 database, scale {scale:g})",
        [
            "Transactions",
            "Indexes",
            "Load time (sec)",
            "Records moved",
            "Commits",
        ],
    )
    for (logged, index_first), report in sorted(reports.items()):
        table.add(
            "on" if logged else "off",
            "first" if index_first else "after",
            report.seconds,
            report.records_moved,
            report.commits,
        )
    save_table("loading_ablation", table)

    fast = reports[(False, True)]
    slow = reports[(True, False)]
    assert fast.seconds < slow.seconds
    # Indexing after load reallocates objects; indexing first does not.
    assert reports[(False, False)].records_moved > fast.records_moved
    # Transaction-off alone is a clear win at fixed index strategy.
    assert reports[(False, True)].seconds < reports[(True, True)].seconds
    benchmark.extra_info["speedup"] = slow.seconds / fast.seconds
