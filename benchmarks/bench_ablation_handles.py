"""Section 4.4 — the proposed handle improvements, measured.

Re-runs the Figure 7 workloads under each handle regime: full 60-byte
handles for everything (O2 as measured), compact literal handles, no
handles for fixed-size tuple literals, and bulk allocation.  The paper
argues O2's associative-access performance "could be greatly improved
without hurting those of main memory navigation"; this is that claim,
quantified.
"""

from __future__ import annotations

from repro.bench import ExperimentRunner
from repro.bench.figures import handle_modes_figure


def test_handle_modes(benchmark, derby_cache, save_table):
    derby = derby_cache("1:1000", "class")
    runner = ExperimentRunner(derby)

    table = benchmark.pedantic(
        lambda: handle_modes_figure(runner, selectivity_pct=90),
        rounds=1,
        iterations=1,
    )
    save_table("ablation_handle_modes", table)

    by_mode = {row[0]: (row[1], row[2]) for row in table.rows}
    full_scan, full_sorted = by_mode["full"]
    bulk_scan, __ = by_mode["bulk"]
    inline_scan, inline_sorted = by_mode["inline_tuples"]

    # Every cure improves the cold scan.
    assert bulk_scan < full_scan
    assert inline_scan < full_scan
    assert by_mode["compact_literals"][0] < full_scan
    # And the sorted index scan improves too.
    assert inline_sorted < full_sorted
    benchmark.extra_info["full_scan_s"] = full_scan
    benchmark.extra_info["bulk_scan_s"] = bulk_scan
