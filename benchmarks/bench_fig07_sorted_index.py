"""Figure 7 — sorted unclustered index scan vs no index.

Regenerates the table that surprised the authors: sorting the rids
returned by the index scan before fetching keeps the index competitive
at every selectivity ("It did and exceeded our expectations by far").
"""

from __future__ import annotations

from repro.bench import ExperimentRunner
from repro.bench.figures import figure7


def test_figure7(benchmark, derby_cache, save_table):
    derby = derby_cache("1:1000", "class")
    runner = ExperimentRunner(derby)

    table = benchmark.pedantic(
        lambda: figure7(runner), rounds=1, iterations=1
    )
    save_table("figure07_sorted_index", table)

    rows = table.rows
    # The sorted index scan wins clearly at low/mid selectivity.
    for row in rows[:3]:
        assert row[1] < row[2], f"sorted index lost at {row[0]}%"
    # At 90% it stays within a whisker of the scan (the paper measured a
    # modest win; our model puts the crossover around there).
    assert rows[-1][1] < rows[-1][2] * 1.10
    benchmark.extra_info["sorted_index_90pct_s"] = rows[-1][1]
    benchmark.extra_info["scan_90pct_s"] = rows[-1][2]
