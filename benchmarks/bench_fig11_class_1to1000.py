"""Figure 11 — one file per class, 2x10^3 providers / 2x10^6 patients.

Expected shape (paper): hash joins best, NOJOIN comparable (within
~1.1-1.5x), NL dreadful except when very few providers are selected.
"""

from __future__ import annotations

from repro.bench.figures import cell_times, rank_table


def test_figure11(benchmark, join_measurements, save_table):
    ms = benchmark.pedantic(
        lambda: join_measurements("1:1000", "class"), rounds=1, iterations=1
    )
    save_table(
        "figure11_class_1to1000",
        rank_table(ms, "Figure 11 — One file per Class, 1:1000"),
    )

    # Paper's shape assertions per cell.
    t = cell_times(ms, 10, 10)
    assert t["PHJ"] < t["NL"] / 4          # NL dreadful (paper: 15.8x)
    assert t["NOJOIN"] < 2.0 * t["PHJ"]    # NOJOIN comparable (paper: 1.40x)

    t = cell_times(ms, 10, 90)
    assert t["NL"] > 10 * min(t.values())  # paper: 80x

    t = cell_times(ms, 90, 90)
    assert t["NL"] > 3 * t["PHJ"]          # paper: 7x
    assert t["NOJOIN"] < 1.5 * t["PHJ"]    # paper: 1.2x

    benchmark.extra_info["phj_9090_s"] = t["PHJ"]
