"""Figure 9 — cost decomposition: standard scan vs sorted index scan.

The paper's Figure 9 is an analytic table (I/O + index pages, handle
get/unref, rid sort, integer compares); ours is *measured* from the
simulation clock's buckets, which is strictly stronger: the decomposition
must sum to the totals of Figure 7.
"""

from __future__ import annotations

import pytest

from repro.bench import ExperimentRunner
from repro.bench.figures import figure9


def test_figure9(benchmark, derby_cache, save_table):
    derby = derby_cache("1:1000", "class")
    runner = ExperimentRunner(derby)

    table = benchmark.pedantic(
        lambda: figure9(runner, selectivity_pct=90), rounds=1, iterations=1
    )
    save_table("figure09_cost_decomposition", table)

    *components, total = table.rows
    for col in (1, 2):
        assert sum(r[col] for r in components) == pytest.approx(
            total[col], rel=0.01
        )
    handles = next(r for r in table.rows if "Handle" in r[0])
    sorts = next(r for r in table.rows if "Sort" in r[0])
    # Standard scan: handles for the whole collection, no sort.
    assert handles[1] > handles[2]
    assert sorts[1] == 0.0
    assert sorts[2] > 0.0
    benchmark.extra_info["scan_handle_s"] = handles[1]
    benchmark.extra_info["sorted_handle_s"] = handles[2]
