"""Per-shard replication: the availability and durability benchmark.

Replication (``repro.dist.replication``) exists to buy availability
without giving up correctness, and this benchmark makes it prove both.
One logical Derby 1:3 database is generated **once**; every cell below
reuses it.

1. **Equivalence.**  A 13-query suite — selection sweeps, pushed
   aggregates, order-by/limit top-k and the paper's Section 5 tree
   join — runs cold through the distributed coordinator on a
   *replicated* cluster (sync WAL shipping, one warm standby per
   shard) and on an identically-partitioned *unreplicated* cluster.
   Every answer must match: shipping WAL records must never perturb
   what queries see.
2. **Availability.**  A deterministic mixed workload runs while a
   scheduled kill takes down one shard's primary mid-run, in both
   sync and async ship modes.  The failure detector declares the
   shard dead on the coordinator's simulated timeline, failover
   promotes the standby behind a durable epoch fence, and sessions
   retry through the outage.  Measured: the unavailability window,
   acked-loss windows, and windowed throughput before the kill vs
   after recovery.  Each run executes twice for digest determinism.
3. **Chaos.**  Seeded primary-kill cases (timed kills, kills at every
   ship point, double failures at every promote point) through the
   committed-visible / uncommitted-gone oracle extended with
   decided-but-unacked writes.

Hard gates — the script exits nonzero if any fails:

* 100% semantic equivalence for every query on the replicated cluster;
* zero acked-write loss in **sync** mode across every seeded
  primary-kill chaos case (the full run uses >= 200 cases), zero
  leaked locks/sessions, every kill kind and crash point exercised;
* the sync availability run rides through the kill (nothing gives
  up), the outage stays within the gated simulated window, and
  throughput recovers to >= 80% of its pre-kill rate within one
  measurement window of promotion;
* double runs are digest-identical (workload and chaos).

Outputs: ``BENCH_replication.json`` (repo root),
``results/replication_availability.txt`` and
``results/replication_availability.csv`` (per-shard rows: ship lag,
ack latency, failover count, downtime, loss windows).
Run standalone with ``python benchmarks/bench_replication.py [--smoke]``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from dataclasses import asdict, dataclass

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.bench.report import Table
from repro.bench.workloads import selection_query_text, tree_query_text
from repro.derby import DerbyConfig
from repro.derby.generator import generate
from repro.dist import (
    REPLICATION_KILL_POINTS,
    Coordinator,
    ShardedMixConfig,
    ShardedWorkload,
    failover_coverage,
    load_sharded,
    run_failover_chaos,
    summarize_failover,
)
from repro.stats import replication_to_csv

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO_ROOT / "results"

SCALE = 0.005         # 5_000 providers / 15_000 patients
SMOKE_SCALE = 0.0005  # 500 providers / 1_500 patients (CI)
N_SHARDS = 2
SCHEME = "hash"
CHAOS_CASES_SYNC = 200
CHAOS_CASES_ASYNC = 50
SMOKE_CHAOS_SYNC = 50
SMOKE_CHAOS_ASYNC = 12
#: Gate: post-recovery throughput >= RECOVERY_FLOOR x pre-kill.
RECOVERY_FLOOR = 0.8
#: Gate: a single failover may not black out the shard longer than
#: this (lease 0.15 + grace 0.1 + heartbeat slack + promotion work).
OUTAGE_CEILING_S = 0.5
#: The primary is killed once this fraction of the calibrated
#: (kill-free) run's ops have completed; the throughput window width
#: equals the kill time, so the pre-kill window spans the whole
#: healthy prefix.  Op cost scales with the database, so fixed kill
#: times would measure empty windows at larger scales.
KILL_FRACTION = 1 / 3


def query_suite(config: DerbyConfig) -> list[tuple[str, str]]:
    """The 13-query equivalence suite: every family the coordinator
    plans, at several selectivities."""
    thr10 = config.num_threshold(10.0)
    thr50 = config.num_threshold(50.0)
    return [
        ("scan 1%", selection_query_text(config, 1.0)),
        ("scan 5%", selection_query_text(config, 5.0)),
        ("scan 10%", selection_query_text(config, 10.0)),
        ("scan 25%", selection_query_text(config, 25.0)),
        ("scan 50%", selection_query_text(config, 50.0)),
        ("scan all", "select p.age from p in Patients"),
        ("count 10%",
         f"select count(*) from p in Patients where p.num > {thr10}"),
        ("count 50%",
         f"select count(*) from p in Patients where p.num > {thr50}"),
        ("avg 10%",
         f"select avg(p.age) from p in Patients where p.num > {thr10}"),
        ("avg 50%",
         f"select avg(p.age) from p in Patients where p.num > {thr50}"),
        ("top-10",
         f"select p.age from p in Patients where p.num > {thr10} "
         "order by p.age desc limit 10"),
        ("top-50",
         f"select p.age from p in Patients where p.num > {thr50} "
         "order by p.age desc limit 50"),
        ("tree join", tree_query_text(config, 30, 50)),
    ]


@dataclass
class EquivRun:
    """One query, replicated vs unreplicated."""

    label: str
    rows: int
    elapsed_plain_s: float
    elapsed_repl_s: float
    overhead_pct: float
    equivalent: bool


@dataclass
class AvailabilityRun:
    """One kill-under-load workload at one ship mode."""

    ship_mode: str
    victim: int
    committed: int
    aborted: int
    unavailable_errors: int
    gave_up: int
    elapsed_s: float
    kills: int
    failovers: int
    unavailable_s: float
    loss_window_records: int
    pre_kill_ops_s: float
    post_recovery_ops_s: float
    recovery_ratio: float
    kill_at_s: float
    window_s: float
    deterministic: bool


@dataclass
class ShardCsvRow:
    """One shard's replication meters (``replication_to_csv``)."""

    label: str
    n_shards: int
    ship_mode: str
    shard: int
    ship_msgs: int
    shipped_records: int
    shipped_bytes: int
    ship_lag_records: int
    ack_wait_s: float
    failovers: int
    epoch: int
    unavailable_s: float
    loss_window_records: int


def _match(base: list, rows: list, ordered: bool) -> bool:
    if ordered:
        return rows == base
    return sorted(map(repr, rows)) == sorted(map(repr, base))


# -- equivalence ------------------------------------------------------------

def run_equivalence(config: DerbyConfig, logical) -> list[EquivRun]:
    queries = query_suite(config)
    print("loading unreplicated baseline cluster ...", file=sys.stderr)
    plain = load_sharded(config, N_SHARDS, scheme=SCHEME, logical=logical)
    print("loading replicated cluster ...", file=sys.stderr)
    repl = load_sharded(
        config, N_SHARDS, scheme=SCHEME, logical=logical, replicas=1,
        ship_mode="sync",
    )
    plain_coord, repl_coord = Coordinator(plain), Coordinator(repl)
    runs = []
    for label, text in queries:
        plain.start_cold()
        base_rows = plain_coord.execute(text)
        base_s = plain.elapsed_s
        repl.start_cold()
        rows = repl_coord.execute(text)
        repl_s = repl.elapsed_s
        runs.append(EquivRun(
            label=label,
            rows=len(rows),
            elapsed_plain_s=base_s,
            elapsed_repl_s=repl_s,
            overhead_pct=(
                (repl_s - base_s) / base_s * 100.0 if base_s > 0 else 0.0
            ),
            equivalent=_match(base_rows, rows, "order by" in text),
        ))
    return runs


# -- availability -----------------------------------------------------------

def _windowed_ops_s(op_times: list[float], start: float, width: float) -> float:
    if width <= 0:
        return 0.0
    return sum(1 for t in op_times if start <= t < start + width) / width


def _availability_mix() -> ShardedMixConfig:
    return ShardedMixConfig(
        scanners=2, updaters=4, ops_per_client=18, seed=7,
        hot_set=12, scan_selectivity_pct=2.0,
    )


def _calibrate(config: DerbyConfig, logical, ship_mode: str) -> float:
    """Run the availability mix once with no kill and place the kill
    where ops actually land on the simulated clock."""
    cluster = load_sharded(
        config, N_SHARDS, scheme=SCHEME, logical=logical, replicas=1,
        ship_mode=ship_mode, max_lag_records=8,
    )
    cluster.start_cold()
    workload = ShardedWorkload(cluster, _availability_mix())
    workload.run()
    times = workload.op_times
    return times[int(len(times) * KILL_FRACTION)]


def _one_availability(
    config: DerbyConfig, logical, ship_mode: str, kill_at_s: float
) -> tuple[tuple, AvailabilityRun, list[ShardCsvRow]]:
    cluster = load_sharded(
        config, N_SHARDS, scheme=SCHEME, logical=logical, replicas=1,
        ship_mode=ship_mode, max_lag_records=8,
    )
    cluster.start_cold()
    victim = 0
    cluster.schedule_kill(victim, at_s=kill_at_s)
    workload = ShardedWorkload(cluster, _availability_mix())
    report = workload.run()
    outage = cluster.shard_unavailable_s(victim)
    recovery_t = kill_at_s + outage
    window_s = kill_at_s
    pre = _windowed_ops_s(workload.op_times, 0.0, window_s)
    post = _windowed_ops_s(workload.op_times, recovery_t, window_s)
    digest = (
        tuple(
            (s.name, s.committed, s.aborted, s.retries, s.unavailable)
            for s in report.sessions
        ),
        round(report.elapsed_s, 9),
        report.context_switches,
        cluster.kills,
        tuple(cluster.route.epochs),
        tuple(cluster.route.failovers),
        tuple(sorted(cluster.loss_windows.items())),
        round(outage, 9),
        len(workload.op_times),
    )
    run = AvailabilityRun(
        ship_mode=ship_mode,
        victim=victim,
        committed=report.committed,
        aborted=report.aborted,
        unavailable_errors=report.unavailable,
        gave_up=report.gave_up,
        elapsed_s=report.elapsed_s,
        kills=cluster.kills,
        failovers=sum(cluster.route.failovers),
        unavailable_s=outage,
        loss_window_records=cluster.loss_windows.get(victim, 0),
        pre_kill_ops_s=pre,
        post_recovery_ops_s=post,
        recovery_ratio=(post / pre if pre > 0 else 0.0),
        kill_at_s=kill_at_s,
        window_s=window_s,
        deterministic=False,  # filled by the caller's double run
    )
    csv_rows = []
    for sid in range(cluster.n_shards):
        link = cluster.links.get(sid) or cluster.retired_links.get(sid)
        csv_rows.append(ShardCsvRow(
            label=f"avail-{ship_mode}",
            n_shards=cluster.n_shards,
            ship_mode=ship_mode,
            shard=sid,
            ship_msgs=link.ship_msgs if link else 0,
            shipped_records=link.shipped_records if link else 0,
            shipped_bytes=link.shipped_bytes if link else 0,
            ship_lag_records=link.lag_records() if link else 0,
            ack_wait_s=link.ack_wait_s if link else 0.0,
            failovers=cluster.route.failovers[sid],
            epoch=cluster.route.epochs[sid],
            unavailable_s=cluster.shard_unavailable_s(sid),
            loss_window_records=cluster.loss_windows.get(sid, 0),
        ))
    return digest, run, csv_rows


def run_availability(
    config: DerbyConfig, logical
) -> tuple[list[AvailabilityRun], list[ShardCsvRow]]:
    runs, csv_rows = [], []
    for ship_mode in ("sync", "async"):
        kill_at = _calibrate(config, logical, ship_mode)
        print(
            f"availability run ({ship_mode} shipping, calibrated kill "
            f"at t={kill_at:.2f}s), twice for determinism ...",
            file=sys.stderr,
        )
        digest, run, rows = _one_availability(
            config, logical, ship_mode, kill_at
        )
        digest2, __, ___ = _one_availability(
            config, logical, ship_mode, kill_at
        )
        run.deterministic = digest == digest2
        runs.append(run)
        csv_rows.extend(rows)
    return runs, csv_rows


# -- scoring and reporting --------------------------------------------------

def summarize(
    equiv: list[EquivRun],
    avail: list[AvailabilityRun],
    chaos_sync: list,
    chaos_async: list,
) -> dict:
    mismatches = [r for r in equiv if not r.equivalent]
    sync = next(r for r in avail if r.ship_mode == "sync")
    return {
        "cells": len(equiv),
        "equivalent": len(equiv) - len(mismatches),
        "mismatches": len(mismatches),
        "mean_overhead_pct": (
            sum(r.overhead_pct for r in equiv) / len(equiv) if equiv else 0.0
        ),
        "sync_outage_s": sync.unavailable_s,
        "sync_recovery_ratio": sync.recovery_ratio,
        "sync_gave_up": sync.gave_up,
        "async_loss_window": next(
            r.loss_window_records for r in avail if r.ship_mode == "async"
        ),
        "chaos_sync_cases": len(chaos_sync),
        "chaos_sync_ok": sum(1 for c in chaos_sync if c.ok),
        "chaos_sync_acked_loss": sum(
            c.loss_window or 0 for c in chaos_sync
        ),
        "chaos_async_cases": len(chaos_async),
        "chaos_async_ok": sum(1 for c in chaos_async if c.ok),
        "chaos_kinds": failover_coverage(chaos_sync + chaos_async),
        "chaos_points": {
            point: sum(
                1 for c in chaos_sync + chaos_async if c.point == point
            )
            for point in REPLICATION_KILL_POINTS
        },
    }


def build_table(
    equiv: list[EquivRun],
    avail: list[AvailabilityRun],
    summary: dict,
) -> Table:
    table = Table(
        "Replication: equivalence, availability and acked-loss windows "
        f"({N_SHARDS} shards, 1 warm standby each)",
        ["Query", "Rows", "Plain (s)", "Replicated (s)", "Overhead",
         "Valid"],
    )
    for r in equiv:
        table.add(
            r.label, r.rows, r.elapsed_plain_s, r.elapsed_repl_s,
            f"{r.overhead_pct:+.1f}%", "ok" if r.equivalent else "MISMATCH",
        )
    table.note(
        f"{summary['equivalent']}/{summary['cells']} queries match the "
        "unreplicated cluster's answer (sync shipping)"
    )
    for a in avail:
        table.note(
            f"{a.ship_mode} kill-under-load (kill at t={a.kill_at_s:.2f}s): "
            f"{a.committed} committed, "
            f"{a.unavailable_errors} unavailable errors retried "
            f"({a.gave_up} gave up), shard {a.victim} down "
            f"{a.unavailable_s:.4f} s, loss window "
            f"{a.loss_window_records} records, throughput "
            f"{a.pre_kill_ops_s:.1f} -> {a.post_recovery_ops_s:.1f} ops/s "
            f"({a.recovery_ratio:.0%} recovered)"
            + ("" if a.deterministic else " [NON-DETERMINISTIC]")
        )
    table.note(
        f"chaos: {summary['chaos_sync_ok']}/{summary['chaos_sync_cases']} "
        f"sync + {summary['chaos_async_ok']}/"
        f"{summary['chaos_async_cases']} async cases clean; "
        f"sync acked loss {summary['chaos_sync_acked_loss']} records; "
        "kinds " + ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(summary["chaos_kinds"].items())
        )
    )
    return table


def check(
    equiv: list[EquivRun],
    avail: list[AvailabilityRun],
    chaos_sync: list,
    chaos_async: list,
    summary: dict,
) -> list[str]:
    failures = []
    for r in equiv:
        if not r.equivalent:
            failures.append(f"semantic mismatch under replication: {r.label}")
    sync = next(r for r in avail if r.ship_mode == "sync")
    if sync.kills != 1 or sync.failovers != 1:
        failures.append(
            f"sync availability run: expected 1 kill + 1 failover, got "
            f"{sync.kills} + {sync.failovers}"
        )
    if sync.gave_up:
        failures.append(
            f"sync availability run: {sync.gave_up} op(s) gave up during "
            "a single recoverable failover"
        )
    if sync.loss_window_records:
        failures.append(
            f"sync availability run lost {sync.loss_window_records} "
            "acked record(s)"
        )
    if sync.unavailable_s > OUTAGE_CEILING_S:
        failures.append(
            f"sync outage {sync.unavailable_s:.4f}s exceeds the "
            f"{OUTAGE_CEILING_S:.2f}s ceiling"
        )
    if sync.recovery_ratio < RECOVERY_FLOOR:
        failures.append(
            f"throughput recovered to only {sync.recovery_ratio:.0%} of "
            f"pre-kill within {sync.window_s:.2f}s "
            f"(floor {RECOVERY_FLOOR:.0%})"
        )
    for a in avail:
        if not a.deterministic:
            failures.append(
                f"{a.ship_mode} availability run is not digest-identical "
                "across double runs"
            )
    for c in chaos_sync:
        if not c.ok:
            failures.append(
                f"sync chaos seed={c.seed} ({c.kind}/{c.point}): "
                + "; ".join(c.failures)
            )
        if c.loss_window:
            failures.append(
                f"sync chaos seed={c.seed} reported a nonzero acked-loss "
                f"window ({c.loss_window} records)"
            )
    for c in chaos_async:
        if not c.ok:
            failures.append(
                f"async chaos seed={c.seed} ({c.kind}/{c.point}): "
                + "; ".join(c.failures)
            )
    for kind, count in summary["chaos_kinds"].items():
        if count == 0:
            failures.append(f"kill kind never exercised: {kind}")
    for point, count in summary["chaos_points"].items():
        if count == 0:
            failures.append(f"replication crash point never exercised: {point}")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny database and fewer chaos cases (CI); same gates "
        "except the 200-case floor",
    )
    parser.add_argument(
        "--json", default=str(REPO_ROOT / "BENCH_replication.json"),
        help="output path for the machine-readable results",
    )
    parser.add_argument(
        "--out", default=str(RESULTS_DIR / "replication_availability.txt"),
        help="output path for the rendered table",
    )
    parser.add_argument(
        "--csv", default=str(RESULTS_DIR / "replication_availability.csv"),
        help="output path for the per-shard CSV export",
    )
    args = parser.parse_args(argv)

    scale = SMOKE_SCALE if args.smoke else SCALE
    n_sync = SMOKE_CHAOS_SYNC if args.smoke else CHAOS_CASES_SYNC
    n_async = SMOKE_CHAOS_ASYNC if args.smoke else CHAOS_CASES_ASYNC
    config = DerbyConfig.db_1to3(scale=scale)
    print(
        f"generating 1:3 logical database at scale {scale} ...",
        file=sys.stderr,
    )
    logical = generate(config)

    equiv = run_equivalence(config, logical)
    avail, csv_rows = run_availability(config, logical)
    print(f"running {n_sync} sync chaos cases ...", file=sys.stderr)
    chaos_sync = run_failover_chaos(n_sync, base_seed=0, ship_mode="sync")
    print(f"running {n_async} async chaos cases ...", file=sys.stderr)
    chaos_async = run_failover_chaos(
        n_async, base_seed=10_000, ship_mode="async"
    )

    summary = summarize(equiv, avail, chaos_sync, chaos_async)
    table = build_table(equiv, avail, summary)
    print(table)
    print(summarize_failover(chaos_sync + chaos_async))

    out = pathlib.Path(args.out)
    out.parent.mkdir(exist_ok=True)
    out.write_text(
        str(table) + "\n" + str(summarize_failover(chaos_sync + chaos_async))
    )
    pathlib.Path(args.csv).write_text(replication_to_csv(csv_rows))
    payload = {
        "benchmark": "replication_availability",
        "scale": scale,
        "smoke": args.smoke,
        "n_shards": N_SHARDS,
        "scheme": SCHEME,
        "kill_fraction": KILL_FRACTION,
        "recovery_floor": RECOVERY_FLOOR,
        "outage_ceiling_s": OUTAGE_CEILING_S,
        "summary": summary,
        "equivalence": [asdict(r) for r in equiv],
        "availability": [asdict(a) for a in avail],
        "chaos_sync": [asdict(c) for c in chaos_sync],
        "chaos_async": [asdict(c) for c in chaos_async],
    }
    pathlib.Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}, {args.csv}, {args.json}", file=sys.stderr)

    failures = check(equiv, avail, chaos_sync, chaos_async, summary)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        sync = next(r for r in avail if r.ship_mode == "sync")
        print(
            f"PASS: {summary['cells']} queries equivalent, sync outage "
            f"{sync.unavailable_s:.3f}s with {sync.recovery_ratio:.0%} "
            f"throughput recovery and zero acked loss across "
            f"{summary['chaos_sync_cases']} sync chaos cases",
            file=sys.stderr,
        )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
