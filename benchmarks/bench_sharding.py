"""Horizontal sharding: the scaling and correctness benchmark.

The distributed layer (``repro.dist``) must pay for its complexity the
way every other subsystem here does — against measured, gated truth.
One logical Derby 1:3 database is generated **once**, then split 1 / 2 /
4 / 8 / 16 / 32 ways (multiplicative-hash partitioning on the provider
``upin``, patients co-located with their provider).  For every shard
count this benchmark:

1. runs the query suite — selection sweeps (1%, 10%, 50%), pushed
   aggregates (count, avg), an order-by/limit top-k and the paper's
   Section 5 tree join — cold through the distributed
   :class:`~repro.dist.Coordinator`;
2. compares every answer against a **single-node** engine over the same
   logical database (multiset equality; ordered queries exactly);
3. runs a deterministic mixed workload (scanners + cross-shard 2PC
   updaters) and records commit/abort/deadlock/retry outcomes;
4. runs seeded two-phase-commit chaos cases (crash points before /
   during / after prepare and commit) through the committed-visible /
   uncommitted-gone oracle, each case executed twice for digest
   determinism.

Hard gates — the script exits nonzero if any fails:

* 100% semantic equivalence for every (query, shard count) cell;
* the 8-shard 10% scan runs at least **4x** faster than 1-shard
  (elapsed simulated time on the coordinator's timeline);
* every seeded 2PC chaos case passes its oracle, every crash point in
  ``TWOPC_CRASH_POINTS`` is exercised at least once;
* the mixed workload commits every operation it did not deliberately
  abort (no leaked sessions, no unexplained give-ups at 1 shard).

Outputs: ``BENCH_sharding.json`` (repo root),
``results/sharding_scaling.txt`` and ``results/sharding_scaling.csv``
(per-shard rows: pages, messages, shipped rows, busy/wait seconds).
Run standalone with ``python benchmarks/bench_sharding.py [--smoke]``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from dataclasses import asdict, dataclass

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.bench.report import Table
from repro.bench.workloads import selection_query_text, tree_query_text
from repro.cluster import load_derby
from repro.derby import DerbyConfig
from repro.derby.generator import generate
from repro.dist import (
    TWOPC_CRASH_POINTS,
    Coordinator,
    ShardedMixConfig,
    ShardedWorkload,
    load_sharded,
    point_coverage,
    run_2pc_chaos,
    summarize_2pc,
)
from repro.dist.exchange import ROW_WIRE_BYTES
from repro.oql import Catalog, OQLEngine
from repro.stats import sharding_to_csv

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO_ROOT / "results"

SCALE = 0.01          # 10_000 providers / 30_000 patients
SMOKE_SCALE = 0.001   # 1_000 providers / 3_000 patients (CI)
SHARD_COUNTS = (1, 2, 4, 8, 16, 32)
SMOKE_SHARD_COUNTS = (1, 2, 8)
SCHEME = "hash"
CHAOS_CASES = 20
#: The gate pair: the 10% scan must scale at least SPEEDUP_FLOOR x
#: from 1 shard to GATE_SHARDS shards.
GATE_QUERY = "scan 10%"
GATE_SHARDS = 8
SPEEDUP_FLOOR = 4.0


def query_suite(config: DerbyConfig) -> list[tuple[str, str]]:
    """(label, OQL text) cells, every family the coordinator plans."""
    thr10 = config.num_threshold(10.0)
    return [
        ("scan 1%", selection_query_text(config, 1.0)),
        ("scan 10%", selection_query_text(config, 10.0)),
        ("scan 50%", selection_query_text(config, 50.0)),
        ("count 10%",
         f"select count(*) from p in Patients where p.num > {thr10}"),
        ("avg age",
         f"select avg(p.age) from p in Patients where p.num > {thr10}"),
        ("top-10",
         f"select p.age from p in Patients where p.num > {thr10} "
         "order by p.age desc limit 10"),
        ("tree join", tree_query_text(config, 30, 50)),
    ]


@dataclass
class QueryRun:
    """One (query, shard count) cell."""

    label: str
    n_shards: int
    strategy: str
    rows: int
    elapsed_s: float
    total_busy_s: float
    msgs: int
    speedup: float        # vs the same query at 1 shard
    equivalent: bool


@dataclass
class ShardRow:
    """One shard's meters for one cell (``sharding_to_csv`` contract)."""

    label: str
    n_shards: int
    scheme: str
    shard: int
    providers: int
    patients: int
    busy_s: float
    remote_wait_s: float
    msgs: int
    msg_bytes: int
    pages_read: int
    pages_written: int
    rows_shipped: int
    lock_wait_s: float


@dataclass
class MixRun:
    """The mixed workload's outcome at one shard count."""

    n_shards: int
    committed: int
    aborted: int
    deadlocks: int
    timeouts: int
    retries: int
    gave_up: int
    elapsed_s: float
    throughput_ops_s: float
    msgs: int
    lock_wait_s: float


def _match(base: list, rows: list, ordered: bool) -> bool:
    if ordered:
        return rows == base
    return sorted(map(repr, rows)) == sorted(map(repr, base))


def _measure_cluster(
    cluster,
    queries: list[tuple[str, str]],
    baseline: dict[str, list],
    one_shard_s: dict[str, float],
    csv_rows: list[ShardRow],
) -> list[QueryRun]:
    coordinator = Coordinator(cluster)
    sizes = cluster.part.shard_sizes()
    runs = []
    for label, text in queries:
        cluster.start_cold()
        rows = coordinator.execute(text)
        elapsed = cluster.elapsed_s
        for node in cluster.nodes:
            counters = node.db.disk.counters
            csv_rows.append(ShardRow(
                label=label,
                n_shards=cluster.n_shards,
                scheme=cluster.part.scheme,
                shard=node.shard_id,
                providers=sizes[node.shard_id][0],
                patients=sizes[node.shard_id][1],
                busy_s=node.busy_s,
                remote_wait_s=node.remote_wait_s,
                msgs=node.msgs,
                msg_bytes=node.msg_bytes,
                pages_read=counters.disk_reads,
                pages_written=counters.disk_writes,
                rows_shipped=node.msg_bytes // ROW_WIRE_BYTES,
                lock_wait_s=0.0,
            ))
        if cluster.n_shards == 1:
            one_shard_s[label] = elapsed
        runs.append(QueryRun(
            label=label,
            n_shards=cluster.n_shards,
            strategy=coordinator.last_plan.strategy,
            rows=len(rows),
            elapsed_s=elapsed,
            total_busy_s=cluster.total_busy_s,
            msgs=cluster.msgs,
            speedup=(
                one_shard_s[label] / elapsed
                if elapsed > 0 and label in one_shard_s
                else 1.0
            ),
            equivalent=_match(baseline[label], rows, "order by" in text),
        ))
    return runs


def _run_mix(cluster) -> MixRun:
    config = ShardedMixConfig(
        scanners=2, updaters=4, ops_per_client=4, seed=7,
        hot_set=12, scan_selectivity_pct=5.0,
    )
    report = ShardedWorkload(cluster, config).run()
    return MixRun(
        n_shards=cluster.n_shards,
        committed=report.committed,
        aborted=report.aborted,
        deadlocks=report.deadlocks,
        timeouts=report.timeouts,
        retries=report.retries,
        gave_up=report.gave_up,
        elapsed_s=report.elapsed_s,
        throughput_ops_s=report.throughput_ops_s,
        msgs=report.msgs,
        lock_wait_s=sum(s.lock_wait_s for s in report.sessions),
    )


def run_benchmark(
    scale: float, shard_counts: tuple[int, ...]
) -> tuple[list[QueryRun], list[MixRun], list[ShardRow], list]:
    config = DerbyConfig.db_1to3(scale=scale)
    print(
        f"generating 1:3 logical database at scale {scale} ...",
        file=sys.stderr,
    )
    logical = generate(config)
    queries = query_suite(config)

    print("loading single-node baseline ...", file=sys.stderr)
    derby = load_derby(config, logical=logical)
    engine = OQLEngine(Catalog.from_derby(derby))
    baseline = {}
    for label, text in queries:
        derby.start_cold_run()
        baseline[label] = engine.execute(text)

    query_runs: list[QueryRun] = []
    mix_runs: list[MixRun] = []
    csv_rows: list[ShardRow] = []
    one_shard_s: dict[str, float] = {}
    for n in shard_counts:
        print(f"loading {n}-shard cluster ...", file=sys.stderr)
        cluster = load_sharded(config, n, scheme=SCHEME, logical=logical)
        query_runs.extend(_measure_cluster(
            cluster, queries, baseline, one_shard_s, csv_rows
        ))
        # The mix mutates patient ages, so it runs after every
        # equivalence measurement on this cluster — and each shard
        # count gets a freshly loaded cluster.
        mix_runs.append(_run_mix(cluster))

    print(f"running {CHAOS_CASES} seeded 2PC chaos cases ...", file=sys.stderr)
    chaos = run_2pc_chaos(cases=CHAOS_CASES, base_seed=0)
    return query_runs, mix_runs, csv_rows, chaos


# -- scoring and reporting --------------------------------------------------

def summarize(
    query_runs: list[QueryRun], mix_runs: list[MixRun], chaos: list
) -> dict:
    mismatches = [r for r in query_runs if not r.equivalent]
    gate = {
        r.n_shards: r.elapsed_s
        for r in query_runs
        if r.label == GATE_QUERY
    }
    gate_speedup = (
        gate[1] / gate[GATE_SHARDS]
        if 1 in gate and GATE_SHARDS in gate and gate[GATE_SHARDS] > 0
        else None
    )
    return {
        "cells": len(query_runs),
        "equivalent": len(query_runs) - len(mismatches),
        "mismatches": len(mismatches),
        "gate_query": GATE_QUERY,
        "gate_shards": GATE_SHARDS,
        "gate_speedup": gate_speedup,
        "max_speedup": max((r.speedup for r in query_runs), default=1.0),
        "mix_committed": sum(m.committed for m in mix_runs),
        "mix_aborted": sum(m.aborted for m in mix_runs),
        "mix_gave_up": sum(m.gave_up for m in mix_runs),
        "chaos_cases": len(chaos),
        "chaos_ok": sum(1 for c in chaos if c.ok),
        "chaos_points": point_coverage(chaos),
    }


def build_table(
    query_runs: list[QueryRun],
    mix_runs: list[MixRun],
    summary: dict,
    shard_counts: tuple[int, ...],
) -> Table:
    table = Table(
        "Sharded scaling: distributed queries vs single node "
        "(cold, hash-partitioned, validated)",
        ["Query", "Shards", "Strategy", "Rows", "Elapsed (s)",
         "Busy (s)", "Msgs", "Speedup", "Valid"],
    )
    for r in query_runs:
        table.add(
            r.label, r.n_shards, r.strategy, r.rows,
            r.elapsed_s, r.total_busy_s, r.msgs, r.speedup,
            "ok" if r.equivalent else "MISMATCH",
        )
    table.note(
        f"{summary['equivalent']}/{summary['cells']} cells match the "
        "single-node answer (multiset equality; ordered queries exact)"
    )
    if summary["gate_speedup"] is not None:
        table.note(
            f"{GATE_QUERY} at {GATE_SHARDS} shards: "
            f"{summary['gate_speedup']:.2f}x over 1 shard "
            f"(floor {SPEEDUP_FLOOR:.1f}x)"
        )
    for m in mix_runs:
        table.note(
            f"mix @ {m.n_shards} shard(s): {m.committed} committed, "
            f"{m.aborted} aborted ({m.deadlocks} deadlocks, "
            f"{m.retries} retries, {m.gave_up} gave up) in "
            f"{m.elapsed_s:.2f} s -> {m.throughput_ops_s:.2f} txn/s"
        )
    table.note(
        f"2PC chaos: {summary['chaos_ok']}/{summary['chaos_cases']} "
        "cases pass the committed-visible/uncommitted-gone oracle; "
        "crash points " + ", ".join(
            f"{point}={count}"
            for point, count in sorted(summary["chaos_points"].items())
        )
    )
    return table


def check(
    query_runs: list[QueryRun],
    mix_runs: list[MixRun],
    chaos: list,
    summary: dict,
) -> list[str]:
    failures = []
    for r in query_runs:
        if not r.equivalent:
            failures.append(
                f"semantic mismatch: {r.label} at {r.n_shards} shards"
            )
    if summary["gate_speedup"] is None:
        failures.append(
            f"gate pair missing: {GATE_QUERY} needs both 1 and "
            f"{GATE_SHARDS} shard measurements"
        )
    elif summary["gate_speedup"] < SPEEDUP_FLOOR:
        failures.append(
            f"{GATE_QUERY} speedup at {GATE_SHARDS} shards is "
            f"{summary['gate_speedup']:.2f}x < {SPEEDUP_FLOOR:.1f}x"
        )
    for c in chaos:
        if not c.ok:
            failures.append(
                f"2PC chaos case seed={c.seed} "
                f"({c.point} x{c.occurrence}): " + "; ".join(c.failures)
            )
    for point in TWOPC_CRASH_POINTS:
        if summary["chaos_points"].get(point, 0) == 0:
            failures.append(f"2PC crash point never exercised: {point}")
    for m in mix_runs:
        if m.n_shards == 1 and m.gave_up:
            failures.append(
                f"mix at 1 shard gave up on {m.gave_up} op(s)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny database and fewer shard counts (CI); same gates",
    )
    parser.add_argument(
        "--json", default=str(REPO_ROOT / "BENCH_sharding.json"),
        help="output path for the machine-readable results",
    )
    parser.add_argument(
        "--out", default=str(RESULTS_DIR / "sharding_scaling.txt"),
        help="output path for the rendered table",
    )
    parser.add_argument(
        "--csv", default=str(RESULTS_DIR / "sharding_scaling.csv"),
        help="output path for the per-shard CSV export",
    )
    args = parser.parse_args(argv)

    scale = SMOKE_SCALE if args.smoke else SCALE
    shard_counts = SMOKE_SHARD_COUNTS if args.smoke else SHARD_COUNTS
    if GATE_SHARDS not in shard_counts:
        shard_counts = tuple(sorted(set(shard_counts) | {GATE_SHARDS}))
    query_runs, mix_runs, csv_rows, chaos = run_benchmark(
        scale, shard_counts
    )
    summary = summarize(query_runs, mix_runs, chaos)
    table = build_table(query_runs, mix_runs, summary, shard_counts)
    print(table)
    print(summarize_2pc(chaos))

    out = pathlib.Path(args.out)
    out.parent.mkdir(exist_ok=True)
    out.write_text(str(table) + "\n" + str(summarize_2pc(chaos)))
    pathlib.Path(args.csv).write_text(sharding_to_csv(csv_rows))
    payload = {
        "benchmark": "sharding_scaling",
        "scale": scale,
        "smoke": args.smoke,
        "scheme": SCHEME,
        "shard_counts": list(shard_counts),
        "summary": summary,
        "queries": [asdict(r) for r in query_runs],
        "mixes": [asdict(m) for m in mix_runs],
        "chaos": [asdict(c) for c in chaos],
    }
    pathlib.Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}, {args.csv}, {args.json}", file=sys.stderr)

    failures = check(query_runs, mix_runs, chaos, summary)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(
            f"PASS: {summary['cells']} cells 100% equivalent, "
            f"{GATE_QUERY} {summary['gate_speedup']:.2f}x at "
            f"{GATE_SHARDS} shards, "
            f"{summary['chaos_ok']}/{summary['chaos_cases']} chaos ok",
            file=sys.stderr,
        )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
