"""Cold vs warm runs, and where each algorithm's time goes.

The paper measures everything cold ("the server was shutdown at the end
of each evaluation") and notes that object benchmarks — and O2's handle
design — optimize for the *warm* regime instead.  This ablation
quantifies both claims:

* warm runs drop all page I/O and most handle allocation;
* the per-bucket breakdown shows NL is I/O-bound while the hash joins
  split between I/O and result construction (class clustering).
"""

from __future__ import annotations

from repro.bench import ExperimentRunner
from repro.bench.figures import join_cost_breakdown, warm_vs_cold_figure


def test_warm_vs_cold(benchmark, derby_cache, save_table):
    runner = ExperimentRunner(derby_cache("1:1000", "class"))
    table = benchmark.pedantic(
        lambda: warm_vs_cold_figure(runner, 10, 10), rounds=1, iterations=1
    )
    save_table("ablation_warm_vs_cold", table)

    for row in table.rows:
        algo, cold, warm, ratio = row
        assert warm < cold, algo
        assert ratio > 1.0
    # Navigation benefits most from warm caches (the paper's point about
    # what object systems optimize for).
    ratios = {row[0]: row[3] for row in table.rows}
    assert ratios["NL"] > 1.5
    benchmark.extra_info["nl_cold_over_warm"] = ratios["NL"]


def test_join_cost_breakdown(benchmark, derby_cache, save_table):
    runner = ExperimentRunner(derby_cache("1:1000", "class"))
    table = benchmark.pedantic(
        lambda: join_cost_breakdown(runner, 90, 90), rounds=1, iterations=1
    )
    save_table("ablation_join_breakdown", table)

    headers = table.headers
    io_col, result_col = headers.index("io"), headers.index("result")
    rows = {row[0]: row for row in table.rows}
    # NL at 90/90 under class clustering is dominated by random child I/O.
    assert rows["NL"][io_col] > 0.5 * rows["NL"][-1]
    # The hash joins all pay the same result construction.
    assert rows["PHJ"][result_col] == rows["CHJ"][result_col]
