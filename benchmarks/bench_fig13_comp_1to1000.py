"""Figure 13 — composition clustering, 2x10^3 providers / 2x10^6 patients.

Expected shape (paper): navigation (NL) is by far the most advantageous;
the index-driven algorithms pay near-full-file reads because mrn order no
longer matches the physical layout.
"""

from __future__ import annotations

from repro.bench.figures import cell_times, rank_table


def test_figure13(benchmark, join_measurements, save_table):
    ms = benchmark.pedantic(
        lambda: join_measurements("1:1000", "composition"),
        rounds=1,
        iterations=1,
    )
    save_table(
        "figure13_comp_1to1000",
        rank_table(ms, "Figure 13 — Composition Cluster, 1:1000"),
    )

    t = cell_times(ms, 10, 10)
    assert min(t, key=t.get) == "NL"           # paper: NL, 10x margin
    assert t["NOJOIN"] > 3 * t["NL"]

    t = cell_times(ms, 90, 10)
    assert min(t, key=t.get) == "NL"           # paper: NL, 7.5-8.4x margin
    assert t["PHJ"] > 3 * t["NL"]

    t = cell_times(ms, 90, 90)
    assert min(t, key=t.get) == "NL"           # paper: NL, everyone ~1.1-1.2x
    assert max(t.values()) < 1.6 * t["NL"]

    # (10, 90) is a near-tie in the paper (NL 1.0, PHJ 1.12); we require
    # the whole cell within 1.6x of the winner.
    t = cell_times(ms, 10, 90)
    assert max(t.values()) < 1.6 * min(t.values())
    benchmark.extra_info["nl_1010_s"] = cell_times(ms, 10, 10)["NL"]
