"""Figure 15 — summarizing results: winning algorithms per organization.

Runs the full grid under the random organization too (Figures 11-14's
class/composition measurements are reused from the session cache), then
builds the paper's summary table.

Expected shape (paper): the random organization multiplies times by
~1.5-2x over class clustering but favours the same algorithm families;
the composition column is navigation all the way down.
"""

from __future__ import annotations

from repro.bench.figures import cell_times, figure15


def test_figure15(benchmark, join_measurements, save_table):
    def gather():
        return {
            rel: {
                org: join_measurements(rel, org)
                for org in ("random", "class", "composition")
            }
            for rel in ("1:1000", "1:3")
        }

    results = benchmark.pedantic(gather, rounds=1, iterations=1)
    table = figure15(results)
    save_table("figure15_summary", table)

    # Composition winners are navigation (paper: NL in 7 cells, NOJOIN
    # in one).  The 1:1000 (10, 90) cell is a near-tie in the paper
    # (NL 1.0 vs PHJ 1.12) and may flip; allow at most one deviation.
    comp_winners = [row[7] for row in table.rows]
    non_navigation = [w for w in comp_winners if w not in ("NL", "NOJOIN")]
    assert len(non_navigation) <= 1, comp_winners

    # Class winners are hash joins except at 90/90 1:3 where memory
    # pressure hands it to navigation (paper: NOJOIN).
    class_winners = [row[5] for row in table.rows]
    assert set(class_winners[:3]) <= {"PHJ", "CHJ"}

    # Random org: same winner families as class clustering, slower.
    for rel in ("1:1000", "1:3"):
        rnd = results[rel]["random"]
        cls = results[rel]["class"]
        slower = 0
        for sel in ((10, 10), (10, 90), (90, 10), (90, 90)):
            best_rnd = min(cell_times(rnd, *sel).values())
            best_cls = min(cell_times(cls, *sel).values())
            if best_rnd > best_cls:
                slower += 1
        assert slower >= 3, f"random org should be slower for {rel}"
