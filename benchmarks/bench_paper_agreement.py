"""Automated paper-agreement scoring for Figures 11-15.

Normalizes each cell of each figure (winner = 1.0) on both sides and
scores: winner agreement, Spearman rank correlation of the algorithm
ordering, and the mean log10 error of the time ratios.  This is
EXPERIMENTS.md's comparison, executed and asserted.
"""

from __future__ import annotations

from repro.bench.paper_data import PAPER_FIG15_WINNERS, score_against_paper
from repro.bench.figures import cell_times
from repro.bench.report import Table

_FIGS = {
    "fig11": ("1:1000", "class"),
    "fig12": ("1:3", "class"),
    "fig13": ("1:1000", "composition"),
    "fig14": ("1:3", "composition"),
}

#: Per-figure thresholds; fig13 is dominated by near-tie cells in the
#: paper itself (ratios 1.12-1.20), so its rank correlation is noisier.
_MIN_WINNERS = {"fig11": 3, "fig12": 3, "fig13": 2, "fig14": 3}
_MIN_SPEARMAN = {"fig11": 0.6, "fig12": 0.7, "fig13": 0.3, "fig14": 0.7}


def test_figures_11_to_14_shape_agreement(benchmark, join_measurements, save_table):
    def gather():
        return {
            fig: score_against_paper(fig, join_measurements(rel, org))
            for fig, (rel, org) in _FIGS.items()
        }

    results = benchmark.pedantic(gather, rounds=1, iterations=1)

    total_winners = 0
    for fig, (table, score) in results.items():
        save_table(f"paper_agreement_{fig}", table)
        assert score.winners_matched >= _MIN_WINNERS[fig], fig
        assert score.mean_spearman >= _MIN_SPEARMAN[fig], fig
        assert score.mean_log_ratio_error < 0.35, fig
        total_winners += score.winners_matched
        benchmark.extra_info[f"{fig}_spearman"] = round(score.mean_spearman, 3)
    assert total_winners >= 12  # out of 16 cells
    benchmark.extra_info["winners_total"] = total_winners


def test_figure15_winner_agreement(benchmark, join_measurements, save_table):
    def gather():
        agreements = []
        for rel, cells in PAPER_FIG15_WINNERS.items():
            for cell, by_org in cells.items():
                for org, paper_winner in by_org.items():
                    ms = join_measurements(rel, org)
                    ours = cell_times(ms, *cell)
                    our_winner = min(ours, key=ours.get)
                    # Treat within-5% finishes as ties (the paper's own
                    # PHJ/CHJ cells are photo-finishes).
                    tied_with_paper = (
                        paper_winner in ours
                        and ours[paper_winner] <= 1.05 * ours[our_winner]
                    )
                    agreements.append(
                        (rel, cell, org, paper_winner, our_winner,
                         our_winner == paper_winner or tied_with_paper)
                    )
        return agreements

    agreements = benchmark.pedantic(gather, rounds=1, iterations=1)

    table = Table(
        "Figure 15 winner agreement (ties within 5% count as agreement)",
        ["Rel", "Cell", "Organization", "Paper", "Ours", "Agree"],
    )
    for rel, cell, org, paper_w, our_w, ok in agreements:
        table.add(rel, f"{cell[0]}/{cell[1]}", org, paper_w, our_w,
                  "yes" if ok else "NO")
    save_table("paper_agreement_fig15", table)

    agreed = sum(1 for *__, ok in agreements if ok)
    assert agreed >= 19, f"only {agreed}/24 Figure 15 winners agree"
    benchmark.extra_info["fig15_agreement"] = f"{agreed}/24"
