"""Figure 12 — one file per class, 10^6 providers / 3x10^6 patients.

Expected shape (paper): NOJOIN becomes dreadful (one random parent
access per child over a huge parent file), the hash joins degrade when
their tables outgrow memory — at 90/90 NOJOIN wins and the ordering is
NOJOIN < NL < PHJ < CHJ.
"""

from __future__ import annotations

from repro.bench.figures import cell_times, rank_table


def test_figure12(benchmark, join_measurements, save_table):
    ms = benchmark.pedantic(
        lambda: join_measurements("1:3", "class"), rounds=1, iterations=1
    )
    save_table(
        "figure12_class_1to3",
        rank_table(ms, "Figure 12 — One file per Class, 1:3"),
    )

    t = cell_times(ms, 10, 10)
    assert t["NOJOIN"] > 5 * min(t.values())   # paper: 9.7x
    assert t["NL"] > 5 * min(t.values())       # paper: 12.5x

    t = cell_times(ms, 10, 90)
    assert min(t, key=t.get) == "CHJ"          # paper: CHJ wins
    assert t["PHJ"] > 2 * t["CHJ"]             # paper: 4.4x (PHJ swaps)

    t = cell_times(ms, 90, 10)
    assert min(t, key=t.get) == "PHJ"
    assert t["NL"] < t["NOJOIN"]               # paper: NL 1.77x, NOJOIN 11.7x

    t = cell_times(ms, 90, 90)
    order = sorted(t, key=t.get)
    assert order == ["NOJOIN", "NL", "PHJ", "CHJ"], order  # paper's exact order
    benchmark.extra_info["nojoin_9090_s"] = t["NOJOIN"]
