"""The paper's unreached goal, run to completion.

Section 2: the project was to benchmark OQL evaluation, elicit a cost
model from the results by regression, and drive plan choice with it.
This benchmark does all three on the simulator:

1. fit per-event costs from the Figures 11-14 measurements by least
   squares and report the recovered coefficients;
2. score the cost-based optimizer against the measured winners of every
   (organization, selectivity) cell.
"""

from __future__ import annotations

import pytest

from repro.analysis import fit_cost_model, score_optimizer
from repro.bench.report import Table


def test_cost_model_regression(benchmark, join_measurements, save_table):
    def gather():
        runs = []
        for rel in ("1:1000", "1:3"):
            for org in ("class", "composition"):
                runs.extend(join_measurements(rel, org))
        return runs, fit_cost_model(runs)

    runs, fit = benchmark.pedantic(gather, rounds=1, iterations=1)

    table = Table(
        f"Cost-model regression over {fit.n_runs} measured runs "
        f"(R^2 = {fit.r_squared:.4f})",
        ["Feature", "Fitted cost", "True (simulator)"],
    )
    table.add("disk page (ms)", fit.page_read_ms, "10.0 read + write-backs")
    table.add(
        "transfer page (ms)", fit.coefficients["transfer_pages"] * 1e3, "1.0"
    )
    table.add("rpc (ms)", fit.coefficients["rpcs"] * 1e3, "0.2")
    table.add("handle op (us)", fit.handle_us, "~62.5 (125 us get+unref pair)")
    table.add(
        "swap fault (ms)", fit.coefficients["swap_faults"] * 1e3, "40.0"
    )
    table.add("result element (us)", fit.result_us, "600")
    save_table("cost_model_regression", table)

    assert fit.r_squared > 0.95
    # Disk reads, transfers and RPCs are collinear in cold runs (every
    # client fault triggers one of each), so the solver may split their
    # combined cost arbitrarily — assert on the identified *sum*, which
    # should recover the true 10 + 1 + 0.2 ms per cold page.
    per_page_ms = (
        fit.page_read_ms
        + fit.coefficients["transfer_pages"] * 1e3
        + fit.coefficients["rpcs"] * 1e3
    )
    assert per_page_ms == pytest.approx(11.2, rel=0.25)
    assert 300 < fit.result_us < 900
    assert fit.coefficients["swap_faults"] * 1e3 == pytest.approx(40.0, rel=0.2)
    benchmark.extra_info["r_squared"] = fit.r_squared
    benchmark.extra_info["per_page_ms"] = per_page_ms


def test_optimizer_choice_quality(benchmark, derby_cache, join_measurements, save_table):
    def gather():
        scores = {}
        for rel in ("1:1000", "1:3"):
            for org in ("class", "composition"):
                derby = derby_cache(rel, org)
                scores[(rel, org)] = score_optimizer(
                    derby, join_measurements(rel, org)
                )
        return scores

    scores = benchmark.pedantic(gather, rounds=1, iterations=1)

    table = Table(
        "Optimizer validation: cost-based choice vs measured winner",
        ["Database", "Organization", "Cell", "Chosen", "Best", "Regret"],
    )
    for (rel, org), score in sorted(scores.items()):
        for v in score.verdicts:
            table.add(
                rel, org, f"{v.sel_patients}/{v.sel_providers}",
                v.chosen, v.best, v.regret,
            )
    # Printed only: the persisted artifact for plan-choice quality is
    # results/optimizer_leaderboard.txt (benchmarks/bench_optimizer.py),
    # which validates plans semantically and gates on zero regressions.
    print("\n" + str(table))

    all_verdicts = [v for s in scores.values() for v in s.verdicts]
    wins = sum(1 for v in all_verdicts if v.chosen == v.best)
    mean_regret = sum(v.regret for v in all_verdicts) / len(all_verdicts)
    # The optimizer must avoid catastrophes everywhere and pick the true
    # winner in a clear majority of the 16 cells.
    assert max(v.regret for v in all_verdicts) < 4.0
    assert wins >= len(all_verdicts) // 2
    assert mean_regret < 1.6
    benchmark.extra_info["wins"] = wins
    benchmark.extra_info["mean_regret"] = mean_regret
