"""Clustering decay and dump-and-reload — Section 2's maintenance note,
measured.

"In O2 this kind of clustering can be specified, but is not guaranteed.
It may be necessary to dump and reload the database once in a while to
maintain a reasonable cluster."
"""

from __future__ import annotations

from repro.bench import ExperimentRunner
from repro.bench.report import Table
from repro.cluster import dump_and_reload, load_derby, register_new_patients
from repro.derby import DerbyConfig
from repro.derby.config import Clustering


def test_churn_then_reorganize(benchmark, save_table):
    config = DerbyConfig.db_1to1000(
        scale=0.005, clustering=Clustering.COMPOSITION
    )

    def run():
        derby = load_derby(config)
        runner = ExperimentRunner(derby)
        pristine = runner.run_join("NL", 90, 90)
        churn = register_new_patients(
            derby, round(config.n_patients * 0.5)
        )
        fragmented = runner.run_join("NL", 90, 90)
        fresh, reorg = dump_and_reload(derby)
        restored = ExperimentRunner(fresh).run_join("NL", 90, 90)
        return pristine, churn, fragmented, reorg, restored

    pristine, churn, fragmented, reorg, restored = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    table = Table(
        "Composition clustering under churn, then dump-and-reload "
        f"(NL at 90/90, scale {config.scale:g})",
        ["Stage", "NL time (sec)", "Rows", "Notes"],
    )
    table.add("pristine", pristine.elapsed_s, pristine.rows, "")
    table.add(
        "after +50% churn",
        fragmented.elapsed_s,
        fragmented.rows,
        f"{churn.records_moved} providers relocated",
    )
    table.add(
        "after dump+reload",
        restored.elapsed_s,
        restored.rows,
        f"dump {reorg.dump_seconds:.1f}s + reload "
        f"{reorg.reload_seconds:.1f}s",
    )
    save_table("ablation_churn_reorganize", table)

    # Per-row navigation cost: decays under churn, restored by reload.
    per_row = lambda m: m.elapsed_s / max(1, m.rows)  # noqa: E731
    assert per_row(fragmented) > 1.1 * per_row(pristine)
    assert per_row(restored) < 0.9 * per_row(fragmented)
    benchmark.extra_info["decay"] = per_row(fragmented) / per_row(pristine)
    benchmark.extra_info["recovery"] = per_row(fragmented) / per_row(restored)
