"""Overload vs admission control: throughput and per-op latency.

On the shared simulated timeline, "concurrency" is interleaving: while
one session's operation runs, every other admitted session's page
faults, RPCs and lock waits advance the same clock.  Ungoverned, an
operation's in-service latency therefore grows with the number of
concurrent clients — at 12 clients each op wades through ~11 other
sessions' interleaved work, plus the extra lock conflicts and retries
that contention brings.

The :class:`~repro.service.AdmissionGate` (``MixConfig.max_active``)
bounds that: only ``max_active`` sessions run an operation at once, the
rest queue FIFO.  Queued time is visible (and measured) as
``queue_wait_s``, but the *in-service* latency — elapsed minus queued —
stays near the low-load value no matter how many clients are offered.

The sweep runs the same seeded mix per client count, ungoverned and
governed, and asserts exactly that: ungoverned in-service latency
degrades with offered load; governed stays bounded.

Results land in ``results/governor_overload.txt``.  Run standalone with
``python benchmarks/bench_governor.py [--smoke]`` or through pytest.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.bench.report import Table
from repro.cluster import load_derby
from repro.derby import DerbyConfig
from repro.service import MixConfig, WorkloadMixer

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

CLIENTS = (3, 6, 12)
SMOKE_CLIENTS = (3, 9)
SCALE = 0.0001
SMOKE_SCALE = 0.00005
MAX_ACTIVE = 3
OPS = 3
SEED = 11


def _run_cell(clients: int, max_active: int | None, scale: float):
    """One (offered load, gate) cell on a fresh database."""
    derby = load_derby(DerbyConfig.db_1to3(scale=scale))
    config = MixConfig.from_clients(
        clients,
        ops_per_client=OPS,
        seed=SEED,
        lock_timeout_s=0.5,
        max_active=max_active,
    )
    report = WorkloadMixer(derby, config).run()
    latencies = [
        lat for s in report.sessions for lat in s.metrics.latencies_s
    ]
    queue_s = sum(s.metrics.queue_wait_s for s in report.sessions)
    ops = len(latencies)
    mean_lat = sum(latencies) / ops if ops else 0.0
    # In-service latency: elapsed minus the FIFO queue share.  Queued
    # time spent by ops that later aborted is not in ``latencies``, so
    # clamp rather than go negative.
    run_lat = max(0.0, mean_lat - queue_s / ops) if ops else 0.0
    throughput = report.committed / report.elapsed_s if report.elapsed_s else 0.0
    return {
        "clients": clients,
        "gate": max_active,
        "committed": report.committed,
        "aborted": report.aborted,
        "retries": report.retries,
        "mean_lat_s": mean_lat,
        "run_lat_s": run_lat,
        "queue_s": queue_s,
        "peak_queue": report.max_queue_depth,
        "throughput": throughput,
    }


def run_overload_sweep(client_counts, scale: float) -> tuple[Table, list]:
    """The same seeded mix per client count, ungoverned and governed."""
    table = Table(
        f"Offered load vs admission control (max_active={MAX_ACTIVE}, "
        f"{OPS} ops/client, seed {SEED})",
        ["Clients", "Gate", "Committed", "Aborted", "Retries",
         "Mean lat (s)", "In-service lat (s)", "Queue (s)", "Peak queue",
         "Txn/s"],
    )
    cells = []
    for clients in client_counts:
        for max_active in (None, MAX_ACTIVE):
            cell = _run_cell(clients, max_active, scale)
            cells.append(cell)
            table.add(
                clients,
                "off" if max_active is None else f"{max_active}",
                cell["committed"], cell["aborted"], cell["retries"],
                cell["mean_lat_s"], cell["run_lat_s"], cell["queue_s"],
                cell["peak_queue"], cell["throughput"],
            )
    table.note(
        "ungoverned in-service latency grows with offered load (every "
        "admitted session's work interleaves into every op); the gate "
        "bounds it near the low-load value, shifting the excess into "
        "the measured FIFO queue wait"
    )
    return table, cells


def _check_cells(cells: list, client_counts) -> None:
    by = {(c["clients"], c["gate"]): c for c in cells}
    low, high = client_counts[0], client_counts[-1]
    ungoverned_low = by[(low, None)]["run_lat_s"]
    ungoverned_high = by[(high, None)]["run_lat_s"]
    governed_high = by[(high, MAX_ACTIVE)]["run_lat_s"]
    # Ungoverned degrades with offered load ...
    assert ungoverned_high > 1.5 * ungoverned_low, (
        f"expected ungoverned degradation: {ungoverned_low:.6f}s @ {low} "
        f"clients vs {ungoverned_high:.6f}s @ {high}"
    )
    # ... while the gate bounds in-service latency at the same load.
    assert governed_high < ungoverned_high, (
        f"gate did not bound latency: governed {governed_high:.6f}s vs "
        f"ungoverned {ungoverned_high:.6f}s @ {high} clients"
    )
    # The gate actually queued somebody at the top load.
    assert by[(high, MAX_ACTIVE)]["peak_queue"] > 0
    # Work still completes under the gate.
    assert (
        by[(high, MAX_ACTIVE)]["committed"] >= by[(high, None)]["committed"]
    )


# -- pytest harness ---------------------------------------------------------

def test_governor_overload_sweep(benchmark, save_table):
    table, cells = benchmark.pedantic(
        lambda: run_overload_sweep(CLIENTS, SCALE), rounds=1, iterations=1
    )
    save_table("governor_overload", str(table))
    _check_cells(cells, CLIENTS)


# -- standalone entry point -------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny database + reduced client grid (CI)",
    )
    parser.add_argument(
        "--out", default=str(RESULTS_DIR / "governor_overload.txt"),
        help="output path for the rendered table",
    )
    args = parser.parse_args(argv)

    scale = SMOKE_SCALE if args.smoke else SCALE
    client_counts = SMOKE_CLIENTS if args.smoke else CLIENTS
    print(f"loading 1:3 databases at scale {scale} ...", file=sys.stderr)
    table, cells = run_overload_sweep(client_counts, scale)
    _check_cells(cells, client_counts)
    text = str(table)
    print(text)
    out = pathlib.Path(args.out)
    out.parent.mkdir(exist_ok=True)
    out.write_text(text + "\n")
    print(f"wrote {out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
