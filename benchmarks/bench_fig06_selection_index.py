"""Figure 6 — selection over Patients.num: unclustered index vs no index.

Regenerates the Section 4.2 table: page reads and elapsed simulated time
for selectivities 0.1% .. 90%.  Expected shape (paper): the no-index
page count is selectivity-independent; the unclustered index reads more
pages than the full scan beyond a threshold between 1% and 5%.
"""

from __future__ import annotations

from repro.bench import ExperimentRunner
from repro.bench.figures import figure6


def test_figure6(benchmark, derby_cache, save_table):
    derby = derby_cache("1:1000", "class")
    runner = ExperimentRunner(derby)

    table = benchmark.pedantic(
        lambda: figure6(runner), rounds=1, iterations=1
    )
    save_table("figure06_selection_index", table)

    rows = table.rows
    # No-index page count is flat across selectivities.
    assert len({row[3] for row in rows}) == 1
    # The unclustered index beats the scan at 0.1% selectivity...
    assert rows[0][2] < rows[0][4]
    # ...and reads more pages than the scan at high selectivity.
    assert rows[-1][1] > rows[-1][3]
    benchmark.extra_info["index_time_90pct_s"] = rows[-1][2]
    benchmark.extra_info["scan_time_90pct_s"] = rows[-1][4]
