"""Recovery cost: what a crash costs and what checkpoints buy.

The paper's Section 3.2 prices logging during *normal* operation (the
transaction-off loading trade-off); the recovery subsystem makes the
other half of that trade measurable.  Three sweeps, all on a small
dedicated Thing database whose base records are durably on disk:

* **checkpoint interval**: a fixed update workload, crashed at quiesce,
  restarted under checkpoint-every-{never, 16, 4, 1} policies — restart
  time must fall monotonically as checkpoints get more frequent, while
  the normal-operation cost rises (the flushes are not free);
* **update rate**: more logged work between checkpoints means more log
  to scan and more pages to redo;
* **loading**: the Section 3.2 trade-off demonstrated end to end —
  transaction-off loading is measurably faster, and after a mid-load
  crash it fails the durability check that logged loading passes.

Results land in ``results/recovery_checkpoint_sweep.txt``,
``results/recovery_update_rate.txt``, ``results/recovery_loading.txt``
and ``results/recovery_runs.csv``.
"""

from __future__ import annotations

from random import Random

import pytest

from repro.bench.report import Table
from repro.objects import AttrKind, AttributeDef, Database, Schema
from repro.recovery import crash_database, restart, take_checkpoint
from repro.stats import StatsDatabase, recovery_to_csv
from repro.storage.rid import Rid
from repro.txn import TransactionManager

from conftest import RESULTS_DIR

_PAD = "x" * 96
SEED = 7

CHECKPOINT_POLICIES = (0, 16, 4, 1)  # transactions per checkpoint; 0 = never
SWEEP_TXNS = 64
SWEEP_UPDATES_PER_TXN = 2

UPDATE_RATES = (1, 4, 16)
RATE_TXNS = 32
RATE_CHECKPOINT_EVERY = 8

LOAD_BATCHES = 4
LOAD_BATCH_SIZE = 400


def _make_db(base_records: int = 128) -> tuple[Database, list[Rid]]:
    schema = Schema()
    schema.define(
        "Thing",
        [
            AttributeDef("x", AttrKind.INT32),
            AttributeDef("pad", AttrKind.STRING, width=len(_PAD)),
        ],
    )
    db = Database(schema)
    db.create_file("things")
    rids = [
        db.create_object("Thing", {"x": i, "pad": _PAD}, "things")
        for i in range(base_records)
    ]
    db.shutdown()  # the preload is durable before the measured workload
    return db, rids


def _update_run(
    txns: int, updates_per_txn: int, checkpoint_every: int
) -> dict:
    """Run a seeded update workload, crash at quiesce, restart.

    Returns the run cost, the recovery report and whether every
    durably-committed value survived (the durability check).
    """
    db, rids = _make_db()
    txm = TransactionManager(db, recovery=True)
    rng = Random(SEED)
    expected = {rid: i for i, rid in enumerate(rids)}
    start_s = db.clock.elapsed_s
    for i in range(txns):
        if checkpoint_every and i and i % checkpoint_every == 0:
            take_checkpoint(db, txm)
        with txm.begin() as txn:
            for __ in range(updates_per_txn):
                rid = rids[rng.randrange(len(rids))]
                value = rng.randrange(1_000_000)
                txn.update_scalar(rid, "x", value)
                expected[rid] = value
    run_s = db.clock.elapsed_s - start_s
    crash_database(db, txm)
    report = restart(db, txm)
    durable_ok = all(
        db.manager.get_attr_at(rid, "x") == value
        for rid, value in expected.items()
    )
    return {
        "db": db,
        "run_s": run_s,
        "report": report,
        "durable_ok": durable_ok,
    }


class _CsvRow:
    def __init__(self, **kw):
        self.__dict__.update(kw)


def _csv_row(label, crash_point, checkpoint_every, txns, updates, run) -> _CsvRow:
    report = run["report"]
    return _CsvRow(
        label=label,
        crash_point=crash_point,
        checkpoint_every=checkpoint_every,
        txns=txns,
        updates=updates,
        committed=txns,
        lost=report.txns_undone,
        recovery_s=report.seconds,
        log_records_scanned=report.log_records_scanned,
        log_pages_read=report.log_pages_read,
        pages_redone=report.pages_redone,
        records_redone=report.records_redone,
        txns_undone=report.txns_undone,
        records_undone=report.records_undone,
        durability_ok=int(run["durable_ok"]),
    )


def test_recovery_vs_checkpoint_interval(benchmark, save_table):
    runs = benchmark.pedantic(
        lambda: {
            c: _update_run(SWEEP_TXNS, SWEEP_UPDATES_PER_TXN, c)
            for c in CHECKPOINT_POLICIES
        },
        rounds=1,
        iterations=1,
    )

    table = Table(
        f"Restart time vs checkpoint interval ({SWEEP_TXNS} txns x "
        f"{SWEEP_UPDATES_PER_TXN} updates, crash at quiesce)",
        ["Ckpt every", "Run (s)", "Recovery (s)", "Log recs scanned",
         "Log pages", "Pages redone", "Records redone", "Durable OK"],
    )
    stats = StatsDatabase()
    csv_rows = []
    for c in CHECKPOINT_POLICIES:
        run = runs[c]
        r = run["report"]
        label = "never" if c == 0 else str(c)
        table.add(label, run["run_s"], r.seconds, r.log_records_scanned,
                  r.log_pages_read, r.pages_redone, r.records_redone,
                  "yes" if run["durable_ok"] else "NO")
        stats.record_experiment(
            algo="recovery",
            cluster="class",
            elapsed_s=r.seconds,
            meters=run["db"].counters.snapshot(),
            text=f"restart after quiesce crash, checkpoint every {label}",
        )
        csv_rows.append(_csv_row(
            f"ckpt-{label}", "quiesce", c, SWEEP_TXNS,
            SWEEP_TXNS * SWEEP_UPDATES_PER_TXN, run,
        ))
    table.note("more frequent checkpoints: restart gets cheaper, normal "
               "operation pays for the extra page flushes "
               "(see recovery_loading.txt for the transaction-off half "
               "of the trade)")
    save_table("recovery_checkpoint_sweep", table)
    (RESULTS_DIR / "recovery_runs.csv").write_text(recovery_to_csv(csv_rows))

    seconds = [runs[c]["report"].seconds for c in CHECKPOINT_POLICIES]
    # CHECKPOINT_POLICIES orders checkpoints least->most frequent, so
    # recovery time must fall strictly monotonically along it.
    assert all(a > b for a, b in zip(seconds, seconds[1:])), seconds
    # ... while normal operation gets dearer at the frequent end.
    assert runs[1]["run_s"] > runs[0]["run_s"]
    # Recovery is correct at every policy, not just fast.
    assert all(runs[c]["durable_ok"] for c in CHECKPOINT_POLICIES)
    assert len(stats) == len(CHECKPOINT_POLICIES)
    benchmark.extra_info["recovery_s"] = {
        ("never" if c == 0 else c): round(runs[c]["report"].seconds, 4)
        for c in CHECKPOINT_POLICIES
    }


def test_recovery_vs_update_rate(benchmark, save_table):
    runs = benchmark.pedantic(
        lambda: {
            u: _update_run(RATE_TXNS, u, RATE_CHECKPOINT_EVERY)
            for u in UPDATE_RATES
        },
        rounds=1,
        iterations=1,
    )

    table = Table(
        f"Restart time vs update rate ({RATE_TXNS} txns, checkpoint "
        f"every {RATE_CHECKPOINT_EVERY}, crash at quiesce)",
        ["Updates/txn", "Run (s)", "Recovery (s)", "Log recs scanned",
         "Log pages", "Records redone", "Durable OK"],
    )
    for u in UPDATE_RATES:
        run = runs[u]
        r = run["report"]
        table.add(u, run["run_s"], r.seconds, r.log_records_scanned,
                  r.log_pages_read, r.records_redone,
                  "yes" if run["durable_ok"] else "NO")
    table.note("a higher update rate leaves more log between the last "
               "checkpoint and the crash: analysis scans more, redo "
               "repeats more")
    save_table("recovery_update_rate", table)

    seconds = [runs[u]["report"].seconds for u in UPDATE_RATES]
    assert all(a < b for a, b in zip(seconds, seconds[1:])), seconds
    assert all(runs[u]["durable_ok"] for u in UPDATE_RATES)
    benchmark.extra_info["recovery_s"] = {
        u: round(runs[u]["report"].seconds, 4) for u in UPDATE_RATES
    }


def _loading_run(logged: bool) -> dict:
    """Load records in committed batches, crash mid-batch, restart."""
    schema = Schema()
    schema.define(
        "Thing",
        [
            AttributeDef("x", AttrKind.INT32),
            AttributeDef("pad", AttrKind.STRING, width=len(_PAD)),
        ],
    )
    db = Database(schema)
    db.create_file("things")
    txm = TransactionManager(db, recovery=True)
    start_s = db.clock.elapsed_s
    committed = 0
    for b in range(LOAD_BATCHES):
        with txm.begin(logged=logged) as txn:
            for i in range(LOAD_BATCH_SIZE):
                txn.create_object(
                    "Thing", {"x": committed + i, "pad": _PAD}, "things"
                )
        committed += LOAD_BATCH_SIZE
    # The crash lands mid-way through the next batch.
    txn = txm.begin(logged=logged)
    for i in range(LOAD_BATCH_SIZE // 2):
        txn.create_object("Thing", {"x": committed + i, "pad": _PAD}, "things")
    load_s = db.clock.elapsed_s - start_s
    crash_database(db, txm)
    report = restart(db, txm)
    survivors = db.file("things").record_count
    return {
        "load_s": load_s,
        "committed": committed,
        "survivors": survivors,
        "report": report,
        "durable_ok": survivors == committed,
    }


def test_transaction_off_loading_is_fast_but_unrecoverable(
    benchmark, save_table
):
    runs = benchmark.pedantic(
        lambda: {logged: _loading_run(logged) for logged in (True, False)},
        rounds=1,
        iterations=1,
    )

    table = Table(
        f"Mid-load crash: logged vs transaction-off loading "
        f"({LOAD_BATCHES} batches x {LOAD_BATCH_SIZE} objects committed, "
        f"crash mid-batch {LOAD_BATCHES + 1})",
        ["Mode", "Load (s)", "Committed", "Recovered", "Recovery (s)",
         "Durability check"],
    )
    for logged in (True, False):
        run = runs[logged]
        table.add(
            "logged" if logged else "transaction-off",
            run["load_s"], run["committed"], run["survivors"],
            run["report"].seconds,
            "pass" if run["durable_ok"] else "FAIL",
        )
    table.note('the paper used transaction-off "only for loading, not '
               'for running our tests" — this is why: it is faster '
               "precisely because nothing reaches the log, so a crash "
               "forfeits every batch, acked or not "
               "(docs/benchmarking-tips.md)")
    save_table("recovery_loading", table)

    logged_run, off_run = runs[True], runs[False]
    # Transaction-off loading is measurably faster...
    assert off_run["load_s"] < logged_run["load_s"] * 0.9
    # ...but the logged load recovers exactly its committed batches,
    # while transaction-off loses them (the in-flight tail dies in both).
    assert logged_run["durable_ok"]
    assert logged_run["survivors"] == LOAD_BATCHES * LOAD_BATCH_SIZE
    assert not off_run["durable_ok"]
    assert off_run["survivors"] < off_run["committed"]
    benchmark.extra_info["load_s"] = {
        "logged": round(logged_run["load_s"], 3),
        "transaction_off": round(off_run["load_s"], 3),
    }
