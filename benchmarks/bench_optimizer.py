"""Cost-based vs. heuristic planner: the zero-regression leaderboard.

The cost-based optimizer (``repro.opt``) must earn its keep the way the
paper demanded — against measured truth.  For every cell of the paper's
query matrix (the Figure 10-15 tree-join grid over both databases and
both clusterings, plus the Figure 7 selection sweep) this benchmark:

1. runs ``analyze`` through a cost-planner engine (the statistics are
   charged simulated time like any other statement);
2. plans the cell three ways — **unoptimized** (forced sequential scan
   / forced NL join), **heuristic** (the default planner) and **cost**
   (statistics-driven enumeration over every access path and all six
   join strategies);
3. executes each plan cold and validates the cost plan **semantically**
   against the others: same row count, same order-insensitive checksum;
4. scores estimation quality (estimated vs. actual rows and seconds,
   as smoothed q-errors) and performance (per-cell speedup over the
   heuristic plan, geometric mean across the matrix).

Hard gates — the script exits nonzero if any fails:

* every cell validates (100% semantic agreement);
* **zero plan regressions**: no cell where the cost plan is slower than
  the heuristic plan (identical choices tie at exactly 1.00x on the
  deterministic simulator);
* geometric-mean speedup >= 1.0x.

Outputs: ``BENCH_optimizer.json`` (repo root),
``results/optimizer_leaderboard.txt`` and
``results/optimizer_leaderboard.csv``.  Run standalone with
``python benchmarks/bench_optimizer.py [--smoke]``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pathlib
import sys
from dataclasses import asdict, dataclass, replace

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.bench.report import Table
from repro.bench.workloads import (
    SELECTIVITY_GRID,
    figure7_selectivities,
    selection_query_text,
    tree_query_text,
)
from repro.cluster import load_derby
from repro.derby import DerbyConfig
from repro.derby.config import Clustering
from repro.opt import CostBasedOptimizer
from repro.oql import Catalog, OQLEngine
from repro.oql.optimizer import SelectionPlan, TreeJoinPlan
from repro.stats import optimizer_to_csv

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO_ROOT / "results"

SCALE = 0.01
SMOKE_SCALE = 0.002

DATABASES = (
    ("1:1000", DerbyConfig.db_1to1000),
    ("1:3", DerbyConfig.db_1to3),
)
CLUSTERINGS = (
    ("class", Clustering.CLASS),
    ("composition", Clustering.COMPOSITION),
)


@dataclass
class Cell:
    """One leaderboard row (the ``optimizer_to_csv`` column contract)."""

    family: str           # "selection" | "tree-join"
    database: str
    clustering: str
    label: str            # "30%" or "10/90"
    query: str
    heuristic_plan: str
    cost_plan: str
    est_rows: float
    actual_rows: int
    rows_qerror: float
    est_cost_s: float
    actual_cost_s: float
    cost_qerror: float
    heuristic_s: float
    cost_s: float
    speedup: float
    validated: bool


def _checksum(rows: list) -> str:
    """Order-insensitive row-set fingerprint."""
    digest = hashlib.sha256(
        "\n".join(sorted(repr(r) for r in rows)).encode()
    )
    return digest.hexdigest()[:16]


def _qerror(estimated: float, actual: float) -> float:
    """Smoothed q-error: max over/under-estimation factor, +1 on both
    sides so empty results stay finite."""
    e, a = estimated + 1.0, actual + 1.0
    return max(e / a, a / e)


def _run_cold(derby, engine: OQLEngine, plan) -> tuple[list, float]:
    derby.start_cold_run()
    clock = derby.db.clock
    start_s = clock.elapsed_s
    rows = engine.execute(plan)
    return rows, clock.elapsed_s - start_s


def _force_scan(plan: SelectionPlan) -> SelectionPlan:
    """The unoptimized baseline: full scan, every predicate residual."""
    preds = ((plan.predicate,) if plan.predicate else ()) + plan.residuals
    return replace(
        plan,
        predicate=None,
        residuals=preds,
        index=None,
        sorted_rids=False,
        index_only=False,
        estimate=plan.alternatives["scan"],
    )


def _force_nl(plan: TreeJoinPlan) -> TreeJoinPlan:
    """The unoptimized baseline: naive nested-loop descent."""
    return replace(plan, algorithm="NL", estimate=plan.alternatives["NL"])


def _chosen_label(plan) -> str:
    if isinstance(plan, TreeJoinPlan):
        return plan.algorithm
    for key, estimate in plan.alternatives.items():
        if estimate is plan.estimate:
            return key
    return plan.description


def _measure_cell(
    derby,
    heuristic: OQLEngine,
    cost: OQLEngine,
    family: str,
    database: str,
    clustering: str,
    label: str,
    query: str,
) -> Cell:
    plan_h = heuristic.plan(query)
    plan_c = cost.plan(query)
    plan_u = (
        _force_scan(plan_h)
        if isinstance(plan_h, SelectionPlan)
        else _force_nl(plan_h)
    )

    rows_u, __s_u = _run_cold(derby, heuristic, plan_u)
    rows_h, s_h = _run_cold(derby, heuristic, plan_h)
    rows_c, s_c = _run_cold(derby, cost, plan_c)

    validated = (
        len(rows_c) == len(rows_h) == len(rows_u)
        and _checksum(rows_c) == _checksum(rows_h) == _checksum(rows_u)
    )
    est_rows = plan_c.est_rows if plan_c.est_rows is not None else -1.0
    return Cell(
        family=family,
        database=database,
        clustering=clustering,
        label=label,
        query=query,
        heuristic_plan=_chosen_label(plan_h),
        cost_plan=_chosen_label(plan_c),
        est_rows=est_rows,
        actual_rows=len(rows_c),
        rows_qerror=_qerror(est_rows, len(rows_c)),
        est_cost_s=plan_c.estimate.seconds,
        actual_cost_s=s_c,
        cost_qerror=_qerror(plan_c.estimate.seconds, s_c),
        heuristic_s=s_h,
        cost_s=s_c,
        speedup=s_h / s_c if s_c > 0 else 1.0,
        validated=validated,
    )


def run_leaderboard(scale: float) -> tuple[list[Cell], dict[str, float]]:
    cells: list[Cell] = []
    analyze_s: dict[str, float] = {}
    for db_name, maker in DATABASES:
        for org_name, org in CLUSTERINGS:
            config = maker(scale=scale, clustering=org)
            print(
                f"loading {db_name} / {org_name} at scale {scale} ...",
                file=sys.stderr,
            )
            derby = load_derby(config)
            catalog = Catalog.from_derby(derby)
            heuristic = OQLEngine(catalog)
            cost = OQLEngine(
                catalog,
                optimizer=CostBasedOptimizer(
                    catalog, include_extensions=True
                ),
            )
            # Feed the cost planner: ANALYZE, charged like any statement.
            derby.start_cold_run()
            start_s = derby.db.clock.elapsed_s
            cost.execute("analyze")
            analyze_s[f"{db_name}/{org_name}"] = (
                derby.db.clock.elapsed_s - start_s
            )

            for sel_pat, sel_prov in SELECTIVITY_GRID:
                cells.append(_measure_cell(
                    derby, heuristic, cost,
                    family="tree-join",
                    database=db_name,
                    clustering=org_name,
                    label=f"{sel_pat}/{sel_prov}",
                    query=tree_query_text(config, sel_pat, sel_prov),
                ))
            if org is Clustering.CLASS:
                for pct in figure7_selectivities():
                    cells.append(_measure_cell(
                        derby, heuristic, cost,
                        family="selection",
                        database=db_name,
                        clustering=org_name,
                        label=f"{pct}%",
                        query=selection_query_text(config, pct),
                    ))
    return cells, analyze_s


# -- scoring and reporting --------------------------------------------------

def summarize(cells: list[Cell]) -> dict:
    regressions = [c for c in cells if c.cost_s > c.heuristic_s]
    mismatches = [c for c in cells if not c.validated]
    product = 1.0
    for c in cells:
        product *= c.speedup
    geomean = product ** (1.0 / len(cells)) if cells else 1.0
    qerrors = sorted(c.rows_qerror for c in cells)
    return {
        "queries": len(cells),
        "validated": len(cells) - len(mismatches),
        "mismatches": len(mismatches),
        "regressions": len(regressions),
        "geomean_speedup": geomean,
        "plan_changes": sum(
            1 for c in cells if c.heuristic_plan != c.cost_plan
        ),
        "max_rows_qerror": qerrors[-1] if qerrors else 1.0,
        "median_rows_qerror": qerrors[len(qerrors) // 2] if qerrors else 1.0,
        "mean_cost_qerror": (
            sum(c.cost_qerror for c in cells) / len(cells) if cells else 1.0
        ),
    }


def build_table(cells: list[Cell], summary: dict,
                analyze_s: dict[str, float]) -> Table:
    table = Table(
        "Optimizer leaderboard: cost-based vs heuristic plans "
        "(cold, validated)",
        ["Family", "Database", "Org", "Cell", "Heuristic", "Cost plan",
         "Est rows", "Rows", "Heur s", "Cost s", "Speedup", "Valid"],
    )
    for c in cells:
        table.add(
            c.family, c.database, c.clustering, c.label,
            c.heuristic_plan, c.cost_plan,
            c.est_rows, c.actual_rows,
            c.heuristic_s, c.cost_s, c.speedup,
            "ok" if c.validated else "MISMATCH",
        )
    table.note(
        f"{summary['validated']}/{summary['queries']} validated "
        "(row count + order-insensitive checksum vs the unoptimized "
        "scan/NL plan)"
    )
    table.note(
        f"geometric-mean speedup {summary['geomean_speedup']:.3f}x, "
        f"{summary['regressions']} regression(s), "
        f"{summary['plan_changes']} plan change(s)"
    )
    table.note(
        f"row-estimate q-error: median {summary['median_rows_qerror']:.2f}, "
        f"max {summary['max_rows_qerror']:.2f}; "
        f"cost-estimate q-error mean {summary['mean_cost_qerror']:.2f}"
    )
    for key in sorted(analyze_s):
        table.note(f"analyze {key}: {analyze_s[key]:.3f} simulated s")
    return table


def check(cells: list[Cell], summary: dict) -> list[str]:
    failures = []
    for c in cells:
        if not c.validated:
            failures.append(
                f"semantic mismatch in {c.family} {c.database}/"
                f"{c.clustering} {c.label}"
            )
        if c.cost_s > c.heuristic_s:
            failures.append(
                f"plan regression in {c.family} {c.database}/"
                f"{c.clustering} {c.label}: cost {c.cost_s:.6f}s > "
                f"heuristic {c.heuristic_s:.6f}s "
                f"({c.cost_plan} vs {c.heuristic_plan})"
            )
    if summary["geomean_speedup"] < 1.0:
        failures.append(
            f"geometric-mean speedup {summary['geomean_speedup']:.4f} < 1.0"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny databases (CI); same matrix, same gates",
    )
    parser.add_argument(
        "--json", default=str(REPO_ROOT / "BENCH_optimizer.json"),
        help="output path for the machine-readable leaderboard",
    )
    parser.add_argument(
        "--out", default=str(RESULTS_DIR / "optimizer_leaderboard.txt"),
        help="output path for the rendered leaderboard",
    )
    parser.add_argument(
        "--csv", default=str(RESULTS_DIR / "optimizer_leaderboard.csv"),
        help="output path for the CSV export",
    )
    args = parser.parse_args(argv)

    scale = SMOKE_SCALE if args.smoke else SCALE
    cells, analyze_s = run_leaderboard(scale)
    summary = summarize(cells)
    table = build_table(cells, summary, analyze_s)
    print(table)

    out = pathlib.Path(args.out)
    out.parent.mkdir(exist_ok=True)
    out.write_text(str(table))
    pathlib.Path(args.csv).write_text(optimizer_to_csv(cells))
    payload = {
        "benchmark": "optimizer_leaderboard",
        "scale": scale,
        "smoke": args.smoke,
        "analyze_s": analyze_s,
        "summary": summary,
        "cells": [asdict(c) for c in cells],
    }
    pathlib.Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}, {args.csv}, {args.json}", file=sys.stderr)

    failures = check(cells, summary)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(
            f"PASS: {summary['queries']} queries, 100% validated, "
            f"0 regressions, geomean speedup "
            f"{summary['geomean_speedup']:.3f}x",
            file=sys.stderr,
        )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
