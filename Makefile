.PHONY: install test lint lint-graph bench figures mix pipeline recover chaos shell analyze optimizer shard failover mvcc artifacts clean

PYTHON ?= python
# Run the package from the source tree; `make install` is optional.
export PYTHONPATH := src

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# simlint (always available — stdlib only), then ruff/mypy when
# installed; CI installs and runs both unconditionally.  The simlint
# run includes the interprocedural rules (ATOM/PROTO/ESCAPE) built on
# the shared may-yield call graph.
lint:
	$(PYTHON) -m repro lint --timing
	@if command -v ruff >/dev/null 2>&1; then ruff check src; \
	else echo "ruff not installed; skipped (CI runs it)"; fi
	@if command -v mypy >/dev/null 2>&1; then mypy; \
	else echo "mypy not installed; skipped (CI runs it)"; fi

# Dump simlint's interprocedural call graph (may-yield set highlighted)
# for triage; CI uploads the same file as the `lint-graph` artifact
# when the lint job fails.
lint-graph:
	$(PYTHON) -m repro lint --dump-graph lint-graph.dot || true
	@echo "wrote lint-graph.dot (render with: dot -Tsvg lint-graph.dot)"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate every paper figure into results/ and print them.
figures:
	$(PYTHON) -m repro figures all

# Multi-client workload mix through the query service.
mix:
	$(PYTHON) -m repro mix --clients 8

# Batch-size sweep over the operator pipeline (TTFR, peak rows,
# limit early exit, mix interleaving) -> results/pipeline_batch_sweep.txt.
pipeline:
	$(PYTHON) benchmarks/bench_pipeline.py

# Crash-recovery fuzz: 40 seeds x 5 crash points = 200 cases, each
# double-run for determinism; exits nonzero on any contract violation.
recover:
	$(PYTHON) -m repro crash fuzz --seeds 40

# Transient-fault chaos: 200 seeded fault-injected mixes (flaky reads,
# lock-timeout storms, governors), each double-run for determinism,
# then the overload sweep -> results/governor_overload.txt.
chaos:
	$(PYTHON) -m repro chaos --cases 200
	$(PYTHON) benchmarks/bench_governor.py

# Collect optimizer statistics (ANALYZE) and persist them through the
# self-hosted statistics database.
analyze:
	$(PYTHON) -m repro analyze

# Cost-based vs. heuristic planner leaderboard over the Figure 10-15
# matrix -> BENCH_optimizer.json + results/optimizer_leaderboard.txt;
# exits nonzero on any semantic mismatch or plan regression.
optimizer:
	$(PYTHON) benchmarks/bench_optimizer.py

# Sharded scaling benchmark (1..32 shards, gated on semantic
# equivalence + >=4x scan speedup at 8 shards) plus the seeded 2PC
# crash/recovery chaos oracle -> results/sharding_scaling.txt.
shard:
	$(PYTHON) benchmarks/bench_sharding.py
	$(PYTHON) -m repro shard chaos --cases 25

# Replication availability benchmark (13-query semantic equivalence vs
# an unreplicated cluster, windowed throughput through a primary kill,
# 200 sync + 50 async seeded chaos kills) plus the failover chaos CLI
# -> BENCH_replication.json + results/replication_availability.txt.
failover:
	$(PYTHON) benchmarks/bench_replication.py
	$(PYTHON) -m repro failover chaos --cases 25

# Snapshot isolation vs strict 2PL on the same contended mix, gated on
# zero reader lock waits, SI throughput > 2PL and identical committed
# end states -> BENCH_mvcc.json + results/mvcc_mix.txt.
mvcc:
	$(PYTHON) benchmarks/bench_mvcc.py

shell:
	$(PYTHON) -m repro shell

serve:
	$(PYTHON) -m repro serve

artifacts: ## the final run the reproduction ships with
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf results/*.txt .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
