.PHONY: install test bench figures clean

PYTHON ?= python

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate every paper figure into results/ and print them.
figures:
	$(PYTHON) -m repro figures all

shell:
	$(PYTHON) -m repro shell

artifacts: ## the final run the reproduction ships with
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf results/*.txt .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
