#!/usr/bin/env python
"""The workload the paper never ran: many clients, one server.

The paper measures every query as a single cold client (shut the server
down between runs — Section 2's discipline).  This example drives the
multi-client query service instead, in three acts:

1. a hand-built **two-session deadlock**: both sessions write-lock the
   same two patients in opposite order; the waits-for cycle is detected
   and the *youngest* transaction aborts, deterministically;
2. a **workload mix**: navigators, scanners and updaters dealt
   round-robin over 6 sessions, with per-session latency/throughput and
   the aggregate;
3. a mini **client-count sweep** showing aggregate throughput bend as
   sessions queue on the hot-set locks and steal server-cache frames
   from each other.

Run:  python examples/multiclient_mix.py
"""

from __future__ import annotations

from repro.cluster import load_derby
from repro.derby import DerbyConfig
from repro.errors import DeadlockError
from repro.service import MixConfig, QueryService, WorkloadMixer
from repro.stats import StatsDatabase, mix_to_csv


def act_one_deadlock() -> None:
    print("=== Act 1: a deterministic deadlock ===")
    derby = load_derby(DerbyConfig.db_1to3(scale=0.0001))
    derby.start_cold_run()
    service = QueryService(derby)
    alice = service.open_session("alice")
    bob = service.open_session("bob")
    a, b = derby.patient_rids[0], derby.patient_rids[1]

    def body(session, first, second, age):
        def run():
            session.begin()
            session.write_lock(first)
            session.pause()                 # the other session runs here
            try:
                session.write_lock(second)  # closes the cycle
                session.update_scalar(first, "age", age)
                session.update_scalar(second, "age", age)
                session.commit()
                return "committed"
            except DeadlockError as exc:
                session.abort()
                return f"aborted ({exc})"
        return run

    service.spawn(alice, body(alice, a, b, 41))
    service.spawn(bob, body(bob, b, a, 42))
    tasks = service.run()
    service.close()
    for task in tasks:
        print(f"  {task.name}: {task.result}")
    age = derby.db.manager.get_attr_at(a, "age")
    print(f"  surviving write: patient age = {age} (alice's value)\n")


def act_two_mix() -> None:
    print("=== Act 2: a 6-client mix ===")
    derby = load_derby(DerbyConfig.db_1to3(scale=0.0005))
    stats = StatsDatabase()
    config = MixConfig.from_clients(6, ops_per_client=3, seed=7)
    report = WorkloadMixer(derby, config, stats=stats).run()
    print(report.table())
    print(f"  {len(stats)} Stat rows recorded; per-session CSV:")
    print("  " + mix_to_csv(report).splitlines()[0])
    print()


def act_three_sweep() -> None:
    print("=== Act 3: throughput vs client count ===")
    derby = load_derby(DerbyConfig.db_1to3(scale=0.0005))
    print(f"  {'clients':>8} {'committed':>10} {'deadlocks':>10} "
          f"{'elapsed(s)':>11} {'txn/s':>8}")
    for clients in (1, 2, 4, 8):
        config = MixConfig.from_clients(clients, ops_per_client=2, seed=5)
        report = WorkloadMixer(derby, config).run()
        print(f"  {clients:>8} {report.committed:>10} "
              f"{report.deadlocks:>10} {report.elapsed_s:>11.3f} "
              f"{report.throughput_ops_s:>8.2f}")


def main() -> None:
    act_one_deadlock()
    act_two_mix()
    act_three_sweep()


if __name__ == "__main__":
    main()
