#!/usr/bin/env python
"""Section 3's hard-won loading lessons, reproduced as an experiment.

The paper spent months discovering how to load big databases: commit in
batches (or run "out of memory"), load with transactions off, create the
first index *before* populating, and size the client cache up.  Each
lesson is demonstrated here on the same logical database.

Run:  python examples/bulk_loading_tips.py
"""

from __future__ import annotations

from repro.cluster import load_derby
from repro.derby import DerbyConfig
from repro.errors import TransactionMemoryError
from repro.objects import AttrKind, AttributeDef, Database, Schema
from repro.txn import TransactionManager

SCALE = 0.002


def lesson_commit_batches() -> None:
    print("Lesson 1 — commit in batches or run out of memory")
    schema = Schema()
    schema.define("Thing", [AttributeDef("x", AttrKind.INT32)])
    db = Database(schema)
    db.create_file("things")
    txm = TransactionManager(db, object_budget=10_000)
    txn = txm.begin(logged=False)
    created = 0
    try:
        while True:
            txn.create_object("Thing", {"x": created}, "things")
            created += 1
    except TransactionMemoryError as exc:
        print(f"  after {created} objects: {exc}")
    txn.abort()
    print("  -> the paper settled on committing every 10,000 objects\n")


def lesson_transactions_off() -> None:
    print("Lesson 2 — load with transactions off")
    for logged in (True, False):
        config = DerbyConfig.db_1to3(scale=SCALE, logged_load=logged)
        report = load_derby(config).load_report
        label = "transactions on " if logged else "transactions off"
        print(f"  {label}: {report.seconds:8.1f} simulated s")
    print("  -> 'the O2 transaction-off mode allows to load large "
          "databases faster'\n")


def lesson_index_first() -> None:
    print("Lesson 3 — create the first index before populating")
    for index_first in (True, False):
        config = DerbyConfig.db_1to3(scale=SCALE, index_first=index_first)
        report = load_derby(config).load_report
        label = "index first " if index_first else "index after "
        print(f"  {label}: {report.seconds:8.1f} simulated s, "
              f"{report.records_moved} records reallocated")
    print("  -> indexing afterwards rewrites every object header and "
          "moves records,\n     destroying the clustering you imposed\n")


def lesson_cache_sizing() -> None:
    print("Lesson 4 — give the client the big cache")
    from dataclasses import replace

    base = DerbyConfig.db_1to3(scale=SCALE)
    # Swap the cache sizes: big server, small client.
    swapped_memory = replace(
        base.params.memory,
        server_cache_bytes=base.params.memory.client_cache_bytes,
        client_cache_bytes=base.params.memory.server_cache_bytes,
    )
    swapped = replace(base, params=replace(base.params, memory=swapped_memory))
    for label, config in (("client-heavy", base), ("server-heavy", swapped)):
        derby = load_derby(config)
        derby.start_cold_run()
        # A navigation-heavy query: the cache placement decides the RPCs.
        from repro.bench import ExperimentRunner

        m = ExperimentRunner(derby).run_join("NOJOIN", 10, 90)
        print(f"  {label:12s}: {m.elapsed_s:8.1f} s, {m.meters.rpcs:6d} RPCs, "
              f"{m.meters.disk_reads:6d} disk reads")
    print("  -> same total memory; fewer RPCs when the *client* holds it\n")


def main() -> None:
    lesson_commit_batches()
    lesson_transactions_off()
    lesson_index_first()
    lesson_cache_sizing()


if __name__ == "__main__":
    main()
