#!/usr/bin/env python
"""Eat the paper's dog food: store benchmark results in a database.

Section 3.3: "Large Benchmark Equals Many Numbers: Why Not Use a
Database?"  This example runs a small grid of the paper's experiments,
stores every run as a ``Stat`` object (Figure 3 schema) in an instance
of *this library's own object database*, then answers questions with the
query helpers and exports gnuplot input — the workflow the paper built
by hand with YAT.

Run:  python examples/benchmark_results_db.py
"""

from __future__ import annotations

from repro.bench import ExperimentRunner
from repro.bench.figures import PAPER_ALGORITHMS
from repro.cluster import load_derby
from repro.derby import DerbyConfig
from repro.derby.config import Clustering
from repro.stats import StatsDatabase, to_csv, to_gnuplot


def main() -> None:
    stats = StatsDatabase()

    for clustering in (Clustering.CLASS, Clustering.COMPOSITION):
        config = DerbyConfig.db_1to3(scale=0.002, clustering=clustering)
        print(f"Loading 1:3 database with {clustering.value} clustering...")
        derby = load_derby(config)
        stats.record_extent("Provider", config.n_providers)
        stats.record_extent("Patient", config.n_patients)
        runner = ExperimentRunner(derby, stats)
        for sel_pat, sel_prov in ((10, 10), (90, 90)):
            for algo in PAPER_ALGORITHMS:
                runner.run_join(algo, sel_pat, sel_prov)

    print(f"\n{len(stats)} Stat objects persisted "
          f"({stats.db.disk.total_pages()} pages on the simulated disk)\n")

    # "a query language can be used to extract the information you are
    # looking for"
    print("Q: which algorithm won each (clustering, selectivity) cell?")
    for clustering in ("class", "composition"):
        for sel in (10, 90):
            best = stats.best_algorithm(clustering, sel, sel)
            assert best is not None
            print(f"  {clustering:12s} sel {sel:2d}/{sel:2d}: "
                  f"{best.algo:7s} ({best.elapsed_s:9.2f} s)")

    print("\nQ: how did NL behave across clusterings?")
    for row in stats.rows(algo="NL"):
        print(f"  {row.cluster:12s} sel {row.selectivity:2d}: "
              f"{row.elapsed_s:9.2f} s, {row.d2sc_pages:6d} pages, "
              f"cc miss {row.cc_missrate}%")

    print("\nCSV export (first 3 lines):")
    print("\n".join(to_csv(stats.rows()).splitlines()[:3]))

    print("\nGnuplot export (elapsed vs selectivity, one block per algo):")
    dat = to_gnuplot(
        [r for r in stats.rows(cluster="class")],
        x="selectivity",
        y="elapsed_s",
        series="algo",
    )
    print("\n".join(dat.splitlines()[:8]))


if __name__ == "__main__":
    main()
