#!/usr/bin/env python
"""Crash a multi-client mix mid-commit, then recover it.

The paper shut its system down cleanly between runs; this example kills
it instead.  A :class:`~repro.recovery.CrashInjector` armed at the
``commit-flush`` point tears a commit's log flush halfway through its
pages — the durable boundary lands *inside* the flush, the classic torn
multi-page commit.  The ARIES-lite restart driver then rebuilds the
database from the durable page images and the durable log prefix:
committed transactions survive, in-flight ones are rolled back, and the
mid-commit victim lands on whichever side of the torn flush its commit
record reached.

Run:  python examples/crash_recovery.py
"""

from __future__ import annotations

from repro.cluster import load_derby
from repro.derby import DerbyConfig
from repro.recovery import CrashInjector
from repro.service import MixConfig, WorkloadMixer


def main() -> None:
    print("Loading a small 1:3 database...")
    derby = load_derby(DerbyConfig.db_1to3(scale=0.00001))

    injector = CrashInjector("commit-flush", occurrence=6)
    config = MixConfig.from_clients(6, ops_per_client=3, seed=3)
    mixer = WorkloadMixer(derby, config, injector=injector)
    print(f"Running a {config.total_clients}-client mix with a crash "
          f"armed at the {injector.occurrence}th commit flush...\n")
    report = mixer.run()
    if not report.crashed:
        print("The mix finished before the crash point was reached; "
              "raise ops_per_client to see a crash.")
        return

    service = mixer.service
    wal = service.txm.log
    durable_commits = sorted(
        r.txn_id for r in wal.records if r.kind == "commit"
    )
    in_log = sorted({r.txn_id for r in wal.records if r.txn_id})
    acked = sum(s.metrics.committed for s in service.sessions)
    print(f"CRASH: {injector.point} fired "
          f"(occurrence {injector.seen}).")
    print(f"  durable log prefix : {len(wal.records)} records, "
          f"LSN <= {wal.durable_lsn}")
    print(f"  commits acked      : {acked}")
    print(f"  commits durable    : {len(durable_commits)} "
          f"-> {durable_commits}")

    print("\nRestarting (analysis / redo / undo)...")
    recovery = service.recover()
    print(f"  scanned {recovery.log_records_scanned} log records "
          f"({recovery.log_pages_read} log pages)")
    print(f"  redid   {recovery.records_redone} records on "
          f"{recovery.pages_redone} pages")
    print(f"  undid   {recovery.records_undone} records of "
          f"{recovery.txns_undone} loser transaction(s)")
    print(f"  took    {recovery.seconds:.4f} simulated seconds")

    lost = sorted(
        set(in_log) - set(durable_commits) | set(recovery.losers)
    )
    print(f"\nRecovered transactions (durably committed): "
          f"{durable_commits or 'none'}")
    print(f"Lost transactions (rolled back or vanished): "
          f"{lost or 'none'}")
    if acked > len(durable_commits):
        print("NOTE: an acked commit is missing — that would be a bug; "
              "the fuzz checker treats it as a failure.")

    print("\nThe database is open for business again:")
    follow_up = WorkloadMixer(derby, MixConfig.from_clients(3, seed=9)).run()
    print(f"  follow-up mix: {follow_up.committed} committed, "
          f"{follow_up.aborted} aborted in "
          f"{follow_up.elapsed_s:.2f} simulated s")


if __name__ == "__main__":
    main()
