#!/usr/bin/env python
"""Quickstart: load a Derby database, run OQL, inspect the costs.

This walks the library's main path in five steps:

1. build one of the paper's databases (scaled down) under class
   clustering,
2. run the paper's Section 5 tree query through the OQL engine,
3. see which algorithm the cost-based optimizer picked and what it
   estimated for the alternatives,
4. re-run the same query cold and read the simulated meters — page
   reads, RPCs, cache miss rates, elapsed simulated seconds,
5. record the run in the Figure 3 stats database and export it as CSV.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.bench.workloads import tree_query_text
from repro.cluster import load_derby
from repro.derby import DerbyConfig
from repro.oql import Catalog, OQLEngine
from repro.stats import StatsDatabase, to_csv


def main() -> None:
    # 1. Build the 1:1000 database (2,000 providers x ~1,000 patients in
    #    the paper; here at 1/200 scale) with class clustering.
    config = DerbyConfig.db_1to1000(scale=0.005)
    print(f"Loading {config.n_providers} providers / "
          f"{config.n_patients} patients (class clustering)...")
    derby = load_derby(config)
    report = derby.load_report
    print(f"  loaded in {report.seconds:.1f} simulated seconds, "
          f"{report.disk_pages} disk pages, {report.commits} commits\n")

    # 2. The paper's query, as OQL text.
    text = tree_query_text(config, sel_pat=10, sel_prov=90)
    print(f"OQL> {text}\n")

    engine = OQLEngine(Catalog.from_derby(derby))

    # 3. Ask the optimizer for the plan before running it.
    plan = engine.plan(text)
    print(f"Optimizer chose: {plan.algorithm}")
    for name, estimate in sorted(
        plan.alternatives.items(), key=lambda kv: kv[1].seconds
    ):
        marker = "<-- chosen" if name == plan.algorithm else ""
        print(f"  estimated {name:7s} {estimate.seconds:10.2f} s {marker}")
    print()

    # 4. Execute cold, as the paper ran all of its tests.
    derby.start_cold_run()
    rows = engine.execute(text)
    meters = derby.db.counters.snapshot()
    print(f"{len(rows)} result tuples; first 3: {rows[:3]}")
    print(f"simulated elapsed time : {derby.db.clock.elapsed_s:10.2f} s")
    print(f"disk -> server pages   : {meters.disk_reads:10d}")
    print(f"server -> client pages : {meters.server_to_client:10d}")
    print(f"RPCs                   : {meters.rpcs:10d}")
    print(f"client cache miss rate : {meters.client_miss_rate:10.0%}")
    print()

    # 5. Store the experiment the way the paper learned to (Section 3.3).
    stats = StatsDatabase()
    stats.record_experiment(
        algo=plan.algorithm,
        cluster=config.clustering.value,
        elapsed_s=derby.db.clock.elapsed_s,
        meters=meters,
        text=text,
        selectivity=10,
        selectivity_parents=90,
    )
    print("Recorded in the Figure 3 stats database; as CSV:")
    print(to_csv(stats.rows()))


if __name__ == "__main__":
    main()
