#!/usr/bin/env python
"""Querying XML-style document trees: the paper's motivating scenario.

The paper opens with hierarchical structures "very popular nowadays,
thanks to XML": follow links node to node (the title of the first
section of one document) or run associative accesses (the titles of a
large collection of documents).  This example builds a document/section
hierarchy on the object store — a different schema from Derby — and
shows that the same four algorithms and the same clustering trade-offs
apply.

Run:  python examples/xml_document_tree.py
"""

from __future__ import annotations

import random

from repro.exec import ALGORITHMS, TreeJoinQuery
from repro.index import IndexManager
from repro.objects import AttrKind, AttributeDef, Database, Schema
from repro.simtime import CostParams

N_DOCUMENTS = 300
SECTIONS_PER_DOC = 12
SCALE = 0.01


def build_schema() -> Schema:
    schema = Schema()
    schema.define(
        "Document",
        [
            AttributeDef("title", AttrKind.STRING, width=24),
            AttributeDef("docid", AttrKind.INT32),
            AttributeDef("year", AttrKind.INT32),
            AttributeDef("sections", AttrKind.REF_SET, target="Section"),
        ],
    )
    schema.define(
        "Section",
        [
            AttributeDef("title", AttrKind.STRING, width=24),
            AttributeDef("secid", AttrKind.INT32),
            AttributeDef("words", AttrKind.INT32),
            AttributeDef("document", AttrKind.REF, target="Document"),
        ],
    )
    return schema


def build_corpus(db: Database):
    """Documents followed by their sections: composition clustering."""
    rng = random.Random(42)
    db.create_file("corpus")
    documents = db.new_collection("Documents")
    sections = db.new_collection("Sections")
    manager = IndexManager(db)
    by_docid, __ = manager.create_index("by_docid", documents, "docid")
    by_secid, __ = manager.create_index("by_secid", sections, "secid")

    doc_pairs, sec_pairs = [], []
    secid = 0
    for docid in range(1, N_DOCUMENTS + 1):
        doc_rid = db.create_object(
            "Document",
            {"title": f"doc-{docid}", "docid": docid,
             "year": 1995 + docid % 6},
            "corpus",
            index_ids=(by_docid.index_id,),
        )
        documents.append(doc_rid)
        doc_pairs.append((docid, doc_rid))
        children = []
        for __ in range(SECTIONS_PER_DOC):
            secid += 1
            sec_rid = db.create_object(
                "Section",
                {"title": f"sec-{secid}", "secid": secid,
                 "words": rng.randrange(5000), "document": doc_rid},
                "corpus",
                index_ids=(by_secid.index_id,),
            )
            sections.append(sec_rid)
            sec_pairs.append((secid, sec_rid))
            children.append(sec_rid)
        db.manager.update_set(doc_rid, "sections", db.prepare_set(children))
    documents.flush()
    sections.flush()
    by_docid.bulk_build(doc_pairs)
    by_secid.bulk_build(sec_pairs)
    db.shutdown()
    return by_docid, by_secid


def navigation_access(db: Database, by_docid) -> str:
    """Follow links: the title of the first section of document 17."""
    om = db.manager
    (doc_rid,) = by_docid.lookup(17)
    doc = om.load(doc_rid)
    sections = om.get_attr(doc, "sections")
    first = next(iter(db.iter_set_rids(sections)))
    om.unref(doc)
    return om.get_attr_at(first, "title")


def main() -> None:
    db = Database(build_schema(), CostParams().scaled(SCALE))
    by_docid, by_secid = build_corpus(db)
    print(f"Corpus: {N_DOCUMENTS} documents, "
          f"{N_DOCUMENTS * SECTIONS_PER_DOC} sections, "
          f"{db.disk.total_pages()} pages\n")

    # -- navigation: node-to-node link following --------------------
    db.restart_cold()
    db.reset_meters()
    title = navigation_access(db, by_docid)
    print(f"Navigation: first section of document 17 is {title!r} "
          f"({db.clock.elapsed_s * 1000:.1f} simulated ms)\n")

    # -- associative access: the tree query over the whole corpus ----
    query = TreeJoinQuery(
        db=db,
        parent_index=by_docid,
        child_index=by_secid,
        parent_high=N_DOCUMENTS // 2,          # half the documents
        child_high=N_DOCUMENTS * SECTIONS_PER_DOC // 10 + 1,  # 10% sections
        n_parents=N_DOCUMENTS,
        parent_key="docid",
        child_key="secid",
        child_ref="document",
        parent_set="sections",
        parent_project="title",
        child_project="title",
    )
    print("Associative: titles of early sections of the first half of "
          "the corpus, by algorithm:")
    timings = {}
    for algo in ("NL", "NOJOIN", "PHJ", "CHJ"):
        db.restart_cold()
        db.reset_meters()
        rows = ALGORITHMS[algo](query)
        timings[algo] = db.clock.elapsed_s
        print(f"  {algo:7s} {db.clock.elapsed_s:8.3f} simulated s, "
              f"{db.counters.disk_reads:5d} page reads, "
              f"{len(rows)} rows")
    winner = min(timings, key=timings.get)
    print(f"\nWinner here: {winner}.  The same four strategies and the "
          "same clustering trade-offs\nthe paper measured on Derby "
          "(Figures 11-14) apply to any parent/child hierarchy.")


if __name__ == "__main__":
    main()
