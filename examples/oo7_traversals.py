#!/usr/bin/env python
"""Running OO7 — the other side of the paper's argument.

The paper's diagnosis: object systems are "tested with object benchmarks
against relational systems and are optimized accordingly", i.e. for
OO7-style warm navigation, while cold associative queries go unmeasured.
This example runs both regimes on the same engine and shows the
Section 4.4 handle cures fixing the associative side without touching
the navigation side.

Run:  python examples/oo7_traversals.py
"""

from __future__ import annotations

from repro.bench import ExperimentRunner
from repro.cluster import load_derby
from repro.derby import DerbyConfig
from repro.objects.handle import HandleMode
from repro.oo7 import OO7Config, build_oo7, query_q1, traversal_t1, traversal_t6


def main() -> None:
    oo7 = build_oo7(OO7Config())
    cfg = oo7.config
    print(f"OO7 module: {cfg.n_base_assemblies} base assemblies, "
          f"{cfg.n_composite_parts} composite parts, "
          f"{cfg.n_atomic_parts} atomic parts "
          f"({oo7.db.disk.total_pages()} pages)\n")

    # -- the classic OO7 operations ------------------------------------
    oo7.start_cold_run()
    t1_cold = traversal_t1(oo7)
    t1_warm = traversal_t1(oo7)
    warm_seconds = oo7.db.clock.elapsed_s - t1_cold.elapsed_s
    print(f"T1 cold : {t1_cold.elapsed_s:7.3f} s, "
          f"{t1_cold.page_reads} page reads, "
          f"{t1_cold.visited_atomic} atomic parts visited")
    print(f"T1 warm : {warm_seconds:7.3f} s, 0 page reads "
          f"(everything in the client cache)\n")

    oo7.start_cold_run()
    t6 = traversal_t6(oo7)
    print(f"T6      : {t6.elapsed_s:7.3f} s "
          f"(root parts only: {t6.visited_atomic})")
    oo7.start_cold_run()
    found = query_q1(oo7, lookups=20)
    print(f"Q1      : {oo7.db.clock.elapsed_s:7.3f} s "
          f"({found}/20 exact-match lookups)\n")

    # -- the paper's conclusion, measured --------------------------------
    print("Handle regimes: warm OO7 navigation vs cold associative scan")
    print(f"{'mode':18s} {'warm T1 (s)':>12s} {'cold scan (s)':>14s}")
    for mode in HandleMode:
        bench = build_oo7(OO7Config(), handle_mode=mode)
        bench.start_cold_run()
        traversal_t1(bench)
        before = bench.db.clock.elapsed_s
        traversal_t1(bench)
        warm = bench.db.clock.elapsed_s - before

        derby = load_derby(DerbyConfig.db_1to1000(scale=0.002),
                           handle_mode=mode)
        cold = ExperimentRunner(derby).run_selection(
            "scan", 90, project="name"
        ).elapsed_s
        print(f"{mode.value:18s} {warm:12.3f} {cold:14.2f}")
    print("\nEvery cure improves the cold associative column without "
          "hurting warm navigation\n— the paper's closing claim.")


if __name__ == "__main__":
    main()
