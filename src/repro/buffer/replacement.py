"""Page replacement policies.

The cache stores page keys; the policy decides which key to evict when a
new page must come in.  LRU is what the experiments use (it produces the
interaction the paper observes, where a sequential scan flushes the pages
a concurrent random access pattern would like to keep); Clock is provided
as a cheaper approximation for ablations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict

PageKey = tuple[int, int]  # (file_id, page_no)


class ReplacementPolicy(ABC):
    """Tracks page keys and picks eviction victims."""

    @abstractmethod
    def touch(self, key: PageKey) -> None:
        """Record an access to ``key`` (which may be new)."""

    @abstractmethod
    def evict(self) -> PageKey:
        """Remove and return the victim key.  Raises ``KeyError`` when
        empty."""

    @abstractmethod
    def discard(self, key: PageKey) -> None:
        """Forget ``key`` if present (page dropped without eviction)."""

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def clear(self) -> None: ...


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used replacement."""

    def __init__(self) -> None:
        self._order: OrderedDict[PageKey, None] = OrderedDict()

    def touch(self, key: PageKey) -> None:
        self._order[key] = None
        self._order.move_to_end(key)

    def evict(self) -> PageKey:
        key, __ = self._order.popitem(last=False)
        return key

    def discard(self, key: PageKey) -> None:
        self._order.pop(key, None)

    def __len__(self) -> int:
        return len(self._order)

    # simlint: ok[CHARGE] bookkeeping reset; the owning cache charges I/O
    def clear(self) -> None:
        self._order.clear()


class ClockPolicy(ReplacementPolicy):
    """Second-chance (clock) replacement."""

    def __init__(self) -> None:
        self._ref: OrderedDict[PageKey, bool] = OrderedDict()

    def touch(self, key: PageKey) -> None:
        if key in self._ref:
            self._ref[key] = True
        else:
            self._ref[key] = False

    def evict(self) -> PageKey:
        while True:
            key, referenced = self._ref.popitem(last=False)
            if referenced:
                self._ref[key] = False  # second chance: move to tail
            else:
                return key

    def discard(self, key: PageKey) -> None:
        self._ref.pop(key, None)

    def __len__(self) -> int:
        return len(self._ref)

    # simlint: ok[CHARGE] bookkeeping reset; the owning cache charges I/O
    def clear(self) -> None:
        self._ref.clear()
