"""A single buffer cache (one tier of the client/server pair)."""

from __future__ import annotations

from typing import Callable

from repro.buffer.replacement import LRUPolicy, PageKey, ReplacementPolicy
from repro.storage.page import Page


class BufferCache:
    """A fixed-capacity page cache.

    The cache holds references to :class:`Page` objects keyed by
    ``(file_id, page_no)``.  When inserting into a full cache, the
    replacement policy picks a victim; if the victim is dirty the
    ``on_evict_dirty`` callback is invoked (write-back), after which the
    page's dirty flag is owned by the next tier.
    """

    def __init__(
        self,
        capacity_pages: int,
        policy: ReplacementPolicy | None = None,
        on_evict_dirty: Callable[[Page], None] | None = None,
    ):
        if capacity_pages < 1:
            raise ValueError(f"cache needs at least one page, got {capacity_pages}")
        self.capacity_pages = capacity_pages
        self.policy = policy or LRUPolicy()
        self.on_evict_dirty = on_evict_dirty
        self._pages: dict[PageKey, Page] = {}

    def lookup(self, key: PageKey) -> Page | None:
        """Return the cached page and refresh its recency, or ``None``."""
        page = self._pages.get(key)
        if page is not None:
            self.policy.touch(key)
        return page

    def insert(self, page: Page) -> None:
        """Admit ``page``, evicting (with write-back) as needed."""
        key = (page.file_id, page.page_no)
        if key not in self._pages and len(self._pages) >= self.capacity_pages:
            self._evict_one()
        self._pages[key] = page
        self.policy.touch(key)

    def contains(self, key: PageKey) -> bool:
        """Presence test that does *not* refresh recency."""
        return key in self._pages

    def drop(self, key: PageKey) -> None:
        """Remove a page without write-back (caller handled it)."""
        self._pages.pop(key, None)
        self.policy.discard(key)

    def dirty_pages(self) -> list[Page]:
        """All dirty pages currently cached."""
        return [page for page in self._pages.values() if page.dirty]

    # simlint: ok[CHARGE] dropping frames models no I/O; flushes are charged by callers
    def clear(self) -> None:
        """Drop everything (server shutdown / cold restart)."""
        self._pages.clear()
        self.policy.clear()

    def __len__(self) -> int:
        return len(self._pages)

    def _evict_one(self) -> None:
        key = self.policy.evict()
        page = self._pages.pop(key)
        if page.dirty and self.on_evict_dirty is not None:
            self.on_evict_dirty(page)
