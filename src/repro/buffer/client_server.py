"""The client/server page path.

Every page access during a measured experiment goes through
:meth:`ClientServerSystem.get_page`:

1. client-cache lookup — a hit costs nothing but CPU already charged by
   the caller; a miss is a *client page fault* and triggers an RPC;
2. server-cache lookup — a miss reads the page from disk (10 ms);
3. the page travels server → client (transfer time + RPC overhead) and is
   admitted to the client cache, possibly evicting (write-back) another.

This is the ``ClientServerSystem`` a :class:`~repro.storage.file.StorageFile`
uses as its pager.  ``shutdown()`` flushes dirty pages and empties both
tiers, producing the *cold* state in which all the paper's queries run
("the server was shutdown at the end of each evaluation", Section 2).
"""

from __future__ import annotations

from typing import Callable

from repro.buffer.cache import BufferCache
from repro.buffer.replacement import LRUPolicy, ReplacementPolicy
from repro.simtime import Bucket, MemoryModel
from repro.storage.disk import DiskManager
from repro.storage.page import Page


class ClientServerSystem:
    """Two LRU tiers between the application and the simulated disk.

    The *server* tier (cache + disk) is one per system; the *client*
    tier is swappable — the multi-client query service
    (:mod:`repro.service`) gives every session its own client cache and
    attaches the active session's tier before each scheduling slice
    (:meth:`attach_client_tier`), so all sessions contend for the same
    server cache while keeping private client caches, exactly the
    paper's one-server/many-workstations topology.
    """

    def __init__(
        self,
        disk: DiskManager,
        memory: MemoryModel | None = None,
        client_policy: ReplacementPolicy | None = None,
        server_policy: ReplacementPolicy | None = None,
    ):
        self.disk = disk
        self.memory = memory or disk.params.memory
        self.server_cache = BufferCache(
            self.memory.server_cache_pages,
            server_policy or LRUPolicy(),
            on_evict_dirty=self._write_back_to_disk,
        )
        self.client_cache = BufferCache(
            self.memory.client_cache_pages,
            client_policy or LRUPolicy(),
            on_evict_dirty=self._write_back_to_server,
        )
        #: Invoked on every client page fault, *before* the RPC is
        #: issued — the query service uses it as a context-switch point.
        self.on_fault: Callable[[], None] | None = None

    # -- client-tier management -------------------------------------------

    def new_client_tier(
        self,
        capacity_pages: int | None = None,
        policy: ReplacementPolicy | None = None,
    ) -> BufferCache:
        """A fresh client cache wired for write-back to this server."""
        return BufferCache(
            capacity_pages or self.memory.client_cache_pages,
            policy or LRUPolicy(),
            on_evict_dirty=self._write_back_to_server,
        )

    def attach_client_tier(self, cache: BufferCache) -> BufferCache:
        """Make ``cache`` the active client tier; returns the previous
        one (still valid — re-attach it to resume that client)."""
        previous = self.client_cache
        self.client_cache = cache
        return previous

    # -- Pager protocol ---------------------------------------------------

    def get_page(self, file_id: int, page_no: int) -> Page:
        """Fetch a page through both cache tiers, charging all traffic."""
        key = (file_id, page_no)
        counters = self.disk.counters
        page = self.client_cache.lookup(key)
        if page is not None:
            counters.client_hits += 1
            return page

        if self.on_fault is not None:
            self.on_fault()
        counters.client_faults += 1
        counters.rpcs += 1
        counters.rpc_bytes += self.disk.page_size
        clock = self.disk.clock
        params = self.disk.params
        clock.charge_ms(Bucket.RPC, params.rpc_overhead_ms)

        page = self.server_cache.lookup(key)
        if page is not None:
            counters.server_hits += 1
        else:
            counters.server_faults += 1
            page = self.disk.read_page(file_id, page_no)
            self.server_cache.insert(page)

        counters.server_to_client += 1
        clock.charge_ms(Bucket.TRANSFER, params.page_transfer_ms)
        self.client_cache.insert(page)
        return page

    def mark_dirty(self, file_id: int, page_no: int) -> None:
        """Flag a (client-resident) page as modified."""
        page = self.client_cache.lookup((file_id, page_no))
        if page is None:
            # Page was modified straight after allocation, before any
            # read.  Admit it so write-back accounting still happens.
            page = self.disk.peek_page(file_id, page_no)
            self.client_cache.insert(page)
        page.dirty = True

    # -- lifecycle ----------------------------------------------------------

    def flush(self) -> None:
        """Write every dirty page down to disk (checkpoint)."""
        for page in self.client_cache.dirty_pages():
            self._write_back_to_server(page)
        for page in self.server_cache.dirty_pages():
            self._write_back_to_disk(page)

    def shutdown(self) -> None:
        """Flush then empty both tiers: the next access is fully cold."""
        self.flush()
        self.client_cache.clear()
        self.server_cache.clear()

    # simlint: ok[CHARGE] deliberately uncharged: harness reset between runs
    def restart_cold(self) -> None:
        """Empty both tiers *without* charging flush I/O.

        Used by the experiment harness between runs: loading wrote its
        data and was measured separately; the query must simply start
        cold.  Dirty flags are cleared, not written.
        """
        for page in self.client_cache.dirty_pages():
            page.dirty = False
        for page in self.server_cache.dirty_pages():
            page.dirty = False
        self.client_cache.clear()
        self.server_cache.clear()

    # simlint: ok[CHARGE] a power failure costs nothing by definition
    def crash_volatile(self) -> None:
        """Both tiers vanish with the power: no write-back, no charges.

        Unlike :meth:`restart_cold` this does not even clear dirty
        flags — the page objects themselves are reverted to their
        durable images by :meth:`DiskManager.crash`, which owns the
        crash semantics."""
        self.client_cache.clear()
        self.server_cache.clear()

    # -- write-back callbacks -------------------------------------------------

    def _write_back_to_server(self, page: Page) -> None:
        """A dirty page leaves the client cache: one RPC up, then it is
        the server tier's problem."""
        counters = self.disk.counters
        counters.rpcs += 1
        counters.rpc_bytes += self.disk.page_size
        self.disk.clock.charge_ms(Bucket.RPC, self.disk.params.rpc_overhead_ms)
        self.disk.clock.charge_ms(Bucket.TRANSFER, self.disk.params.page_transfer_ms)
        self.server_cache.insert(page)

    def _write_back_to_disk(self, page: Page) -> None:
        self.disk.write_page(page.file_id, page.page_no)
