"""Two-tier buffer management (O2's client-server architecture).

O2 runs a page server: the *server cache* sits in front of the disk, the
*client cache* sits in the application process, and pages travel between
them over RPCs (paper, Sections 2 and 3.5).  The paper's measurements —
``RPCsnumber``, ``D2SCreadpages``, ``SC2CCreadpages``, the two miss rates
(Figure 3) — are exactly the counters this package maintains.

The cache-size observation of Section 3.2 ("the number of IOs depends on
the largest cache size, independently of its function") falls out of the
mechanism: a page found in either tier never reaches the disk.
"""

from repro.buffer.cache import BufferCache
from repro.buffer.client_server import ClientServerSystem
from repro.buffer.replacement import ClockPolicy, LRUPolicy, ReplacementPolicy

__all__ = [
    "BufferCache",
    "ClientServerSystem",
    "ReplacementPolicy",
    "LRUPolicy",
    "ClockPolicy",
]
