"""repro — a reproduction of "Benchmarking Queries over Trees: Learning
the Hard Truth the Hard Way" (Wattez, Cluet, Benzaken, Ferran, Fiegel;
SIGMOD 2000).

An O2-style object database simulator (pages, client/server caches,
handles, indexes, clustering strategies), an OQL subset with a
cost-based optimizer, and a benchmark harness that regenerates every
table and figure of the paper.  See README.md for a tour and DESIGN.md
for the system inventory.

Most-used entry points::

    from repro.cluster import load_derby          # build a paper database
    from repro.derby import DerbyConfig           # ... at any scale
    from repro.oql import Catalog, OQLEngine      # run OQL against it
    from repro.bench import ExperimentRunner      # run measured experiments
    from repro.exec import ALGORITHMS             # NL / NOJOIN / PHJ / CHJ ...
    from repro.stats import StatsDatabase         # Figure 3 results storage
    from repro.analysis import fit_cost_model     # elicit the cost model
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
