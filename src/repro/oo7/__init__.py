"""A miniature OO7 benchmark [Carey, DeWitt & Naughton, SIGMOD '93].

OO7 is the benchmark the paper positions itself against: it "aims at
comparing the performances of object-oriented systems, not the different
strategies for object query evaluation.  Notably, it considers
navigation down hierarchical structures but not alternative join
evaluation of this navigation" (Sections 2 and 5).

This package implements the OO7 design-database schema (module →
assembly tree → composite parts → atomic-part graphs), a scaled builder,
and the classic operations — T1 full traversal, T6 root-only traversal,
Q1 exact-match lookups — on *this* object engine.  Its purpose here is
to test the paper's closing claim: the proposed handle cures speed up
cold associative accesses "without hurting those of main memory
navigation", i.e. without hurting exactly the workload OO7 measures.
"""

from repro.oo7.builder import OO7Config, OO7Database, build_oo7
from repro.oo7.operations import (
    query_q1,
    traversal_t1,
    traversal_t2,
    traversal_t6,
)
from repro.oo7.schema import build_oo7_schema

__all__ = [
    "OO7Config",
    "OO7Database",
    "build_oo7",
    "build_oo7_schema",
    "traversal_t1",
    "traversal_t2",
    "traversal_t6",
    "query_q1",
]
