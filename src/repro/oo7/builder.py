"""Build a miniature OO7 database on the object engine.

OO7's "small" configuration uses fan-out 3 assemblies over 7 levels,
3 composite parts per base assembly and 20 atomic parts per composite
part in a ring with 3 outgoing connections each.  The defaults here
shrink the tree (the simulator's page mechanics do not need millions of
parts to show the navigation patterns) but keep every structural ratio.

Composite parts are laid out composition-style — each part's atomic
parts directly follow it — which is what makes OO7-style traversals
cache-friendly and is precisely the layout the paper's Figure 13/14
experiments study from the associative side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.derby.lrand48 import Lrand48
from repro.index import BTreeIndex, IndexManager
from repro.objects.database import Database, PersistentCollection
from repro.objects.handle import HandleMode
from repro.oo7.schema import (
    ATOMIC_PART_CLASS,
    BASE_ASSEMBLY_CLASS,
    COMPLEX_ASSEMBLY_CLASS,
    COMPOSITE_PART_CLASS,
    MODULE_CLASS,
    build_oo7_schema,
)
from repro.simtime import CostParams
from repro.storage.rid import Rid

#: File holding the whole design database (OO7 clusters by composition).
DESIGN_FILE = "design"


@dataclass(frozen=True)
class OO7Config:
    """Structural parameters (OO7-small ratios, smaller tree)."""

    assembly_fanout: int = 3
    assembly_levels: int = 4          # OO7-small uses 7
    parts_per_base: int = 3
    atomic_per_composite: int = 20
    connections_per_atomic: int = 3
    seed: int = 7
    scale: float = 0.01               # memory budgets only
    params: CostParams = field(default_factory=lambda: CostParams().scaled(0.01))

    @property
    def n_base_assemblies(self) -> int:
        return self.assembly_fanout ** (self.assembly_levels - 1)

    @property
    def n_composite_parts(self) -> int:
        return self.n_base_assemblies * self.parts_per_base

    @property
    def n_atomic_parts(self) -> int:
        return self.n_composite_parts * self.atomic_per_composite


@dataclass
class OO7Database:
    """A built OO7 module."""

    config: OO7Config
    db: Database
    module_rid: Rid
    atomic_parts: PersistentCollection
    composite_parts: PersistentCollection
    by_atomic_id: BTreeIndex
    by_build_date: BTreeIndex

    def start_cold_run(self) -> None:
        self.db.restart_cold()
        self.db.reset_meters()


def build_oo7(
    config: OO7Config | None = None,
    handle_mode: HandleMode = HandleMode.FULL,
) -> OO7Database:
    """Construct the module, its assembly tree and all parts."""
    config = config or OO7Config()
    db = Database(build_oo7_schema(), config.params, handle_mode)
    db.create_file(DESIGN_FILE)
    atomic_parts = db.new_collection("AtomicParts")
    composite_parts = db.new_collection("CompositeParts")
    manager = IndexManager(db)
    by_atomic_id, __ = manager.create_index(
        "AtomicParts_by_id", atomic_parts, "id"
    )
    by_build_date, __ = manager.create_index(
        "CompositeParts_by_build_date", composite_parts, "build_date"
    )

    rng = Lrand48(config.seed)
    counters = {"assembly": 0, "part": 0, "atomic": 0}
    atomic_pairs: list[tuple[object, Rid]] = []
    composite_pairs: list[tuple[object, Rid]] = []

    def build_composite_part() -> Rid:
        counters["part"] += 1
        part_id = counters["part"]
        # Atomic parts first (they directly follow... the part record is
        # written after, but all land contiguously in the design file).
        atomic_rids: list[Rid] = []
        for __i in range(config.atomic_per_composite):
            counters["atomic"] += 1
            rid = db.create_object(
                ATOMIC_PART_CLASS,
                {
                    "id": counters["atomic"],
                    "x": rng.randrange(100_000),
                    "y": rng.randrange(100_000),
                    "doc_id": part_id,
                    "conn_out": (),
                },
                DESIGN_FILE,
                index_ids=(by_atomic_id.index_id,),
            )
            atomic_rids.append(rid)
            atomic_parts.append(rid)
            atomic_pairs.append((counters["atomic"], rid))
        # Ring + chords connections.
        n = len(atomic_rids)
        for i, rid in enumerate(atomic_rids):
            targets = [
                atomic_rids[(i + 1 + step * 3) % n]
                for step in range(config.connections_per_atomic)
            ]
            db.manager.update_set(rid, "conn_out", db.prepare_set(targets))
        build_date = rng.randrange(10_000)
        part_rid = db.create_object(
            COMPOSITE_PART_CLASS,
            {
                "id": part_id,
                "build_date": build_date,
                "root_part": atomic_rids[0],
                "parts": atomic_rids,
            },
            DESIGN_FILE,
            index_ids=(by_build_date.index_id,),
        )
        composite_parts.append(part_rid)
        composite_pairs.append((build_date, part_rid))
        return part_rid

    def build_assembly(level: int) -> Rid:
        counters["assembly"] += 1
        assembly_id = counters["assembly"]
        if level == config.assembly_levels - 1:
            components = [
                build_composite_part() for __i in range(config.parts_per_base)
            ]
            return db.create_object(
                BASE_ASSEMBLY_CLASS,
                {"id": assembly_id, "components": components},
                DESIGN_FILE,
            )
        children = [
            build_assembly(level + 1) for __i in range(config.assembly_fanout)
        ]
        return db.create_object(
            COMPLEX_ASSEMBLY_CLASS,
            {"id": assembly_id, "level": level, "subassemblies": children},
            DESIGN_FILE,
        )

    root = build_assembly(0)
    module_rid = db.create_object(
        MODULE_CLASS,
        {"id": 1, "title": "module-1", "assemblies": [root]},
        DESIGN_FILE,
    )
    atomic_parts.flush()
    composite_parts.flush()
    by_atomic_id.bulk_build(atomic_pairs)
    by_build_date.bulk_build(composite_pairs)
    db.shutdown()
    return OO7Database(
        config=config,
        db=db,
        module_rid=module_rid,
        atomic_parts=atomic_parts,
        composite_parts=composite_parts,
        by_atomic_id=by_atomic_id,
        by_build_date=by_build_date,
    )
