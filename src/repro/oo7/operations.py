"""The OO7 operations this reproduction needs.

* **T1** — full traversal: depth-first over the assembly tree, then a
  DFS over every composite part's atomic-part graph, touching every
  connection.  Pure pointer navigation — the workload O2's handles were
  tuned for.
* **T6** — sparse traversal: like T1 but visiting only each composite
  part's *root* atomic part.
* **Q1** — exact-match lookups of random atomic parts through the id
  index (the associative side).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.derby.lrand48 import Lrand48
from repro.objects.handle import Handle
from repro.oo7.builder import OO7Database
from repro.oo7.schema import (
    BASE_ASSEMBLY_CLASS,
    COMPLEX_ASSEMBLY_CLASS,
)


@dataclass(frozen=True)
class TraversalResult:
    """Outcome + meters of one traversal."""

    visited_atomic: int
    visited_assemblies: int
    elapsed_s: float
    page_reads: int


def _class_name(handle: Handle) -> str:
    return handle.class_def.name


def _traverse(oo7: OO7Database, full: bool) -> TraversalResult:
    db = oo7.db
    om = db.manager
    visited_atomic = 0
    visited_assemblies = 0

    def visit_atomic_graph(root_rid) -> int:
        """DFS over the connection graph of one composite part."""
        seen = set()
        stack = [root_rid]
        count = 0
        while stack:
            rid = stack.pop()
            if rid in seen:
                continue
            seen.add(rid)
            count += 1
            with om.borrow(rid) as handle:
                __ = om.get_attr(handle, "x")  # the op "does work" per part
                connections = om.get_attr(handle, "conn_out")
            stack.extend(
                r for r in db.iter_set_rids(connections) if r not in seen
            )
        return count

    def visit_assembly(rid) -> None:
        nonlocal visited_atomic, visited_assemblies
        visited_assemblies += 1
        # The handle is released before recursing so the number of live
        # handles stays bounded by one per tree level, as before.
        with om.borrow(rid) as handle:
            name = _class_name(handle)
            if name == COMPLEX_ASSEMBLY_CLASS:
                members = om.get_attr(handle, "subassemblies")
            else:
                assert name == BASE_ASSEMBLY_CLASS
                members = om.get_attr(handle, "components")
        if name == COMPLEX_ASSEMBLY_CLASS:
            for child in db.iter_set_rids(members):
                visit_assembly(child)
            return
        for part_rid in db.iter_set_rids(members):
            with om.borrow(part_rid) as part:
                root = om.get_attr(part, "root_part")
            if full:
                visited_atomic += visit_atomic_graph(root)
            else:
                with om.borrow(root) as root_handle:
                    __ = om.get_attr(root_handle, "x")
                visited_atomic += 1

    with om.borrow(oo7.module_rid) as module:
        assemblies = om.get_attr(module, "assemblies")
    start_reads = db.counters.disk_reads
    for rid in db.iter_set_rids(assemblies):
        visit_assembly(rid)
    return TraversalResult(
        visited_atomic=visited_atomic,
        visited_assemblies=visited_assemblies,
        elapsed_s=db.clock.elapsed_s,
        page_reads=db.counters.disk_reads - start_reads,
    )


def traversal_t1(oo7: OO7Database) -> TraversalResult:
    """OO7 T1: full traversal touching every atomic part and connection."""
    return _traverse(oo7, full=True)


def traversal_t2(oo7: OO7Database, variant: str = "a") -> TraversalResult:
    """OO7 T2: like T1 but *updating* parts along the way.

    Variant ``"a"`` swaps x and y on the root atomic part of each
    composite part; variant ``"b"`` updates every atomic part.  Updates
    are scalar (same-size), so records never move — the cost is dirtied
    pages flowing back through the caches at the next flush.
    """
    if variant not in ("a", "b"):
        raise ValueError(f"unknown T2 variant {variant!r}")
    db = oo7.db
    om = db.manager
    updated = 0

    def update_part(rid) -> None:
        nonlocal updated
        with om.borrow(rid) as handle:
            x = om.get_attr(handle, "x")
            y = om.get_attr(handle, "y")
        om.update_scalar(rid, "x", y)
        om.update_scalar(rid, "y", x)
        updated += 1

    start_reads = db.counters.disk_reads
    for part_rid in oo7.composite_parts.iter_rids():
        with om.borrow(part_rid) as part:
            target = om.get_attr(
                part, "root_part" if variant == "a" else "parts"
            )
        if variant == "a":
            update_part(target)
        else:
            for rid in db.iter_set_rids(target):
                update_part(rid)
    return TraversalResult(
        visited_atomic=updated,
        visited_assemblies=0,
        elapsed_s=db.clock.elapsed_s,
        page_reads=db.counters.disk_reads - start_reads,
    )


def traversal_t6(oo7: OO7Database) -> TraversalResult:
    """OO7 T6: traversal touching only each part's root atomic part."""
    return _traverse(oo7, full=False)


def query_q1(oo7: OO7Database, lookups: int = 10, seed: int = 41) -> int:
    """OO7 Q1: exact-match lookups of random atomic parts by id.
    Returns the number found (== ``lookups`` on a healthy database)."""
    om = oo7.db.manager
    rng = Lrand48(seed)
    found = 0
    for __ in range(lookups):
        part_id = 1 + rng.randrange(oo7.config.n_atomic_parts)
        for rid in oo7.by_atomic_id.lookup(part_id):
            if om.get_attr_at(rid, "id") == part_id:
                found += 1
    return found
