"""The OO7 design-database schema (miniature).

Hierarchy (fan-outs are configuration parameters)::

    Module
      └── ComplexAssembly (a tree of depth `levels`)
            └── BaseAssembly (the leaves)
                  └── CompositePart (shared documents omitted)
                        └── AtomicPart (a connected graph per part)

Atomic parts carry ``x``/``y`` build attributes and are wired to
``conn_out`` neighbours inside their composite part — the structure the
OO7 traversals chase pointer by pointer.
"""

from __future__ import annotations

from repro.objects.model import AttrKind, AttributeDef, Schema

MODULE_CLASS = "Module"
COMPLEX_ASSEMBLY_CLASS = "ComplexAssembly"
BASE_ASSEMBLY_CLASS = "BaseAssembly"
COMPOSITE_PART_CLASS = "CompositePart"
ATOMIC_PART_CLASS = "AtomicPart"


def build_oo7_schema() -> Schema:
    schema = Schema()
    schema.define(
        MODULE_CLASS,
        [
            AttributeDef("id", AttrKind.INT32),
            AttributeDef("title", AttrKind.STRING),
            AttributeDef("assemblies", AttrKind.REF_SET,
                         target=COMPLEX_ASSEMBLY_CLASS),
        ],
    )
    schema.define(
        COMPLEX_ASSEMBLY_CLASS,
        [
            AttributeDef("id", AttrKind.INT32),
            AttributeDef("level", AttrKind.INT32),
            AttributeDef("subassemblies", AttrKind.REF_SET),
        ],
    )
    schema.define(
        BASE_ASSEMBLY_CLASS,
        [
            AttributeDef("id", AttrKind.INT32),
            AttributeDef("components", AttrKind.REF_SET,
                         target=COMPOSITE_PART_CLASS),
        ],
    )
    schema.define(
        COMPOSITE_PART_CLASS,
        [
            AttributeDef("id", AttrKind.INT32),
            AttributeDef("build_date", AttrKind.INT32),
            AttributeDef("root_part", AttrKind.REF, target=ATOMIC_PART_CLASS),
            AttributeDef("parts", AttrKind.REF_SET, target=ATOMIC_PART_CLASS),
        ],
    )
    schema.define(
        ATOMIC_PART_CLASS,
        [
            AttributeDef("id", AttrKind.INT32),
            AttributeDef("x", AttrKind.INT32),
            AttributeDef("y", AttrKind.INT32),
            AttributeDef("doc_id", AttrKind.INT32),
            AttributeDef("conn_out", AttrKind.REF_SET,
                         target=ATOMIC_PART_CLASS),
        ],
    )
    return schema
