"""Read/write locks with FIFO wait queues and deadlock detection.

The simulator is single-threaded at heart, but the multi-client query
service (:mod:`repro.service`) interleaves many sessions cooperatively.
The lock manager therefore supports two modes:

* **fail-fast** (the default, no scheduler attached): an incompatible
  request raises :class:`~repro.errors.LockConflictError` immediately —
  the behaviour the single-client benchmarks always had;
* **wait** (a scheduler attached via :meth:`LockManager.attach`): an
  incompatible request joins a per-rid FIFO wait queue and the caller is
  suspended at the scheduler's next context switch.  Grants are strictly
  FIFO (a later shared request never overtakes an earlier exclusive one,
  so writers cannot starve), sole-holder upgrades take precedence over
  the queue, and a waits-for-graph cycle detector resolves deadlocks by
  aborting the *youngest* transaction in the cycle
  (:class:`~repro.errors.DeadlockError`).  A configurable ``timeout_s``
  (simulated seconds) bounds any wait
  (:class:`~repro.errors.LockTimeoutError`).

Every acquisition and release still charges
:attr:`~repro.simtime.CostParams.lock_us` of bookkeeping — the overhead
the transaction-off loading mode removes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.errors import LockConflictError
from repro.simtime import Bucket, CostParams, SimClock
from repro.storage.rid import Rid


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


@dataclass
class LockRequest:
    """One queued (not yet granted) lock request."""

    txn_id: int
    mode: LockMode
    rid: Rid
    enqueued_s: float
    granted: bool = False


@dataclass
class _LockState:
    """Grant table + wait queue for one rid."""

    #: txn id -> strongest mode granted to that transaction.
    granted: dict[int, LockMode] = field(default_factory=dict)
    queue: list[LockRequest] = field(default_factory=list)

    @property
    def mode(self) -> LockMode:
        """Strongest granted mode (SHARED when empty)."""
        if LockMode.EXCLUSIVE in self.granted.values():
            return LockMode.EXCLUSIVE
        return LockMode.SHARED


class LockManager:
    """Per-rid shared/exclusive locks with optional waiting.

    ``attach(wait, wake)`` plugs in a cooperative scheduler: ``wait`` is
    called with ``(txn_id, rid)`` and must suspend the caller until the
    request is granted (returning normally) or aborted (raising
    :class:`~repro.errors.DeadlockError` /
    :class:`~repro.errors.LockTimeoutError`); ``wake`` is called with a
    ``txn_id`` whose queued request has just been granted.

    Snapshot-isolation readers never enter this table at all —
    ``Transaction.read_lock`` is a no-op under ``isolation="si"``, so
    scans cannot contribute to ``waits`` (the measurable zero-lock-wait
    claim); only X-locks (writers, both isolation levels) do.
    """

    def __init__(
        self,
        clock: SimClock,
        params: CostParams,
        timeout_s: float | None = None,
    ):
        self.clock = clock
        self.params = params
        #: Simulated seconds a request may wait before it times out
        #: (``None``: wait forever, rely on deadlock detection).
        self.timeout_s = timeout_s
        #: Optional :class:`~repro.recovery.TransientFaultInjector`:
        #: during one of its seeded *lock-timeout storms* the effective
        #: timeout shrinks, so waiters that would normally be patient
        #: abort in bursts (the transient-fault analogue of a congested
        #: lock service).
        self.injector = None
        self._locks: dict[Rid, _LockState] = {}
        self._wait: Callable[[int, Rid], None] | None = None
        self._wake: Callable[[int], None] | None = None
        #: Requests that could not be granted immediately (queued waits
        #: in scheduler mode, fail-fast conflicts otherwise).
        self.waits = 0

    # -- scheduler wiring ---------------------------------------------------

    def attach(
        self,
        wait: Callable[[int, Rid], None],
        wake: Callable[[int], None],
    ) -> None:
        """Enable wait mode (see class docstring)."""
        self._wait = wait
        self._wake = wake

    def detach(self) -> None:
        """Return to fail-fast mode."""
        self._wait = None
        self._wake = None

    # -- acquisition --------------------------------------------------------

    def acquire(self, txn_id: int, rid: Rid, mode: LockMode) -> None:
        """Grant the lock, wait for it, or raise
        :class:`LockConflictError` (fail-fast mode)."""
        self.clock.charge_us(Bucket.LOCK, self.params.lock_us)
        state = self._locks.get(rid)
        if state is None:
            state = self._locks[rid] = _LockState()
        if self._grantable_now(state, txn_id, mode):
            held = state.granted.get(txn_id)
            state.granted[txn_id] = (
                mode if held is None else self._stronger(held, mode)
            )
            return
        self.waits += 1
        if self._wait is None:
            raise LockConflictError(
                f"txn {txn_id} requests {mode.value} on {rid} held "
                f"{state.mode.value} by {sorted(state.granted)}"
            )
        request = LockRequest(txn_id, mode, rid, self.clock.elapsed_s)
        state.queue.append(request)
        try:
            self._wait(txn_id, rid)
        except BaseException:
            self.cancel_wait(txn_id)
            raise
        if not request.granted:  # pragma: no cover - scheduler contract
            self.cancel_wait(txn_id)
            raise LockConflictError(
                f"txn {txn_id} resumed without a grant on {rid}"
            )

    def _grantable_now(
        self, state: _LockState, txn_id: int, mode: LockMode
    ) -> bool:
        """Can this fresh request be granted without queueing?"""
        held = state.granted.get(txn_id)
        if held is not None:
            if held is LockMode.EXCLUSIVE or mode is LockMode.SHARED:
                return True  # re-entrant / already stronger
            # S -> X upgrade: takes precedence over the queue, but only
            # once every other holder is gone.
            return set(state.granted) == {txn_id}
        if state.granted:
            return (
                mode is LockMode.SHARED
                and state.mode is LockMode.SHARED
                and not state.queue  # FIFO: don't overtake a waiter
            )
        return not state.queue

    # -- release / promotion -----------------------------------------------

    def release_all(self, txn_id: int) -> int:
        """Drop every lock held by ``txn_id`` (and any of its queued
        requests); promotes waiters.  Returns how many locks dropped."""
        self.cancel_wait(txn_id)
        released = 0
        for rid in list(self._locks):
            state = self._locks[rid]
            if txn_id in state.granted:
                del state.granted[txn_id]
                released += 1
                self.clock.charge_us(Bucket.LOCK, self.params.lock_us)
            self._promote(rid)
        return released

    def clear(self) -> None:
        """Drop all lock state without promotion or charges — the lock
        table is volatile and a simulated crash simply loses it."""
        self._locks.clear()

    def cancel_wait(self, txn_id: int) -> None:
        """Remove every queued (ungranted) request of ``txn_id``."""
        for rid in list(self._locks):
            state = self._locks[rid]
            before = len(state.queue)
            state.queue = [
                req for req in state.queue if req.txn_id != txn_id
            ]
            if len(state.queue) != before:
                self._promote(rid)

    def _promote(self, rid: Rid) -> None:
        """Grant the longest grantable FIFO prefix of the wait queue."""
        state = self._locks.get(rid)
        if state is None:
            return
        while state.queue:
            head = state.queue[0]
            held = state.granted.get(head.txn_id)
            if held is not None:
                # Waiting upgrade: needs to be the sole holder.
                if set(state.granted) != {head.txn_id}:
                    break
                state.granted[head.txn_id] = self._stronger(held, head.mode)
            elif not state.granted:
                state.granted[head.txn_id] = head.mode
            elif (
                head.mode is LockMode.SHARED
                and state.mode is LockMode.SHARED
            ):
                state.granted[head.txn_id] = head.mode
            else:
                break
            head.granted = True
            state.queue.pop(0)
            if self._wake is not None:
                self._wake(head.txn_id)
        if not state.granted and not state.queue:
            del self._locks[rid]

    # -- deadlock / timeout -------------------------------------------------

    def waits_for(self) -> dict[int, set[int]]:
        """The waits-for graph: waiter txn -> txns it waits on (current
        holders plus earlier waiters on the same rid)."""
        graph: dict[int, set[int]] = {}
        for state in self._locks.values():
            ahead: list[int] = []
            for req in state.queue:
                edges = graph.setdefault(req.txn_id, set())
                edges.update(t for t in state.granted if t != req.txn_id)
                edges.update(t for t in ahead if t != req.txn_id)
                ahead.append(req.txn_id)
        return graph

    def find_deadlock_victim(self) -> int | None:
        """Detect a waits-for cycle; return the youngest (highest-id)
        transaction in it, or ``None`` when there is no cycle."""
        graph = self.waits_for()
        visiting: set[int] = set()
        done: set[int] = set()
        stack: list[int] = []

        def visit(node: int) -> list[int] | None:
            visiting.add(node)
            stack.append(node)
            for succ in sorted(graph.get(node, ())):
                if succ in visiting:
                    return stack[stack.index(succ):]
                if succ not in done:
                    cycle = visit(succ)
                    if cycle is not None:
                        return cycle
            visiting.discard(node)
            done.add(node)
            stack.pop()
            return None

        for start in sorted(graph):
            if start in done:
                continue
            cycle = visit(start)
            if cycle is not None:
                return max(cycle)
        return None

    def expired_waiters(self) -> list[int]:
        """Txns whose queued request has waited past the effective
        timeout (``timeout_s``, shrunk during an injected storm)."""
        timeout_s = self.effective_timeout_s()
        if timeout_s is None:
            return []
        now = self.clock.elapsed_s
        out: list[int] = []
        for state in self._locks.values():
            for req in state.queue:
                if now - req.enqueued_s >= timeout_s:
                    out.append(req.txn_id)
        return sorted(set(out))

    def effective_timeout_s(self) -> float | None:
        """``timeout_s``, tightened by an active lock-timeout storm."""
        if self.injector is None:
            return self.timeout_s
        return self.injector.lock_timeout_s(
            self.timeout_s, self.clock.elapsed_s
        )

    # -- introspection ------------------------------------------------------

    def held(self, rid: Rid) -> tuple[LockMode, set[int]] | None:
        state = self._locks.get(rid)
        if state is None or not state.granted:
            return None
        return state.mode, set(state.granted)

    def waiters(self, rid: Rid) -> list[tuple[int, LockMode]]:
        """The FIFO wait queue for one rid, as (txn, mode) pairs."""
        state = self._locks.get(rid)
        if state is None:
            return []
        return [(req.txn_id, req.mode) for req in state.queue]

    @property
    def lock_count(self) -> int:
        return sum(1 for s in self._locks.values() if s.granted)

    @property
    def waiting_count(self) -> int:
        return sum(len(s.queue) for s in self._locks.values())

    def waiting_txns(self) -> Iterable[int]:
        for state in self._locks.values():
            for req in state.queue:
                yield req.txn_id

    @staticmethod
    def _stronger(a: LockMode, b: LockMode) -> LockMode:
        if LockMode.EXCLUSIVE in (a, b):
            return LockMode.EXCLUSIVE
        return LockMode.SHARED
