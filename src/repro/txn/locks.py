"""Read/write locks.

The simulator is single-threaded, so locks never *block*; what they cost
is bookkeeping per acquisition (the overhead the transaction-off mode
removes) and what they enforce is conflict detection between concurrently
open transactions (a second transaction requesting an incompatible lock
gets :class:`~repro.errors.LockConflictError` immediately).
"""

from __future__ import annotations

import enum

from repro.errors import LockConflictError
from repro.simtime import Bucket, CostParams, SimClock
from repro.storage.rid import Rid


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


class LockManager:
    """Per-rid shared/exclusive locks."""

    def __init__(self, clock: SimClock, params: CostParams):
        self.clock = clock
        self.params = params
        #: rid -> (mode, set of holder txn ids)
        self._locks: dict[Rid, tuple[LockMode, set[int]]] = {}

    def acquire(self, txn_id: int, rid: Rid, mode: LockMode) -> None:
        """Grant the lock or raise :class:`LockConflictError`."""
        self.clock.charge_us(Bucket.LOCK, self.params.lock_us)
        held = self._locks.get(rid)
        if held is None:
            self._locks[rid] = (mode, {txn_id})
            return
        held_mode, holders = held
        if holders == {txn_id}:
            # Upgrade/downgrade by the sole holder is always legal.
            self._locks[rid] = (self._stronger(held_mode, mode), holders)
            return
        if mode is LockMode.SHARED and held_mode is LockMode.SHARED:
            holders.add(txn_id)
            return
        raise LockConflictError(
            f"txn {txn_id} requests {mode.value} on {rid} held "
            f"{held_mode.value} by {sorted(holders)}"
        )

    def release_all(self, txn_id: int) -> int:
        """Drop every lock held by ``txn_id``; returns how many."""
        released = 0
        for rid in list(self._locks):
            mode, holders = self._locks[rid]
            if txn_id in holders:
                holders.discard(txn_id)
                released += 1
                self.clock.charge_us(Bucket.LOCK, self.params.lock_us)
                if not holders:
                    del self._locks[rid]
        return released

    def held(self, rid: Rid) -> tuple[LockMode, set[int]] | None:
        return self._locks.get(rid)

    @property
    def lock_count(self) -> int:
        return len(self._locks)

    @staticmethod
    def _stronger(a: LockMode, b: LockMode) -> LockMode:
        if LockMode.EXCLUSIVE in (a, b):
            return LockMode.EXCLUSIVE
        return LockMode.SHARED
