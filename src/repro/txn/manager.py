"""Transaction manager.

Models the two facts of O2 transaction life the paper's loading war
stories revolve around (Section 3.2):

* a transaction can only create so many objects before the client runs
  out of memory — :class:`Transaction` raises
  :class:`~repro.errors.TransactionMemoryError` past its budget, so
  loaders must commit in batches (the paper settled on 10,000);
* the *transaction-off* mode drops the log and the locks entirely, which
  is how large databases load fastest ("we used this mode only for
  loading, not for running our tests").
"""

from __future__ import annotations

from repro.errors import TransactionMemoryError, TransactionStateError
from repro.objects.database import Database
from repro.simtime import Bucket
from repro.storage.rid import Rid
from repro.txn.locks import LockManager, LockMode
from repro.txn.log import WriteAheadLog

#: Objects one transaction may create before the simulated client memory
#: is exhausted (the batch size the paper settled on).
DEFAULT_OBJECT_BUDGET = 10_000


class Transaction:
    """One open transaction.  Usable as a context manager (commits on
    clean exit, aborts on exception)."""

    def __init__(self, manager: "TransactionManager", txn_id: int, logged: bool):
        self.manager = manager
        self.txn_id = txn_id
        self.logged = logged
        self.objects_created = 0
        self.state = "active"

    # -- operations --------------------------------------------------------

    def create_object(
        self,
        class_name: str,
        values: dict[str, object],
        file_name: str,
        indexed: bool = False,
        index_ids: tuple[int, ...] = (),
    ) -> Rid:
        """Create an object inside this transaction, enforcing the
        object budget and paying log + lock overhead when logged."""
        self._require_active()
        if self.objects_created >= self.manager.object_budget:
            raise TransactionMemoryError(
                f"transaction {self.txn_id} created "
                f"{self.objects_created} objects; commit before creating "
                "more (the paper's 'out of memory')"
            )
        rid = self.manager.db.create_object(
            class_name, values, file_name, indexed, index_ids
        )
        self.objects_created += 1
        if self.logged:
            record_len = 64  # header + redo info approximation
            self.manager.log.append(self.txn_id, "create", record_len)
            self.manager.locks.acquire(self.txn_id, rid, LockMode.EXCLUSIVE)
        return rid

    def read_lock(self, rid: Rid) -> None:
        self._require_active()
        if self.logged:
            self.manager.locks.acquire(self.txn_id, rid, LockMode.SHARED)

    def write_lock(self, rid: Rid) -> None:
        self._require_active()
        if self.logged:
            self.manager.locks.acquire(self.txn_id, rid, LockMode.EXCLUSIVE)

    def log_update(self, nbytes: int) -> None:
        self._require_active()
        if self.logged:
            self.manager.log.append(self.txn_id, "update", nbytes)

    # -- completion ---------------------------------------------------------

    def commit(self) -> None:
        self._require_active()
        if self.logged:
            self.manager.log.append(self.txn_id, "commit", 16)
            self.manager.log.flush()
            self.manager.locks.release_all(self.txn_id)
        self.manager.db.clock.charge_ms(
            Bucket.LOG, self.manager.db.params.commit_ms
        )
        self.state = "committed"
        self.manager._on_finished(self)

    def abort(self) -> None:
        self._require_active()
        if self.logged:
            self.manager.log.append(self.txn_id, "abort", 16)
            self.manager.locks.release_all(self.txn_id)
        self.state = "aborted"
        self.manager._on_finished(self)

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.state != "active":
            return
        if exc_type is None:
            self.commit()
        else:
            self.abort()

    def _require_active(self) -> None:
        if self.state != "active":
            raise TransactionStateError(
                f"transaction {self.txn_id} is {self.state}"
            )


class TransactionManager:
    """Opens transactions against one database."""

    def __init__(self, db: Database, object_budget: int = DEFAULT_OBJECT_BUDGET):
        if object_budget < 1:
            raise ValueError("object budget must be >= 1")
        self.db = db
        self.object_budget = object_budget
        self.log = WriteAheadLog(db.clock, db.params)
        self.locks = LockManager(db.clock, db.params)
        self._next_txn_id = 1
        self._active: dict[int, Transaction] = {}
        self.committed = 0
        self.aborted = 0

    def begin(self, logged: bool = True) -> Transaction:
        """Open a transaction.  ``logged=False`` is the transaction-off
        loading mode: no log, no locks, no commit flush — but the object
        budget still applies (it models client memory, not the log)."""
        txn = Transaction(self, self._next_txn_id, logged)
        self._next_txn_id += 1
        self._active[txn.txn_id] = txn
        return txn

    @property
    def active_count(self) -> int:
        return len(self._active)

    def _on_finished(self, txn: Transaction) -> None:
        self._active.pop(txn.txn_id, None)
        if txn.state == "committed":
            self.committed += 1
        else:
            self.aborted += 1
