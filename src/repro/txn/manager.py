"""Transaction manager.

Models the two facts of O2 transaction life the paper's loading war
stories revolve around (Section 3.2):

* a transaction can only create so many objects before the client runs
  out of memory — :class:`Transaction` raises
  :class:`~repro.errors.TransactionMemoryError` past its budget, so
  loaders must commit in batches (the paper settled on 10,000);
* the *transaction-off* mode drops the log and the locks entirely, which
  is how large databases load fastest ("we used this mode only for
  loading, not for running our tests").

With ``recovery=True`` the manager additionally makes those trade-offs
*demonstrable*: logged transactions write physical records (page-level
before/after images chained by ``prev_lsn``), aborts roll the pages back
through compensation records, and :mod:`repro.recovery` can crash the
system and restart it.  Transaction-off work writes nothing to the log,
so after a crash it is simply gone — the durability half of the paper's
loading trade-off.
"""

from __future__ import annotations

from repro.errors import (
    TransactionMemoryError,
    TransactionStateError,
    WriteConflictError,
)
from repro.objects.database import Database
from repro.simtime import Bucket
from repro.storage.page import EMPTY_PAGE_IMAGE
from repro.storage.rid import Rid
from repro.txn.locks import LockManager, LockMode
from repro.txn.log import (
    ABORT_RECORD_BYTES,
    BEGIN_RECORD_BYTES,
    COMMIT_RECORD_BYTES,
    UPDATE_HEADER_BYTES,
    WriteAheadLog,
    image_delta_bytes,
)
from repro.txn.mvcc import Snapshot, SnapshotView, VersionStore

#: Objects one transaction may create before the simulated client memory
#: is exhausted (the batch size the paper settled on).
DEFAULT_OBJECT_BUDGET = 10_000

#: The isolation levels ``begin`` accepts.
ISOLATION_LEVELS = ("2pl", "si")


class Transaction:
    """One open transaction.  Usable as a context manager (commits on
    clean exit, aborts on exception)."""

    def __init__(
        self,
        manager: "TransactionManager",
        txn_id: int,
        logged: bool,
        isolation: str = "2pl",
    ):
        self.manager = manager
        self.txn_id = txn_id
        self.logged = logged
        self.isolation = isolation
        self.objects_created = 0
        self.state = "active"
        #: LSN of this transaction's most recent log record (undo chain).
        self.last_lsn = 0
        #: Whether the commit record is known durable (ack returned).
        self.durable = False
        #: Commit timestamp (assigned at commit; 0 while active / 2PL-only
        #: runs where MVCC was never enabled).
        self.commit_ts = 0
        #: Snapshot taken at begin for ``isolation="si"`` (else ``None``).
        self.snapshot: Snapshot | None = None
        self._view: SnapshotView | None = None
        self._write_set: set[Rid] = set()
        self._created: list[Rid] = []

    @property
    def _physical(self) -> bool:
        return self.logged and self.manager.recovery

    @property
    def view(self) -> SnapshotView | None:
        """This transaction's snapshot view (SI only), created lazily and
        shared across installs so ``version_reads`` accumulates."""
        if self.snapshot is None:
            return None
        if self._view is None:
            self._view = SnapshotView(self.manager.mvcc, self.snapshot)
        return self._view

    # -- operations --------------------------------------------------------

    def create_object(
        self,
        class_name: str,
        values: dict[str, object],
        file_name: str,
        indexed: bool = False,
        index_ids: tuple[int, ...] = (),
    ) -> Rid:
        """Create an object inside this transaction, enforcing the
        object budget and paying log + lock overhead when logged."""
        self._require_active()
        if self.objects_created >= self.manager.object_budget:
            raise TransactionMemoryError(
                f"transaction {self.txn_id} created "
                f"{self.objects_created} objects; commit before creating "
                "more (the paper's 'out of memory')"
            )
        if self._physical:
            db = self.manager.db
            sfile = db.file(file_name)
            rid = self._physical_op(
                "create",
                self._tail_keys(sfile.file_id),
                lambda: db.create_object(
                    class_name, values, file_name, indexed, index_ids
                ),
            )
            self._created.append(rid)
            self.objects_created += 1
            self.manager.locks.acquire(self.txn_id, rid, LockMode.EXCLUSIVE)
            self._si_note_create(rid)
            return rid
        rid = self.manager.db.create_object(
            class_name, values, file_name, indexed, index_ids
        )
        self.objects_created += 1
        if self.logged:
            record_len = 64  # header + redo info approximation
            self.manager.log.append(self.txn_id, "create", record_len)
            self.manager.locks.acquire(self.txn_id, rid, LockMode.EXCLUSIVE)
            self._si_note_create(rid)
        return rid

    def update_scalar(self, rid: Rid, attr_name: str, value: object) -> Rid:
        """Write-lock ``rid`` and update one scalar attribute through the
        object manager.  In recovery mode the touched pages' before and
        after images are logged; otherwise only the legacy 8-byte cost
        record is charged (identical to the historical Session path)."""
        self._require_active()
        if not self._physical:
            self.write_lock(rid)
            self._si_prepare_write(rid)
            new_rid = self.manager.db.manager.update_scalar(rid, attr_name, value)
            self.log_update(8)
            return new_rid
        self.manager.locks.acquire(self.txn_id, rid, LockMode.EXCLUSIVE)
        self._si_prepare_write(rid)
        db = self.manager.db
        return self._physical_op(
            "update",
            self._update_keys(rid),
            lambda: db.manager.update_scalar(rid, attr_name, value),
        )

    def update_set(self, rid: Rid, attr_name: str, value: object) -> Rid:
        """Like :meth:`update_scalar` for set-valued attributes (these
        can grow the record and move it to another page, so the physical
        log may carry several page images)."""
        self._require_active()
        if not self._physical:
            self.write_lock(rid)
            self._si_prepare_write(rid)
            new_rid = self.manager.db.manager.update_set(rid, attr_name, value)
            self.log_update(16)
            return new_rid
        self.manager.locks.acquire(self.txn_id, rid, LockMode.EXCLUSIVE)
        self._si_prepare_write(rid)
        db = self.manager.db
        return self._physical_op(
            "update",
            self._update_keys(rid),
            lambda: db.manager.update_set(rid, attr_name, value),
        )

    def read_lock(self, rid: Rid) -> None:
        """Shared-lock ``rid`` — a no-op under snapshot isolation, where
        reads resolve through the version chains instead of the lock
        table (zero read locks, zero lock waits for scans)."""
        self._require_active()
        if self.logged and self.isolation != "si":
            self.manager.locks.acquire(self.txn_id, rid, LockMode.SHARED)

    def read_attr(self, rid: Rid, name: str) -> object:
        """Read one attribute at this transaction's isolation level:
        under SI through the snapshot view (no locks), under 2PL via a
        shared lock and the live record."""
        self._require_active()
        om = self.manager.db.manager
        if self.isolation == "si":
            saved = om.read_view
            om.read_view = self.view
            try:
                return om.get_attr_at(rid, name)
            finally:
                om.read_view = saved
        self.read_lock(rid)
        return om.get_attr_at(rid, name)

    def write_lock(self, rid: Rid) -> None:
        self._require_active()
        if self.logged:
            self.manager.locks.acquire(self.txn_id, rid, LockMode.EXCLUSIVE)

    def log_update(self, nbytes: int) -> None:
        self._require_active()
        if self.logged:
            self.manager.log.append(self.txn_id, "update", nbytes)

    # -- MVCC write-side hooks ----------------------------------------------

    def _si_prepare_write(self, rid: Rid) -> None:
        """Runs under the freshly-acquired X-lock, before the in-place
        write: first-committer-wins check, then stash the committed
        pre-image into the version chain (once per rid per txn).

        Stashing happens for *every* logged write once MVCC is enabled —
        not just writes by SI transactions — because a concurrent
        snapshot must be able to see the pre-image of a 2PL writer's
        update too."""
        manager = self.manager
        if not manager.mvcc_enabled or not self.logged:
            return
        if rid in self._write_set:
            return
        store = manager.mvcc
        if (
            self.snapshot is not None
            and store.committed_ts(rid) > self.snapshot.begin_ts
        ):
            manager.conflicts += 1
            raise WriteConflictError(
                f"txn {self.txn_id} (begin_ts={self.snapshot.begin_ts}) "
                f"lost first-committer-wins on {rid}: a version committed "
                f"at ts={store.committed_ts(rid)} postdates its snapshot"
            )
        record, __ = manager.db.manager.file_for(rid).read_resolving(rid)
        store.stash(rid, record, self.txn_id)
        self._write_set.add(rid)

    def _si_note_create(self, rid: Rid) -> None:
        if not self.manager.mvcc_enabled or not self.logged:
            return
        self.manager.mvcc.note_create(rid, self.txn_id)
        self._write_set.add(rid)

    # -- physical logging (recovery mode) -----------------------------------

    def _tail_keys(self, file_id: int) -> set[tuple[int, int]]:
        """Pages an append-at-tail insert may touch before it runs."""
        n = self.manager.db.disk.num_pages(file_id)
        return {(file_id, n - 1)} if n else set()

    def _update_keys(self, rid: Rid) -> set[tuple[int, int]]:
        """Pages an in-place update may touch: the rid's origin page,
        the forwarding target (if the record already moved) and the
        file's tail page (where a growing record would be reallocated)."""
        db = self.manager.db
        keys = {(rid.file_id, rid.page_no)}
        page = db.disk.peek_page(rid.file_id, rid.page_no)
        target = page.forward_target(rid.slot)
        if target is not None:
            keys.add((target.file_id, target.page_no))
        keys |= self._tail_keys(rid.file_id)
        return keys

    def _physical_op(self, kind: str, pre_keys: set[tuple[int, int]], apply) -> Rid:
        """Run ``apply`` and log one physical record per page it changed.

        ``pre_keys`` are the pages the operation may touch; their images
        are captured first (page access is uncharged here — the charged
        reads happen inside ``apply`` through the normal pager path).

        The capture/apply/log sequence must be atomic with respect to
        the cooperative scheduler: a page fault inside ``apply`` would
        otherwise yield to another session whose writes land between our
        two captures and contaminate the images.  Locks are always taken
        *before* this method, so suspending the fault-yield hook cannot
        deadlock; the fault I/O itself is still charged.
        """
        db = self.manager.db
        log = self.manager.log
        saved_on_fault = db.system.on_fault
        db.system.on_fault = None
        try:
            return self._physical_op_atomic(kind, pre_keys, apply, db, log)
        finally:
            db.system.on_fault = saved_on_fault

    def _physical_op_atomic(self, kind, pre_keys, apply, db, log) -> Rid:
        befores = {
            key: db.disk.peek_page(*key).capture() for key in pre_keys
        }
        result_rid = apply()
        keys = set(pre_keys)
        keys.add((result_rid.file_id, result_rid.page_no))
        for key in sorted(keys):
            page = db.disk.peek_page(*key)
            after = page.capture()
            before = befores.get(key, EMPTY_PAGE_IMAGE)
            if before == after:
                continue
            record = log.append(
                self.txn_id,
                kind,
                UPDATE_HEADER_BYTES + image_delta_bytes(before, after),
                prev_lsn=self.last_lsn,
                page_key=key,
                before=before,
                after=after,
            )
            self.last_lsn = record.lsn
            log.stamp(page, record)
        return result_rid

    def _rollback_physical(self) -> None:
        """Undo this transaction's page changes, newest first, logging a
        compensation (``clr``) record for each so a crash during or
        after the rollback replays it rather than repeating it."""
        db = self.manager.db
        log = self.manager.log
        compensated = {
            r.undoes_lsn
            for r in log.records
            if r.txn_id == self.txn_id and r.kind == "clr"
        }
        mine = [
            r
            for r in log.records
            if r.txn_id == self.txn_id
            and r.kind in ("create", "update")
            and r.lsn not in compensated
        ]
        for record in reversed(mine):
            page = db.system.get_page(*record.page_key)
            before = page.capture()
            page.apply_undo(record.before, record.after)
            clr = log.append(
                self.txn_id,
                "clr",
                record.nbytes,
                prev_lsn=self.last_lsn,
                page_key=record.page_key,
                before=before,
                after=page.capture(),
                undoes_lsn=record.lsn,
            )
            self.last_lsn = clr.lsn
            log.stamp(page, clr)
            db.system.mark_dirty(*record.page_key)
            db.handles.forget_page(*record.page_key)
            db.clock.charge_us(Bucket.LOG, db.params.log_apply_us)
        for rid in self._created:
            sfile = db.manager.file_for(rid)
            sfile._record_count -= 1

    # -- completion ---------------------------------------------------------

    def commit(self) -> None:
        self._require_active()
        if self.logged:
            # The commit timestamp is drawn *before* the record is
            # appended so it rides in the durable record (restart
            # restores the high-water from it), but the manager's
            # high-water only advances after the flush succeeds — the
            # same moment the versions become visible, so commit order
            # and visibility order are one total order.
            ts = self.manager.commit_ts + 1 if self.manager.mvcc_enabled else 0
            self.manager.log.append(
                self.txn_id,
                "commit",
                COMMIT_RECORD_BYTES,
                prev_lsn=self.last_lsn,
                commit_ts=ts,
            )
            self.manager.log.flush()
            self.durable = True
            if self.manager.mvcc_enabled:
                self.manager.commit_ts = ts
                self.commit_ts = ts
                self.manager.mvcc.commit(self.txn_id, ts)
            # Strict 2PL: locks may only drop once the commit record is
            # durable, so this must NOT move into a finally around
            # flush() — if the flush fails the locks have to stay held
            # (a crash clears the volatile lock table anyway).
            # simlint: ok[PAIR] locks must outlive an un-flushed commit record
            self.manager.locks.release_all(self.txn_id)
        self.manager.db.clock.charge_ms(
            Bucket.LOG, self.manager.db.params.commit_ms
        )
        self.state = "committed"
        self.manager._on_finished(self)

    def abort(self) -> None:
        self._require_active()
        if self.logged:
            try:
                if self.manager.recovery:
                    self._rollback_physical()
                self.manager.log.append(
                    self.txn_id,
                    "abort",
                    ABORT_RECORD_BYTES,
                    prev_lsn=self.last_lsn,
                )
            finally:
                # Unlike commit, abort must shed its locks even when the
                # rollback itself fails (e.g. an injected crash point):
                # a dead transaction holding locks deadlocks every later
                # client that touches the same pages.
                self.manager.locks.release_all(self.txn_id)
                # Withdraw pending chain entries likewise: the rollback
                # restored the live record to exactly the stashed image,
                # so keeping them would duplicate the live state.
                if self.manager.mvcc_enabled:
                    self.manager.mvcc.abort(self.txn_id)
        self.state = "aborted"
        self.manager._on_finished(self)

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.state != "active":
            return
        if exc_type is None:
            self.commit()
        else:
            self.abort()

    def _require_active(self) -> None:
        if self.state != "active":
            raise TransactionStateError(
                f"transaction {self.txn_id} is {self.state}"
            )


class TransactionManager:
    """Opens transactions against one database.

    ``recovery=True`` switches logged transactions to physical logging
    (page images, begin records, rollback on abort) and registers the
    log with the disk so the WAL rule is enforced on page writes.  The
    default stays the historical cost-only mode, whose charges are
    byte-for-byte unchanged.
    """

    def __init__(
        self,
        db: Database,
        object_budget: int = DEFAULT_OBJECT_BUDGET,
        recovery: bool = False,
    ):
        if object_budget < 1:
            raise ValueError("object budget must be >= 1")
        self.db = db
        self.object_budget = object_budget
        self.recovery = recovery
        self.log = WriteAheadLog(db.clock, db.params)
        self.locks = LockManager(db.clock, db.params)
        self._next_txn_id = 1
        self._active: dict[int, Transaction] = {}
        self.committed = 0
        self.aborted = 0
        #: Monotonic commit-timestamp high-water (restored from durable
        #: commit records at restart).  Only advances once MVCC is on.
        self.commit_ts = 0
        #: Per-record version chains + commit-ts bookkeeping (volatile).
        self.mvcc = VersionStore(db.clock, db.params)
        #: Flips permanently at the first ``begin(isolation="si")`` (or
        #: :meth:`enable_mvcc`); until then no write stashes pre-images,
        #: so pure-2PL runs stay byte-for-byte cost-identical to the
        #: pre-MVCC system.
        self.mvcc_enabled = False
        #: First-committer-wins losers (``WriteConflictError`` raised).
        self.conflicts = 0
        self._snapshots: dict[int, Snapshot] = {}
        if recovery:
            db.disk.wal = self.log

    def begin(self, logged: bool = True, isolation: str = "2pl") -> Transaction:
        """Open a transaction.  ``logged=False`` is the transaction-off
        loading mode: no log, no locks, no commit flush — but the object
        budget still applies (it models client memory, not the log).

        ``isolation="si"`` opens a snapshot-isolation transaction: it
        captures a :class:`~repro.txn.mvcc.Snapshot` now, reads through
        the version chains with zero read locks, keeps 2PL X-locks for
        writes, and loses first-committer-wins races with
        :class:`~repro.errors.WriteConflictError`.  SI requires recovery
        mode — the stashed pre-images double as the images aborts roll
        back to, which only physical logging guarantees."""
        if isolation not in ISOLATION_LEVELS:
            raise ValueError(
                f"unknown isolation level {isolation!r}; "
                f"pick one of {ISOLATION_LEVELS}"
            )
        if isolation == "si":
            if not logged:
                raise TransactionStateError(
                    "snapshot isolation requires a logged transaction"
                )
            if not self.recovery:
                raise TransactionStateError(
                    "snapshot isolation requires recovery mode (aborts "
                    "must physically restore the stashed pre-images)"
                )
            self.enable_mvcc()
        txn = Transaction(self, self._next_txn_id, logged, isolation=isolation)
        self._next_txn_id += 1
        if isolation == "si":
            txn.snapshot = Snapshot(
                txn.txn_id, self.commit_ts, frozenset(self._active)
            )
            self._snapshots[txn.txn_id] = txn.snapshot
        self._active[txn.txn_id] = txn
        if logged and self.recovery:
            record = self.log.append(txn.txn_id, "begin", BEGIN_RECORD_BYTES)
            txn.last_lsn = record.lsn
        return txn

    def enable_mvcc(self) -> None:
        """Start stashing pre-images for every logged write.  Writes
        already in flight before this point are not versioned; a service
        configured with ``isolation="si"`` enables MVCC before any
        client runs, so its snapshots are complete."""
        self.mvcc_enabled = True

    # -- MVCC garbage collection ---------------------------------------

    @property
    def oldest_snapshot_ts(self) -> int | None:
        """Begin timestamp of the oldest active snapshot (the GC
        horizon), or ``None`` when no SI transaction is active."""
        if not self._snapshots:
            return None
        return min(s.begin_ts for s in self._snapshots.values())

    def vacuum(self) -> int:
        """Sweep version chains: drop every version older than the
        oldest active snapshot.  Returns versions freed.  Driven by the
        service's resource governor every few commits."""
        if not self.mvcc_enabled:
            return 0
        horizon = self.oldest_snapshot_ts
        if horizon is None:
            horizon = self.commit_ts
        return self.mvcc.sweep(horizon)

    @property
    def active_count(self) -> int:
        return len(self._active)

    def active_transactions(self) -> list[Transaction]:
        """Open transactions, oldest first (checkpoint ATT source)."""
        return [self._active[k] for k in sorted(self._active)]

    def crash_volatile(self) -> None:
        """A crash wiped the process: every open transaction simply
        ceases to exist (restart will undo the losers from the log), all
        lock state evaporates, and so do the version chains — restart
        rebuilds nothing (the committed state needs no history) and
        restores only the commit-ts high-water from durable commits."""
        for txn in self._active.values():
            txn.state = "crashed"
        self._active.clear()
        self.locks.clear()
        self._snapshots.clear()
        self.mvcc.clear()

    def _on_finished(self, txn: Transaction) -> None:
        self._active.pop(txn.txn_id, None)
        self._snapshots.pop(txn.txn_id, None)
        om = self.db.manager
        if txn._view is not None and om.read_view is txn._view:
            om.read_view = None
        if txn.state == "committed":
            self.committed += 1
        else:
            self.aborted += 1
