"""Write-ahead log.

The log models the *cost* of logging, which is what the paper's loading
experiments are about: every logged write charges CPU, and commits flush
the accumulated log bytes as page writes.  (Recovery itself is out of
scope: the simulated disk never crashes.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simtime import Bucket, CostParams, SimClock
from repro.units import PAGE_SIZE, pages_for_bytes


@dataclass(frozen=True)
class LogRecord:
    """One logged operation (kept for inspection/tests)."""

    txn_id: int
    kind: str      # "create" | "update" | "delete" | "commit" | "abort"
    nbytes: int


class WriteAheadLog:
    """Accumulates log records and charges their I/O at flush time."""

    def __init__(self, clock: SimClock, params: CostParams):
        self.clock = clock
        self.params = params
        self.records: list[LogRecord] = []
        self._unflushed_bytes = 0
        self.flushed_pages = 0

    def append(self, txn_id: int, kind: str, nbytes: int) -> None:
        """Log one operation (CPU charge; bytes await the next flush)."""
        if nbytes < 0:
            raise ValueError(f"negative log payload: {nbytes}")
        self.records.append(LogRecord(txn_id, kind, nbytes))
        self._unflushed_bytes += nbytes
        self.clock.charge_us(Bucket.LOG, self.params.log_append_us)

    def flush(self) -> int:
        """Force the log to disk; returns pages written."""
        pages = pages_for_bytes(self._unflushed_bytes, PAGE_SIZE)
        for __ in range(pages):
            self.clock.charge_ms(Bucket.LOG, self.params.page_write_ms)
        self.flushed_pages += pages
        self._unflushed_bytes = 0
        return pages

    @property
    def pending_bytes(self) -> int:
        return self._unflushed_bytes
