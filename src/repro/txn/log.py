"""Write-ahead log.

The log serves two purposes.  First, as in the original cost model, it
charges the *price* of logging — every append costs CPU and every flush
costs page writes — which is what the paper's loading experiments
(Section 3.2) measure.  Second, since the crash-recovery subsystem
landed, records carry *physical content*: page-level before/after
images with LSNs, chained per transaction through ``prev_lsn``, plus
``commit``/``abort`` markers and ``checkpoint`` records holding the
active-transaction and dirty-page tables.  :mod:`repro.recovery` replays
this content in ARIES-style analysis/redo/undo passes after a simulated
crash (see ``docs/recovery.md``).

Durability is modeled honestly: only the records whose serialized bytes
fit in the log pages actually flushed are durable (``durable_lsn``); a
crash truncates the log to that boundary.  A flush interrupted after *k*
of its *n* pages (the ``commit-flush`` crash point) leaves a durable
record *prefix* — exactly the torn multi-page commit the recovery
protocol must survive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simtime import Bucket, CostParams, SimClock
from repro.storage.page import PageImage
from repro.units import PAGE_SIZE, pages_for_bytes

#: Serialized sizes (bytes) of the fixed parts of each record kind:
#: a common header (lsn, prev_lsn, txn id, kind, length) plus, for
#: physical records, a page key and two image length fields.
BEGIN_RECORD_BYTES = 24
COMMIT_RECORD_BYTES = 16
ABORT_RECORD_BYTES = 16
#: Two-phase-commit vote record: a commit-sized marker plus the
#: coordinator's transaction id (see ``repro.dist.twopc``).
PREPARE_RECORD_BYTES = 24
UPDATE_HEADER_BYTES = 32
CHECKPOINT_HEADER_BYTES = 32
CHECKPOINT_ATT_ENTRY_BYTES = 16
CHECKPOINT_DPT_ENTRY_BYTES = 24

#: Record kinds that carry page images and participate in redo.
PHYSICAL_KINDS = frozenset({"create", "update", "clr"})

#: Physical kinds that restart-undo may need to revert ("clr" records
#: are compensations and are never themselves undone).
UNDOABLE_KINDS = frozenset({"create", "update"})


@dataclass(frozen=True)
class LogRecord:
    """One logged operation.

    The three positional fields are the original cost-model record; the
    keyword fields carry the physical content recovery needs.  ``nbytes``
    remains the authoritative serialized size used for log-page
    accounting, so cost behavior is unchanged for legacy callers.
    """

    txn_id: int
    kind: str      # "begin" | "create" | "update" | "clr" | "delete"
    #              # | "prepare" | "commit" | "abort" | "checkpoint"
    nbytes: int
    #: Log sequence number (1-based, assigned at append; 0 = unassigned,
    #: e.g. records from legacy cost-only callers predating recovery).
    lsn: int = 0
    #: Previous record of the same transaction (0 = none) — the undo chain.
    prev_lsn: int = 0
    #: ``(file_id, page_no)`` of the page a physical record touched.
    page_key: tuple[int, int] | None = None
    #: Page image before the change (physical records only).
    before: PageImage | None = None
    #: Page image after the change (physical records only).
    after: PageImage | None = None
    #: For ``clr`` records: the lsn of the update this record compensates.
    undoes_lsn: int = 0
    #: For ``checkpoint`` records: ``((txn_id, last_lsn), ...)``.
    att: tuple[tuple[int, int], ...] = field(default=())
    #: For ``checkpoint`` records: ``(((file_id, page_no), rec_lsn), ...)``.
    dpt: tuple[tuple[tuple[int, int], int], ...] = field(default=())
    #: For ``commit`` records: the monotonic commit timestamp assigned by
    #: the transaction manager (0 = pre-MVCC record / non-commit kind).
    #: Restart reads these to restore the commit-timestamp high-water.
    commit_ts: int = 0


def image_delta_bytes(before: PageImage, after: PageImage) -> int:
    """Serialized payload of a physical record: the bytes of every slot
    that differs between the two images (both versions are logged)."""

    def _slot_bytes(entry) -> int:
        if isinstance(entry, bytes):
            return len(entry)
        if entry is None:
            return 0
        return 8  # a forwarding rid

    total = 0
    width = max(len(before.slots), len(after.slots))
    for slot in range(width):
        b = before.slots[slot] if slot < len(before.slots) else None
        a = after.slots[slot] if slot < len(after.slots) else None
        if b != a:
            total += _slot_bytes(b) + _slot_bytes(a)
    return total


class WriteAheadLog:
    """Accumulates log records and charges their I/O at flush time.

    ``records`` holds every appended record in LSN order; the suffix
    past ``durable_lsn`` exists only in the simulated log buffer and is
    lost by :meth:`crash`.
    """

    def __init__(self, clock: SimClock, params: CostParams):
        self.clock = clock
        self.params = params
        self.records: list[LogRecord] = []
        self._unflushed: list[LogRecord] = []
        self._unflushed_bytes = 0
        self.flushed_pages = 0
        self.next_lsn = 1
        #: Highest LSN guaranteed to be on disk (0 = nothing flushed).
        self.durable_lsn = 0
        #: Flushes forced by the WAL rule (dirty page written first).
        self.forced_flushes = 0
        #: Dirty-page table: page key -> rec_lsn of the *first* log
        #: record that dirtied the page since it was last written.
        self.dirty_pages: dict[tuple[int, int], int] = {}
        #: Optional :class:`~repro.recovery.CrashInjector` hook.
        self.injector = None
        #: Optional replication hook, fired at the end of every flush
        #: that advanced the durable boundary: ``listener(old_durable,
        #: new_durable)``.  A synchronous shipper forwards the newly
        #: durable records to the replica *inside* the flush, so the
        #: caller's commit cannot return (and no client can be acked)
        #: before the replica holds the records.
        self.ship_listener = None

    # -- appending ------------------------------------------------------

    def append(
        self,
        txn_id: int,
        kind: str,
        nbytes: int,
        *,
        prev_lsn: int = 0,
        page_key: tuple[int, int] | None = None,
        before: PageImage | None = None,
        after: PageImage | None = None,
        undoes_lsn: int = 0,
        att: tuple[tuple[int, int], ...] = (),
        dpt: tuple[tuple[tuple[int, int], int], ...] = (),
        commit_ts: int = 0,
    ) -> LogRecord:
        """Log one operation (CPU charge; bytes await the next flush)."""
        if nbytes < 0:
            raise ValueError(f"negative log payload: {nbytes}")
        record = LogRecord(
            txn_id,
            kind,
            nbytes,
            lsn=self.next_lsn,
            prev_lsn=prev_lsn,
            page_key=page_key,
            before=before,
            after=after,
            undoes_lsn=undoes_lsn,
            att=att,
            dpt=dpt,
            commit_ts=commit_ts,
        )
        self.next_lsn += 1
        self.records.append(record)
        self._unflushed.append(record)
        self._unflushed_bytes += nbytes
        self.clock.charge_us(Bucket.LOG, self.params.log_append_us)
        if self.injector is not None:
            self.injector.on_append(record)
        return record

    def stamp(self, page, record: LogRecord) -> None:
        """Mark ``page`` as last changed by ``record``: sets its
        ``page_lsn`` and registers it in the dirty-page table."""
        page.page_lsn = record.lsn
        if record.page_key is not None:
            self.dirty_pages.setdefault(record.page_key, record.lsn)

    def note_page_written(self, page_key: tuple[int, int]) -> None:
        """A dirty page reached disk; drop it from the dirty-page table."""
        self.dirty_pages.pop(page_key, None)

    # -- flushing -------------------------------------------------------

    def flush(self, max_pages: int | None = None) -> int:
        """Force the log to disk; returns pages written.

        With no pending records this is free (no I/O is charged).  A
        full flush seals the tail to a page boundary, so the page count
        is exactly ``pages_for_bytes(pending_bytes)`` as it always was.
        ``max_pages`` (or a ``commit-flush`` crash injector) limits how
        many pages reach disk: the durable boundary then advances only
        past the records that fit entirely within those pages, and the
        torn tail page is rewritten by the next flush.
        """
        pages_needed = pages_for_bytes(self._unflushed_bytes, PAGE_SIZE)
        budget = pages_needed
        before_durable = self.durable_lsn
        crash_detail = None
        if self.injector is not None:
            injector_budget = self.injector.on_flush(pages_needed)
            if injector_budget is not None:
                budget = min(budget, injector_budget)
                crash_detail = f"{budget}/{pages_needed} pages written"
        if max_pages is not None:
            budget = min(budget, max_pages)
        pages = min(pages_needed, budget)
        for __ in range(pages):
            self.clock.charge_ms(Bucket.LOG, self.params.page_write_ms)
        self.flushed_pages += pages
        if pages >= pages_needed:
            if self._unflushed:
                self.durable_lsn = self._unflushed[-1].lsn
            self._unflushed.clear()
            self._unflushed_bytes = 0
        else:
            budget_bytes = pages * PAGE_SIZE
            while self._unflushed and self._unflushed[0].nbytes <= budget_bytes:
                record = self._unflushed.pop(0)
                budget_bytes -= record.nbytes
                self._unflushed_bytes -= record.nbytes
                self.durable_lsn = record.lsn
        if crash_detail is not None:
            self.injector.fire(crash_detail)
        if self.ship_listener is not None and self.durable_lsn > before_durable:
            self.ship_listener(before_durable, self.durable_lsn)
        return pages

    @property
    def pending_bytes(self) -> int:
        return self._unflushed_bytes

    # -- replication shipping -------------------------------------------

    def ship_records(self, after_lsn: int) -> list[LogRecord]:
        """The ship cursor: every *durable* record past ``after_lsn``,
        in LSN order — what a replication shipper still owes a replica
        whose acknowledged prefix ends at ``after_lsn``.  Only durable
        records ship (a record that could still be lost by a primary
        crash must not outlive the primary on its replica)."""
        return [
            r for r in self.records if after_lsn < r.lsn <= self.durable_lsn
        ]

    def append_shipped(self, record: LogRecord) -> LogRecord:
        """Append a record shipped from a replication primary,
        *preserving its LSN*: the replica's log must stay an identical
        prefix of the primary's so ``prev_lsn`` chains, checkpoints and
        restart analysis mean the same thing on both.  Ships arrive in
        order; a gap means the shipper lost its place."""
        if record.lsn != self.next_lsn:
            raise ValueError(
                f"ship sequence gap: expected lsn {self.next_lsn}, "
                f"got {record.lsn}"
            )
        self.next_lsn = record.lsn + 1
        self.records.append(record)
        self._unflushed.append(record)
        self._unflushed_bytes += record.nbytes
        self.clock.charge_us(Bucket.LOG, self.params.log_append_us)
        if self.injector is not None:
            self.injector.on_append(record)
        return record

    # -- crash semantics ------------------------------------------------

    def durable_records(self) -> list[LogRecord]:
        """The records that would survive a crash right now."""
        return [r for r in self.records if 0 < r.lsn <= self.durable_lsn]

    def crash(self) -> None:
        """Lose the log buffer: truncate to the durable boundary."""
        self.records = self.durable_records()
        self._unflushed.clear()
        self._unflushed_bytes = 0
        self.dirty_pages.clear()
        self.injector = None
        self.ship_listener = None
