"""Transactions: WAL, locks, per-transaction object budgets, and the
transaction-off loading mode.

Section 3.2 of the paper is a tour of exactly these mechanisms:

* creating too many objects within one transaction raises the simulated
  "out of memory" (commit every ~10,000 objects);
* the *transaction-off* mode removes the log and the read/write locks,
  "allowing to load large databases faster" — used for loading only,
  never for measured queries.
"""

from repro.txn.locks import LockManager, LockMode
from repro.txn.log import WriteAheadLog
from repro.txn.manager import Transaction, TransactionManager

__all__ = [
    "WriteAheadLog",
    "LockManager",
    "LockMode",
    "Transaction",
    "TransactionManager",
]
