"""Transactions: WAL, locks, per-transaction object budgets, and the
transaction-off loading mode.

Section 3.2 of the paper is a tour of exactly these mechanisms:

* creating too many objects within one transaction raises the simulated
  "out of memory" (commit every ~10,000 objects);
* the *transaction-off* mode removes the log and the read/write locks,
  "allowing to load large databases faster" — used for loading only,
  never for measured queries.

With ``TransactionManager(db, recovery=True)`` the WAL carries physical
page images and :mod:`repro.recovery` can crash and restart the system,
which is what makes the transaction-off trade-off demonstrable rather
than merely priced.

``begin(isolation="si")`` opens a *snapshot-isolation* transaction on
top of the same machinery: reads resolve through per-record version
chains (:mod:`repro.txn.mvcc`) with zero read locks, writers keep
strict-2PL X-locks, and first-committer-wins conflicts raise
:class:`~repro.errors.WriteConflictError` (see ``docs/mvcc.md``).
"""

from repro.txn.locks import LockManager, LockMode
from repro.txn.log import LogRecord, WriteAheadLog
from repro.txn.manager import ISOLATION_LEVELS, Transaction, TransactionManager
from repro.txn.mvcc import RecordVersion, Snapshot, SnapshotView, VersionStore

__all__ = [
    "WriteAheadLog",
    "LogRecord",
    "LockManager",
    "LockMode",
    "Transaction",
    "TransactionManager",
    "ISOLATION_LEVELS",
    "Snapshot",
    "SnapshotView",
    "RecordVersion",
    "VersionStore",
]
