"""Transactions: WAL, locks, per-transaction object budgets, and the
transaction-off loading mode.

Section 3.2 of the paper is a tour of exactly these mechanisms:

* creating too many objects within one transaction raises the simulated
  "out of memory" (commit every ~10,000 objects);
* the *transaction-off* mode removes the log and the read/write locks,
  "allowing to load large databases faster" — used for loading only,
  never for measured queries.

With ``TransactionManager(db, recovery=True)`` the WAL carries physical
page images and :mod:`repro.recovery` can crash and restart the system,
which is what makes the transaction-off trade-off demonstrable rather
than merely priced.
"""

from repro.txn.locks import LockManager, LockMode
from repro.txn.log import LogRecord, WriteAheadLog
from repro.txn.manager import Transaction, TransactionManager

__all__ = [
    "WriteAheadLog",
    "LogRecord",
    "LockManager",
    "LockMode",
    "Transaction",
    "TransactionManager",
]
