"""Multi-version concurrency control: snapshots, version chains, GC.

The paper's Section 4.4 handle anatomy reserves a *version pointer* in
every 60-byte handle; this module is where that pointer finally earns
its bytes.  The design follows classic snapshot isolation:

* Commits are stamped with a **monotonic commit timestamp** issued by
  the :class:`~repro.txn.manager.TransactionManager` at the moment a
  commit record is appended, so the commit order and the visibility
  order are the same total order.
* ``begin(isolation="si")`` takes a :class:`Snapshot` — the commit
  high-water mark plus the set of transactions active at begin.  A
  reader resolves every rid to the newest version whose commit
  timestamp is ``<= begin_ts``; it takes **zero read locks** and never
  waits for a writer.
* Writers keep strict-2PL X-locks (write/write conflicts still
  serialize through the lock manager), and before overwriting a record
  in place they **stash the committed pre-image** into the record's
  version chain, priced at ``version_stash_us``.
* **First-committer-wins**: a write to a record whose newest committed
  version is younger than the writer's snapshot raises
  :class:`~repro.errors.WriteConflictError` — the losing transaction
  aborts and the service's ``RetryPolicy`` retries it with backoff.
* Versions older than the oldest active snapshot are garbage:
  :meth:`VersionStore.sweep` (driven by the resource governor every few
  commits) drops every chain entry no live snapshot can still reach.

Chains live in transaction-manager memory, unified with the storage
model of :class:`~repro.objects.versions.VersionManager`: both are
pre-image copies keyed by rid; the explicit ``VersionManager`` persists
labeled snapshots durably, while these chains are *volatile by design* —
restart discards them (uncommitted writers are rolled back by ARIES
undo, so the post-restart committed state needs no history) and
restores only the commit-timestamp high-water from durable commit
records.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RecordNotVisibleError
from repro.simtime import Bucket, CostParams, SimClock
from repro.storage.rid import Rid

#: :meth:`SnapshotView.tag` sentinel — the live record is the visible one.
LIVE = object()
#: :meth:`SnapshotView.tag` sentinel — no version is visible (the object
#: was created after the snapshot, or by a still-active transaction).
INVISIBLE = object()


@dataclass(frozen=True)
class Snapshot:
    """What ``begin(isolation="si")`` captures: the reader's fixed view.

    ``begin_ts`` is the commit high-water mark at begin; a version is
    visible iff its commit timestamp is ``<= begin_ts``.  Because commit
    timestamps are issued in commit order on the single simulated
    timeline, the timestamp test alone is sufficient; ``active`` is kept
    for introspection (and the fuzz oracle) — it is the set of
    transactions whose effects must *not* be visible despite any future
    commit."""

    txn_id: int
    begin_ts: int
    active: frozenset[int]


@dataclass(frozen=True)
class RecordVersion:
    """One chain entry: the record bytes that *became* the committed
    content at commit timestamp ``ts`` (0 = loaded before MVCC was
    enabled) and stayed current until the next entry's timestamp.
    ``writer`` is the transaction that stashed it — the entry is
    *pending* until that writer commits, and is withdrawn if it
    aborts."""

    ts: int
    record: bytes
    writer: int


class VersionStore:
    """Per-record version chains plus the commit-timestamp bookkeeping
    first-committer-wins needs.

    ``_chains[rid]`` is ascending by ``ts``: index *i*'s entry was the
    committed content over ``[chain[i].ts, chain[i+1].ts)`` (the last
    entry dies at the live record's commit timestamp).  ``_committed_ts``
    maps each rid to its newest committed version's timestamp — absent
    means 0, i.e. preloaded data visible to every snapshot."""

    def __init__(self, clock: SimClock, params: CostParams):
        self.clock = clock
        self.params = params
        self._chains: dict[Rid, list[RecordVersion]] = {}
        self._committed_ts: dict[Rid, int] = {}
        self._writers: dict[Rid, int] = {}
        self._pending: dict[int, list[Rid]] = {}
        #: Lifetime counters (survive sweeps; cleared by :meth:`clear`).
        self.stashed = 0
        self.swept = 0

    # -- writer side ----------------------------------------------------

    def stash(self, rid: Rid, record: bytes, txn_id: int) -> None:
        """Record the committed pre-image of ``rid`` before ``txn_id``
        overwrites it in place (called once per rid per transaction,
        under the X-lock).  Charged at ``version_stash_us``."""
        base_ts = self._committed_ts.get(rid, 0)
        self._chains.setdefault(rid, []).append(
            RecordVersion(base_ts, record, txn_id)
        )
        self._writers[rid] = txn_id
        self._pending.setdefault(txn_id, []).append(rid)
        self.stashed += 1
        self.clock.charge_us(Bucket.LOAD, self.params.version_stash_us)

    def note_create(self, rid: Rid, txn_id: int) -> None:
        """A brand-new object has no pre-image; marking its writer keeps
        it invisible to concurrent snapshots until the creator commits."""
        self._writers[rid] = txn_id
        self._pending.setdefault(txn_id, []).append(rid)

    def committed_ts(self, rid: Rid) -> int:
        """Commit timestamp of the newest committed version of ``rid``
        (0 = preloaded / never written under MVCC)."""
        return self._committed_ts.get(rid, 0)

    def writer_of(self, rid: Rid) -> int | None:
        return self._writers.get(rid)

    def commit(self, txn_id: int, ts: int) -> None:
        """Make ``txn_id``'s writes the committed versions at ``ts``."""
        for rid in self._pending.pop(txn_id, ()):
            self._committed_ts[rid] = ts
            if self._writers.get(rid) == txn_id:
                del self._writers[rid]

    def abort(self, txn_id: int) -> None:
        """Withdraw ``txn_id``'s pending chain entries (2PL undo restores
        the live record to exactly the stashed image, so keeping it would
        only duplicate the live state)."""
        for rid in self._pending.pop(txn_id, ()):
            if self._writers.get(rid) == txn_id:
                del self._writers[rid]
            chain = self._chains.get(rid)
            if not chain:
                continue
            chain[:] = [v for v in chain if v.writer != txn_id]
            if not chain:
                del self._chains[rid]

    # -- garbage collection ---------------------------------------------

    def sweep(self, horizon_ts: int) -> int:
        """Drop every chain entry no snapshot with ``begin_ts >=
        horizon_ts`` can reach; returns the number of versions freed.

        Entry *i* is visible to begin timestamps in ``[ts, death)``
        where ``death`` is the next entry's timestamp (or the live
        record's).  Entries stashed by still-active writers are always
        kept.  Each examined entry costs ``version_gc_us``."""
        freed = 0
        for rid in list(self._chains):
            chain = self._chains[rid]
            keep: list[RecordVersion] = []
            for i, version in enumerate(chain):
                self.clock.charge_us(Bucket.LOAD, self.params.version_gc_us)
                if i + 1 < len(chain):
                    death = chain[i + 1].ts
                else:
                    death = self._committed_ts.get(rid, 0)
                if version.writer in self._pending or death > horizon_ts:
                    keep.append(version)
                else:
                    freed += 1
            if keep:
                self._chains[rid] = keep
            else:
                del self._chains[rid]
        self.swept += freed
        return freed

    # -- introspection / crash -----------------------------------------

    def chain(self, rid: Rid) -> tuple[RecordVersion, ...]:
        return tuple(self._chains.get(rid, ()))

    @property
    def version_count(self) -> int:
        return sum(len(chain) for chain in self._chains.values())

    def clear(self) -> None:
        """Lose everything volatile (crash / restart): chains are
        rebuilt lazily from future writes, never from the old ones."""
        self._chains.clear()
        self._committed_ts.clear()
        self._writers.clear()
        self._pending.clear()
        self.stashed = 0
        self.swept = 0


class SnapshotView:
    """Resolves rids against one :class:`Snapshot`.

    Installed (duck-typed) as ``ObjectManager.read_view`` while an SI
    transaction is the active session, so every ``load``/``borrow`` on
    the read path — point lookups, Fetch operators, navigations — goes
    through :meth:`load` without the object layer importing ``txn``."""

    def __init__(self, store: VersionStore, snapshot: Snapshot):
        self.store = store
        self.snapshot = snapshot
        #: Reads that resolved to a chain entry instead of the live record.
        self.version_reads = 0

    def tag(self, rid: Rid):
        """Visibility decision for ``rid``: :data:`LIVE`, a
        :class:`RecordVersion`, or :data:`INVISIBLE`.  Pure bookkeeping —
        charges nothing; the charged work happens when a version is
        actually materialized in :meth:`load`."""
        store = self.store
        snap = self.snapshot
        writer = store._writers.get(rid)
        if writer == snap.txn_id:
            return LIVE  # read-your-own-writes
        if writer is None and store._committed_ts.get(rid, 0) <= snap.begin_ts:
            return LIVE
        for version in reversed(store._chains.get(rid, ())):
            if version.ts <= snap.begin_ts:
                return version
        return INVISIBLE

    def load(self, om, rid: Rid):
        """Snapshot-visible counterpart of ``ObjectManager.load``:
        returns a referenced handle for the version this snapshot sees,
        or raises :class:`~repro.errors.RecordNotVisibleError`."""
        while True:
            tag = self.tag(rid)
            if tag is INVISIBLE:
                raise RecordNotVisibleError(
                    f"{rid} has no version visible at begin_ts="
                    f"{self.snapshot.begin_ts} (txn {self.snapshot.txn_id})"
                )
            if tag is not LIVE:
                break
            handle = om.handles.get(rid, lambda: om.read_record(rid))
            # Materializing may have faulted and yielded the baton: a
            # writer can land its in-place update between the visibility
            # decision above and the page read.  Re-check; the writer
            # stashes the pre-image *before* it writes, so when the tag
            # changed the chain already holds what this snapshot needs.
            if self.tag(rid) is LIVE:
                return handle
            om.unref(handle)

        def load_version():
            self.store.clock.charge_us(
                Bucket.LOAD, self.store.params.version_read_us
            )
            return tag.record, om._class_of(tag.record)

        self.version_reads += 1
        return om.handles.get(rid, load_version, version=tag.ts)
