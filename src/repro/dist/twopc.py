"""Two-phase commit over the per-shard write-ahead logs.

A distributed transaction touches several shards through per-shard
*branch* transactions — ordinary :class:`~repro.txn.manager.Transaction`
objects on each shard's own log and lock manager.  Committing them
atomically is the textbook presumed-abort protocol, built from pieces
the single-node stack already has:

* **phase 1 (PREPARE)** — each participant appends a ``prepare`` record
  to *its own* WAL and flushes it; the branch's physical records plus
  the durable prepare vote are exactly what
  :func:`repro.recovery.restart` needs to hold the branch *in doubt*
  instead of undoing it as a loser;
* **decision** — the coordinator appends a single ``commit`` record to
  its *decision log*, with the participant list ``((shard, branch), …)``
  in the record's ``att`` field, and flushes it.  This record **is** the
  commit point of the distributed transaction;
* **phase 2 (COMMIT)** — each participant runs an ordinary
  :meth:`~repro.txn.manager.Transaction.commit` (commit record, flush,
  release locks).

*Presumed abort*: no decision record means abort, so aborts write
nothing at the coordinator and in-doubt branches with no durable
decision are rolled back at restart.  A single-participant transaction
skips phase 1 entirely (the one-phase optimization — the participant's
own commit record is the decision).

:class:`TwoPCInjector` crashes the cluster at the protocol's five
interesting points, mirroring :class:`~repro.recovery.CrashInjector`:
after it fires, every shard WAL and disk refuses service so the rest of
the workload cannot mutate durable state "after" the crash.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import (
    RecoveryError,
    ShardUnavailableError,
    SimulatedCrashError,
    TwoPCError,
)
from repro.txn.log import (
    ABORT_RECORD_BYTES,
    BEGIN_RECORD_BYTES,
    COMMIT_RECORD_BYTES,
    PREPARE_RECORD_BYTES,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dist.cluster import ShardedCluster
    from repro.txn.manager import Transaction

#: The named 2PC crash points, in protocol order.
TWOPC_CRASH_POINTS = (
    # Coordinator dies before any PREPARE went out: no votes, no
    # decision — every branch is an ordinary loser.
    "2pc-before-prepare",
    # Crash after the first participant's prepare flush: a durable vote
    # exists on one shard, none elsewhere, no decision — the prepared
    # branch is in doubt and resolves to abort.
    "2pc-mid-prepare",
    # All participants voted yes; coordinator dies before its decision
    # record is durable — every branch in doubt, all resolve to abort.
    "2pc-before-decision",
    # The decision record is durable but no COMMIT was delivered —
    # every branch in doubt, all resolve to commit.
    "2pc-after-decision",
    # Crash after the first participant committed: the rest are in
    # doubt and resolve to commit.
    "2pc-mid-commit",
)


class TwoPCInjector:
    """Kills the cluster the ``occurrence``-th time ``point`` is reached.

    Reuses the single-node injector's hook protocol (``on_append`` /
    ``on_flush`` / ``on_page_write`` / ``on_checkpoint`` / ``disarm``)
    so that, once fired, it can be installed on every shard's WAL and
    disk as a pure down-detector: any later durable mutation raises
    :class:`~repro.errors.SimulatedCrashError` until
    :meth:`ShardedCluster.crash` performs the actual loss.
    """

    def __init__(self, point: str, occurrence: int = 1):
        if point not in TWOPC_CRASH_POINTS:
            raise RecoveryError(
                f"unknown 2PC crash point {point!r}; choose from "
                f"{TWOPC_CRASH_POINTS}"
            )
        if occurrence < 1:
            raise RecoveryError(f"occurrence must be >= 1, got {occurrence}")
        self.point = point
        self.occurrence = occurrence
        self.seen = 0
        self.fired = False
        self._cluster: "ShardedCluster | None" = None

    def arm(self, cluster: "ShardedCluster") -> None:
        self._cluster = cluster
        cluster.injector = self

    def reached(self, point: str, detail: str = "") -> None:
        """Called by :class:`DistTransaction` at each protocol step."""
        self._down()
        if point != self.point:
            return
        self.seen += 1
        if self.seen == self.occurrence:
            self.fire(detail or point)

    def fire(self, detail: str) -> None:
        self.fired = True
        if self._cluster is not None:
            for node in self._cluster.all_nodes():
                node.txm.log.injector = self
                node.db.disk.injector = self
            self._cluster.decision_log.injector = self
        raise SimulatedCrashError(
            f"simulated crash at {self.point} (occurrence {self.seen}: "
            f"{detail})"
        )

    def _down(self) -> None:
        if self.fired:
            raise SimulatedCrashError(
                f"cluster is down (crashed at {self.point})"
            )

    # -- down-detector hooks (post-fire only) ---------------------------

    def disarm(self, db, wal) -> None:
        if wal.injector is self:
            wal.injector = None
        if db.disk.injector is self:
            db.disk.injector = None

    def on_append(self, record) -> None:
        self._down()

    def on_flush(self, pages_needed: int) -> int | None:
        self._down()
        return None

    def on_page_write(self, page_key: tuple[int, int]) -> None:
        self._down()

    def on_checkpoint(self) -> None:
        self._down()


class DistTransaction:
    """One distributed transaction: a lazily-opened branch per shard,
    committed with presumed-abort two-phase commit."""

    def __init__(self, cluster: "ShardedCluster", global_id: int):
        self.cluster = cluster
        self.global_id = global_id
        self.state = "active"
        #: shard id -> branch transaction, opened on first touch.
        self.branches: "dict[int, Transaction]" = {}
        #: shard id -> the node the branch was opened on.  Pinned at
        #: branch-open: a failover mid-transaction must *not* silently
        #: reroute later operations to the new primary (the branch's
        #: locks and log records live on the old one) — instead the
        #: pinned node's death or stale epoch surfaces as a typed error
        #: and the whole distributed transaction retries.
        self.branch_nodes: "dict[int, object]" = {}
        #: Whether the coordinator's decision record is known durable.
        self.decision_durable = False

    # -- branches -------------------------------------------------------

    def branch(self, shard_id: int) -> "Transaction":
        """The branch transaction on ``shard_id``, begun on first use
        (one round-trip: the begin record is appended at the shard)."""
        self._require_active()
        txn = self.branches.get(shard_id)
        if txn is None:
            node = self.cluster.route.node_for(shard_id)
            txn = self.cluster.call(
                node, lambda: node.txm.begin(logged=True),
                nbytes=BEGIN_RECORD_BYTES,
            )
            self.branches[shard_id] = txn
            self.branch_nodes[shard_id] = node
            self.cluster.lock_table.register(
                self.global_id, shard_id, txn.txn_id
            )
        return txn

    def update_scalar(self, shard_id: int, rid, attr_name: str, value) -> None:
        """Write one scalar attribute on a shard (lock + physical log at
        the shard, RPC + remote wait at the coordinator)."""
        txn = self.branch(shard_id)
        node = self.branch_nodes[shard_id]
        self.cluster.call(
            node, lambda: txn.update_scalar(rid, attr_name, value), nbytes=8
        )

    @property
    def participants(self) -> list[int]:
        return sorted(self.branches)

    # -- completion -----------------------------------------------------

    def commit(self) -> None:
        """Presumed-abort 2PC; one-phase when only one shard was touched."""
        self._require_active()
        cluster = self.cluster
        cluster.reached("2pc-before-prepare", f"gtxn {self.global_id}")
        participants = self.participants
        if not participants:
            self._finish("committed")
            return
        if len(participants) == 1:
            # One-phase: the sole participant's commit record decides.
            sid = participants[0]
            node = self.branch_nodes[sid]
            try:
                cluster.call(
                    node,
                    self.branches[sid].commit,
                    nbytes=COMMIT_RECORD_BYTES,
                )
            except ShardUnavailableError:
                # No decision record exists (one-phase skips the
                # coordinator log), so the outcome rides on what the
                # dying shard made durable; the caller only knows the
                # commit was not acknowledged.
                self.abort()
                raise
            self._finish("committed")
            return

        # Phase 1: every participant force-logs its vote, in parallel.
        cluster.fanout(
            [
                (self.branch_nodes[sid], self._make_prepare(sid))
                for sid in participants
            ],
            nbytes=PREPARE_RECORD_BYTES,
            after_first=lambda: cluster.reached(
                "2pc-mid-prepare", f"gtxn {self.global_id}"
            ),
        )

        # The decision: one durable record at the coordinator naming
        # every (shard, branch) pair — the distributed commit point.
        cluster.reached("2pc-before-decision", f"gtxn {self.global_id}")
        att = tuple(
            (sid, self.branches[sid].txn_id) for sid in participants
        )
        cluster.decision_log.append(
            self.global_id,
            "commit",
            COMMIT_RECORD_BYTES + 8 * len(att),
            att=att,
        )
        cluster.decision_log.flush()
        self.decision_durable = True
        cluster.reached("2pc-after-decision", f"gtxn {self.global_id}")

        # Phase 2: ordinary per-shard commits release the branches.
        # The durable decision record *is* the commit point: a
        # participant dying here must not drag the others down — its
        # branch resolves to commit from the decision log when its
        # replica is promoted (or at cluster recovery).
        for i, sid in enumerate(participants):
            try:
                cluster.call(
                    self.branch_nodes[sid],
                    self.branches[sid].commit,
                    nbytes=COMMIT_RECORD_BYTES,
                )
            except ShardUnavailableError:
                pass
            if i == 0:
                cluster.reached("2pc-mid-commit", f"gtxn {self.global_id}")
        self._finish("committed")

    def abort(self) -> None:
        """Roll back every branch.  Presumed abort: the coordinator
        logs nothing — the absence of a decision record *is* the abort."""
        self._require_active()
        cluster = self.cluster
        try:
            for sid in self.participants:
                txn = self.branches[sid]
                node = self.branch_nodes[sid]
                if txn.state != "active" or node.down:
                    # A crashed or unreachable branch needs no abort
                    # message: presumed abort (or, if its commit record
                    # already shipped, the decision log) settles it.
                    continue
                try:
                    cluster.call(node, txn.abort, nbytes=ABORT_RECORD_BYTES)
                except ShardUnavailableError:
                    continue
        finally:
            self._finish("aborted")

    def _make_prepare(self, shard_id: int):
        node = self.branch_nodes[shard_id]
        txn = self.branches[shard_id]

        def _prepare() -> None:
            record = node.txm.log.append(
                txn.txn_id,
                "prepare",
                PREPARE_RECORD_BYTES,
                prev_lsn=txn.last_lsn,
                att=((self.global_id, shard_id),),
            )
            txn.last_lsn = record.lsn
            node.txm.log.flush()

        return _prepare

    def _finish(self, state: str) -> None:
        self.state = state
        self.cluster.lock_table.unregister(self.global_id)
        self.cluster._on_dist_finished(self)

    def __enter__(self) -> "DistTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.state != "active":
            return
        if exc_type is None:
            self.commit()
        else:
            self.abort()

    def _require_active(self) -> None:
        if self.state != "active":
            raise TwoPCError(
                f"distributed transaction {self.global_id} is {self.state}"
            )
