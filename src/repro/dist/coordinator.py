"""The distributed query coordinator.

Given one OQL query and a :class:`~repro.dist.cluster.ShardedCluster`,
the coordinator picks a *shipping strategy*, rewrites the query into
per-shard work, and recombines the shard streams into the single-node
answer:

**Query shipping** (the default) sends OQL text to every shard; each
shard plans and runs it with its own cost-based machinery over its own
slice.  Because patients are co-located with their providers
(:mod:`repro.dist.partition`), selections, navigation joins and
``exists`` semijoins are all *shard-local*: the distributed answer is
the bag union of the shard answers.  Only the recombination concerns
the coordinator:

* **aggregates** are decomposed into per-shard partials — ``count`` and
  ``sum`` re-sum, ``min``/``max`` re-minimize, and ``avg`` is rewritten
  into per-shard ``sum`` + ``count`` pairs (averaging averages would
  weight shards equally regardless of size);
* **order by** cannot be merged for free: sort keys missing from the
  select are appended to a rewritten select tuple, the shards' own sort
  is dropped (kept only under ``limit``, where per-shard top-k prunes
  the wire), the coordinator re-sorts centrally, then strips the
  appended columns;
* **distinct** is pushed down (shards dedupe their slice) and re-applied
  centrally (values can repeat *across* shards);
* **limit** is pushed down (no shard needs to send more than the limit)
  and re-applied to the merged stream.

**Data shipping** sends no predicate at all: shards stream bare
projection tuples of every row and the coordinator evaluates the
``where`` clause itself.  It is supported only for flat selections
(one ``from`` clause over a named collection, no ``exists``, no
navigation) — and it ships the whole extent, which is why the
cost-based choice below essentially always prefers query shipping; the
strategy exists to *measure* that gap (``DistPlan`` records both byte
estimates, and ``bench_sharding`` reports them).

Rows travel through :class:`~repro.dist.exchange.ExchangeOperator`, so
elapsed time reflects shards working in parallel, and every batch pays
RPC + page-transfer costs on the coordinator's timeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.dist.cluster import ShardedCluster
from repro.dist.exchange import (
    ROW_WIRE_BYTES,
    ExchangeOperator,
    coordinator_context,
)
from repro.errors import DistPlanError, ReproError
from repro.exec.operators.base import Cursor
from repro.exec.operators.transforms import finish_aggregate
from repro.oql.ast_nodes import (
    AggregateExpr,
    BinOp,
    BoolOp,
    CollectionRef,
    ExistsExpr,
    Expr,
    Literal,
    Path,
    Query,
    TupleExpr,
    conjuncts,
)
from repro.oql.optimizer import Optimizer
from repro.oql.parser import parse
from repro.oql.printer import print_query
from repro.opt import CardinalityEstimator
from repro.simtime import Bucket

_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}

#: The shipping strategies (plus ``"auto"``, which picks by estimate).
SHIP_STRATEGIES = ("query", "data")


@dataclass
class DistPlan:
    """One distributed execution recipe, with its cost estimates."""

    query: Query
    strategy: str                       # "query" | "data"
    #: OQL text shipped to every shard (two entries for a decomposed avg).
    shard_texts: tuple[str, ...]
    merge: str                          # "rows" | "aggregate"
    agg_func: str | None = None
    #: Columns of the original select (before appended sort keys).
    n_select: int = 1
    #: The original select was a bare scalar (rows are values, not tuples).
    scalar_select: bool = False
    #: Sort-key columns appended to the shard select by the rewrite.
    appended: int = 0
    #: Central sort spec: (column index, descending) per order-by term.
    sort_cols: tuple[tuple[int, bool], ...] = ()
    distinct: bool = False
    limit: int | None = None
    # -- data shipping only --
    #: Attribute behind each shipped column.
    ship_attrs: tuple[str, ...] = ()
    #: Shipped-column index of each output column.
    select_cols: tuple[int, ...] = ()
    #: Shipped-column index the aggregate reads (None for count(*)).
    agg_col: int | None = None
    #: The where clause the coordinator evaluates centrally.
    where: Expr | None = None
    # -- estimates (recorded for both strategies, whichever runs) --
    est_rows_total: int = 0
    est_rows_out: float = 0.0
    est_query_ship_bytes: float = 0.0
    est_data_ship_bytes: float = 0.0
    notes: list[str] = field(default_factory=list)

    def description(self) -> str:
        ship = (
            f"~{self.est_query_ship_bytes / 1e3:.0f}kB shipped"
            if self.strategy == "query"
            else f"~{self.est_data_ship_bytes / 1e3:.0f}kB shipped"
        )
        return f"{self.strategy}-ship {self.merge} merge, {ship}"


class Coordinator:
    """Plans and executes OQL over every shard of a cluster."""

    def __init__(self, cluster: ShardedCluster, batch_size: int = 256):
        self.cluster = cluster
        self.batch_size = batch_size
        #: The most recent plan ``execute`` ran (diagnostics).
        self.last_plan: DistPlan | None = None

    # -- planning -------------------------------------------------------

    def plan(self, source: str | Query, strategy: str = "auto") -> DistPlan:
        query = parse(source) if isinstance(source, str) else source
        if strategy not in ("auto",) + SHIP_STRATEGIES:
            raise DistPlanError(
                f"unknown strategy {strategy!r}; choose from "
                f"{('auto',) + SHIP_STRATEGIES}"
            )
        est = self._estimate(query)
        if strategy == "auto":
            # Query shipping moves only matching rows; data shipping
            # moves the extent.  The estimate can only tie (empty
            # where), so auto always resolves to query shipping — the
            # point of recording both numbers is to show the margin.
            strategy = (
                "data"
                if est["data_bytes"] < est["query_bytes"]
                else "query"
            )
        if strategy == "query":
            plan = self._plan_query_ship(query)
        else:
            plan = self._plan_data_ship(query)
        plan.est_rows_total = est["rows_total"]
        plan.est_rows_out = est["rows_out"]
        plan.est_query_ship_bytes = est["query_bytes"]
        plan.est_data_ship_bytes = est["data_bytes"]
        return plan

    def _plan_query_ship(self, query: Query) -> DistPlan:
        if isinstance(query.select, AggregateExpr):
            return self._plan_aggregate(query)
        select_paths, scalar = _select_paths(query)
        n_select = len(select_paths)
        sort_cols: list[tuple[int, bool]] = []
        appended = 0
        fields = [(f"c{i}", p) for i, p in enumerate(select_paths)]
        for term in query.order_by:
            try:
                col = select_paths.index(term.key)
            except ValueError:
                if len(query.from_clauses) != 1:
                    raise DistPlanError(
                        "distributed order by over a join requires every "
                        "sort key in the select clause"
                    ) from None
                if query.distinct:
                    raise DistPlanError(
                        "distributed distinct + order by requires every "
                        "sort key in the select clause (appending keys "
                        "would change what distinct dedupes)"
                    ) from None
                col = len(fields)
                appended += 1
                fields.append((f"ob{col}", term.key))
            sort_cols.append((col, term.descending))
        if appended or (not scalar and len(fields) != n_select):
            shard_select: Expr = TupleExpr(tuple(fields))
        else:
            shard_select = query.select
        scalar_rows = scalar and appended == 0
        # Shards only sort when their top-k prunes the wire; otherwise
        # their order is wasted work (the coordinator re-sorts anyway).
        keep_shard_order = bool(query.order_by) and query.limit is not None
        shard_query = Query(
            select=shard_select,
            from_clauses=query.from_clauses,
            where=query.where,
            distinct=query.distinct,
            order_by=query.order_by if keep_shard_order else (),
            limit=query.limit,
        )
        return DistPlan(
            query=query,
            strategy="query",
            shard_texts=(print_query(shard_query),),
            merge="rows",
            n_select=n_select,
            scalar_select=scalar,
            appended=appended,
            sort_cols=tuple(sort_cols),
            distinct=query.distinct,
            limit=query.limit,
        )

    def _plan_aggregate(self, query: Query) -> DistPlan:
        agg: AggregateExpr = query.select  # type: ignore[assignment]
        if query.distinct or query.order_by or query.limit is not None:
            raise DistPlanError(
                "distributed aggregates take no distinct/order by/limit"
            )
        if agg.func == "avg":
            # avg of averages is wrong unless shards are equal-sized;
            # ship sum + count and divide at the coordinator.
            texts = tuple(
                print_query(
                    Query(
                        select=AggregateExpr(func, agg.arg if func == "sum" else None),
                        from_clauses=query.from_clauses,
                        where=query.where,
                    )
                )
                for func in ("sum", "count")
            )
        else:
            texts = (print_query(query),)
        return DistPlan(
            query=query,
            strategy="query",
            shard_texts=texts,
            merge="aggregate",
            agg_func=agg.func,
        )

    def _plan_data_ship(self, query: Query) -> DistPlan:
        var, coll = _flat_source(query)
        if isinstance(query.select, AggregateExpr):
            agg = query.select
            if agg.arg is not None and not _is_attr(agg.arg, var):
                raise DistPlanError(
                    f"data shipping needs a plain {var}.attr aggregate "
                    f"argument, got {agg.arg}"
                )
            select_paths: list[Path] = [agg.arg] if agg.arg is not None else []
            agg_func = agg.func
            scalar = True
        else:
            select_paths, scalar = _select_paths(query)
            agg_func = None
            for p in select_paths:
                if not _is_attr(p, var):
                    raise DistPlanError(
                        f"data shipping needs plain {var}.attr select "
                        f"columns, got {p}"
                    )
        needed: list[str] = []

        def note(path: Path) -> int:
            attr = path.attrs[0]
            if attr not in needed:
                needed.append(attr)
            return needed.index(attr)

        select_cols = tuple(note(p) for p in select_paths)
        for term in _where_paths(query.where, var):
            note(term)
        sort_cols = []
        for term in query.order_by:
            if not _is_attr(term.key, var):
                raise DistPlanError(
                    f"data shipping needs plain {var}.attr sort keys, "
                    f"got {term.key}"
                )
            sort_cols.append((note(term.key), term.descending))
        if not needed:
            # count(*) with no predicate still has to ship *something*
            # to count; ship the cheapest attribute: an indexed key.
            attrs = self.cluster.nodes[0].catalog.indexed_attrs(coll)
            if not attrs:
                raise DistPlanError(
                    f"nothing to ship for {coll}: no attributes referenced"
                )
            needed.append(attrs[0])
        shard_query = Query(
            select=TupleExpr(
                tuple((a, Path(var, (a,))) for a in needed)
            ),
            from_clauses=query.from_clauses,
        )
        return DistPlan(
            query=query,
            strategy="data",
            shard_texts=(print_query(shard_query),),
            merge="aggregate" if agg_func else "rows",
            agg_func=agg_func,
            n_select=len(select_cols),
            scalar_select=scalar and agg_func is None,
            sort_cols=tuple(sort_cols),
            distinct=query.distinct,
            limit=query.limit,
            ship_attrs=tuple(needed),
            select_cols=select_cols,
            agg_col=select_cols[0] if agg_func and select_paths else None,
            where=query.where,
        )

    # -- execution ------------------------------------------------------

    def execute(
        self,
        source: str | Query,
        strategy: str = "auto",
        on_batch=None,
        batch_size: int | None = None,
    ) -> list:
        """Run the query across every shard; returns the merged rows,
        shaped exactly like the single-node engine's answer."""
        self.cluster.tick()
        plan = self.plan(source, strategy)
        self.last_plan = plan
        if plan.strategy == "query" and plan.merge == "aggregate":
            return self._merge_aggregate(plan)
        rows = self._gather(plan, on_batch, batch_size)
        if plan.strategy == "data":
            rows = self._apply_central(plan, rows)
            if plan.merge == "aggregate":
                return rows
        return self._finish_rows(plan, rows)

    def execute_iter(
        self,
        source: str | Query,
        on_batch=None,
        batch_size: int | None = None,
    ) -> Cursor:
        """A streaming cursor over the raw (pre-merge) exchange — only
        for plain row queries with no central work to do."""
        plan = self.plan(source, "query")
        if plan.merge != "rows" or plan.sort_cols or plan.distinct:
            raise DistPlanError(
                "execute_iter streams only plain row queries; use "
                "execute() for aggregates, distinct or order by"
            )
        self.last_plan = plan
        return self._open_exchange(plan, on_batch, batch_size)

    # -- helpers --------------------------------------------------------

    def _open_exchange(self, plan, on_batch, batch_size) -> Cursor:
        text = plan.shard_texts[0]
        cluster = self.cluster
        cluster.tick()
        streams: list = []
        try:
            for node in cluster.nodes:
                # Fail fast before building cursors on the other shards:
                # an exchange is all-shards-or-nothing.
                cluster._check_route(node)
                streams.append((node, node.engine.execute_iter(text)))
        except BaseException:
            # Don't leak the shard cursors already built when a later
            # shard refuses (down, fenced, or a planning error).
            for stream_node, cursor in streams:
                if stream_node.down:
                    continue
                try:
                    cursor.close()
                except ReproError:
                    pass
            raise
        ctx = coordinator_context(self.cluster)
        exchange = ExchangeOperator(
            ctx, self.cluster, streams, on_batch=on_batch
        )
        return Cursor(ctx, exchange, batch_size or self.batch_size)

    def _gather(self, plan, on_batch, batch_size) -> list:
        return self._open_exchange(plan, on_batch, batch_size).drain()

    def _merge_aggregate(self, plan) -> list:
        cluster = self.cluster
        if plan.agg_func == "avg":
            sum_text, count_text = plan.shard_texts

            def shard_fn(node):
                return lambda: (
                    node.engine.execute(sum_text)[0],
                    node.engine.execute(count_text)[0],
                )

            parts = cluster.fanout(
                [(node, shard_fn(node)) for node in cluster.nodes],
                nbytes=2 * ROW_WIRE_BYTES,
            )
            total = sum(p[0] for p in parts)
            count = sum(p[1] for p in parts)
            return [finish_aggregate("avg", count, total, None, None)]
        text = plan.shard_texts[0]
        parts = cluster.fanout(
            [
                (node, (lambda node=node: node.engine.execute(text)[0]))
                for node in cluster.nodes
            ],
            nbytes=ROW_WIRE_BYTES,
        )
        if plan.agg_func in ("count", "sum"):
            return [sum(parts)]
        values = [p for p in parts if p is not None]
        if not values:
            return [None]
        return [min(values) if plan.agg_func == "min" else max(values)]

    def _apply_central(self, plan, rows: list) -> list:
        """The data-shipping coordinator-side work: evaluate the where
        clause on every shipped tuple, then project (or aggregate)."""
        clock = self.cluster.clock
        params = self.cluster.params
        env_attrs = plan.ship_attrs
        kept = []
        for row in rows:
            env = dict(zip(env_attrs, row))
            if plan.where is None or _eval_pred(
                plan.where, env, clock, params
            ):
                kept.append(row)
        if plan.merge == "aggregate":
            count = len(kept)
            if plan.agg_func == "count":
                return [count]
            values = [row[plan.agg_col] for row in kept]
            total = float(sum(values))
            lo = min(values) if values else None
            hi = max(values) if values else None
            return [finish_aggregate(plan.agg_func, count, total, lo, hi)]
        if plan.scalar_select:
            return [row[plan.select_cols[0]] for row in kept]
        return [tuple(row[c] for c in plan.select_cols) for row in kept]

    def _finish_rows(self, plan, rows: list) -> list:
        """Central recombination: re-dedupe, re-sort, strip, re-limit."""
        clock = self.cluster.clock
        params = self.cluster.params
        if plan.distinct:
            seen = set()
            deduped = []
            for row in rows:
                clock.charge_us(Bucket.CPU, params.hash_probe_us)
                if row not in seen:
                    seen.add(row)
                    deduped.append(row)
            rows = deduped
        if plan.sort_cols:
            scalar_rows = plan.scalar_select and plan.appended == 0
            n = len(rows)
            # Stable multi-pass sort, minor key first, one charged
            # n·log2(n) pass per key (matching the single-node price).
            for col, descending in reversed(plan.sort_cols):
                if n > 1:
                    clock.charge_us(
                        Bucket.SORT,
                        params.sort_per_element_log_us * n * math.log2(n),
                    )
                if scalar_rows:
                    rows.sort(reverse=descending)
                else:
                    rows.sort(key=lambda r, c=col: r[c], reverse=descending)
        if plan.appended:
            if plan.scalar_select:
                rows = [row[0] for row in rows]
            else:
                rows = [row[: plan.n_select] for row in rows]
        if plan.limit is not None:
            rows = rows[: plan.limit]
        return rows

    def _estimate(self, query: Query) -> dict:
        """Byte estimates for both strategies, from per-shard catalogs
        (sizes are shard-local; selectivity is scale-free)."""
        rows_total = 0
        sel = 1.0
        first = query.from_clauses[0].source
        coll = first.name if isinstance(first, CollectionRef) else None
        variables = {c.var for c in query.from_clauses}
        for node in self.cluster.nodes:
            estimator = CardinalityEstimator(node.catalog)
            if coll is not None:
                rows_total += estimator.collection_rows(coll)
        if coll is not None:
            estimator = CardinalityEstimator(self.cluster.nodes[0].catalog)
            for term in conjuncts(query.where):
                pred = Optimizer._as_sargable(term, variables)
                if pred is not None and pred.var == query.from_clauses[0].var:
                    sel *= estimator.selectivity(coll, pred)
        rows_out = rows_total * sel
        if query.limit is not None:
            rows_out = min(rows_out, query.limit * self.cluster.n_shards)
        return {
            "rows_total": rows_total,
            "rows_out": rows_out,
            "query_bytes": rows_out * ROW_WIRE_BYTES,
            "data_bytes": rows_total * ROW_WIRE_BYTES,
        }


# -- query-shape helpers ------------------------------------------------


def _select_paths(query: Query) -> tuple[list[Path], bool]:
    """The select clause as a list of paths, plus whether the original
    rows are scalars (a bare path select) rather than tuples."""
    select = query.select
    if isinstance(select, TupleExpr):
        paths = []
        for __name, value in select.fields:
            if not isinstance(value, Path):
                raise DistPlanError(
                    f"distributed select tuples must hold paths, got {value!r}"
                )
            paths.append(value)
        return paths, False
    if isinstance(select, Path):
        return [select], True
    raise DistPlanError(
        f"cannot distribute select expression {select!r}"
    )


def _flat_source(query: Query) -> tuple[str, str]:
    """Validate the query is a flat selection; returns (var, collection)."""
    if len(query.from_clauses) != 1:
        raise DistPlanError("data shipping supports a single from clause")
    clause = query.from_clauses[0]
    if not isinstance(clause.source, CollectionRef):
        raise DistPlanError(
            "data shipping supports named collections only (no navigation)"
        )
    for term in conjuncts(query.where):
        if _contains_exists(term):
            raise DistPlanError(
                "data shipping cannot evaluate exists centrally"
            )
    return clause.var, clause.source.name


def _is_attr(path: Path, var: str) -> bool:
    return path.var == var and len(path.attrs) == 1


def _contains_exists(expr: Expr) -> bool:
    if isinstance(expr, ExistsExpr):
        return True
    if isinstance(expr, BoolOp):
        return any(_contains_exists(op) for op in expr.operands)
    if isinstance(expr, BinOp):
        return _contains_exists(expr.left) or _contains_exists(expr.right)
    return False


def _where_paths(expr: Expr | None, var: str) -> list[Path]:
    """Every ``var.attr`` path a where clause reads (validated flat)."""
    if expr is None:
        return []
    if isinstance(expr, Path):
        if not _is_attr(expr, var):
            raise DistPlanError(
                f"data shipping needs plain {var}.attr predicates, got {expr}"
            )
        return [expr]
    if isinstance(expr, Literal):
        return []
    if isinstance(expr, BinOp):
        return _where_paths(expr.left, var) + _where_paths(expr.right, var)
    if isinstance(expr, BoolOp):
        out: list[Path] = []
        for op in expr.operands:
            out.extend(_where_paths(op, var))
        return out
    raise DistPlanError(f"data shipping cannot evaluate {expr!r} centrally")


def _eval_pred(expr: Expr, env: dict, clock, params) -> bool:
    """Evaluate a where clause against one shipped row, charging the
    same per-predicate CPU the shard-side filter charges."""
    if isinstance(expr, BinOp):
        clock.charge_us(Bucket.CPU, params.predicate_us)
        return _OPS[expr.op](_eval_value(expr.left, env), _eval_value(expr.right, env))
    if isinstance(expr, BoolOp):
        if expr.op == "and":
            return all(_eval_pred(op, env, clock, params) for op in expr.operands)
        if expr.op == "or":
            return any(_eval_pred(op, env, clock, params) for op in expr.operands)
        return not _eval_pred(expr.operands[0], env, clock, params)
    raise DistPlanError(f"cannot evaluate {expr!r} centrally")


def _eval_value(expr: Expr, env: dict):
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, Path):
        return env[expr.attrs[0]]
    raise DistPlanError(f"cannot evaluate {expr!r} centrally")
