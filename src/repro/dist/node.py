"""One simulated shard: a complete single-node stack plus RPC metering.

A :class:`ShardNode` owns everything a standalone deployment owns — its
own :class:`~repro.storage.disk.DiskManager`, server buffer, handle
table, :class:`~repro.txn.locks.LockManager`, write-ahead log and OQL
engine — built by the ordinary loader over the shard's logical slice.
Nothing inside the single-node stack knows it is sharded.

Two deliberate deviations from a plain single-node build:

* the shard's **lock manager runs on the coordinator's clock**, so lock
  wait durations and timeouts are comparable across shards (the global
  deadlock detector unions per-shard waits-for graphs; a per-shard
  timeline would make ``enqueued_s`` meaningless at the coordinator);
* the shard's **transaction manager is always in recovery mode** — its
  WAL carries physical records, which is what two-phase commit prepares
  and :func:`repro.recovery.restart` resolves after a crash.

The shard's own :class:`~repro.simtime.SimClock` keeps running: it is
the meter of *work this node performed*, which the coordinator charges
to its timeline as parallel remote time (``Bucket.REMOTE``).
"""

from __future__ import annotations

from repro.cluster.loader import DerbyDatabase
from repro.oql.catalog import Catalog
from repro.oql.engine import OQLEngine
from repro.oql.optimizer import Optimizer
from repro.simtime import SimClock
from repro.txn.locks import LockManager
from repro.txn.manager import TransactionManager


class ShardNode:
    """One shard of a :class:`~repro.dist.cluster.ShardedCluster`."""

    def __init__(
        self,
        shard_id: int,
        derby: DerbyDatabase,
        coord_clock: SimClock,
        lock_timeout_s: float | None = None,
        cost_optimizer: bool = False,
    ):
        self.shard_id = shard_id
        self.derby = derby
        self.db = derby.db
        self.txm = TransactionManager(self.db, recovery=True)
        # Lock bookkeeping moves to the coordinator timeline (see module
        # docstring); data-path charges stay on the shard clock.
        self.txm.locks = LockManager(
            coord_clock, self.db.params, timeout_s=lock_timeout_s
        )
        self.catalog = Catalog.from_derby(derby)
        if cost_optimizer:
            # Imported lazily: repro.opt sits above repro.oql but below
            # dist, and only this optional path needs it.
            from repro.opt import CostBasedOptimizer

            optimizer: Optimizer = CostBasedOptimizer(self.catalog)
        else:
            optimizer = Optimizer(self.catalog, include_extensions=True)
        self.engine = OQLEngine(self.catalog, optimizer=optimizer)
        #: Cross-node messages addressed to this shard.
        self.msgs = 0
        #: Payload bytes of those messages (both directions).
        self.msg_bytes = 0
        #: Simulated seconds the coordinator spent waiting on this shard
        #: (the serialized remainder of this shard's parallel work).
        self.remote_wait_s = 0.0
        # -- replication state (see repro.dist.replication) ------------
        #: ``"primary"`` serves traffic; ``"replica"`` only applies
        #: shipped redo until promoted.
        self.role = "primary"
        #: Shard epoch this node was installed as primary under.  The
        #: cluster bumps the authoritative epoch in its decision log at
        #: every failover; a deposed primary keeps its old value, which
        #: is what the fence compares against.
        self.epoch = 0
        #: The node's process is dead (killed) or partitioned away —
        #: either way it cannot serve until replaced.
        self.down = False

    @property
    def locks(self) -> LockManager:
        return self.txm.locks

    @property
    def busy_s(self) -> float:
        """Total simulated work this node has performed."""
        return self.db.clock.elapsed_s

    def start_cold(self) -> None:
        """Empty this shard's caches and zero its meters."""
        self.derby.start_cold_run()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ShardNode {self.shard_id}: "
            f"{len(self.derby.provider_rids)}p/"
            f"{len(self.derby.patient_rids)}q>"
        )
