"""The simulated cluster: N shard nodes plus the coordinator's timeline.

A :class:`ShardedCluster` owns:

* the :class:`~repro.dist.node.ShardNode` list (each a complete
  single-node stack over its partition slice);
* the **coordinator clock** — the experiment's timeline.  Shard clocks
  meter per-node *work*; the coordinator charges that work to its own
  timeline as it observes it: serially for a single :meth:`call`
  (``Bucket.REMOTE`` = the shard's busy delta), in parallel for a
  :meth:`fanout` (the **max** of the deltas — the other shards' work
  overlaps it, which is where sharded scans get their speed-up);
* a fixed ``Bucket.RPC`` charge per cross-node message, from the same
  :class:`~repro.simtime.CostParams` the client/server wire always used;
* the **decision log** — a coordinator-local
  :class:`~repro.txn.log.WriteAheadLog` holding only two-phase-commit
  decision records (see :mod:`repro.dist.twopc`);
* the :class:`~repro.dist.deadlock.GlobalLockTable` and the distributed
  transaction registry.

:meth:`crash` power-cuts every node *and* the coordinator;
:meth:`recover` restarts each shard with an in-doubt resolver that
consults the durable decision log — the presumed-abort recovery rule.
"""

from __future__ import annotations

from repro.cluster.loader import load_derby
from repro.derby.config import DerbyConfig
from repro.derby.generator import LogicalDatabase, generate
from repro.dist.deadlock import GlobalLockTable
from repro.dist.node import ShardNode
from repro.dist.partition import PartitionMap, split_logical
from repro.dist.twopc import DistTransaction, TwoPCInjector
from repro.recovery.aries import RecoveryReport, restart
from repro.recovery.crash import crash_database
from repro.simtime import Bucket, SimClock
from repro.txn.log import WriteAheadLog


class ShardedCluster:
    """N shards, one coordinator timeline."""

    def __init__(
        self,
        config: DerbyConfig,
        part: PartitionMap,
        nodes: list[ShardNode],
        clock: SimClock,
    ):
        self.config = config
        self.part = part
        self.nodes = nodes
        self.clock = clock
        self.params = nodes[0].db.params
        self.decision_log = WriteAheadLog(self.clock, self.params)
        self.lock_table = GlobalLockTable(nodes)
        #: Optional :class:`~repro.dist.twopc.TwoPCInjector`.
        self.injector: TwoPCInjector | None = None
        self._next_global = 1
        self._active: dict[int, DistTransaction] = {}
        self.msgs = 0
        self.msg_bytes = 0
        self.committed = 0
        self.aborted = 0

    @property
    def n_shards(self) -> int:
        return len(self.nodes)

    @property
    def elapsed_s(self) -> float:
        """The coordinator's timeline — the experiment's elapsed time."""
        return self.clock.elapsed_s

    @property
    def total_busy_s(self) -> float:
        """Sum of per-shard work (the cluster's aggregate effort)."""
        return sum(node.busy_s for node in self.nodes)

    # -- messaging ------------------------------------------------------

    def call(self, node: ShardNode, fn, nbytes: int = 0):
        """One round-trip to one shard: fixed RPC overhead, then the
        shard's busy delta charged serially as remote wait."""
        self.clock.charge_ms(Bucket.RPC, self.params.rpc_overhead_ms)
        self._note_msg(node, nbytes)
        before = node.db.clock.elapsed_s
        try:
            return fn()
        finally:
            delta = node.db.clock.elapsed_s - before
            if delta > 0:
                self.clock.charge_s(Bucket.REMOTE, delta)
                node.remote_wait_s += delta

    def fanout(self, calls, nbytes: int = 0, after_first=None):
        """One round-trip to several shards *in parallel*: RPC overhead
        per message, but only the slowest shard's busy delta is charged
        (the rest overlap it).  ``calls`` is ``[(node, fn), ...]``;
        ``after_first`` (used by 2PC crash injection) runs after the
        first call completes."""
        results = []
        deltas: list[tuple[float, ShardNode]] = []
        for i, (node, fn) in enumerate(calls):
            self.clock.charge_ms(Bucket.RPC, self.params.rpc_overhead_ms)
            self._note_msg(node, nbytes)
            before = node.db.clock.elapsed_s
            results.append(fn())
            deltas.append((node.db.clock.elapsed_s - before, node))
            if i == 0 and after_first is not None:
                after_first()
        if deltas:
            slowest, node = max(deltas, key=lambda d: d[0])
            if slowest > 0:
                self.clock.charge_s(Bucket.REMOTE, slowest)
                node.remote_wait_s += slowest
        return results

    def _note_msg(self, node: ShardNode, nbytes: int) -> None:
        self.msgs += 1
        self.msg_bytes += nbytes
        node.msgs += 1
        node.msg_bytes += nbytes

    # -- distributed transactions ---------------------------------------

    def begin(self) -> DistTransaction:
        dtx = DistTransaction(self, self._next_global)
        self._next_global += 1
        self._active[dtx.global_id] = dtx
        return dtx

    @property
    def active_count(self) -> int:
        return len(self._active)

    def _on_dist_finished(self, dtx: DistTransaction) -> None:
        self._active.pop(dtx.global_id, None)
        if dtx.state == "committed":
            self.committed += 1
        else:
            self.aborted += 1

    def reached(self, point: str, detail: str = "") -> None:
        """Report a 2PC protocol step to the armed injector, if any."""
        if self.injector is not None:
            self.injector.reached(point, detail)

    # -- crash / recovery -----------------------------------------------

    def crash(self) -> None:
        """Power-cut the whole cluster: every shard loses its volatile
        state (see :func:`~repro.recovery.crash.crash_database`), the
        coordinator loses its unflushed decision-log tail and every
        open distributed transaction simply ceases to exist."""
        for node in self.nodes:
            crash_database(node.db, node.txm)
        self.decision_log.crash()
        for dtx in self._active.values():
            dtx.state = "crashed"
        self._active.clear()
        self.lock_table.clear()
        self.injector = None

    def recover(self) -> list[RecoveryReport]:
        """Restart every shard, resolving in-doubt 2PC branches against
        the coordinator's durable decision records (presumed abort: no
        decision record means abort)."""
        decided = self.decided_branches()
        reports = []
        for node in self.nodes:
            reports.append(
                restart(
                    node.db,
                    node.txm,
                    resolve_in_doubt=lambda txn_id, sid=node.shard_id: (
                        "commit" if (sid, txn_id) in decided else "abort"
                    ),
                )
            )
        return reports

    def decided_branches(self) -> set[tuple[int, int]]:
        """``(shard, branch txn)`` pairs named by durable decision
        records — the branches whose distributed commit won."""
        return {
            pair
            for record in self.decision_log.durable_records()
            if record.kind == "commit"
            for pair in record.att
        }

    # -- experiment hygiene ---------------------------------------------

    def start_cold(self) -> None:
        """Cold caches and zeroed meters everywhere, including the
        coordinator's clock and message counters."""
        for node in self.nodes:
            node.start_cold()
            node.msgs = 0
            node.msg_bytes = 0
            node.remote_wait_s = 0.0
        self.clock.reset()
        self.msgs = 0
        self.msg_bytes = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ShardedCluster {self.n_shards}x{self.part.scheme} "
            f"{self.config.n_providers}p/{self.config.n_patients}q>"
        )


def load_sharded(
    config: DerbyConfig,
    n_shards: int,
    scheme: str = "hash",
    logical: LogicalDatabase | None = None,
    lock_timeout_s: float | None = None,
    cost_optimizer: bool = False,
) -> ShardedCluster:
    """Generate (or reuse) the logical Derby database, partition it and
    load every shard through the ordinary single-node loader.

    Passing ``logical`` lets benchmarks generate once and split many
    ways — the sharded copies then hold byte-identical attribute values,
    which is what the semantic-equivalence gates compare against.
    """
    if logical is None:
        logical = generate(config)
    part, views = split_logical(logical, n_shards, scheme)
    clock = SimClock()
    nodes = [
        ShardNode(
            shard_id,
            load_derby(view.config, logical=view),
            clock,
            lock_timeout_s=lock_timeout_s,
            cost_optimizer=cost_optimizer,
        )
        for shard_id, view in enumerate(views)
    ]
    return ShardedCluster(config, part, nodes, clock)
