"""The simulated cluster: N shard nodes plus the coordinator's timeline.

A :class:`ShardedCluster` owns:

* the :class:`~repro.dist.node.ShardNode` list (each a complete
  single-node stack over its partition slice);
* the **coordinator clock** — the experiment's timeline.  Shard clocks
  meter per-node *work*; the coordinator charges that work to its own
  timeline as it observes it: serially for a single :meth:`call`
  (``Bucket.REMOTE`` = the shard's busy delta), in parallel for a
  :meth:`fanout` (the **max** of the deltas — the other shards' work
  overlaps it, which is where sharded scans get their speed-up);
* a fixed ``Bucket.RPC`` charge per cross-node message, from the same
  :class:`~repro.simtime.CostParams` the client/server wire always used;
* the **decision log** — a coordinator-local
  :class:`~repro.txn.log.WriteAheadLog` holding only two-phase-commit
  decision records (see :mod:`repro.dist.twopc`);
* the :class:`~repro.dist.deadlock.GlobalLockTable` and the distributed
  transaction registry.

:meth:`crash` power-cuts every node *and* the coordinator;
:meth:`recover` restarts each shard with an in-doubt resolver that
consults the durable decision log — the presumed-abort recovery rule.
"""

from __future__ import annotations

from repro.cluster.loader import load_derby
from repro.derby.config import DerbyConfig
from repro.derby.generator import LogicalDatabase, generate
from repro.dist.deadlock import GlobalLockTable
from repro.dist.failure import FailureDetector
from repro.dist.node import ShardNode
from repro.dist.partition import PartitionMap, RouteTable, split_logical
from repro.dist.replication import (
    EPOCH_RECORD_BYTES,
    ReplicaLink,
    ReplicationInjector,
)
from repro.dist.twopc import DistTransaction, TwoPCInjector
from repro.errors import ShardUnavailableError, StaleEpochError
from repro.recovery.aries import RecoveryReport, restart
from repro.recovery.crash import crash_database
from repro.simtime import Bucket, SimClock
from repro.txn.log import WriteAheadLog


class ShardedCluster:
    """N shards, one coordinator timeline."""

    def __init__(
        self,
        config: DerbyConfig,
        part: PartitionMap,
        nodes: list[ShardNode],
        clock: SimClock,
    ):
        self.config = config
        self.part = part
        self.nodes = nodes
        self.clock = clock
        self.params = nodes[0].db.params
        self.decision_log = WriteAheadLog(self.clock, self.params)
        self.lock_table = GlobalLockTable(nodes)
        #: Optional :class:`~repro.dist.twopc.TwoPCInjector`.
        self.injector: TwoPCInjector | None = None
        self._next_global = 1
        self._active: dict[int, DistTransaction] = {}
        self.msgs = 0
        self.msg_bytes = 0
        self.committed = 0
        self.aborted = 0
        # -- replication (see repro.dist.replication) ------------------
        #: The serving node per shard and its fencing epoch.  Wraps
        #: ``nodes`` by reference: a failover rewrite is visible to
        #: everything holding the list.
        self.route = RouteTable(nodes)
        #: Warm standbys awaiting promotion, by shard id.
        self.standbys: dict[int, ShardNode] = {}
        #: Ship links, by shard id (removed once promotion consumes the
        #: standby or the link becomes unusable).
        self.links: dict[int, ReplicaLink] = {}
        #: Links consumed by a completed failover, by shard id — kept
        #: so ship/ack meters survive promotion for reporting.
        self.retired_links: dict[int, ReplicaLink] = {}
        #: Primaries deposed by failover (kept for diagnostics only —
        #: they are no longer routed to).
        self.retired: list[ShardNode] = []
        self.detector: FailureDetector | None = None
        #: Optional :class:`~repro.dist.replication.ReplicationInjector`.
        self.repl_injector: ReplicationInjector | None = None
        #: Scheduled primary kills: (at_s, shard_id, partition), sorted.
        self._kill_plan: list[tuple[float, int, bool]] = []
        self.kills = 0
        #: Downtime already accounted per shard (completed failovers;
        #: use :meth:`shard_unavailable_s` for the live total).
        self.unavailable_s = [0.0] * len(nodes)
        #: shard id -> acknowledged-loss window (durable-but-unshipped
        #: records) snapshotted when its primary died.  Always 0 in sync
        #: mode; bounded by ``max_lag_records`` in async mode.
        self.loss_windows: dict[int, int] = {}

    @property
    def n_shards(self) -> int:
        return len(self.nodes)

    @property
    def elapsed_s(self) -> float:
        """The coordinator's timeline — the experiment's elapsed time."""
        return self.clock.elapsed_s

    @property
    def total_busy_s(self) -> float:
        """Sum of per-shard work (the cluster's aggregate effort)."""
        return sum(node.busy_s for node in self.nodes)

    # -- messaging ------------------------------------------------------

    def call(self, node: ShardNode, fn, nbytes: int = 0):
        """One round-trip to one shard: fixed RPC overhead, then the
        shard's busy delta charged serially as remote wait."""
        self._check_route(node)
        self.clock.charge_ms(Bucket.RPC, self.params.rpc_overhead_ms)
        self._note_msg(node, nbytes)
        before = node.db.clock.elapsed_s
        try:
            return fn()
        finally:
            delta = node.db.clock.elapsed_s - before
            if delta > 0:
                self.clock.charge_s(Bucket.REMOTE, delta)
                node.remote_wait_s += delta

    def fanout(self, calls, nbytes: int = 0, after_first=None):
        """One round-trip to several shards *in parallel*: RPC overhead
        per message, but only the slowest shard's busy delta is charged
        (the rest overlap it).  ``calls`` is ``[(node, fn), ...]``;
        ``after_first`` (used by 2PC crash injection) runs after the
        first call completes."""
        results = []
        deltas: list[tuple[float, ShardNode]] = []
        for node, __ in calls:
            self._check_route(node)
        for i, (node, fn) in enumerate(calls):
            self.clock.charge_ms(Bucket.RPC, self.params.rpc_overhead_ms)
            self._note_msg(node, nbytes)
            before = node.db.clock.elapsed_s
            results.append(fn())
            deltas.append((node.db.clock.elapsed_s - before, node))
            if i == 0 and after_first is not None:
                after_first()
        if deltas:
            slowest, node = max(deltas, key=lambda d: d[0])
            if slowest > 0:
                self.clock.charge_s(Bucket.REMOTE, slowest)
                node.remote_wait_s += slowest
        return results

    def _note_msg(self, node: ShardNode, nbytes: int) -> None:
        self.msgs += 1
        self.msg_bytes += nbytes
        node.msgs += 1
        node.msg_bytes += nbytes

    def _check_route(self, node: ShardNode) -> None:
        """The routing-metadata checks every message passes first: a
        down node fails fast (no RPC is charged — the route already says
        so), and a primary whose epoch predates the route's is a fenced
        zombie — it was deposed while partitioned away and must not
        serve, no matter how alive it feels."""
        if node.down:
            raise ShardUnavailableError(
                f"shard {node.shard_id} has no serving node "
                f"({node.role} is down, epoch "
                f"{self.route.epoch_of(node.shard_id)})"
            )
        if node.role == "primary" and node.epoch != self.route.epoch_of(
            node.shard_id
        ):
            raise StaleEpochError(
                f"shard {node.shard_id} traffic at epoch {node.epoch} "
                f"rejected: current epoch is "
                f"{self.route.epoch_of(node.shard_id)} (deposed primary)"
            )

    # -- distributed transactions ---------------------------------------

    def begin(self) -> DistTransaction:
        dtx = DistTransaction(self, self._next_global)
        self._next_global += 1
        self._active[dtx.global_id] = dtx
        return dtx

    @property
    def active_count(self) -> int:
        return len(self._active)

    def _on_dist_finished(self, dtx: DistTransaction) -> None:
        self._active.pop(dtx.global_id, None)
        if dtx.state == "committed":
            self.committed += 1
        else:
            self.aborted += 1

    def reached(self, point: str, detail: str = "") -> None:
        """Report a 2PC protocol step to the armed injector, if any."""
        if self.injector is not None:
            self.injector.reached(point, detail)

    def reached_repl(self, point: str, shard_id: int) -> None:
        """Report a replication protocol step to the armed injector."""
        if self.repl_injector is not None:
            self.repl_injector.reached(point, shard_id)

    # -- replication ----------------------------------------------------

    def attach_replicas(
        self,
        replicas: list[ShardNode],
        mode: str = "sync",
        max_lag_records: int = 64,
        heartbeat_interval_s: float = 0.05,
        lease_s: float = 0.15,
        grace_s: float = 0.1,
    ) -> None:
        """Pair every shard with a warm standby: wire the ship links
        onto the primaries' WALs and start the failure detector."""
        for node in replicas:
            node.role = "replica"
            link = ReplicaLink(
                self,
                node.shard_id,
                self.nodes[node.shard_id],
                node,
                mode=mode,
                max_lag_records=max_lag_records,
            )
            link.attach()
            self.standbys[node.shard_id] = node
            self.links[node.shard_id] = link
        self.detector = FailureDetector(
            self,
            heartbeat_interval_s=heartbeat_interval_s,
            lease_s=lease_s,
            grace_s=grace_s,
        )

    def kill_primary(self, shard_id: int, partition: bool = False) -> None:
        """Stop the shard's serving primary.  ``partition=False`` is a
        process kill (volatile state lost, durable state frozen);
        ``partition=True`` leaves the process intact but unreachable —
        the zombie that later tests the epoch fence.  Never raises:
        in-flight callers discover the death through
        :meth:`_check_route` or the armed injector."""
        node = self.route.node_for(shard_id)
        if node.down:
            return
        link = self.links.get(shard_id)
        if link is not None:
            # Snapshot the acknowledged-loss window before the WAL
            # mutates, then stop shipping.
            link.note_primary_down()
            self.loss_windows[shard_id] = link.loss_window_records or 0
        # Branches queued on the dying shard's locks must be woken (as
        # retryable lock conflicts) before the lock state evaporates.
        self.lock_table.fail_shard_waiters(shard_id)
        node.down = True
        if partition:
            # The process lives on, but nothing it ships or serves is
            # heard again until it rejoins (and then the fence decides).
            node.txm.log.ship_listener = None
        else:
            crash_database(node.db, node.txm)
        if self.detector is not None:
            self.detector.note_down(shard_id)
        self.kills += 1

    def rejoin(self, node: ShardNode) -> None:
        """A partitioned node heals and tries to serve again.  Nothing
        is rewired: if it was deposed meanwhile, its stale epoch makes
        every call raise :class:`~repro.errors.StaleEpochError`."""
        node.down = False

    def schedule_kill(
        self, shard_id: int, at_s: float, partition: bool = False
    ) -> None:
        """Kill the shard's primary at simulated time ``at_s`` (executed
        by the next :meth:`tick` at or after that time)."""
        self._kill_plan.append((at_s, shard_id, partition))
        self._kill_plan.sort()

    def tick(self) -> None:
        """Advance failure handling on the coordinator timeline:
        execute due scheduled kills, drain async ship links, pump the
        failure detector, and fail over shards it declared dead.  Called
        at session operation boundaries; a cluster without replication
        returns immediately."""
        if self.detector is None and not self._kill_plan:
            return
        now = self.clock.elapsed_s
        while self._kill_plan and self._kill_plan[0][0] <= now:
            __, sid, partition = self._kill_plan.pop(0)
            self.kill_primary(sid, partition=partition)
        for link in self.links.values():
            link.pump()
        if self.detector is not None:
            for sid in self.detector.pump():
                self.failover(sid)

    def failover(self, shard_id: int) -> bool:
        """Fenced promotion of the shard's standby; returns whether the
        shard is serving again.

        Order matters and is lint-enforced (simlint PROTO): the epoch is
        bumped **in the decision log first** — once that record is
        durable, the old primary is deposed even if it never heard so —
        and only then does promotion change any state: the standby
        replays to its durable ship prefix, in-doubt 2PC branches
        resolve against the decision log (presumed abort), and the route
        rewrite installs the new primary under the new epoch."""
        self.reached_repl("repl-before-promote", shard_id)
        replica = self.standbys.get(shard_id)
        if replica is None or replica.down:
            return False
        epoch = self.route.epoch_of(shard_id) + 1
        self.decision_log.append(
            0, "epoch", EPOCH_RECORD_BYTES, att=((shard_id, epoch),)
        )
        self.decision_log.flush()
        self.reached_repl("repl-mid-promote", shard_id)
        if replica.down:
            # Double failure: the epoch is burned but no routing changed
            # — the shard simply has no promotable node left.
            return False
        decided = self.decided_branches()
        self.call(
            replica,
            lambda: restart(
                replica.db,
                replica.txm,
                resolve_in_doubt=lambda txn_id, sid=shard_id: (
                    "commit" if (sid, txn_id) in decided else "abort"
                ),
            ),
            nbytes=EPOCH_RECORD_BYTES,
        )
        replica.role = "primary"
        replica.epoch = epoch
        self.retired.append(self.nodes[shard_id])
        self.route.rewrite(shard_id, replica, epoch)
        self.standbys.pop(shard_id, None)
        link = self.links.pop(shard_id, None)
        if link is not None:
            link.detach()
            self.retired_links[shard_id] = link
        self.lock_table.attach_node(replica)
        if self.detector is not None:
            health = self.detector.health[shard_id]
            if health.down_since_s is not None:
                self.unavailable_s[shard_id] += (
                    self.clock.elapsed_s - health.down_since_s
                )
            self.detector.note_promoted(shard_id)
        return True

    def shard_unavailable_s(self, shard_id: int) -> float:
        """Total downtime of a shard so far: completed failovers plus
        any outage still in progress."""
        total = self.unavailable_s[shard_id]
        if self.detector is not None:
            h = self.detector.health[shard_id]
            if h.down_since_s is not None and self.route.node_for(
                shard_id
            ).down:
                total += self.clock.elapsed_s - h.down_since_s
        return total

    def all_nodes(self) -> list[ShardNode]:
        """Every node the cluster owns: serving primaries, standbys and
        deposed primaries (leak checks walk all of them)."""
        return [*self.nodes, *self.standbys.values(), *self.retired]

    # -- crash / recovery -----------------------------------------------

    def crash(self) -> None:
        """Power-cut the whole cluster: every shard loses its volatile
        state (see :func:`~repro.recovery.crash.crash_database`), the
        coordinator loses its unflushed decision-log tail and every
        open distributed transaction simply ceases to exist.  Ship
        links do not survive a full-cluster crash (recovery appends
        diverging compensation records on each side); replication chaos
        uses per-node :meth:`kill_primary` instead."""
        for link in self.links.values():
            link.detach()
        for node in self.all_nodes():
            if not node.down:
                crash_database(node.db, node.txm)
        self.decision_log.crash()
        for dtx in self._active.values():
            dtx.state = "crashed"
        self._active.clear()
        self.lock_table.clear()
        self.injector = None
        self.repl_injector = None

    def recover(self) -> list[RecoveryReport]:
        """Restart every shard, resolving in-doubt 2PC branches against
        the coordinator's durable decision records (presumed abort: no
        decision record means abort)."""
        decided = self.decided_branches()
        reports = []
        for node in [*self.nodes, *self.standbys.values()]:
            reports.append(
                restart(
                    node.db,
                    node.txm,
                    resolve_in_doubt=lambda txn_id, sid=node.shard_id: (
                        "commit" if (sid, txn_id) in decided else "abort"
                    ),
                )
            )
            node.down = False
        return reports

    def decided_branches(self) -> set[tuple[int, int]]:
        """``(shard, branch txn)`` pairs named by durable decision
        records — the branches whose distributed commit won."""
        return {
            pair
            for record in self.decision_log.durable_records()
            if record.kind == "commit"
            for pair in record.att
        }

    # -- experiment hygiene ---------------------------------------------

    def start_cold(self) -> None:
        """Cold caches and zeroed meters everywhere, including the
        coordinator's clock and message counters."""
        for node in self.all_nodes():
            node.start_cold()
            node.msgs = 0
            node.msg_bytes = 0
            node.remote_wait_s = 0.0
        self.clock.reset()
        self.msgs = 0
        self.msg_bytes = 0
        for link in self.links.values():
            link.reset_meters()
        if self.detector is not None:
            self.detector.reset()
        self.kills = 0
        self.unavailable_s = [0.0] * len(self.nodes)
        self.loss_windows = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ShardedCluster {self.n_shards}x{self.part.scheme} "
            f"{self.config.n_providers}p/{self.config.n_patients}q>"
        )


def load_sharded(
    config: DerbyConfig,
    n_shards: int,
    scheme: str = "hash",
    logical: LogicalDatabase | None = None,
    lock_timeout_s: float | None = None,
    cost_optimizer: bool = False,
    replicas: int = 0,
    ship_mode: str = "sync",
    max_lag_records: int = 64,
) -> ShardedCluster:
    """Generate (or reuse) the logical Derby database, partition it and
    load every shard through the ordinary single-node loader.

    Passing ``logical`` lets benchmarks generate once and split many
    ways — the sharded copies then hold byte-identical attribute values,
    which is what the semantic-equivalence gates compare against.

    ``replicas=1`` loads each shard's slice a second time into a warm
    standby (byte-identical with its primary, including the WAL the
    loader left behind) and wires WAL shipping plus failure detection —
    see :mod:`repro.dist.replication`.
    """
    if replicas not in (0, 1):
        raise ValueError(
            f"replicas must be 0 or 1 (one standby per shard), got {replicas}"
        )
    if logical is None:
        logical = generate(config)
    part, views = split_logical(logical, n_shards, scheme)
    clock = SimClock()

    def build(shard_id: int, view) -> ShardNode:
        return ShardNode(
            shard_id,
            load_derby(view.config, logical=view),
            clock,
            lock_timeout_s=lock_timeout_s,
            cost_optimizer=cost_optimizer,
        )

    nodes = [build(shard_id, view) for shard_id, view in enumerate(views)]
    cluster = ShardedCluster(config, part, nodes, clock)
    if replicas:
        cluster.attach_replicas(
            [build(shard_id, view) for shard_id, view in enumerate(views)],
            mode=ship_mode,
            max_lag_records=max_lag_records,
        )
    return cluster
