"""Seeded 2PC chaos: crash the cluster mid-protocol, recover, verify.

The sharded analogue of :mod:`repro.service.chaos`.  Each case builds a
fresh tiny cluster, draws a shard count, partition scheme, workload
shape and a :class:`~repro.dist.twopc.TwoPCInjector` crash point from
one seeded stream, runs the mix until the injector kills the cluster,
then runs :meth:`~repro.dist.cluster.ShardedCluster.crash` /
:meth:`~repro.dist.cluster.ShardedCluster.recover` and asserts the
atomic-commitment contract **across all shards**:

* **committed-visible** — every write acked to a client, *plus* every
  write of a distributed transaction whose commit decision record went
  durable before the crash (decided-but-unacked: the client never heard
  the commit, but the decision is the commit point), is in the durable
  state after recovery;
* **uncommitted-gone** — a hot patient's durable age is its preload
  value or a value written by an acked/decided transaction: no branch
  of an undecided distributed transaction survives, even a branch that
  voted yes (presumed abort);
* **nothing leaks** — after recovery no shard holds locks, waiters or
  open transactions, and no distributed transaction is registered;
* **determinism** — re-running the same seed on a fresh cluster crashes
  at the same point and reproduces an identical digest.

A drawn occurrence can exceed the number of times the run reaches the
crash point; those cases simply complete crash-free and are verified
against the same oracle (with an empty decided-but-unacked set).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random

from repro.bench.report import Table
from repro.derby import DerbyConfig
from repro.dist.cluster import ShardedCluster, load_sharded
from repro.dist.replication import (
    REPLICATION_KILL_POINTS,
    ReplicationInjector,
)
from repro.dist.twopc import TWOPC_CRASH_POINTS, TwoPCInjector
from repro.dist.workload import ShardedMixConfig, ShardedWorkload
from repro.simtime import Bucket

#: Scale of the per-case database: ~30 patients, loads in milliseconds.
_SCALE = 0.00001


@dataclass
class TwoPCChaosResult:
    """Outcome of one seeded 2PC chaos case."""

    seed: int
    n_shards: int
    scheme: str
    point: str
    occurrence: int
    clients: int
    committed: int
    aborted: int
    crashed: bool
    #: In-doubt branches recovery resolved from the decision log.
    resolved_commit: int
    resolved_abort: int
    failures: list[str] = field(default_factory=list)
    digest: tuple = ()

    @property
    def ok(self) -> bool:
        return not self.failures


def _draw_case(
    seed: int,
) -> tuple[int, str, float | None, ShardedMixConfig, TwoPCInjector]:
    """The case generator: cluster + mix + crash point from one seed."""
    rng = Random(seed * 104_729 + 13)
    n_shards = rng.choice([2, 3, 4])
    scheme = rng.choice(["hash", "range"])
    lock_timeout_s = rng.choice([0.5, None])
    config = ShardedMixConfig.from_clients(
        rng.randint(2, 4),
        ops_per_client=rng.randint(2, 4),
        seed=seed,
        max_retries=rng.randint(1, 3),
        retry_backoff_s=rng.choice([0.005, 0.02]),
        hot_set=rng.choice([6, 10]),
    )
    injector = TwoPCInjector(
        rng.choice(TWOPC_CRASH_POINTS), occurrence=rng.randint(1, 3)
    )
    return n_shards, scheme, lock_timeout_s, config, injector


def _durable_ages(
    cluster: ShardedCluster, hot_homes: list[tuple[int, object]]
) -> dict[tuple[int, object], int]:
    return {
        (sid, rid): int(
            cluster.nodes[sid].db.manager.get_attr_at(rid, "age")
        )
        for sid, rid in hot_homes
    }


def _run_once(seed: int) -> TwoPCChaosResult:
    n_shards, scheme, lock_timeout_s, config, injector = _draw_case(seed)
    cluster = load_sharded(
        DerbyConfig.db_1to3(scale=_SCALE),
        n_shards,
        scheme=scheme,
        lock_timeout_s=lock_timeout_s,
    )
    part = cluster.part
    hot = min(config.hot_set, len(part.patient_shard))
    hot_homes = []
    for idx in range(hot):
        sid, local = part.patient_home(idx)
        hot_homes.append((sid, cluster.nodes[sid].derby.patient_rids[local]))
    # Preload ages *before* the run — the uncommitted-gone baseline.
    preload = _durable_ages(cluster, hot_homes)

    workload = ShardedWorkload(cluster, config)
    injector.arm(cluster)
    report = workload.run()

    failures: list[str] = []
    resolved_commit = 0
    resolved_abort = 0
    decided_unacked: list[int] = []
    if report.crashed:
        if not injector.fired:
            failures.append("run crashed but the 2PC injector never fired")
        cluster.crash()
        # The durable decision records name the distributed transactions
        # whose commit *won* even if no client heard the ack.
        decided_globals = {
            record.txn_id
            for record in cluster.decision_log.durable_records()
            if record.kind == "commit"
        }
        decided_unacked = sorted(decided_globals - workload.acked_globals)
        recovery = cluster.recover()
        resolved_commit = sum(r.txns_resolved_commit for r in recovery)
        resolved_abort = sum(r.txns_resolved_abort for r in recovery)
    elif injector.fired:
        failures.append("injector fired but the run did not crash")

    # -- nothing leaks --------------------------------------------------
    if cluster.lock_table.lock_count:
        failures.append(f"{cluster.lock_table.lock_count} locks leaked")
    if cluster.lock_table.waiting_count:
        failures.append(
            f"{cluster.lock_table.waiting_count} lock waiters leaked"
        )
    for node in cluster.nodes:
        if node.txm.active_count:
            failures.append(
                f"shard {node.shard_id}: {node.txm.active_count} "
                "transactions left open"
            )
    if cluster.active_count:
        failures.append(
            f"{cluster.active_count} distributed transactions registered"
        )

    # -- committed-visible / uncommitted-gone ---------------------------
    expected = dict(preload)
    for home, value in workload.write_log:
        expected[home] = value
    for global_id in decided_unacked:
        for home, value in workload.staged.get(global_id, []):
            expected[home] = value
    legal = {home: {preload[home]} for home in preload}
    for home, value in workload.write_log:
        legal[home].add(value)
    for global_id in decided_unacked:
        for home, value in workload.staged.get(global_id, []):
            legal[home].add(value)
    final = _durable_ages(cluster, hot_homes)
    for home, value in final.items():
        sid, rid = home
        if value != expected[home]:
            failures.append(
                f"shard {sid} rid {tuple(rid)}: expected {expected[home]}, "
                f"durable value {value} (lost update)"
            )
        if value not in legal[home]:
            failures.append(
                f"shard {sid} rid {tuple(rid)}: durable value {value} was "
                "never committed (dirty write survived)"
            )

    digest = tuple(
        (
            s.name,
            s.committed,
            s.aborted,
            s.retries,
            s.deadlocks,
            s.timeouts,
            s.gave_up,
            s.io_failures,
        )
        for s in report.sessions
    ) + (
        round(report.elapsed_s, 9),
        report.context_switches,
        report.crashed,
        tuple(decided_unacked),
        resolved_commit,
        resolved_abort,
        tuple(sorted((sid, tuple(rid), v) for (sid, rid), v in final.items())),
    )
    return TwoPCChaosResult(
        seed=seed,
        n_shards=n_shards,
        scheme=scheme,
        point=injector.point,
        occurrence=injector.occurrence,
        clients=config.total_clients,
        committed=report.committed,
        aborted=report.aborted,
        crashed=report.crashed,
        resolved_commit=resolved_commit,
        resolved_abort=resolved_abort,
        failures=failures,
        digest=digest,
    )


def run_2pc_case(seed: int, check_determinism: bool = True) -> TwoPCChaosResult:
    """Run one seeded 2PC chaos case (twice when determinism-checked)."""
    result = _run_once(seed)
    if check_determinism:
        again = _run_once(seed)
        if again.digest != result.digest:
            result.failures.append(
                f"seed {seed}: re-run produced a different digest "
                "(determinism violated)"
            )
    return result


def run_2pc_chaos(
    cases: int, base_seed: int = 0, check_determinism: bool = True
) -> list[TwoPCChaosResult]:
    """Run ``cases`` seeded 2PC chaos cases; see the module docstring."""
    return [
        run_2pc_case(base_seed + i, check_determinism=check_determinism)
        for i in range(cases)
    ]


def point_coverage(results: list[TwoPCChaosResult]) -> dict[str, int]:
    """How many cases actually crashed at each protocol point."""
    coverage = {point: 0 for point in TWOPC_CRASH_POINTS}
    for r in results:
        if r.crashed:
            coverage[r.point] += 1
    return coverage


# -- failover chaos ------------------------------------------------------
#
# The replication analogue of the 2PC checker above: instead of killing
# the *cluster* mid-protocol, each case kills one shard's *primary* —
# at a drawn simulated time, at a drawn WAL-ship protocol point, or as
# a double failure (primary killed, then the replica killed mid
# promotion) — lets the failure detector and fenced failover run, and
# verifies the replicated atomic-commitment contract:
#
# * sync mode: *zero acknowledged loss* — the post-failover durable
#   state matches exactly the last-writer oracle over every acked write
#   plus every decided- or replica-committed-but-unacked write;
# * async mode: losses are confined to shards whose link reported a
#   non-zero loss window (bounded by ``max_lag_records``), and every
#   durable value was legally written (no dirty write ever survives);
# * zero leaks, and digest-identical re-runs.

#: How each failover chaos case kills the primary.
FAILOVER_KILL_KINDS = ("timed", "ship", "double")


@dataclass
class FailoverChaosResult:
    """Outcome of one seeded primary-kill chaos case."""

    seed: int
    ship_mode: str
    n_shards: int
    scheme: str
    kind: str
    #: The replication kill point ("timed" kills have none).
    point: str
    victim: int
    killed: bool
    failed_over: bool
    committed: int
    aborted: int
    unavailable: int
    loss_window: int
    unavailable_s: float
    failures: list[str] = field(default_factory=list)
    digest: tuple = ()

    @property
    def ok(self) -> bool:
        return not self.failures


def _draw_failover_case(
    seed: int, ship_mode: str
) -> tuple[int, str, ShardedMixConfig, str, str, int, int, float, int]:
    """Case generator: cluster shape, mix, kill recipe from one seed."""
    rng = Random(seed * 15_485_863 + 29)
    n_shards = rng.choice([2, 3])
    scheme = rng.choice(["hash", "range"])
    config = ShardedMixConfig.from_clients(
        rng.randint(2, 4),
        ops_per_client=rng.randint(3, 5),
        seed=seed,
        max_retries=rng.randint(1, 3),
        retry_backoff_s=rng.choice([0.005, 0.02]),
        hot_set=rng.choice([6, 10]),
    )
    kind = rng.choice(FAILOVER_KILL_KINDS)
    if kind == "ship":
        point = rng.choice(REPLICATION_KILL_POINTS[:3])
    elif kind == "double":
        point = rng.choice(REPLICATION_KILL_POINTS[3:])
    else:
        point = "timed"
    victim = rng.randrange(n_shards)
    kill_at_s = rng.uniform(0.01, 0.25)
    occurrence = rng.randint(1, 3)
    max_lag = rng.choice([4, 16]) if ship_mode == "async" else 64
    return (
        n_shards, scheme, config, kind, point, victim, occurrence,
        kill_at_s, max_lag,
    )


def _settle_failover(cluster: ShardedCluster) -> None:
    """Idle the coordinator forward until every killed shard has either
    failed over or proven unpromotable: charge heartbeat-interval waits
    and tick, so leases expire on the same deterministic timeline the
    run used."""
    if cluster.detector is None:
        return
    step_s = cluster.detector.heartbeat_interval_s
    for __ in range(64):
        cluster.tick()
        down = [
            sid
            for sid in range(cluster.n_shards)
            if cluster.route.node_for(sid).down
            and cluster.standbys.get(sid) is not None
            and not cluster.standbys[sid].down
        ]
        if not down:
            return
        cluster.clock.charge_s(Bucket.BACKOFF, step_s)


def _run_failover_once(seed: int, ship_mode: str) -> FailoverChaosResult:
    (
        n_shards, scheme, config, kind, point, victim, occurrence,
        kill_at_s, max_lag,
    ) = _draw_failover_case(seed, ship_mode)
    cluster = load_sharded(
        DerbyConfig.db_1to3(scale=_SCALE),
        n_shards,
        scheme=scheme,
        replicas=1,
        ship_mode=ship_mode,
        max_lag_records=max_lag,
    )
    part = cluster.part
    hot = min(config.hot_set, len(part.patient_shard))
    hot_homes = []
    for idx in range(hot):
        sid, local = part.patient_home(idx)
        hot_homes.append((sid, cluster.nodes[sid].derby.patient_rids[local]))
    preload = _durable_ages(cluster, hot_homes)

    workload = ShardedWorkload(cluster, config)
    injector: ReplicationInjector | None = None
    if kind == "timed":
        cluster.schedule_kill(victim, kill_at_s)
    elif kind == "ship":
        injector = ReplicationInjector(point, occurrence=occurrence)
        injector.arm(cluster)
    else:  # double failure: timed primary kill + replica dies promoting
        cluster.schedule_kill(victim, kill_at_s)
        injector = ReplicationInjector(point, occurrence=1)
        injector.arm(cluster)
    report = workload.run()
    _settle_failover(cluster)

    killed = cluster.kills > 0
    killed_shards = {
        sid
        for sid in range(cluster.n_shards)
        if cluster.route.failovers[sid] or cluster.route.node_for(sid).down
    }
    failed_over = any(cluster.route.failovers)
    failures: list[str] = []

    # -- protocol sanity -------------------------------------------------
    if kind == "ship" and injector is not None and injector.fired:
        if not killed:
            failures.append("ship injector fired but no primary died")
    if kind == "double" and killed and injector is not None and injector.fired:
        sid = injector.fired_shard
        if sid is not None and cluster.route.failovers[sid]:
            failures.append(
                f"shard {sid} failed over after its replica was killed "
                f"at {point}"
            )
    for sid in range(cluster.n_shards):
        if cluster.route.failovers[sid]:
            node = cluster.route.node_for(sid)
            if node.down or node.role != "primary":
                failures.append(f"shard {sid} promoted a non-serving node")
            if node.epoch != cluster.route.epoch_of(sid):
                failures.append(f"shard {sid} epoch mismatch after failover")
            if cluster.shard_unavailable_s(sid) <= 0:
                failures.append(
                    f"shard {sid} failed over with zero recorded downtime"
                )

    # -- nothing leaks ---------------------------------------------------
    if cluster.lock_table.lock_count:
        failures.append(f"{cluster.lock_table.lock_count} locks leaked")
    if cluster.lock_table.waiting_count:
        failures.append(
            f"{cluster.lock_table.waiting_count} lock waiters leaked"
        )
    for node in cluster.nodes:
        if not node.down and node.txm.active_count:
            failures.append(
                f"shard {node.shard_id}: {node.txm.active_count} "
                "transactions left open"
            )
    if cluster.active_count:
        failures.append(
            f"{cluster.active_count} distributed transactions registered"
        )

    # -- committed-visible / uncommitted-gone ----------------------------
    # Unacked-but-won commits come from two places: durable decision
    # records (multi-shard 2PC), and branch commit records that reached
    # a promoted replica's durable log (one-phase commits whose ack
    # died with the primary).
    decided_globals = {
        record.txn_id
        for record in cluster.decision_log.durable_records()
        if record.kind == "commit"
    }
    replica_committed: set[int] = set()
    for sid in range(cluster.n_shards):
        if not cluster.route.failovers[sid]:
            continue
        node = cluster.route.node_for(sid)
        for record in node.txm.log.durable_records():
            if record.kind == "commit":
                global_id = workload.branch_globals.get((sid, record.txn_id))
                if global_id is not None:
                    replica_committed.add(global_id)
    extras = sorted(
        (decided_globals | replica_committed) - workload.acked_globals
    )

    expected = dict(preload)
    for home, value in workload.write_log:
        expected[home] = value
    for global_id in extras:
        for home, value in workload.staged.get(global_id, []):
            expected[home] = value
    legal = {home: {preload[home]} for home in preload}
    for home, value in workload.write_log:
        legal[home].add(value)
    for global_id in extras:
        for home, value in workload.staged.get(global_id, []):
            legal[home].add(value)

    loss_window = max(cluster.loss_windows.values(), default=0)
    if ship_mode == "sync" and loss_window:
        failures.append(
            f"sync link reported a {loss_window}-record loss window"
        )
    lossy_shards = {
        sid for sid, window in cluster.loss_windows.items() if window
    }
    readable = [
        home for home in hot_homes
        if not cluster.route.node_for(home[0]).down
    ]
    final = {
        home: int(
            cluster.route.node_for(home[0]).db.manager.get_attr_at(
                home[1], "age"
            )
        )
        for home in readable
    }
    for home, value in final.items():
        sid, rid = home
        exact = ship_mode == "sync" or sid not in lossy_shards
        if exact and value != expected[home]:
            failures.append(
                f"shard {sid} rid {tuple(rid)}: expected {expected[home]}, "
                f"durable value {value} (acked write lost)"
            )
        if value not in legal[home]:
            failures.append(
                f"shard {sid} rid {tuple(rid)}: durable value {value} was "
                "never committed (dirty write survived)"
            )

    total_unavailable_s = sum(
        cluster.shard_unavailable_s(sid) for sid in range(cluster.n_shards)
    )
    digest = tuple(
        (
            s.name, s.committed, s.aborted, s.retries, s.deadlocks,
            s.timeouts, s.gave_up, s.unavailable,
        )
        for s in report.sessions
    ) + (
        round(report.elapsed_s, 9),
        report.context_switches,
        killed,
        tuple(cluster.route.epochs),
        tuple(cluster.route.failovers),
        tuple(sorted(cluster.loss_windows.items())),
        tuple(extras),
        round(total_unavailable_s, 9),
        tuple(sorted((sid, tuple(rid), v) for (sid, rid), v in final.items())),
    )
    return FailoverChaosResult(
        seed=seed,
        ship_mode=ship_mode,
        n_shards=n_shards,
        scheme=scheme,
        kind=kind,
        point=point,
        victim=victim,
        killed=killed,
        failed_over=failed_over,
        committed=report.committed,
        aborted=report.aborted,
        unavailable=report.unavailable,
        loss_window=loss_window,
        unavailable_s=total_unavailable_s,
        failures=failures,
        digest=digest,
    )


def run_failover_case(
    seed: int, ship_mode: str = "sync", check_determinism: bool = True
) -> FailoverChaosResult:
    """Run one seeded primary-kill case (twice when determinism-checked)."""
    result = _run_failover_once(seed, ship_mode)
    if check_determinism:
        again = _run_failover_once(seed, ship_mode)
        if again.digest != result.digest:
            result.failures.append(
                f"seed {seed}: re-run produced a different digest "
                "(determinism violated)"
            )
    return result


def run_failover_chaos(
    cases: int,
    base_seed: int = 0,
    ship_mode: str = "sync",
    check_determinism: bool = True,
) -> list[FailoverChaosResult]:
    """Run ``cases`` seeded primary-kill chaos cases."""
    return [
        run_failover_case(
            base_seed + i, ship_mode=ship_mode,
            check_determinism=check_determinism,
        )
        for i in range(cases)
    ]


def failover_coverage(results: list[FailoverChaosResult]) -> dict[str, int]:
    """How many cases actually killed a primary, per kill recipe."""
    coverage = {kind: 0 for kind in FAILOVER_KILL_KINDS}
    for r in results:
        if r.killed:
            coverage[r.kind] += 1
    return coverage


def summarize_failover(results: list[FailoverChaosResult]) -> Table:
    """Render a per-case failover chaos summary."""
    table = Table(
        f"Failover chaos: {len(results)} seeded primary-kill runs",
        ["Seed", "Mode", "Shards", "Kind", "Point", "Killed", "FailedOver",
         "Committed", "Unavail", "LossWin", "Down (s)", "OK"],
    )
    for r in results:
        table.add(
            r.seed, r.ship_mode, r.n_shards, r.kind, r.point,
            "yes" if r.killed else "no",
            "yes" if r.failed_over else "no",
            r.committed, r.unavailable, r.loss_window,
            round(r.unavailable_s, 4), "ok" if r.ok else "FAIL",
        )
    bad = [r for r in results if not r.ok]
    killed = sum(1 for r in results if r.killed)
    promoted = sum(1 for r in results if r.failed_over)
    table.note(
        f"{len(results) - len(bad)}/{len(results)} cases clean; "
        f"{killed} primaries killed, {promoted} failovers completed; "
        "invariants: acked-visible (sync: exactly; async: bounded loss "
        "window), uncommitted-gone, epoch fencing, zero leaks, "
        "deterministic re-runs"
    )
    return table


def summarize_2pc(results: list[TwoPCChaosResult]) -> Table:
    """Render a per-case summary table with an aggregate note."""
    table = Table(
        f"2PC chaos: {len(results)} seeded crash-injected sharded runs",
        ["Seed", "Shards", "Scheme", "CrashPoint", "Occ", "Committed",
         "Aborted", "Crashed", "ResolvedC", "ResolvedA", "OK"],
    )
    for r in results:
        table.add(
            r.seed, r.n_shards, r.scheme, r.point, r.occurrence,
            r.committed, r.aborted, "yes" if r.crashed else "no",
            r.resolved_commit, r.resolved_abort, "ok" if r.ok else "FAIL",
        )
    bad = [r for r in results if not r.ok]
    crashed = sum(1 for r in results if r.crashed)
    covered = sum(1 for n in point_coverage(results).values() if n)
    table.note(
        f"{len(results) - len(bad)}/{len(results)} cases clean; "
        f"{crashed} crashed ({covered}/{len(TWOPC_CRASH_POINTS)} protocol "
        "points covered); invariants: committed-visible (incl. "
        "decided-but-unacked), uncommitted-gone, zero leaks, "
        "deterministic re-runs"
    )
    return table
