"""Horizontal sharding: a simulated cluster over the single-node stack.

The paper benchmarks a single-site object server; this package scales
the same simulated machinery *out*.  A Derby database is partitioned
across N :class:`ShardNode` instances — each a complete single-node
stack (own disk, server buffer, lock manager, WAL) over its slice — and
a coordinator plans distributed queries and commits distributed
transactions on its own timeline:

* :mod:`repro.dist.partition` — hash / range partitioning of the
  provider extent, with patients co-located with their provider;
* :class:`ShardNode` / :class:`ShardedCluster` — the nodes and the
  coordinator's clock, decision log and RPC cost accounting
  (:func:`load_sharded` builds the whole thing);
* :class:`ExchangeOperator` — a Volcano operator merging per-shard
  cursors with virtual parallelism (a drain costs the *slowest* shard,
  not the sum);
* :class:`Coordinator` — query-shipping vs data-shipping plans,
  aggregate decomposition, order-by / distinct / limit recombination;
* :class:`DistTransaction` — presumed-abort two-phase commit on the
  per-shard WALs, with in-doubt branches resolved against the
  coordinator's durable decision records at recovery;
* :class:`GlobalLockTable` — cross-shard deadlock detection by unioning
  the per-shard waits-for graphs;
* :class:`ShardedWorkload` — deterministic multi-client mixes over the
  cluster, and :mod:`repro.dist.chaos` — seeded 2PC crash/recovery
  checking across all five protocol points.
"""

from repro.dist.chaos import (
    FAILOVER_KILL_KINDS,
    FailoverChaosResult,
    TwoPCChaosResult,
    failover_coverage,
    point_coverage,
    run_2pc_case,
    run_2pc_chaos,
    run_failover_case,
    run_failover_chaos,
    summarize_2pc,
    summarize_failover,
)
from repro.dist.cluster import ShardedCluster, load_sharded
from repro.dist.coordinator import SHIP_STRATEGIES, Coordinator, DistPlan
from repro.dist.deadlock import GlobalLockTable
from repro.dist.exchange import ExchangeOperator, coordinator_context
from repro.dist.failure import HEALTH_STATES, FailureDetector, NodeHealth
from repro.dist.node import ShardNode
from repro.dist.partition import (
    PARTITION_SCHEMES,
    PartitionMap,
    RouteTable,
    hash_shard,
    range_shard,
    split_logical,
)
from repro.dist.replication import (
    REPLICATION_KILL_POINTS,
    SHIP_MODES,
    ReplicaLink,
    ReplicationInjector,
)
from repro.dist.twopc import (
    TWOPC_CRASH_POINTS,
    DistTransaction,
    TwoPCInjector,
)
from repro.dist.workload import (
    DIST_PROFILES,
    ShardedMixConfig,
    ShardedMixReport,
    ShardedSessionReport,
    ShardedWorkload,
)

__all__ = [
    "PARTITION_SCHEMES",
    "PartitionMap",
    "hash_shard",
    "range_shard",
    "split_logical",
    "ShardNode",
    "ShardedCluster",
    "load_sharded",
    "GlobalLockTable",
    "TWOPC_CRASH_POINTS",
    "DistTransaction",
    "TwoPCInjector",
    "ExchangeOperator",
    "coordinator_context",
    "SHIP_STRATEGIES",
    "Coordinator",
    "DistPlan",
    "DIST_PROFILES",
    "ShardedMixConfig",
    "ShardedMixReport",
    "ShardedSessionReport",
    "ShardedWorkload",
    "TwoPCChaosResult",
    "point_coverage",
    "run_2pc_case",
    "run_2pc_chaos",
    "summarize_2pc",
    "RouteTable",
    "HEALTH_STATES",
    "FailureDetector",
    "NodeHealth",
    "SHIP_MODES",
    "REPLICATION_KILL_POINTS",
    "ReplicaLink",
    "ReplicationInjector",
    "FAILOVER_KILL_KINDS",
    "FailoverChaosResult",
    "failover_coverage",
    "run_failover_case",
    "run_failover_chaos",
    "summarize_failover",
]
