"""Heartbeat/lease failure detection on the coordinator timeline.

Real failure detectors trade detection latency against false positives
using wall-clock heartbeats; this one runs the same protocol on the
**simulated** coordinator clock, so detection is deterministic and its
cost is charged like any other message traffic:

* every serving primary sends a heartbeat each ``heartbeat_interval_s``
  of simulated time; the coordinator charges one ``Bucket.RPC`` per
  heartbeat it observes (the detector is *pumped* at coordinator
  interaction points — there is no background thread, and no wall
  clock anywhere);
* a heartbeat renews the node's **lease** for ``lease_s``: the node is
  ``alive`` while its lease is current;
* a node whose lease expired (its last heartbeat is more than
  ``lease_s`` old) becomes ``suspect``;
* a node that stays suspect for another ``grace_s`` becomes ``dead``,
  at which point :meth:`pump` reports it and the cluster runs fenced
  failover (:meth:`~repro.dist.cluster.ShardedCluster.failover`).

The lease math bounds the unavailability window: a primary killed at
time *t* sent its last heartbeat at most ``heartbeat_interval_s``
before *t*, so it is declared dead no later than
``t + lease_s + grace_s`` and no earlier than
``t + lease_s + grace_s - heartbeat_interval_s``.  Add the promotion
cost (replica restart) and that is the whole window during which the
shard answers :class:`~repro.errors.ShardUnavailableError`.

A network-partitioned node (see
:meth:`~repro.dist.cluster.ShardedCluster.kill_primary` with
``partition=True``) looks identical from here — heartbeats stop — which
is exactly why failover must be *fenced*: the detector can be wrong
about death, the epoch check cannot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ReplicationError
from repro.simtime import Bucket

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dist.cluster import ShardedCluster

#: The health state machine, in order.  ``alive -> suspect`` when the
#: lease expires, ``suspect -> dead`` after the grace period; promotion
#: resets the shard's entry to ``alive`` for the new primary.
HEALTH_STATES = ("alive", "suspect", "dead")


@dataclass
class NodeHealth:
    """The detector's view of one shard's serving primary."""

    state: str = "alive"
    #: Simulated time of the last heartbeat the coordinator observed.
    last_heartbeat_s: float = 0.0
    #: When the node actually stopped (kill or partition); ``None``
    #: while it is up.  The detector itself never reads this directly —
    #: it only stops advancing ``last_heartbeat_s`` past it.
    down_since_s: float | None = None
    suspect_since_s: float | None = None
    dead_since_s: float | None = None
    #: Heartbeats observed (each one charged as an RPC).
    heartbeats: int = 0


class FailureDetector:
    """Per-shard lease state machine over the coordinator clock."""

    def __init__(
        self,
        cluster: "ShardedCluster",
        heartbeat_interval_s: float = 0.05,
        lease_s: float = 0.15,
        grace_s: float = 0.1,
    ):
        if lease_s < heartbeat_interval_s:
            raise ReplicationError(
                f"lease_s ({lease_s}) must cover at least one heartbeat "
                f"interval ({heartbeat_interval_s}); every renewal would "
                "otherwise arrive expired"
            )
        self.cluster = cluster
        self.heartbeat_interval_s = heartbeat_interval_s
        self.lease_s = lease_s
        self.grace_s = grace_s
        self.health = [NodeHealth() for __ in cluster.nodes]

    # -- events ---------------------------------------------------------

    def note_down(self, shard_id: int) -> None:
        """The shard's primary stopped (killed or partitioned away):
        record when, and deliver the heartbeats it sent up to that
        moment (they were already on the wire)."""
        h = self.health[shard_id]
        if h.down_since_s is not None:
            return
        now = self.cluster.clock.elapsed_s
        self._observe_heartbeats(h, now)
        h.down_since_s = now

    def note_promoted(self, shard_id: int) -> None:
        """A replica was promoted: the shard is served again, with a
        fresh lease starting now."""
        self.health[shard_id] = NodeHealth(
            last_heartbeat_s=self.cluster.clock.elapsed_s
        )

    def reset(self) -> None:
        """The coordinator clock was reset (``start_cold``): every
        healthy lease restarts at time zero."""
        for sid, h in enumerate(self.health):
            if h.down_since_s is None:
                self.health[sid] = NodeHealth()

    # -- the state machine ----------------------------------------------

    def pump(self) -> list[int]:
        """Advance every shard's lease state to *now*; returns the
        shards newly declared ``dead`` (the cluster fails them over).
        Deterministic: transitions depend only on the simulated clock
        and the recorded down times."""
        newly_dead: list[int] = []
        for sid, h in enumerate(self.health):
            if h.state == "dead":
                continue
            now = self.cluster.clock.elapsed_s
            if h.down_since_s is None:
                self._observe_heartbeats(h, now)
                continue
            lease_expiry = h.last_heartbeat_s + self.lease_s
            if h.state == "alive" and now >= lease_expiry:
                h.state = "suspect"
                h.suspect_since_s = lease_expiry
            if h.state == "suspect" and now >= lease_expiry + self.grace_s:
                h.state = "dead"
                h.dead_since_s = now
                newly_dead.append(sid)
        return newly_dead

    def state_of(self, shard_id: int) -> str:
        return self.health[shard_id].state

    def _observe_heartbeats(self, h: NodeHealth, until_s: float) -> None:
        """Deliver (and charge) the heartbeats sent between the last
        observed one and ``until_s``.  Heartbeats are on the interval
        grid, so the schedule is a function of the clock alone."""
        beats = int(
            (until_s - h.last_heartbeat_s) / self.heartbeat_interval_s
        )
        if beats <= 0:
            return
        clock = self.cluster.clock
        params = self.cluster.params
        for __ in range(beats):
            clock.charge_ms(Bucket.RPC, params.rpc_overhead_ms)
        h.heartbeats += beats
        h.last_heartbeat_s += beats * self.heartbeat_interval_s
