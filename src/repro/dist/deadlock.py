"""Cross-shard lock waiting and deadlock detection.

Each shard keeps its own :class:`~repro.txn.locks.LockManager`, which
only ever sees that shard's *branch* transactions.  A distributed
transaction holding a lock on shard A while waiting on shard B is
invisible to both shards individually — the classic distributed
deadlock.  :class:`GlobalLockTable` is the coordinator-side facade that
makes it visible:

* it speaks the :class:`~repro.service.CooperativeScheduler` lock
  protocol (``attach`` / ``expired_waiters`` / ``effective_timeout_s``
  / ``cancel_wait`` / ``find_deadlock_victim``) in terms of **global**
  transaction ids;
* it adapts each shard's ``attach`` hooks so a branch's lock wait
  suspends the owning *global* session at the scheduler;
* :meth:`find_deadlock_victim` unions the per-shard waits-for graphs,
  mapping every ``(shard, branch txn)`` onto its global transaction,
  and aborts the **youngest** global transaction in any cycle — the
  same victim policy the single-node lock manager applies.

The shard lock managers all run on the coordinator's clock (see
:class:`~repro.dist.node.ShardNode`), so wait durations and timeouts
are directly comparable across shards.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.storage.rid import Rid

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dist.node import ShardNode

#: Synthetic-id stride for branch transactions that were never
#: registered (e.g. loader leftovers): they must stay distinct per
#: shard without colliding with real (positive) global ids.
_SYNTHETIC_STRIDE = 1_000_000


class GlobalLockTable:
    """Coordinator view over every shard's lock manager."""

    def __init__(self, nodes: "list[ShardNode]"):
        self.nodes = nodes
        self._wait: Callable[[int, Rid], None] | None = None
        self._wake: Callable[[int], None] | None = None
        #: (shard_id, branch txn id) -> global txn id.
        self._to_global: dict[tuple[int, int], int] = {}
        #: global txn id -> [(shard_id, branch txn id), ...].
        self._branches: dict[int, list[tuple[int, int]]] = {}

    # -- branch registry ------------------------------------------------

    def register(self, global_id: int, shard_id: int, branch_id: int) -> None:
        """A distributed transaction opened a branch on a shard."""
        self._to_global[(shard_id, branch_id)] = global_id
        self._branches.setdefault(global_id, []).append((shard_id, branch_id))

    def unregister(self, global_id: int) -> None:
        """The distributed transaction finished; drop its mappings."""
        for key in self._branches.pop(global_id, []):
            self._to_global.pop(key, None)

    def clear(self) -> None:
        """A cluster crash wiped all volatile transaction state."""
        self._to_global.clear()
        self._branches.clear()

    def global_of(self, shard_id: int, branch_id: int) -> int:
        """Map a branch to its global transaction; unregistered branches
        get a stable synthetic *negative* id (never a deadlock victim,
        since victims are the youngest = maximum id in the cycle)."""
        mapped = self._to_global.get((shard_id, branch_id))
        if mapped is not None:
            return mapped
        return -(shard_id * _SYNTHETIC_STRIDE + branch_id)

    # -- the scheduler lock protocol ------------------------------------

    def attach(
        self,
        wait: Callable[[int, Rid], None],
        wake: Callable[[int], None],
    ) -> None:
        """Wire the scheduler in, and wire each shard's lock manager to
        translate its branch-local ids through this table."""
        self._wait = wait
        self._wake = wake
        for node in self.nodes:
            sid = node.shard_id
            node.locks.attach(
                lambda txn_id, rid, sid=sid: wait(
                    self.global_of(sid, txn_id), rid
                ),
                lambda txn_id, sid=sid: wake(self.global_of(sid, txn_id)),
            )

    def detach(self) -> None:
        self._wait = None
        self._wake = None
        for node in self.nodes:
            node.locks.detach()

    def attach_node(self, node: "ShardNode") -> None:
        """Wire one late-arriving node (a promoted replica) into an
        already-attached table.  Its lock manager never saw the original
        :meth:`attach` — it was a standby then — so it would run
        fail-fast and break the scheduler's wait protocol."""
        if self._wait is None or self._wake is None:
            return
        sid = node.shard_id
        wait, wake = self._wait, self._wake
        node.locks.attach(
            lambda txn_id, rid, sid=sid: wait(self.global_of(sid, txn_id), rid),
            lambda txn_id, sid=sid: wake(self.global_of(sid, txn_id)),
        )

    def fail_shard_waiters(self, shard_id: int) -> None:
        """The shard is dying: every branch queued on its locks will
        never be granted.  Remove the queued requests, then wake the
        owning global sessions — each resumes *without* a grant, and its
        ``acquire`` raises the retryable resumed-without-a-grant
        :class:`~repro.errors.LockConflictError`.  Must run before the
        crash wipes the shard's lock state, or the sessions would sleep
        forever on a lock table that no longer exists."""
        node = self.nodes[shard_id]
        waiters = sorted(set(node.locks.waiting_txns()))
        for branch_id in waiters:
            node.locks.cancel_wait(branch_id)
        if self._wake is not None:
            for branch_id in waiters:
                self._wake(self.global_of(shard_id, branch_id))

    def cancel_wait(self, global_id: int) -> None:
        """Remove every queued request of the global transaction, on
        every shard it has a branch on."""
        for shard_id, branch_id in self._branches.get(global_id, []):
            self.nodes[shard_id].locks.cancel_wait(branch_id)

    def expired_waiters(self) -> list[int]:
        """Global transactions whose branch waits have timed out."""
        out: set[int] = set()
        for node in self.nodes:
            for branch_id in node.locks.expired_waiters():
                out.add(self.global_of(node.shard_id, branch_id))
        return sorted(g for g in out if g > 0)

    def effective_timeout_s(self) -> float | None:
        """The tightest effective timeout across shards (per-shard
        transient-fault storms may shrink individual shards')."""
        timeouts = [
            t
            for t in (n.locks.effective_timeout_s() for n in self.nodes)
            if t is not None
        ]
        return min(timeouts) if timeouts else None

    def find_deadlock_victim(self) -> int | None:
        """Union the per-shard waits-for graphs into one global graph
        and return the youngest global transaction in a cycle."""
        graph: dict[int, set[int]] = {}
        for node in self.nodes:
            sid = node.shard_id
            for waiter, holders in node.locks.waits_for().items():
                g_waiter = self.global_of(sid, waiter)
                edges = graph.setdefault(g_waiter, set())
                for holder in holders:
                    g_holder = self.global_of(sid, holder)
                    if g_holder != g_waiter:
                        edges.add(g_holder)
        victim = _youngest_in_cycle(graph)
        if victim is not None and victim < 0:
            return None  # a cycle of unregistered branches: not ours
        return victim

    # -- introspection (leak checks) ------------------------------------

    @property
    def lock_count(self) -> int:
        return sum(n.locks.lock_count for n in self.nodes)

    @property
    def waiting_count(self) -> int:
        return sum(n.locks.waiting_count for n in self.nodes)


def _youngest_in_cycle(graph: dict[int, set[int]]) -> int | None:
    """DFS cycle detection over a waits-for graph; returns the maximum
    id in the first cycle found (deterministic: sorted visit order) or
    ``None``.  Same policy as ``LockManager.find_deadlock_victim``, over
    the merged graph."""
    visiting: set[int] = set()
    done: set[int] = set()
    stack: list[int] = []

    def visit(node: int) -> list[int] | None:
        visiting.add(node)
        stack.append(node)
        for succ in sorted(graph.get(node, ())):
            if succ in visiting:
                return stack[stack.index(succ):]
            if succ not in done:
                cycle = visit(succ)
                if cycle is not None:
                    return cycle
        visiting.discard(node)
        done.add(node)
        stack.pop()
        return None

    for start in sorted(graph):
        if start in done:
            continue
        cycle = visit(start)
        if cycle is not None:
            return max(cycle)
    return None
