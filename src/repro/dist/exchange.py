"""The exchange operator: merging shard cursors onto one timeline.

:class:`ExchangeOperator` is the coordinator's leaf: a Volcano operator
whose "children" are cursors running on the shards.  Rows flow through
the ordinary ``open / next_batch / close`` protocol, so everything above
it — central predicates, sorts, aggregate recombination, the service
layer's batch-boundary yields — is the existing single-node machinery.

**Virtual parallelism.**  Each shard's clock meters the work its cursor
performs; the coordinator models all shards working *concurrently* from
the moment the exchange opens.  For shard *i* it tracks the cumulative
busy time ``B_i`` its pulls have consumed since open time ``t0``; a
batch from shard *i* can only arrive at ``t0 + B_i`` on the
coordinator's timeline, so the pull charges
``max(0, t0 + B_i - now)`` of ``Bucket.REMOTE`` wait.  Pulling
round-robin, the fast shards' batches arrive while the coordinator is
(virtually) waiting on the slow ones, and the elapsed time of a full
drain converges to ``t0 + max_i B_i`` — the slowest shard — instead of
the sum.  That is exactly where sharded scans earn their speed-up, and
with one shard the model degenerates to the single-node timeline
(``B_0`` serialized), which the equivalence tests pin down.

**Wire costs.**  Every pull is one message: a fixed ``Bucket.RPC``
overhead plus ``Bucket.TRANSFER`` for the batch's pages at the same
page-transfer price the client/server wire always charged
(``rows × row_wire_bytes`` rounded up to pages).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ReproError, ShardUnavailableError
from repro.exec.operators.base import Cursor, Operator, PipelineContext
from repro.simtime import Bucket, CostParams, SimClock
from repro.units import PAGE_SIZE, pages_for_bytes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dist.cluster import ShardedCluster
    from repro.dist.node import ShardNode

#: Modeled serialized size of one result row on the wire.  Rows are
#: small tuples of scalars; one page carries ~64 of them.
ROW_WIRE_BYTES = 64


@dataclass
class _CoordDB:
    """The sliver of :class:`~repro.objects.database.Database` a
    :class:`PipelineContext` actually touches: a clock and cost params.
    Central operators above the exchange charge the coordinator's
    timeline through this shim."""

    clock: SimClock
    params: CostParams


def coordinator_context(cluster: "ShardedCluster") -> PipelineContext:
    """A pipeline context whose charges land on the coordinator clock."""
    return PipelineContext(_CoordDB(cluster.clock, cluster.params))


class ExchangeOperator(Operator):
    """Round-robin bag-union of per-shard cursors.

    ``streams`` pairs each shard with a cursor over that shard's local
    plan (built by the shard's own OQL engine).  The operator owns the
    cursors: they are opened lazily at ``_open`` and closed — robustly,
    every one of them — at ``_close``.
    """

    def __init__(
        self,
        ctx: PipelineContext,
        cluster: "ShardedCluster",
        streams: "list[tuple[ShardNode, Cursor]]",
        row_wire_bytes: int = ROW_WIRE_BYTES,
        on_batch=None,
    ):
        super().__init__(ctx)
        self.cluster = cluster
        self.streams = streams
        self.row_wire_bytes = row_wire_bytes
        #: Optional hook fired after every shard pull (the sharded
        #: workload passes the scheduler's ``batch_point`` so shard
        #: streams interleave deterministically with other sessions).
        self.on_batch = on_batch
        self._t0 = 0.0
        #: Per-stream cumulative shard busy seconds since open.
        self._consumed = [0.0] * len(streams)
        self._done = [False] * len(streams)
        self._rr = 0
        #: Rows pulled per shard (fan-in skew diagnostics).
        self.rows_per_shard = [0] * len(streams)

    # -- operator hooks -------------------------------------------------

    def _open(self) -> None:
        self._t0 = self.ctx.db.clock.elapsed_s
        for i, (node, cursor) in enumerate(self.streams):
            before = node.busy_s
            try:
                cursor.ctx.mark_open()
                cursor.root.open()
            except BaseException:
                # A later shard refusing to open (failure, cancellation)
                # must not leak the cursors already opened on the
                # earlier shards.
                for prev_node, opened in self.streams[:i]:
                    if prev_node.down:
                        continue
                    try:
                        opened.close()
                    except ReproError:
                        pass
                raise
            self._consumed[i] += node.busy_s - before

    def _next(self, n: int) -> list:
        n_streams = len(self.streams)
        while not all(self._done):
            i = self._rr % n_streams
            self._rr += 1
            if self._done[i]:
                continue
            batch = self._pull(i, n)
            if batch:
                return batch
        return []

    def _close(self) -> None:
        for i, (node, cursor) in enumerate(self.streams):
            if node.down:
                # The node's volatile state — handle table included —
                # died with it; a close attempt could only raise and
                # mask the typed unavailability error being surfaced.
                continue
            try:
                cursor.close()
            except BaseException:
                # Best-effort close of the remaining shard cursors (a
                # second library failure is secondary), then surface
                # the first one.
                for rest_node, rest in self.streams[i + 1:]:
                    if rest_node.down:
                        continue
                    try:
                        rest.close()
                    except ReproError:
                        pass
                raise

    # -- the wire -------------------------------------------------------

    def _pull(self, i: int, n: int) -> list:
        node, cursor = self.streams[i]
        if node.down:
            # Another session's kill landed mid-drain; the cursor's
            # remote state is gone.  Closing this exchange (the drain's
            # context manager does) skips the dead shard.
            raise ShardUnavailableError(
                f"shard {node.shard_id} died while its exchange stream "
                "was being drained"
            )
        before = node.busy_s
        batch = cursor.root.next_batch(n)
        self._consumed[i] += node.busy_s - before
        if not batch:
            self._done[i] = True
        self._account(node, i, batch)
        if self.on_batch is not None:
            self.on_batch()
        return batch

    def _account(self, node: "ShardNode", i: int, batch: list) -> None:
        clock = self.ctx.db.clock
        params = self.ctx.db.params
        clock.charge_ms(Bucket.RPC, params.rpc_overhead_ms)
        nbytes = len(batch) * self.row_wire_bytes
        if batch:
            pages = pages_for_bytes(nbytes, PAGE_SIZE)
            clock.charge_ms(Bucket.TRANSFER, pages * params.page_transfer_ms)
            self.rows_per_shard[i] += len(batch)
        self.cluster._note_msg(node, nbytes)
        # The batch is ready at t0 + B_i on the shard's virtual timeline;
        # wait out the remainder the other shards' work didn't cover.
        ready_s = self._t0 + self._consumed[i]
        wait_s = ready_s - clock.elapsed_s
        if wait_s > 0:
            clock.charge_s(Bucket.REMOTE, wait_s)
            node.remote_wait_s += wait_s
