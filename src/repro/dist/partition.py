"""Partitioning Derby extents across shards.

A shard owns a *horizontal slice* of both extents: a subset of the
providers plus every patient whose ``random_integer`` names one of those
providers.  Co-locating each patient with its provider makes the
paper's doctor/patient join **shard-local** — ``random_integer = upin``
can never match across shards, so a distributed tree join is the bag
union of per-shard joins (the property :mod:`repro.dist.coordinator`
relies on).

Two schemes, both keyed on the provider ``upin`` (its 1-based creation
rank):

* **hash** — multiplicative integer hashing (Knuth's 2654435761
  constant; deterministic, unlike Python's seeded ``hash``), spreading
  consecutive upins uniformly;
* **range** — contiguous upin blocks, so range predicates on ``upin``
  touch few shards but popular ranges skew load.

Splitting is *logical*: the global :class:`~repro.derby.generator.
LogicalDatabase` is generated once, then each shard gets a per-shard
``LogicalDatabase`` view with **global attribute values preserved**
(``upin``, ``mrn``, ``num``, ``random_integer`` are untouched) and only
the provider/patient index wiring localized.  Each view is then loaded
through the ordinary single-node loader, so every shard is a complete,
self-consistent Derby database with its own files, indexes and
association sets.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.derby.config import DerbyConfig
from repro.derby.generator import (
    LogicalDatabase,
    LogicalPatient,
    LogicalProvider,
)
from repro.errors import PartitionError, ReplicationError

#: The supported partitioning schemes.
PARTITION_SCHEMES = ("hash", "range")

#: Knuth's multiplicative hashing constant (2^32 / phi).
_KNUTH = 2_654_435_761
_MASK32 = 0xFFFF_FFFF


def hash_shard(upin: int, n_shards: int) -> int:
    """Deterministic multiplicative hash of a provider key."""
    return ((upin * _KNUTH) & _MASK32) % n_shards


def range_shard(upin: int, n_providers: int, n_shards: int) -> int:
    """Contiguous upin blocks: shard k owns upins in
    ``(k * n / shards, (k+1) * n / shards]``."""
    return min(n_shards - 1, (upin - 1) * n_shards // n_providers)


@dataclass
class _ShardPatient(LogicalPatient):
    """A patient inside one shard's logical view.

    ``random_integer`` still holds the *global* provider upin (queries
    and the association semantics depend on it); ``provider_idx`` is
    overridden to point at the provider's position in the *shard's*
    provider list, which is what the loader navigates.
    """

    local_provider_idx: int = 0

    @property
    def provider_idx(self) -> int:
        return self.local_provider_idx


@dataclass(frozen=True)
class PartitionMap:
    """Where every global object lives: shard + index within the shard."""

    scheme: str
    n_shards: int
    #: Global provider index (0-based creation order) -> owning shard.
    provider_shard: tuple[int, ...]
    #: Global provider index -> index within the shard's provider list.
    provider_local: tuple[int, ...]
    #: Global patient index (0-based mrn order) -> owning shard.
    patient_shard: tuple[int, ...]
    #: Global patient index -> index within the shard's patient list.
    patient_local: tuple[int, ...]

    def provider_home(self, global_idx: int) -> tuple[int, int]:
        return self.provider_shard[global_idx], self.provider_local[global_idx]

    def patient_home(self, global_idx: int) -> tuple[int, int]:
        return self.patient_shard[global_idx], self.patient_local[global_idx]

    def shard_sizes(self) -> list[tuple[int, int]]:
        """Per-shard (providers, patients) counts."""
        sizes = [[0, 0] for __ in range(self.n_shards)]
        for shard in self.provider_shard:
            sizes[shard][0] += 1
        for shard in self.patient_shard:
            sizes[shard][1] += 1
        return [(p, q) for p, q in sizes]


class RouteTable:
    """Which node serves each shard *right now*, and at which epoch.

    The frozen :class:`PartitionMap` answers "which shard owns this
    object" — that never changes.  This mutable table answers "which
    node serves that shard", which failover rewrites: promoting a
    replica installs it in the shard's slot under the next epoch.

    The table wraps the cluster's node list *by reference* (no copy):
    everything holding that list — the global lock table, the
    coordinator, open exchanges — sees a rewrite immediately, which is
    exactly the semantics of updating the routing metadata all clients
    consult.  A rewrite must present ``current epoch + 1``; anything
    else means two promotions raced or a stale controller retried, and
    is refused."""

    def __init__(self, nodes: list):
        self._nodes = nodes
        self.epochs = [0] * len(nodes)
        #: Completed failovers per shard (diagnostics / CSV export).
        self.failovers = [0] * len(nodes)

    def node_for(self, shard_id: int):
        return self._nodes[shard_id]

    def epoch_of(self, shard_id: int) -> int:
        return self.epochs[shard_id]

    def rewrite(self, shard_id: int, node, epoch: int) -> None:
        """Install ``node`` as the shard's serving primary under
        ``epoch`` (must be the successor of the current epoch)."""
        if epoch != self.epochs[shard_id] + 1:
            raise ReplicationError(
                f"route rewrite for shard {shard_id} under epoch {epoch}; "
                f"current epoch is {self.epochs[shard_id]} (stale or "
                "duplicated promotion)"
            )
        self._nodes[shard_id] = node
        self.epochs[shard_id] = epoch
        self.failovers[shard_id] += 1


def split_logical(
    logical: LogicalDatabase, n_shards: int, scheme: str = "hash"
) -> tuple[PartitionMap, list[LogicalDatabase]]:
    """Partition one logical database into ``n_shards`` shard views.

    Providers are assigned by ``scheme`` on their upin; patients follow
    their provider.  Within a shard, providers keep global upin order
    and patients keep global mrn order, so a 1-shard split reproduces
    the original placement exactly (the equivalence baseline the tests
    pin down).
    """
    if scheme not in PARTITION_SCHEMES:
        raise PartitionError(
            f"unknown partition scheme {scheme!r}; choose from "
            f"{PARTITION_SCHEMES}"
        )
    if n_shards < 1:
        raise PartitionError(f"need at least one shard, got {n_shards}")

    n_providers = logical.n_providers
    provider_shard: list[int] = []
    for provider in logical.providers:
        if scheme == "hash":
            shard = hash_shard(provider.upin, n_shards)
        else:
            shard = range_shard(provider.upin, n_providers, n_shards)
        provider_shard.append(shard)

    shard_providers: list[list[LogicalProvider]] = [[] for __ in range(n_shards)]
    shard_patients: list[list[_ShardPatient]] = [[] for __ in range(n_shards)]
    provider_local: list[int] = []
    patient_shard: list[int] = []
    patient_local: list[int] = []

    for i, provider in enumerate(logical.providers):
        shard = provider_shard[i]
        provider_local.append(len(shard_providers[shard]))
        shard_providers[shard].append(
            LogicalProvider(
                upin=provider.upin,
                name=provider.name,
                address=provider.address,
                specialty=provider.specialty,
                office=provider.office,
                patient_idxs=[],
            )
        )
    for patient in logical.patients:
        owner_global = patient.random_integer - 1
        shard = provider_shard[owner_global]
        local_owner = provider_local[owner_global]
        local_idx = len(shard_patients[shard])
        patient_shard.append(shard)
        patient_local.append(local_idx)
        shard_patients[shard].append(
            _ShardPatient(
                mrn=patient.mrn,
                name=patient.name,
                age=patient.age,
                sex=patient.sex,
                random_integer=patient.random_integer,
                num=patient.num,
                local_provider_idx=local_owner,
            )
        )
        shard_providers[shard][local_owner].patient_idxs.append(local_idx)

    views = [
        LogicalDatabase(
            config=_shard_config(logical.config, providers, patients),
            providers=providers,
            patients=patients,
        )
        for providers, patients in zip(shard_providers, shard_patients)
    ]
    part = PartitionMap(
        scheme=scheme,
        n_shards=n_shards,
        provider_shard=tuple(provider_shard),
        provider_local=tuple(provider_local),
        patient_shard=tuple(patient_shard),
        patient_local=tuple(patient_local),
    )
    return part, views


def _shard_config(
    config: DerbyConfig,
    providers: list[LogicalProvider],
    patients: list[_ShardPatient],
) -> DerbyConfig:
    """A shard's build recipe: the global config with the counts of this
    slice (floored at 1 — DerbyConfig validates counts, but an empty
    shard's loader iterates the empty lists, not these numbers)."""
    return replace(
        config,
        n_providers=max(1, len(providers)),
        n_patients=max(1, len(patients)),
    )
