"""Deterministic mixed workloads over a sharded cluster.

The sharded analogue of :class:`repro.service.WorkloadMixer`: sessions
run as cooperative tasks on the **coordinator's** timeline, interleaved
by the same round-robin scheduler the query service uses — except the
scheduler's lock manager is the cluster's
:class:`~repro.dist.deadlock.GlobalLockTable`, so a waits-for cycle that
spans shards is detected (and its youngest distributed transaction
aborted) exactly like a local one.

Two profiles:

* **scanners** run a distributed OQL selection through the
  :class:`~repro.dist.coordinator.Coordinator`; the exchange operator's
  per-pull hook takes a scheduler ``batch_point``, so shard streams
  interleave with the updaters deterministically;
* **updaters** run cross-shard distributed transactions: write-lock a
  hot patient on one shard, yield (the window in which opposite-order
  pairs deadlock), write-lock one on *another* shard, update both, and
  commit with two-phase commit.

The workload keeps three records the 2PC chaos checker turns into an
oracle (:mod:`repro.dist.chaos`): ``write_log`` (acked writes in commit
order), ``staged`` (every write by global transaction id, recorded
*before* commit), and ``acked_globals``.  After a crash, a durable
decision record whose global id was never acked marks writes that
recovery **must** make durable even though no client heard the commit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from random import Random
from typing import TYPE_CHECKING

from repro.bench.report import Table
from repro.errors import (
    DeadlockError,
    DistError,
    LockConflictError,
    LockTimeoutError,
    PermanentIOError,
    ShardUnavailableError,
    SimulatedCrashError,
)
from repro.service.governor import RetryPolicy
from repro.service.scheduler import CooperativeScheduler
from repro.simtime import Bucket

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dist.cluster import ShardedCluster
    from repro.recovery.transient import TransientFaultInjector
    from repro.storage.rid import Rid

#: Profile names, in the order ``ShardedMixConfig.from_clients`` deals.
DIST_PROFILES = ("scanner", "updater")


@dataclass(frozen=True)
class ShardedMixConfig:
    """Shape of one multi-client mix over a sharded cluster."""

    scanners: int = 1
    updaters: int = 2
    #: Operations (distributed transactions / queries) per client.
    ops_per_client: int = 4
    seed: int = 1
    #: Retries after a deadlock/timeout abort before giving up on an op.
    #: (The lock-wait bound itself is a *cluster* property — see the
    #: ``lock_timeout_s`` argument of ``load_sharded``.)
    max_retries: int = 2
    #: Retries after :class:`~repro.errors.ShardUnavailableError` — a
    #: separate, larger allowance: unlike a deadlock, unavailability
    #: heals on its own once failover promotes the standby, so patience
    #: (with the same exponential backoff) is the right policy.
    unavailable_retries: int = 12
    #: Backoff before the first retry (simulated seconds; doubles per
    #: retry, jittered from the session's seeded stream).
    retry_backoff_s: float = 0.02
    retry_jitter: float = 0.5
    #: Updaters draw both patients from the first ``hot_set`` *global*
    #: patient indices — small enough that write/write conflicts occur.
    hot_set: int = 16
    #: Selectivity (percent) of the scanner's OQL selection.
    scan_selectivity_pct: float = 10.0
    #: Shipping strategy for scanner queries (see ``Coordinator.plan``).
    strategy: str = "auto"
    #: Rows per exchange batch (``None``: the coordinator default).
    batch_size: int | None = None

    @property
    def total_clients(self) -> int:
        return self.scanners + self.updaters

    @classmethod
    def from_clients(
        cls, n_clients: int, **overrides: object
    ) -> "ShardedMixConfig":
        """Deal ``n_clients`` round-robin over scanner/updater."""
        if n_clients < 1:
            raise DistError("a sharded mix needs at least one client")
        counts = {p: 0 for p in DIST_PROFILES}
        for i in range(n_clients):
            counts[DIST_PROFILES[i % len(DIST_PROFILES)]] += 1
        return replace(
            cls(scanners=counts["scanner"], updaters=counts["updater"]),
            **overrides,  # type: ignore[arg-type]
        )


@dataclass
class ShardedSessionReport:
    """One session's outcome."""

    name: str
    profile: str
    committed: int = 0
    aborted: int = 0
    deadlocks: int = 0
    timeouts: int = 0
    retries: int = 0
    gave_up: int = 0
    io_failures: int = 0
    #: Operations that hit a shard with no serving node (each is also
    #: either retried or counted in ``gave_up``).
    unavailable: int = 0
    rows: int = 0
    lock_wait_s: float = 0.0


@dataclass
class ShardedMixReport:
    """Aggregate outcome of one sharded mix run."""

    config: ShardedMixConfig
    sessions: list[ShardedSessionReport]
    n_shards: int
    #: Simulated seconds on the coordinator's timeline.
    elapsed_s: float
    context_switches: int
    #: Cross-node messages / bytes the run sent.
    msgs: int
    msg_bytes: int
    #: ``True`` when a :class:`~repro.dist.twopc.TwoPCInjector` killed
    #: the run; the cluster is left crashed, awaiting ``recover()``.
    crashed: bool = False

    @property
    def committed(self) -> int:
        return sum(s.committed for s in self.sessions)

    @property
    def aborted(self) -> int:
        return sum(s.aborted for s in self.sessions)

    @property
    def deadlocks(self) -> int:
        return sum(s.deadlocks for s in self.sessions)

    @property
    def timeouts(self) -> int:
        return sum(s.timeouts for s in self.sessions)

    @property
    def retries(self) -> int:
        return sum(s.retries for s in self.sessions)

    @property
    def gave_up(self) -> int:
        return sum(s.gave_up for s in self.sessions)

    @property
    def unavailable(self) -> int:
        return sum(s.unavailable for s in self.sessions)

    @property
    def throughput_ops_s(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.committed / self.elapsed_s

    def table(self) -> Table:
        table = Table(
            f"Sharded mix ({self.n_shards} shards): "
            f"{self.config.scanners} scanner(s) + "
            f"{self.config.updaters} updater(s), "
            f"{self.config.ops_per_client} ops each",
            ["Session", "Profile", "Committed", "Aborted", "Retries",
             "Deadlocks", "Timeouts", "Rows", "Wait (s)"],
        )
        for s in self.sessions:
            table.add(
                s.name, s.profile, s.committed, s.aborted, s.retries,
                s.deadlocks, s.timeouts, s.rows, s.lock_wait_s,
            )
        table.note(
            f"aggregate: {self.committed} committed, {self.aborted} "
            f"aborted ({self.retries} retried, {self.gave_up} gave up) "
            f"in {self.elapsed_s:.2f} simulated s -> "
            f"{self.throughput_ops_s:.3f} txn/s; "
            f"{self.msgs} messages, {self.context_switches} switches"
        )
        return table


class ShardedWorkload:
    """Spawns and runs one deterministic mix over a cluster."""

    def __init__(
        self,
        cluster: "ShardedCluster",
        config: ShardedMixConfig,
        faults: "TransientFaultInjector | None" = None,
    ):
        from repro.dist.coordinator import Coordinator  # local: same layer

        self.cluster = cluster
        self.config = config
        #: Per-shard transient faults are derived via
        #: :meth:`~repro.recovery.transient.TransientFaultInjector.for_node`
        #: so each shard's fault schedule is a function of (seed, shard)
        #: alone, independent of the global read interleaving.
        self.faults = faults
        self._armed: "list[tuple[object, TransientFaultInjector]]" = []
        self.coordinator = Coordinator(
            cluster,
            **({} if config.batch_size is None
               else {"batch_size": config.batch_size}),
        )
        self.scheduler: CooperativeScheduler | None = None
        #: Acked committed writes in commit order:
        #: ``((shard, rid), value)``.  The single deterministic timeline
        #: totally orders commits, so the last write per (shard, rid) is
        #: the expected durable value.
        self.write_log: "list[tuple[tuple[int, Rid], int]]" = []
        #: Every write staged by a distributed transaction, keyed by its
        #: global id, recorded *before* 2PC starts.
        self.staged: "dict[int, list[tuple[tuple[int, Rid], int]]]" = {}
        #: Global ids whose commit ack reached the client.
        self.acked_globals: set[int] = set()
        #: ``(shard, branch txn id) -> global id`` for every branch a
        #: distributed transaction staged writes through.  After a
        #: primary kill, a branch commit record found durable on the
        #: *promoted replica* maps back to the global transaction whose
        #: writes the failover oracle must then expect — even if no
        #: client was ever acked (the "decided but unacked" case).
        self.branch_globals: "dict[tuple[int, int], int]" = {}
        #: Coordinator timestamps of acked operations (commits and
        #: scans), for windowed throughput-recovery measurements.
        self.op_times: list[float] = []

    # -- the run --------------------------------------------------------

    def run(self, cold: bool = True) -> ShardedMixReport:
        cluster = self.cluster
        config = self.config
        if config.total_clients < 1:
            raise DistError("a sharded mix needs at least one client")
        if cold:
            cluster.start_cold()
        self.write_log = []
        self.staged = {}
        self.acked_globals = set()
        self.branch_globals = {}
        self.op_times = []
        scheduler = CooperativeScheduler(cluster.clock, cluster.lock_table)
        self.scheduler = scheduler
        if self.faults is not None:
            # Primaries draw replica=0 streams, standbys replica=1 —
            # independent failures, the point of replication.
            self._armed = [
                (node, self.faults.for_node(node.shard_id))
                for node in cluster.nodes
            ] + [
                (node, self.faults.for_node(node.shard_id, replica=1))
                for node in cluster.standbys.values()
            ]
            for node, child in self._armed:
                child.arm(node.db, node.locks)
        reports: list[ShardedSessionReport] = []
        start_s = cluster.elapsed_s
        spawned = 0
        for profile, count in (
            ("scanner", config.scanners),
            ("updater", config.updaters),
        ):
            for i in range(count):
                name = f"{profile}{i}"
                report = ShardedSessionReport(name, profile)
                rng = Random(config.seed * 10_007 + spawned)
                scheduler.spawn(name, self._session_body(report, profile, rng))
                reports.append(report)
                spawned += 1
        try:
            tasks = scheduler.run()
            crashed = any(
                isinstance(t.error, SimulatedCrashError) for t in tasks
            )
            for report, task in zip(reports, tasks):
                report.lock_wait_s = task.lock_wait_s
            if crashed:
                # Volatile state is meaningless past the crash point;
                # leave the cluster as the injector froze it — the chaos
                # checker calls cluster.crash() / recover() itself.
                pass
            else:
                for task in tasks:
                    if task.error is not None:
                        raise task.error
        finally:
            # The cluster outlives this workload: leave no scheduler
            # wiring or transient faults behind to corrupt later runs.
            cluster.lock_table.detach()
            for node, child in self._armed:
                child.disarm(node.db, node.locks)
            self._armed = []
        return ShardedMixReport(
            config=config,
            sessions=reports,
            n_shards=cluster.n_shards,
            elapsed_s=cluster.elapsed_s - start_s,
            context_switches=scheduler.context_switches,
            msgs=cluster.msgs,
            msg_bytes=cluster.msg_bytes,
            crashed=crashed,
        )

    # -- session bodies -------------------------------------------------

    def _session_body(
        self, report: ShardedSessionReport, profile: str, rng: Random
    ):
        op = {
            "scanner": self._scanner_op,
            "updater": self._updater_op,
        }[profile]
        cluster = self.cluster
        config = self.config
        assert self.scheduler is not None
        scheduler = self.scheduler
        policy = RetryPolicy(
            max_retries=config.max_retries,
            base_backoff_s=config.retry_backoff_s,
            jitter=config.retry_jitter,
        )

        def backoff(seconds: float) -> None:
            if seconds > 0:
                cluster.clock.charge_s(Bucket.BACKOFF, seconds)
            scheduler.yield_point()

        def body() -> None:
            for __ in range(config.ops_per_client):
                attempt = 0
                unavailable_attempt = 0
                while True:
                    try:
                        # Drive failure handling forward on every
                        # attempt: due kills land, async links drain,
                        # leases expire and dead shards fail over.  An
                        # injected kill firing mid-ship surfaces here
                        # as ShardUnavailableError like any other op.
                        cluster.tick()
                        op(report, rng)
                    except LockConflictError as exc:
                        # Transient: the victim of a deadlock or a lock
                        # timeout retries with seeded backoff + jitter.
                        if isinstance(exc, DeadlockError):
                            report.deadlocks += 1
                        elif isinstance(exc, LockTimeoutError):
                            report.timeouts += 1
                        report.aborted += 1
                        if attempt >= policy.max_retries:
                            report.gave_up += 1
                            break
                        report.retries += 1
                        backoff(policy.backoff_s(attempt, rng))
                        attempt += 1
                    except ShardUnavailableError:
                        # The shard is between primaries.  Separate,
                        # larger retry allowance: backoff spans the
                        # detection + promotion window, after which the
                        # op succeeds against the new primary.
                        report.unavailable += 1
                        report.aborted += 1
                        if unavailable_attempt >= config.unavailable_retries:
                            report.gave_up += 1
                            break
                        report.retries += 1
                        backoff(policy.backoff_s(unavailable_attempt, rng))
                        unavailable_attempt += 1
                    except PermanentIOError:
                        # A read fault that out-lasted the disk's retry
                        # budget: the op is lost, not retried.
                        report.io_failures += 1
                        report.gave_up += 1
                        break
                    else:
                        break
                scheduler.yield_point()  # think time between operations

        return body

    def _scanner_op(self, report: ShardedSessionReport, rng: Random) -> None:
        config = self.config
        threshold = self.cluster.config.num_threshold(
            config.scan_selectivity_pct
        )
        assert self.scheduler is not None
        rows = self.coordinator.execute(
            f"select p.age from p in Patients where p.num > {threshold}",
            strategy=config.strategy,
            on_batch=self.scheduler.batch_point,
        )
        report.rows += len(rows)
        report.committed += 1
        self.op_times.append(self.cluster.elapsed_s)

    def _updater_op(self, report: ShardedSessionReport, rng: Random) -> None:
        cluster = self.cluster
        part = cluster.part
        hot = min(self.config.hot_set, len(part.patient_shard))
        if hot < 2:
            raise DistError("updater needs at least two hot patients")
        first, second = rng.sample(range(hot), 2)
        if cluster.n_shards > 1:
            # Prefer a genuinely cross-shard pair: redraw the second
            # patient (bounded, from the session's own stream) until it
            # lives on a different shard than the first.
            for __ in range(8):
                if part.patient_home(second)[0] != part.patient_home(first)[0]:
                    break
                second = rng.randrange(hot)
                if second == first:
                    second = (second + 1) % hot
        targets: "list[tuple[int, Rid]]" = []
        for idx in (first, second):
            shard_id, local = part.patient_home(idx)
            rid = cluster.nodes[shard_id].derby.patient_rids[local]
            targets.append((shard_id, rid))
        assert self.scheduler is not None
        dtx = cluster.begin()
        try:
            writes: "list[tuple[tuple[int, Rid], int]]" = []
            for i, (shard_id, rid) in enumerate(targets):
                txn = dtx.branch(shard_id)
                # Pin every later touch to the node the branch opened
                # on: a mid-transaction failover must surface as a typed
                # error, never silently reroute to the new primary.
                node = dtx.branch_nodes[shard_id]
                self.branch_globals[(shard_id, txn.txn_id)] = dtx.global_id
                cluster.call(node, lambda t=txn, r=rid: t.write_lock(r))
                if i == 0:
                    # The window in which opposite-order pairs deadlock.
                    self.scheduler.yield_point()
            for shard_id, rid in targets:
                node = dtx.branch_nodes[shard_id]
                age = cluster.call(
                    node,
                    lambda n=node, r=rid: n.db.manager.get_attr_at(r, "age"),
                )
                value = (int(age) % 90) + 1
                dtx.update_scalar(shard_id, rid, "age", value)
                writes.append(((shard_id, rid), value))
            self.staged[dtx.global_id] = list(writes)
            dtx.commit()
        except BaseException as exc:
            # After a simulated crash the shard logs refuse service, so
            # rolling back would just crash again — the cluster-level
            # crash/recover path owns cleanup from here.
            if dtx.state == "active" and not isinstance(
                exc, SimulatedCrashError
            ):
                dtx.abort()
            raise
        # Ack: the client heard the commit.  On the single timeline ack
        # order == commit order — the chaos checker's primary oracle.
        self.acked_globals.add(dtx.global_id)
        self.write_log.extend(writes)
        report.committed += 1
        self.op_times.append(cluster.elapsed_s)
