"""Per-shard replication: WAL shipping, warm standbys, kill injection.

Each shard's primary can be paired with a **replica** — a second
:class:`~repro.dist.node.ShardNode` built from the same logical slice,
so the pair starts byte-identical.  From then on the replica never sees
client traffic: it is fed exclusively by **log shipping** and stays a
warm standby until fenced failover (:meth:`~repro.dist.cluster.
ShardedCluster.failover`) promotes it.

**Shipping.**  The primary's WAL fires ``ship_listener`` at the end of
every flush that advanced its durable boundary.  A :class:`ReplicaLink`
forwards the newly-durable records as one typed *ship* message —
charged through the coordinator clock as RPC overhead plus page-sized
``Bucket.TRANSFER``, like every other cross-node message — and the
replica then, on its own clock (charged back to the coordinator as
parallel remote work):

1. appends the records verbatim, preserving LSNs
   (:meth:`~repro.txn.log.WriteAheadLog.append_shipped`) and flushes,
   so the replica's durable log prefix trails the primary's by exactly
   the unshipped window;
2. applies redo continuously (:func:`repro.recovery.redo_apply` — the
   ARIES-lite redo pass packaged as an entry point) and durably writes
   the touched pages, so the standby's disk state always reflects its
   shipped prefix and promotion replays almost nothing.

A typed *ack* message returns, advancing ``acked_lsn``.

**Sync vs async.**  In ``sync`` mode the ship round-trip runs *inside*
the primary's flush — no client is acknowledged before the replica
durably holds the records, so a primary kill can never lose an acked
write (the zero-acked-loss gate in ``benchmarks/bench_replication.py``).
In ``async`` mode flushes only note the lag and shipping happens on the
cluster's :meth:`~repro.dist.cluster.ShardedCluster.tick` (or earlier,
if the lag exceeds ``max_lag_records`` — the **bounded acknowledged-loss
window**): clients ack sooner, but a primary kill loses at most
``max_lag_records`` acked log records, and the link reports the exact
window it lost (:attr:`ReplicaLink.loss_window_records`).

**Kill points.**  :class:`ReplicationInjector` mirrors the 2PC injector
but kills a *single node*, not the cluster: the three ship points kill
the shipping primary (the client's call surfaces
:class:`~repro.errors.ShardUnavailableError` and the session retries
through its backoff policy), the two promote points kill the replica
mid-failover — the double failure that leaves a shard with no
promotable node.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import RecoveryError, ReplicationError, ShardUnavailableError
from repro.recovery.aries import redo_apply
from repro.recovery.crash import crash_database
from repro.simtime import Bucket
from repro.txn.log import PHYSICAL_KINDS
from repro.units import PAGE_SIZE, pages_for_bytes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dist.cluster import ShardedCluster
    from repro.dist.node import ShardNode

#: The supported shipping disciplines.
SHIP_MODES = ("sync", "async")

#: Framing overhead of one ship message (source LSN range + epoch).
SHIP_HEADER_BYTES = 32
#: One ship acknowledgement (acked LSN + epoch).
SHIP_ACK_BYTES = 16
#: One epoch-bump record in the coordinator's decision log.
EPOCH_RECORD_BYTES = 24

#: The named replication kill points, in protocol order.
REPLICATION_KILL_POINTS = (
    # The primary dies with durable records it never shipped: sync mode
    # has not acked them (the flush dies too), async mode may have —
    # this is the acknowledged-loss window in action.
    "repl-before-ship",
    # The replica holds and applied the records but the primary dies
    # before the ack: the client is never acknowledged, yet promotion
    # makes the write visible — the "decided but unacked" legal case
    # the chaos oracle admits.
    "repl-mid-ship",
    # The ack arrived, then the primary died: everything acked is on
    # the replica, nothing is lost.
    "repl-after-ship",
    # The replica dies before the fencing epoch is durable: the shard
    # has no promotable node and stays unavailable.
    "repl-before-promote",
    # The replica dies after the epoch bump but before promotion
    # completes: the epoch is burned, the shard stays unavailable —
    # proving the epoch record alone changes no routing.
    "repl-mid-promote",
)


class ReplicaLink:
    """The shipping channel between one shard's primary and its replica."""

    def __init__(
        self,
        cluster: "ShardedCluster",
        shard_id: int,
        primary: "ShardNode",
        replica: "ShardNode",
        mode: str = "sync",
        max_lag_records: int = 64,
    ):
        if mode not in SHIP_MODES:
            raise ReplicationError(
                f"unknown ship mode {mode!r}; choose from {SHIP_MODES}"
            )
        if max_lag_records < 1:
            raise ReplicationError(
                f"max_lag_records must be >= 1, got {max_lag_records}"
            )
        p_wal, r_wal = primary.txm.log, replica.txm.log
        if (
            r_wal.next_lsn != p_wal.next_lsn
            or r_wal.durable_lsn != p_wal.durable_lsn
        ):
            raise ReplicationError(
                f"shard {shard_id} replica log (next {r_wal.next_lsn}, "
                f"durable {r_wal.durable_lsn}) does not match its primary "
                f"(next {p_wal.next_lsn}, durable {p_wal.durable_lsn}); "
                "replicas must be built from the same logical slice"
            )
        self.cluster = cluster
        self.shard_id = shard_id
        self.primary = primary
        self.replica = replica
        self.mode = mode
        self.max_lag_records = max_lag_records
        #: Highest LSN the replica has durably acknowledged.
        self.acked_lsn = p_wal.durable_lsn
        #: The link stops shipping once the primary is down.
        self.active = True
        # Index into the primary's (append-only) record list just past
        # the acked prefix — avoids rescanning history on every flush.
        self._cursor = len(p_wal.records)
        # First-touch page-read accounting for continuous redo.
        self._fetched: set[tuple[int, int]] = set()
        # Durable boundary as of the last flush whose ship hook returned
        # without raising — i.e. the highest LSN a *client* can have
        # seen acknowledged.  Records above this were part of a flush
        # that died mid-ship, so losing them loses nothing acked.
        self._client_acked_lsn = p_wal.durable_lsn
        # -- meters ------------------------------------------------------
        self.ship_msgs = 0
        self.shipped_records = 0
        self.shipped_bytes = 0
        self.acks = 0
        #: Total coordinator-timeline seconds between ship send and ack.
        self.ack_wait_s = 0.0
        #: Durable-but-unshipped records at the moment the primary died —
        #: the acknowledged-loss window async mode reports (always 0 for
        #: a sync link: unshipped records were never acked).
        self.loss_window_records: int | None = None

    # -- wiring ---------------------------------------------------------

    def attach(self) -> None:
        """Install the ship hook on the primary's WAL."""
        self.primary.txm.log.ship_listener = self._on_durable

    def detach(self) -> None:
        if self.primary.txm.log.ship_listener == self._on_durable:
            self.primary.txm.log.ship_listener = None
        self.active = False

    def reset_meters(self) -> None:
        self.ship_msgs = 0
        self.shipped_records = 0
        self.shipped_bytes = 0
        self.acks = 0
        self.ack_wait_s = 0.0

    # -- the shipping protocol ------------------------------------------

    def _on_durable(self, old_durable: int, new_durable: int) -> None:
        """The primary's flush advanced its durable boundary."""
        if not self.active:
            return
        if self.mode == "sync":
            self.ship()
        elif self.lag_records() > self.max_lag_records:
            # Async, but the loss bound is due: drain before acking.
            self.ship()
        # Reaching here means the flush completes and its commits get
        # acknowledged to clients (sync: after the ship round-trip).
        self._client_acked_lsn = new_durable

    def pump(self) -> None:
        """Ship anything pending (async links drain here, on the
        cluster's tick)."""
        if self.active and self.lag_records() > 0:
            self.ship()

    def lag_records(self) -> int:
        """Durable primary records the replica has not acknowledged."""
        return len(self._unshipped())

    def ship(self) -> None:
        """One ship round-trip: send the durable-unshipped suffix,
        append + flush + apply at the replica, receive the ack."""
        records = self._unshipped()
        if not records:
            return
        cluster = self.cluster
        cluster.reached_repl("repl-before-ship", self.shard_id)
        clock = cluster.clock
        params = cluster.params
        nbytes = SHIP_HEADER_BYTES + sum(r.nbytes for r in records)
        t_ship = clock.elapsed_s
        clock.charge_ms(Bucket.RPC, params.rpc_overhead_ms)
        clock.charge_ms(
            Bucket.TRANSFER,
            pages_for_bytes(nbytes, PAGE_SIZE) * params.page_transfer_ms,
        )
        cluster._note_msg(self.replica, nbytes)
        # The replica works on its own clock; the coordinator observes
        # the delta as remote wait, like any other single-node call.
        before = self.replica.db.clock.elapsed_s
        self._apply_at_replica(records)
        delta = self.replica.db.clock.elapsed_s - before
        if delta > 0:
            clock.charge_s(Bucket.REMOTE, delta)
            self.replica.remote_wait_s += delta
        cluster.reached_repl("repl-mid-ship", self.shard_id)
        # The ack.
        clock.charge_ms(Bucket.RPC, params.rpc_overhead_ms)
        cluster._note_msg(self.primary, SHIP_ACK_BYTES)
        self.acked_lsn = records[-1].lsn
        self._cursor += len(records)
        self.ship_msgs += 1
        self.shipped_records += len(records)
        self.shipped_bytes += nbytes
        self.acks += 1
        self.ack_wait_s += clock.elapsed_s - t_ship
        cluster.reached_repl("repl-after-ship", self.shard_id)

    def note_primary_down(self) -> None:
        """Snapshot the acknowledged-loss window and stop shipping.

        Only records a client could have seen acknowledged count: the
        suffix of an in-flight flush that died mid-ship was never acked
        to anyone, so its records are aborted work, not lost work.
        """
        if self.loss_window_records is None:
            self.loss_window_records = sum(
                1
                for r in self._unshipped()
                if r.lsn <= self._client_acked_lsn
            )
        self.detach()

    # -- internals ------------------------------------------------------

    def _unshipped(self) -> list:
        """The primary's durable records past the acked prefix.  The
        record list is append-only while the primary lives, so the scan
        starts at the cached cursor, not at LSN zero."""
        wal = self.primary.txm.log
        records = wal.records
        out = []
        i = self._cursor
        while i < len(records) and records[i].lsn <= wal.durable_lsn:
            if records[i].lsn > self.acked_lsn:
                out.append(records[i])
            i += 1
        return out

    def _apply_at_replica(self, records: list) -> None:
        """Replica side of one ship: durable append, continuous redo,
        durable page writes — all on the replica's clock."""
        r_wal = self.replica.txm.log
        for record in records:
            r_wal.append_shipped(record)
        r_wal.flush()
        redo_apply(self.replica.db, records, self._fetched)
        db = self.replica.db
        disk = db.disk
        for key in sorted(
            {r.page_key for r in records if r.kind in PHYSICAL_KINDS}
        ):
            if disk.peek_page(*key).dirty:
                disk.write_page(*key)
            # Continuous redo mutates the disk-level page underneath
            # the buffer tiers; drop any stale cached copy so reads at
            # the standby (and after promotion) see what was applied.
            db.system.server_cache.drop(key)
            db.system.client_cache.drop(key)


class ReplicationInjector:
    """Kills one node the ``occurrence``-th time ``point`` is reached.

    Unlike :class:`~repro.dist.twopc.TwoPCInjector` this is a *partial*
    failure: only the victim node dies; the cluster keeps running and is
    expected to fail over.  Ship points kill the shard's current
    primary and surface :class:`~repro.errors.ShardUnavailableError`
    from the in-flight call; promote points kill the shard's replica
    and let :meth:`~repro.dist.cluster.ShardedCluster.failover` discover
    the double failure on its own.
    """

    def __init__(self, point: str, occurrence: int = 1):
        if point not in REPLICATION_KILL_POINTS:
            raise RecoveryError(
                f"unknown replication kill point {point!r}; choose from "
                f"{REPLICATION_KILL_POINTS}"
            )
        if occurrence < 1:
            raise RecoveryError(f"occurrence must be >= 1, got {occurrence}")
        self.point = point
        self.occurrence = occurrence
        self.seen = 0
        self.fired = False
        self.fired_shard: int | None = None
        self._cluster: "ShardedCluster | None" = None

    def arm(self, cluster: "ShardedCluster") -> None:
        self._cluster = cluster
        cluster.repl_injector = self

    def reached(self, point: str, shard_id: int) -> None:
        """Called by :class:`ReplicaLink` and failover at each step."""
        if self.fired or point != self.point:
            return
        self.seen += 1
        if self.seen == self.occurrence:
            self.fire(shard_id)

    def fire(self, shard_id: int) -> None:
        self.fired = True
        self.fired_shard = shard_id
        cluster = self._cluster
        if cluster is None:
            raise RecoveryError("replication injector fired while unarmed")
        if self.point.endswith("-promote"):
            # Kill the replica mid-failover; failover re-checks `down`
            # after every reached() call and reports the shard
            # unpromotable instead of raising.
            replica = cluster.standbys.get(shard_id)
            if replica is not None and not replica.down:
                replica.down = True
                crash_database(replica.db, replica.txm)
            return
        cluster.kill_primary(shard_id)
        raise ShardUnavailableError(
            f"shard {shard_id} primary killed at {self.point} "
            f"(occurrence {self.seen})"
        )
