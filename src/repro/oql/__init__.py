"""An OQL subset with a cost-based optimizer.

The paper's original goal — never reached — was a cost model good enough
to drive O2's OQL optimizer ("our first task was to find out what
statistics the system should maintain and how to incorporate them into a
cost model", Section 2).  This package closes that loop for the query
family the paper studied:

* simple selections with comparison predicates
  (``select p.age from p in Patients where p.num > 1800000``), choosing
  between a full scan, an unclustered index scan, and the paper's
  *sorted* index scan discovery;
* the tree query over a parent/child hierarchy
  (``select tuple(n: p.name, a: pa.age) from p in Providers,
  pa in p.clients where pa.mrn < k1 and p.upin < k2``), choosing among
  NL, NOJOIN, PHJ and CHJ with the mechanism-derived cost formulas of
  :mod:`repro.oql.cost`.

Entry point: :func:`run_oql` / :class:`OQLEngine`.
"""

from repro.oql.ast_nodes import (
    AnalyzeStmt,
    BinOp,
    BoolOp,
    CollectionRef,
    ExplainStmt,
    FromClause,
    Literal,
    Path,
    Query,
    Statement,
    TupleExpr,
)
from repro.oql.catalog import Catalog, RelationshipInfo
from repro.oql.cost import CostModel, PlanEstimate
from repro.oql.engine import OQLEngine, run_oql
from repro.oql.lexer import Token, tokenize
from repro.oql.optimizer import Optimizer, SelectionPlan, TreeJoinPlan
from repro.oql.parser import parse, parse_statement
from repro.oql.printer import print_query, print_statement

__all__ = [
    "tokenize",
    "Token",
    "parse",
    "parse_statement",
    "print_query",
    "print_statement",
    "Query",
    "Statement",
    "ExplainStmt",
    "AnalyzeStmt",
    "FromClause",
    "Path",
    "Literal",
    "BinOp",
    "BoolOp",
    "TupleExpr",
    "CollectionRef",
    "Catalog",
    "RelationshipInfo",
    "CostModel",
    "PlanEstimate",
    "Optimizer",
    "SelectionPlan",
    "TreeJoinPlan",
    "OQLEngine",
    "run_oql",
]
