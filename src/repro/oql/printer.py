"""AST → OQL text (unparser).

Used to display plans and rewritten queries, and — in tests — to verify
the parse → print → parse round trip, which pins down operator
precedence and keyword handling.
"""

from __future__ import annotations

from repro.errors import QueryError
from repro.oql.ast_nodes import (
    AggregateExpr,
    AnalyzeStmt,
    BinOp,
    BoolOp,
    CollectionRef,
    ExistsExpr,
    ExplainStmt,
    Expr,
    FromClause,
    Literal,
    OrderBy,
    Path,
    Query,
    Statement,
    TupleExpr,
)


def print_statement(stmt: Statement) -> str:
    """Render any statement as parseable OQL text."""
    if isinstance(stmt, ExplainStmt):
        return "explain " + print_query(stmt.query)
    if isinstance(stmt, AnalyzeStmt):
        if stmt.collections:
            return "analyze " + ", ".join(stmt.collections)
        return "analyze"
    return print_query(stmt)


def print_query(query: Query) -> str:
    """Render a query as parseable OQL text."""
    parts = ["select"]
    if query.distinct:
        parts.append("distinct")
    parts.append(_print_select(query.select))
    parts.append("from")
    parts.append(", ".join(_print_from(clause) for clause in query.from_clauses))
    if query.where is not None:
        parts.append("where")
        parts.append(print_expr(query.where))
    if query.order_by:
        parts.append("order by")
        parts.append(", ".join(_print_order(term) for term in query.order_by))
    if query.limit is not None:
        parts.append(f"limit {query.limit}")
    return " ".join(parts)


def print_expr(expr: Expr) -> str:
    """Render one expression (fully parenthesizing boolean structure)."""
    if isinstance(expr, Literal):
        if isinstance(expr.value, str):
            return "'" + expr.value + "'"
        return repr(expr.value)
    if isinstance(expr, Path):
        return str(expr)
    if isinstance(expr, BinOp):
        return f"{print_expr(expr.left)} {expr.op} {print_expr(expr.right)}"
    if isinstance(expr, BoolOp):
        if expr.op == "not":
            return f"not {_maybe_paren(expr.operands[0])}"
        joiner = f" {expr.op} "
        return joiner.join(_maybe_paren(op) for op in expr.operands)
    if isinstance(expr, ExistsExpr):
        return (
            f"exists {expr.var} in {expr.source} : "
            f"{_maybe_paren(expr.condition)}"
        )
    raise QueryError(f"cannot print expression {expr!r}")


def _maybe_paren(expr: Expr) -> str:
    text = print_expr(expr)
    if isinstance(expr, (BoolOp, ExistsExpr)):
        return f"({text})"
    return text


def _print_select(select: Expr) -> str:
    if isinstance(select, AggregateExpr):
        arg = "*" if select.arg is None else str(select.arg)
        return f"{select.func}({arg})"
    if isinstance(select, TupleExpr):
        fields = ", ".join(
            f"{name}: {print_expr(value)}" for name, value in select.fields
        )
        return f"tuple({fields})"
    return print_expr(select)


def _print_from(clause: FromClause) -> str:
    if isinstance(clause.source, CollectionRef):
        return f"{clause.var} in {clause.source.name}"
    return f"{clause.var} in {clause.source}"


def _print_order(term: OrderBy) -> str:
    direction = " desc" if term.descending else ""
    return f"{term.key}{direction}"
