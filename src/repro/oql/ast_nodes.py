"""OQL abstract syntax."""

from __future__ import annotations

from dataclasses import dataclass


class Expr:
    """Base class for expressions."""


@dataclass(frozen=True)
class Literal(Expr):
    value: object


@dataclass(frozen=True)
class Path(Expr):
    """``var.attr1.attr2...`` — a variable, or navigation from it."""

    var: str
    attrs: tuple[str, ...] = ()

    def __str__(self) -> str:
        return ".".join((self.var, *self.attrs))


@dataclass(frozen=True)
class BinOp(Expr):
    """Comparison: ``left op right`` with op in < <= > >= = !=."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class BoolOp(Expr):
    """``and`` / ``or`` over two or more operands; ``not`` over one."""

    op: str  # "and" | "or" | "not"
    operands: tuple[Expr, ...]


@dataclass(frozen=True)
class TupleExpr(Expr):
    """``tuple(name: expr, ...)`` or ``[expr, expr]`` (auto-named)."""

    fields: tuple[tuple[str, Expr], ...]


@dataclass(frozen=True)
class CollectionRef(Expr):
    """A named database collection in a from-clause."""

    name: str


@dataclass(frozen=True)
class AggregateExpr(Expr):
    """``count(var)`` / ``count(*)`` / ``sum(var.attr)`` / ``avg`` /
    ``min`` / ``max``.  ``arg`` is ``None`` for ``count(*)``."""

    func: str               # "count" | "sum" | "avg" | "min" | "max"
    arg: Path | None


@dataclass(frozen=True)
class OrderBy:
    """One ``order by`` term."""

    key: Path
    descending: bool = False


@dataclass(frozen=True)
class ExistsExpr(Expr):
    """``exists var in outer.set_attr : condition`` — OQL's existential
    quantifier over a set attribute (a navigational semijoin)."""

    var: str
    source: Path
    condition: Expr


@dataclass(frozen=True)
class FromClause:
    """``var in source`` — source is a CollectionRef or a Path
    (navigation into a set attribute of an earlier variable)."""

    var: str
    source: Expr


@dataclass(frozen=True)
class Query:
    """``select [distinct] <expr> from <clauses> [where <expr>]
    [order by <path> [asc|desc], ...] [limit <n>]``."""

    select: Expr
    from_clauses: tuple[FromClause, ...]
    where: Expr | None = None
    distinct: bool = False
    order_by: tuple[OrderBy, ...] = ()
    limit: int | None = None


@dataclass(frozen=True)
class ExplainStmt:
    """``explain <query>`` — plan the query, run it, and return the
    chosen plan with estimated vs. actual rows and cost as text rows."""

    query: Query


@dataclass(frozen=True)
class AnalyzeStmt:
    """``analyze [Collection, ...]`` — collect optimizer statistics
    over the named collections (all of them when none are named)."""

    collections: tuple[str, ...] = ()


#: Anything the engine accepts as one executable statement.
Statement = Query | ExplainStmt | AnalyzeStmt


def conjuncts(expr: Expr | None) -> list[Expr]:
    """Flatten a where-clause into its top-level AND terms."""
    if expr is None:
        return []
    if isinstance(expr, BoolOp) and expr.op == "and":
        out: list[Expr] = []
        for operand in expr.operands:
            out.extend(conjuncts(operand))
        return out
    return [expr]
