"""Recursive-descent OQL parser for the subset the paper exercises.

Grammar (informal)::

    statement  := query | "explain" query
                  | "analyze" [ident ("," ident)*]
    query      := "select" ["distinct"] select_expr
                  "from" from_clause ("," from_clause)*
                  ["where" or_expr]
                  ["order" "by" order_term ("," order_term)*]
                  ["limit" int]
    select_expr:= tuple_expr | list_expr | or_expr
    tuple_expr := "tuple" "(" ident ":" or_expr ("," ident ":" or_expr)* ")"
    list_expr  := "[" or_expr ("," or_expr)* "]"
    from_clause:= ident "in" (ident | path)
    or_expr    := and_expr ("or" and_expr)*
    and_expr   := not_expr ("and" not_expr)*
    not_expr   := "not" not_expr | comparison
    comparison := primary (("<"|"<="|">"|">="|"="|"!=") primary)?
    primary    := literal | path | "(" or_expr ")"
    path       := ident ("." ident)*
"""

from __future__ import annotations

from repro.errors import OQLSyntaxError
from repro.oql.ast_nodes import (
    AggregateExpr,
    AnalyzeStmt,
    BinOp,
    BoolOp,
    CollectionRef,
    ExistsExpr,
    ExplainStmt,
    Expr,
    FromClause,
    Literal,
    OrderBy,
    Path,
    Query,
    Statement,
    TupleExpr,
)

_AGGREGATES = ("count", "sum", "avg", "min", "max")
from repro.oql.lexer import Token, tokenize

_COMPARISONS = ("<", "<=", ">", ">=", "=", "!=")


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.i = 0

    # -- plumbing -----------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.i]

    def advance(self) -> Token:
        token = self.cur
        self.i += 1
        return token

    def expect_kw(self, word: str) -> None:
        if not self.cur.is_kw(word):
            raise OQLSyntaxError(
                f"expected {word!r} at position {self.cur.pos}, "
                f"got {self.cur.text!r}"
            )
        self.advance()

    def expect_op(self, op: str) -> None:
        if not self.cur.is_op(op):
            raise OQLSyntaxError(
                f"expected {op!r} at position {self.cur.pos}, "
                f"got {self.cur.text!r}"
            )
        self.advance()

    def expect_ident(self) -> str:
        if self.cur.kind != "ident":
            raise OQLSyntaxError(
                f"expected identifier at position {self.cur.pos}, "
                f"got {self.cur.text!r}"
            )
        return self.advance().text

    # -- grammar ---------------------------------------------------------

    def statement(self) -> Statement:
        if self.cur.is_kw("explain"):
            self.advance()
            return ExplainStmt(self.query())
        if self.cur.is_kw("analyze"):
            self.advance()
            names: list[str] = []
            if self.cur.kind == "ident":
                names.append(self.advance().text)
                while self.cur.is_op(","):
                    self.advance()
                    names.append(self.expect_ident())
            if self.cur.kind != "eof":
                raise OQLSyntaxError(
                    f"trailing input at position {self.cur.pos}: "
                    f"{self.cur.text!r}"
                )
            return AnalyzeStmt(tuple(names))
        return self.query()

    def query(self) -> Query:
        self.expect_kw("select")
        distinct = False
        if self.cur.is_kw("distinct"):
            distinct = True
            self.advance()
        select = self.select_expr()
        self.expect_kw("from")
        clauses = [self.from_clause()]
        while self.cur.is_op(","):
            self.advance()
            clauses.append(self.from_clause())
        where = None
        if self.cur.is_kw("where"):
            self.advance()
            where = self.or_expr()
        order_by: list[OrderBy] = []
        if self.cur.is_kw("order"):
            self.advance()
            self.expect_kw("by")
            order_by.append(self._order_term())
            while self.cur.is_op(","):
                self.advance()
                order_by.append(self._order_term())
        limit: int | None = None
        if self.cur.is_kw("limit"):
            self.advance()
            if self.cur.kind != "int":
                raise OQLSyntaxError(
                    f"limit expects an integer at position {self.cur.pos}, "
                    f"got {self.cur.text!r}"
                )
            limit = int(self.advance().text.replace("_", ""))
        if self.cur.kind != "eof":
            raise OQLSyntaxError(
                f"trailing input at position {self.cur.pos}: {self.cur.text!r}"
            )
        return Query(
            select, tuple(clauses), where, distinct, tuple(order_by), limit
        )

    def _order_term(self) -> OrderBy:
        key = self.primary()
        if not isinstance(key, Path):
            raise OQLSyntaxError("order by expects var.attribute")
        descending = False
        if self.cur.is_kw("desc"):
            descending = True
            self.advance()
        elif self.cur.is_kw("asc"):
            self.advance()
        return OrderBy(key, descending)

    def select_expr(self) -> Expr:
        if self.cur.kind == "kw" and self.cur.text in _AGGREGATES:
            func = self.advance().text
            self.expect_op("(")
            arg: Path | None
            if self.cur.is_op("*"):
                self.advance()
                arg = None
            else:
                parsed = self.primary()
                if not isinstance(parsed, Path):
                    raise OQLSyntaxError(
                        f"{func}() expects a variable or var.attribute"
                    )
                arg = parsed
            self.expect_op(")")
            if func != "count" and (arg is None or not arg.attrs):
                raise OQLSyntaxError(f"{func}() needs var.attribute")
            return AggregateExpr(func, arg)
        if self.cur.is_kw("tuple"):
            self.advance()
            self.expect_op("(")
            fields = [self._tuple_field()]
            while self.cur.is_op(","):
                self.advance()
                fields.append(self._tuple_field())
            self.expect_op(")")
            return TupleExpr(tuple(fields))
        if self.cur.is_op("["):
            self.advance()
            exprs = [self.or_expr()]
            while self.cur.is_op(","):
                self.advance()
                exprs.append(self.or_expr())
            self.expect_op("]")
            fields = tuple(
                (f"col{i}", expr) for i, expr in enumerate(exprs)
            )
            return TupleExpr(fields)
        return self.or_expr()

    def _tuple_field(self) -> tuple[str, Expr]:
        name = self.expect_ident()
        self.expect_op(":")
        return name, self.or_expr()

    def from_clause(self) -> FromClause:
        var = self.expect_ident()
        self.expect_kw("in")
        first = self.expect_ident()
        if self.cur.is_op("."):
            attrs = []
            while self.cur.is_op("."):
                self.advance()
                attrs.append(self.expect_ident())
            return FromClause(var, Path(first, tuple(attrs)))
        return FromClause(var, CollectionRef(first))

    def or_expr(self) -> Expr:
        operands = [self.and_expr()]
        while self.cur.is_kw("or"):
            self.advance()
            operands.append(self.and_expr())
        if len(operands) == 1:
            return operands[0]
        return BoolOp("or", tuple(operands))

    def and_expr(self) -> Expr:
        operands = [self.not_expr()]
        while self.cur.is_kw("and"):
            self.advance()
            operands.append(self.not_expr())
        if len(operands) == 1:
            return operands[0]
        return BoolOp("and", tuple(operands))

    def not_expr(self) -> Expr:
        if self.cur.is_kw("not"):
            self.advance()
            return BoolOp("not", (self.not_expr(),))
        if self.cur.is_kw("exists"):
            return self.exists_expr()
        return self.comparison()

    def exists_expr(self) -> Expr:
        self.expect_kw("exists")
        var = self.expect_ident()
        self.expect_kw("in")
        first = self.expect_ident()
        attrs = []
        while self.cur.is_op("."):
            self.advance()
            attrs.append(self.expect_ident())
        if not attrs:
            raise OQLSyntaxError(
                "exists ranges over a set attribute (e.g. p.clients)"
            )
        self.expect_op(":")
        condition = self.not_expr()
        return ExistsExpr(var, Path(first, tuple(attrs)), condition)

    def comparison(self) -> Expr:
        left = self.primary()
        if self.cur.kind == "op" and self.cur.text in _COMPARISONS:
            op = self.advance().text
            right = self.primary()
            return BinOp(op, left, right)
        return left

    def primary(self) -> Expr:
        token = self.cur
        if token.is_op("-"):
            self.advance()
            number = self.cur
            if number.kind == "int":
                self.advance()
                return Literal(-int(number.text.replace("_", "")))
            if number.kind == "float":
                self.advance()
                return Literal(-float(number.text))
            raise OQLSyntaxError(
                f"expected a number after '-' at position {number.pos}"
            )
        if token.kind == "int":
            self.advance()
            return Literal(int(token.text.replace("_", "")))
        if token.kind == "float":
            self.advance()
            return Literal(float(token.text))
        if token.kind == "string":
            self.advance()
            return Literal(token.text)
        if token.is_op("("):
            self.advance()
            inner = self.or_expr()
            self.expect_op(")")
            return inner
        if token.kind == "ident":
            first = self.advance().text
            attrs = []
            while self.cur.is_op("."):
                self.advance()
                attrs.append(self.expect_ident())
            return Path(first, tuple(attrs))
        raise OQLSyntaxError(
            f"unexpected token {token.text!r} at position {token.pos}"
        )


def parse(source: str) -> Query:
    """Parse OQL text into a :class:`Query`."""
    return _Parser(tokenize(source)).query()


def parse_statement(source: str) -> Statement:
    """Parse one statement: a query, ``explain <query>``, or
    ``analyze [collections]``."""
    return _Parser(tokenize(source)).statement()
