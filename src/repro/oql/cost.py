"""The cost model the paper set out to elicit.

Every formula mirrors the mechanism the simulator implements (and the
paper measured): page reads through a bounded client cache, handle
get/unreference traffic, hash-table sizes from Figure 10's model with OS
paging beyond the memory budget, rid sorts, and transactional result
construction.  The optimizer ranks plans with these estimates; the
benchmark harness can then compare the estimate against the simulated
measurement (the validation loop the paper never got to close).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.exec.hash_table import chj_table_bytes, phj_table_bytes
from repro.simtime import CostParams
from repro.units import MS_PER_S, US_PER_S


@dataclass(frozen=True)
class PlanEstimate:
    """Estimated cost of one physical plan."""

    seconds: float
    description: str
    breakdown: dict[str, float] = field(default_factory=dict)

    def __lt__(self, other: "PlanEstimate") -> bool:
        return self.seconds < other.seconds


@dataclass(frozen=True)
class JoinStats:
    """Statistics one tree-join costing needs (from the catalog)."""

    n_parents: int
    n_children: int
    parent_pages: int
    child_pages: int
    parent_leaves: int
    child_leaves: int
    sel_parents: float           # fraction in [0, 1]
    sel_children: float
    avg_children: float
    children_with_parents: bool  # composition-style co-location
    child_index_clustering: float
    parent_index_clustering: float
    parent_set_chunks: float     # overflow chunk records per parent (0 if inline)


class CostModel:
    """Cost formulas parameterized by the machine's :class:`CostParams`."""

    def __init__(self, params: CostParams):
        self.params = params
        self.cache_pages = params.memory.client_cache_pages

    # -- primitive terms ---------------------------------------------------

    def page_s(self, pages: float) -> float:
        """Seconds to pull ``pages`` cold pages up to the client."""
        p = self.params
        per_page_ms = p.page_read_ms + p.page_transfer_ms + p.rpc_overhead_ms
        return max(0.0, pages) * per_page_ms / MS_PER_S

    def handle_s(self, n: float, touch_fraction: float = 0.0) -> float:
        """Seconds of handle traffic for ``n`` object accesses; a
        ``touch_fraction`` of them merely re-reference a live handle."""
        p = self.params
        full = (p.handle_get_us + p.handle_unref_us) / US_PER_S
        touch = (p.handle_get_us * 0.1 + p.handle_unref_us) / US_PER_S
        return n * ((1 - touch_fraction) * full + touch_fraction * touch)

    def result_s(self, rows: float) -> float:
        return max(0.0, rows) * self.params.result_append_txn_us / US_PER_S

    def sort_s(self, n: float) -> float:
        if n < 2:
            return 0.0
        return self.params.sort_per_element_log_us * n * math.log2(n) / US_PER_S

    def hash_s(self, inserts: float, probes: float, table_bytes: float) -> float:
        """CPU plus expected OS-paging cost of a query hash table."""
        p = self.params
        cpu = (inserts * p.hash_insert_us + probes * p.hash_probe_us) / US_PER_S
        budget = p.memory.query_memory_bytes
        swap = 0.0
        if budget and table_bytes > budget:
            fraction = (table_bytes - budget) / table_bytes
            swap = (inserts + probes) * fraction * p.swap_fault_ms / MS_PER_S
        return cpu + swap

    # -- access-pattern page counts ------------------------------------------

    def random_fetch_pages(self, accesses: float, file_pages: int) -> float:
        """Expected page reads for ``accesses`` uniform random object
        accesses against a file of ``file_pages`` pages through the
        client cache: distinct pages fault once; re-touches miss at the
        steady-state rate 1 - cache/file."""
        if file_pages <= 0 or accesses <= 0:
            return 0.0
        distinct = file_pages * (1.0 - (1.0 - 1.0 / file_pages) ** accesses)
        retouches = max(0.0, accesses - distinct)
        if file_pages <= self.cache_pages:
            return distinct
        miss = 1.0 - self.cache_pages / file_pages
        return distinct + retouches * miss

    def clustered_fetch_pages(
        self, accesses: float, total_objects: float, file_pages: int,
        clustering: float,
    ) -> float:
        """Page reads for fetching ``accesses`` objects whose order is
        ``clustering``-correlated with physical placement: blend the
        sequential cost (fraction of the file) with the random cost."""
        if total_objects <= 0:
            return 0.0
        sequential = (accesses / total_objects) * file_pages
        random = self.random_fetch_pages(accesses, file_pages)
        # Map clustering ratio (0.5 = random, 1.0 = sequential) to a blend.
        weight = max(0.0, min(1.0, (clustering - 0.5) / 0.5))
        return weight * sequential + (1 - weight) * random

    def sorted_fetch_pages(
        self, accesses: float, total_objects: float, file_pages: int,
        clustering: float,
    ) -> float:
        """Page reads for a *rid-sorted* fetch of ``accesses`` objects
        (the join algorithms' access discipline): every needed page is
        read at most once.  A clustered key touches a contiguous
        fraction of the file; an unclustered one touches the expected
        number of distinct pages."""
        if total_objects <= 0 or file_pages <= 0 or accesses <= 0:
            return 0.0
        contiguous = (accesses / total_objects) * file_pages
        spread = file_pages * (1.0 - (1.0 - 1.0 / file_pages) ** accesses)
        weight = max(0.0, min(1.0, (clustering - 0.5) / 0.5))
        return weight * contiguous + (1 - weight) * spread

    # -- selection plans (Figures 6-8) ----------------------------------------

    def selection_scan(
        self, n_objects: int, file_pages: int, extent_pages: int, sel: float
    ) -> PlanEstimate:
        io = self.page_s(file_pages + extent_pages)
        cpu = self.handle_s(n_objects) + n_objects * (
            self.params.attr_decode_us + self.params.predicate_us
        ) / US_PER_S
        res = self.result_s(sel * n_objects)
        return PlanEstimate(
            io + cpu + res,
            "sequential scan",
            {"io": io, "cpu": cpu, "result": res},
        )

    def selection_index(
        self,
        n_objects: int,
        file_pages: int,
        leaves: int,
        sel: float,
        clustering: float,
        sorted_rids: bool,
    ) -> PlanEstimate:
        k = sel * n_objects
        leaf_io = self.page_s(sel * leaves)
        if sorted_rids or clustering > 0.9:
            # Fetch in physical order: at most every distinct page, once.
            distinct = file_pages * (1.0 - (1.0 - 1.0 / max(1, file_pages)) ** k)
            fetch_io = self.page_s(min(distinct, file_pages))
        else:
            fetch_io = self.page_s(self.random_fetch_pages(k, file_pages))
        sort = self.sort_s(k) if sorted_rids else 0.0
        cpu = self.handle_s(k) + k * self.params.attr_decode_us / US_PER_S
        res = self.result_s(k)
        name = "sorted index scan" if sorted_rids else "index scan"
        return PlanEstimate(
            leaf_io + fetch_io + sort + cpu + res,
            name,
            {"io": leaf_io + fetch_io, "sort": sort, "cpu": cpu, "result": res},
        )

    def selection_index_only(
        self, n_objects: int, leaves: int, sel: float
    ) -> PlanEstimate:
        """An aggregate answered from index entries alone
        (:class:`~repro.exec.operators.transforms.IndexOnlyAggregate`):
        scan the qualifying leaf range, one comparison per entry, one
        result row, and never fetch an object."""
        k = sel * n_objects
        io = self.page_s(sel * leaves)
        cpu = k * self.params.compare_us / US_PER_S
        res = self.result_s(1)
        return PlanEstimate(
            io + cpu + res,
            "index-only aggregate",
            {"io": io, "cpu": cpu, "result": res},
        )

    # -- tree-join plans (Section 5) ----------------------------------------

    def _result_rows(self, s: JoinStats) -> float:
        return s.sel_parents * s.sel_children * s.n_children

    def join_nl(self, s: JoinStats) -> PlanEstimate:
        k_parents = s.sel_parents * s.n_parents
        children_visited = k_parents * s.avg_children
        io = self.page_s(s.sel_parents * s.parent_leaves)
        io += self.page_s(
            self.sorted_fetch_pages(
                k_parents, s.n_parents, s.parent_pages, s.parent_index_clustering
            )
        )
        io += self.page_s(k_parents * s.parent_set_chunks)
        if not s.children_with_parents:
            io += self.page_s(
                self.random_fetch_pages(children_visited, s.child_pages)
            )
        cpu = self.handle_s(k_parents) + self.handle_s(children_visited)
        cpu += children_visited * (
            self.params.attr_decode_us + self.params.predicate_us
        ) / US_PER_S
        res = self.result_s(self._result_rows(s))
        return PlanEstimate(io + cpu + res, "NL", {"io": io, "cpu": cpu, "result": res})

    def join_nojoin(self, s: JoinStats) -> PlanEstimate:
        k_children = s.sel_children * s.n_children
        io = self.page_s(s.sel_children * s.child_leaves)
        io += self.page_s(
            self.sorted_fetch_pages(
                k_children, s.n_children, s.child_pages, s.child_index_clustering
            )
        )
        if not s.children_with_parents:
            io += self.page_s(self.random_fetch_pages(k_children, s.parent_pages))
        distinct_parents = s.n_parents * (
            1.0 - (1.0 - 1.0 / max(1, s.n_parents)) ** k_children
        )
        touch_fraction = max(0.0, 1.0 - distinct_parents / max(1.0, k_children))
        cpu = self.handle_s(k_children)
        cpu += self.handle_s(k_children, touch_fraction=touch_fraction)
        cpu += k_children * (
            self.params.attr_decode_us + self.params.predicate_us
        ) / US_PER_S
        res = self.result_s(self._result_rows(s))
        return PlanEstimate(
            io + cpu + res, "NOJOIN", {"io": io, "cpu": cpu, "result": res}
        )

    def _both_sides_io(self, s: JoinStats) -> float:
        """Sequential index-driven reads of both selected sides (shared
        by the hash joins)."""
        io = self.page_s(s.sel_parents * s.parent_leaves)
        io += self.page_s(s.sel_children * s.child_leaves)
        io += self.page_s(
            self.sorted_fetch_pages(
                s.sel_parents * s.n_parents,
                s.n_parents,
                s.parent_pages,
                s.parent_index_clustering,
            )
        )
        io += self.page_s(
            self.sorted_fetch_pages(
                s.sel_children * s.n_children,
                s.n_children,
                s.child_pages,
                s.child_index_clustering,
            )
        )
        return io

    def join_phj(self, s: JoinStats) -> PlanEstimate:
        k_parents = s.sel_parents * s.n_parents
        k_children = s.sel_children * s.n_children
        io = self._both_sides_io(s)
        table = self.hash_s(
            k_parents, k_children, phj_table_bytes(int(k_parents))
        )
        cpu = self.handle_s(k_parents) + self.handle_s(k_children)
        res = self.result_s(self._result_rows(s))
        return PlanEstimate(
            io + table + cpu + res,
            "PHJ",
            {"io": io, "hash": table, "cpu": cpu, "result": res},
        )

    def join_chj(self, s: JoinStats) -> PlanEstimate:
        k_parents = s.sel_parents * s.n_parents
        k_children = s.sel_children * s.n_children
        io = self._both_sides_io(s)
        # Buckets materialize lazily: only parents that actually receive
        # a selected child occupy directory space.
        touched_buckets = s.n_parents * (
            1.0 - (1.0 - 1.0 / max(1, s.n_parents)) ** k_children
        )
        table = self.hash_s(
            k_children,
            k_parents,
            chj_table_bytes(int(touched_buckets), int(k_children)),
        )
        # Parents are loaded only when the probe hits: a parent has at
        # least one selected child with prob. 1 - (1 - sel_c)^avg.
        hit_parents = k_parents * (
            1.0 - (1.0 - s.sel_children) ** max(1.0, s.avg_children)
        )
        cpu = self.handle_s(k_children) + self.handle_s(hit_parents)
        res = self.result_s(self._result_rows(s))
        return PlanEstimate(
            io + table + cpu + res,
            "CHJ",
            {"io": io, "hash": table, "cpu": cpu, "result": res},
        )

    def join_hybrid(self, s: JoinStats) -> PlanEstimate:
        """Hybrid-hash PHJ: the swap penalty is replaced by one
        write+read pass over the spilled partition bytes."""
        k_parents = s.sel_parents * s.n_parents
        k_children = s.sel_children * s.n_children
        io = self._both_sides_io(s)
        table_bytes = phj_table_bytes(int(k_parents))
        cpu_table = self.hash_s(k_parents, k_children, 0)  # no thrash
        budget = self.params.memory.query_memory_bytes
        spill = 0.0
        if budget and table_bytes > budget:
            fraction = (table_bytes - budget) / table_bytes
            spilled_bytes = table_bytes * fraction + 16 * k_children * fraction
            pages = spilled_bytes / self.params.memory.page_size
            spill = pages * (
                self.params.page_write_ms + self.params.page_read_ms
            ) / MS_PER_S
        cpu = self.handle_s(k_parents) + self.handle_s(k_children)
        res = self.result_s(self._result_rows(s))
        return PlanEstimate(
            io + cpu_table + spill + cpu + res,
            "PHJ-HYBRID",
            {"io": io + spill, "hash": cpu_table, "cpu": cpu, "result": res},
        )

    def join_smj(self, s: JoinStats) -> PlanEstimate:
        """Sort-merge pointer join: both inputs materialized and sorted
        by parent rid; memory overflow spills sequential runs."""
        k_parents = s.sel_parents * s.n_parents
        k_children = s.sel_children * s.n_children
        io = self._both_sides_io(s)
        sort = self.sort_s(k_children) + self.sort_s(k_parents)
        budget = self.params.memory.query_memory_bytes
        spill = 0.0
        total_bytes = 16 * (k_children + k_parents)
        if budget and total_bytes > budget:
            pages = (total_bytes - budget) / self.params.memory.page_size
            spill = pages * (
                self.params.page_write_ms + self.params.page_read_ms
            ) / MS_PER_S
        merge = (k_children + k_parents) * self.params.compare_us / US_PER_S
        cpu = self.handle_s(k_children) + self.handle_s(
            k_parents * (1.0 - (1.0 - s.sel_children) ** max(1.0, s.avg_children))
        )
        res = self.result_s(self._result_rows(s))
        return PlanEstimate(
            io + sort + spill + merge + cpu + res,
            "SMJ",
            {"io": io + spill, "sort": sort, "cpu": cpu + merge, "result": res},
        )

    def join_estimates(
        self, s: JoinStats, include_extensions: bool = False
    ) -> dict[str, PlanEstimate]:
        estimates = {
            "NL": self.join_nl(s),
            "NOJOIN": self.join_nojoin(s),
            "PHJ": self.join_phj(s),
            "CHJ": self.join_chj(s),
        }
        if include_extensions:
            estimates["PHJ-HYBRID"] = self.join_hybrid(s)
            estimates["SMJ"] = self.join_smj(s)
        return estimates
