"""OQL execution: plans in, rows out.

The engine interprets the optimizer's physical plans against the object
manager, reusing the measured execution machinery (Figure 8 scan shapes,
the Section 5 join algorithms) so an OQL query costs exactly what the
benchmarks measure for the same access path.
"""

from __future__ import annotations

from repro.errors import PlanError
from repro.exec.joins import ALGORITHMS, TreeJoinQuery
from repro.exec.results import ResultBuilder
from repro.exec.sorter import sort_charged
from repro.oql.ast_nodes import Query
from repro.oql.catalog import Catalog
from repro.oql.optimizer import (
    Optimizer,
    SargablePredicate,
    SelectionPlan,
    TreeJoinPlan,
)
from repro.oql.parser import parse
from repro.simtime import Bucket

_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


class OQLEngine:
    """Parses, optimizes and executes OQL text against one catalog."""

    def __init__(self, catalog: Catalog, include_extensions: bool = False):
        self.catalog = catalog
        self.optimizer = Optimizer(catalog, include_extensions)

    # -- public API ----------------------------------------------------

    def plan(self, source: str | Query) -> SelectionPlan | TreeJoinPlan:
        query = parse(source) if isinstance(source, str) else source
        return self.optimizer.plan(query)

    def execute(self, source: str | Query) -> list[tuple]:
        """Run a query; rows come back as tuples in select-clause order."""
        plan = self.plan(source)
        if isinstance(plan, SelectionPlan):
            rows = self._run_selection(plan)
        else:
            rows = self._run_tree_join(plan)
        if plan.distinct:
            rows = list(dict.fromkeys(rows))
        return rows

    # -- selections -----------------------------------------------------

    def _run_selection(self, plan: SelectionPlan) -> list[tuple]:
        db = self.catalog.db
        om = db.manager
        info = self.catalog.collection(plan.collection_name)

        if plan.index_only:
            return [self._run_index_only_aggregate(plan)]

        if plan.index is None:
            rid_source = info.collection.iter_rids()
        else:
            low, high, inc_low, inc_high = plan.predicate.bounds()  # type: ignore[union-attr]
            rids = [
                entry.rid
                for entry in plan.index.range_scan(low, high, inc_low, inc_high)
            ]
            if plan.sorted_rids:
                rids = sort_charged(rids, db.clock, db.params)
            rid_source = iter(rids)

        if plan.aggregate is not None:
            return [self._run_fetching_aggregate(plan, rid_source)]

        fetch_attrs = list(plan.project)
        sort_attrs = [attr for attr, __ in plan.order_by]
        for attr in sort_attrs:
            if attr not in fetch_attrs:
                fetch_attrs.append(attr)

        result = ResultBuilder(db)
        keyed: list[tuple[tuple, object]] = []
        for rid in rid_source:
            with om.borrow(rid) as handle:
                if self._passes(om, handle, plan.residuals) and self._passes_exists(
                    om, handle, plan.exists_filters
                ):
                    values = {
                        attr: om.get_attr(handle, attr) for attr in fetch_attrs
                    }
                    row = tuple(values[attr] for attr in plan.project)
                    out = row if len(plan.project) > 1 else row[0]
                    result.append(out)
                    if sort_attrs:
                        keyed.append(
                            (tuple(values[attr] for attr in sort_attrs), out)
                        )
        if not plan.order_by:
            return result.rows
        return self._apply_order(plan, keyed)

    def _apply_order(
        self, plan: SelectionPlan, keyed: list[tuple[tuple, object]]
    ) -> list[object]:
        db = self.catalog.db
        rows = keyed
        # Sort by each term from the last to the first (stable sorts
        # compose), honouring per-term direction.
        for position in range(len(plan.order_by) - 1, -1, -1):
            __, descending = plan.order_by[position]
            rows = sort_charged(
                rows,
                db.clock,
                db.params,
                key=lambda item, p=position: item[0][p],
            )
            if descending:
                rows = rows[::-1]
        return [row for __, row in rows]

    def _run_index_only_aggregate(self, plan: SelectionPlan) -> object:
        """Answer count/sum/avg/min/max straight from index entries."""
        db = self.catalog.db
        func, __attr = plan.aggregate  # type: ignore[misc]
        low, high, inc_low, inc_high = plan.predicate.bounds()  # type: ignore[union-attr]
        count = 0
        total = 0.0
        lo: object | None = None
        hi: object | None = None
        for entry in plan.index.range_scan(low, high, inc_low, inc_high):  # type: ignore[union-attr]
            db.clock.charge_us(Bucket.CPU, db.params.compare_us)
            count += 1
            if func != "count":
                key = entry.key
                total += key  # type: ignore[operator]
                lo = key if lo is None or key < lo else lo  # type: ignore[operator]
                hi = key if hi is None or key > hi else hi  # type: ignore[operator]
        return _finish_aggregate(func, count, total, lo, hi)

    def _run_fetching_aggregate(self, plan: SelectionPlan, rid_source) -> object:
        """Aggregate that must look at the objects (unindexed predicate,
        residuals, or an aggregate over a non-key attribute)."""
        db = self.catalog.db
        om = db.manager
        func, attr = plan.aggregate  # type: ignore[misc]
        count = 0
        total = 0.0
        lo: object | None = None
        hi: object | None = None
        for rid in rid_source:
            with om.borrow(rid) as handle:
                if self._passes(om, handle, plan.residuals) and self._passes_exists(
                    om, handle, plan.exists_filters
                ):
                    count += 1
                    if func != "count":
                        value = om.get_attr(handle, attr)  # type: ignore[arg-type]
                        total += value  # type: ignore[operator]
                        lo = value if lo is None or value < lo else lo  # type: ignore[operator]
                        hi = value if hi is None or value > hi else hi  # type: ignore[operator]
        return _finish_aggregate(func, count, total, lo, hi)

    def _passes(self, om, handle, predicates: tuple[SargablePredicate, ...]) -> bool:
        db = self.catalog.db
        for pred in predicates:
            value = om.get_attr(handle, pred.attr)
            db.clock.charge_us(Bucket.CPU, db.params.predicate_us)
            if not _OPS[pred.op](value, pred.value):
                return False
        return True

    def _passes_exists(self, om, handle, filters) -> bool:
        """Evaluate existential semijoin filters by navigating the set
        attribute until a matching child is found (short-circuit)."""
        db = self.catalog.db
        for filt in filters:
            set_value = om.get_attr(handle, filt.set_attr)
            matched = False
            for child_rid in db.iter_set_rids(set_value):
                with om.borrow(child_rid) as child:
                    ok = self._passes(om, child, (filt.child_pred,))
                if ok:
                    matched = True
                    break
            if not matched:
                return False
        return True

    # -- tree joins --------------------------------------------------------

    def _run_tree_join(self, plan: TreeJoinPlan) -> list[tuple]:
        rel = plan.relationship
        parent_index = self.catalog.index_for(rel.parent_collection, plan.parent_key)
        child_index = self.catalog.index_for(rel.child_collection, plan.child_key)
        if parent_index is None or child_index is None:
            raise PlanError("planned indexes vanished from the catalog")
        query = TreeJoinQuery(
            db=self.catalog.db,
            parent_index=parent_index,
            child_index=child_index,
            parent_high=plan.parent_high,
            child_high=plan.child_high,
            n_parents=self.catalog.collection_size(rel.parent_collection),
            parent_key=plan.parent_key,
            child_key=plan.child_key,
            child_ref=rel.child_ref,
            parent_set=rel.set_attr,
            parent_project=plan.parent_project,
            child_project=plan.child_project,
        )
        rows = ALGORITHMS[plan.algorithm](query)
        if plan.parent_first:
            return rows
        return [(child_value, parent_value) for parent_value, child_value in rows]


def _finish_aggregate(
    func: str, count: int, total: float, lo: object | None, hi: object | None
) -> object:
    if func == "count":
        return count
    if func == "sum":
        return total
    if func == "avg":
        return total / count if count else None
    if func == "min":
        return lo
    return hi


def run_oql(catalog: Catalog, source: str) -> list[tuple]:
    """One-shot convenience: parse, optimize, execute."""
    return OQLEngine(catalog).execute(source)
