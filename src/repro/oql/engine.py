"""OQL execution: plans in, batches out.

The engine compiles the optimizer's physical plans into pull-based
operator trees (:mod:`repro.exec.operators`) and exposes two ways to
consume them:

* :meth:`OQLEngine.execute_iter` — a :class:`~repro.exec.operators.base.Cursor`
  streaming batches; ``limit`` / exists / first-row consumers stop early
  and never pay for the rest of the extent;
* :meth:`OQLEngine.execute` — drain the cursor and return the full row
  list, byte- and cost-identical to the pre-pipeline materializing
  engine.

Either way a query costs exactly what the benchmarks measure for the
same access path, because the operators reuse the measured execution
machinery (Figure 8 scan shapes, the Section 5 join algorithms).
"""

from __future__ import annotations

from repro.errors import PlanError
from repro.exec.joins import TreeJoinQuery
from repro.exec.operators.base import (
    DEFAULT_BATCH_SIZE,
    SKIP,
    Cursor,
    Operator,
    PipelineContext,
    PipelineStats,
)
from repro.exec.operators.joins import JOIN_OPERATORS
from repro.exec.operators.scans import CollectionScan, Fetch, IndexScan
from repro.exec.operators.transforms import (
    Distinct,
    FetchingAggregate,
    IndexOnlyAggregate,
    Limit,
    Map,
    Sort,
)
from repro.oql.ast_nodes import AnalyzeStmt, ExplainStmt, Query, Statement
from repro.oql.catalog import Catalog
from repro.oql.explain import AnalyzeOperator, ExplainOperator
from repro.oql.optimizer import (
    Optimizer,
    SargablePredicate,
    SelectionPlan,
    TreeJoinPlan,
)
from repro.oql.parser import parse, parse_statement
from repro.simtime import Bucket

_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


class OQLEngine:
    """Parses, optimizes and executes OQL text against one catalog."""

    def __init__(
        self,
        catalog: Catalog,
        include_extensions: bool = False,
        batch_size: int = DEFAULT_BATCH_SIZE,
        optimizer: Optimizer | None = None,
    ):
        self.catalog = catalog
        #: The planner; inject a :class:`repro.opt.CostBasedOptimizer`
        #: (possibly shared across sessions) for cost-based planning.
        self.optimizer = (
            optimizer if optimizer is not None
            else Optimizer(catalog, include_extensions)
        )
        self.batch_size = batch_size
        #: Pipeline stats of the most recent fully-drained ``execute``.
        self.last_stats: PipelineStats | None = None
        #: Statistics installed by the latest ``analyze`` statement run
        #: through this engine (whatever the planner does with them).
        self.table_stats = None

    # -- public API ----------------------------------------------------

    def plan(self, source: str | Query) -> SelectionPlan | TreeJoinPlan:
        query = parse(source) if isinstance(source, str) else source
        return self.optimizer.plan(query)

    def compile(
        self, source: str | Statement | SelectionPlan | TreeJoinPlan
    ) -> Operator:
        """Compile a statement (or an already-chosen plan) into an
        operator tree over a fresh :class:`PipelineContext`."""
        if isinstance(source, str):
            source = parse_statement(source)
        if isinstance(source, (ExplainStmt, AnalyzeStmt)):
            ctx = PipelineContext(self.catalog.db)
            if isinstance(source, ExplainStmt):
                return ExplainOperator(ctx, self, source)
            return AnalyzeOperator(ctx, self, source)
        if isinstance(source, (SelectionPlan, TreeJoinPlan)):
            plan = source
        else:
            plan = self.optimizer.plan(source)
        ctx = PipelineContext(self.catalog.db)
        if isinstance(plan, SelectionPlan):
            root = self._compile_selection(ctx, plan)
        else:
            root = self._compile_tree_join(ctx, plan)
        if plan.distinct:
            root = Distinct(ctx, root)
        if plan.limit is not None:
            root = Limit(ctx, root, plan.limit)
        return root

    def execute_iter(
        self,
        source: str | Statement | SelectionPlan | TreeJoinPlan,
        batch_size: int | None = None,
    ) -> Cursor:
        """Compile and return a streaming cursor over the result."""
        root = self.compile(source)
        return Cursor(root.ctx, root, batch_size or self.batch_size)

    def execute(self, source: str | Statement) -> list:
        """Run a statement; query rows come back as tuples in
        select-clause order, ``explain``/``analyze`` rows as strings."""
        with self.execute_iter(source) as cursor:
            rows = cursor.drain()
            self.last_stats = cursor.stats
        return rows

    # -- selections -----------------------------------------------------

    def _compile_selection(
        self, ctx: PipelineContext, plan: SelectionPlan
    ) -> Operator:
        info = self.catalog.collection(plan.collection_name)

        if plan.index_only:
            func, __attr = plan.aggregate  # type: ignore[misc]
            low, high, inc_low, inc_high = plan.predicate.bounds()  # type: ignore[union-attr]
            return IndexOnlyAggregate(
                ctx, plan.index, low, high, inc_low, inc_high, func  # type: ignore[arg-type]
            )

        if plan.index is None:
            rid_source: Operator = CollectionScan(ctx, info.collection)
        else:
            low, high, inc_low, inc_high = plan.predicate.bounds()  # type: ignore[union-attr]
            rid_source = IndexScan(
                ctx, plan.index, low, high, inc_low, inc_high,
                sorted_rids=plan.sorted_rids,
            )

        if plan.aggregate is not None:
            func, attr = plan.aggregate

            def accept_fn(om, handle):
                return self._passes(om, handle, plan.residuals) and (
                    self._passes_exists(om, handle, plan.exists_filters)
                )

            return FetchingAggregate(ctx, rid_source, accept_fn, func, attr)

        fetch_attrs = list(plan.project)
        sort_attrs = [attr for attr, __ in plan.order_by]
        for attr in sort_attrs:
            if attr not in fetch_attrs:
                fetch_attrs.append(attr)

        def row_fn(om, handle):
            if not (
                self._passes(om, handle, plan.residuals)
                and self._passes_exists(om, handle, plan.exists_filters)
            ):
                return SKIP
            values = {attr: om.get_attr(handle, attr) for attr in fetch_attrs}
            row = tuple(values[attr] for attr in plan.project)
            out = row if len(plan.project) > 1 else row[0]
            if sort_attrs:
                return (tuple(values[attr] for attr in sort_attrs), out)
            return out

        fetched: Operator = Fetch(ctx, rid_source, row_fn)
        if plan.order_by:
            fetched = Sort(ctx, fetched, plan.order_by)
        return fetched

    def _passes(
        self, om, handle, predicates: tuple[SargablePredicate, ...]
    ) -> bool:
        db = self.catalog.db
        for pred in predicates:
            value = om.get_attr(handle, pred.attr)
            db.clock.charge_us(Bucket.CPU, db.params.predicate_us)
            if not _OPS[pred.op](value, pred.value):
                return False
        return True

    def _passes_exists(self, om, handle, filters) -> bool:
        """Evaluate existential semijoin filters by navigating the set
        attribute until a matching child is found (short-circuit)."""
        db = self.catalog.db
        for filt in filters:
            set_value = om.get_attr(handle, filt.set_attr)
            matched = False
            for child_rid in db.iter_set_rids(set_value):
                with om.borrow(child_rid) as child:
                    ok = self._passes(om, child, (filt.child_pred,))
                if ok:
                    matched = True
                    break
            if not matched:
                return False
        return True

    # -- tree joins --------------------------------------------------------

    def _compile_tree_join(
        self, ctx: PipelineContext, plan: TreeJoinPlan
    ) -> Operator:
        rel = plan.relationship
        parent_index = self.catalog.index_for(rel.parent_collection, plan.parent_key)
        child_index = self.catalog.index_for(rel.child_collection, plan.child_key)
        if parent_index is None or child_index is None:
            raise PlanError("planned indexes vanished from the catalog")
        query = TreeJoinQuery(
            db=self.catalog.db,
            parent_index=parent_index,
            child_index=child_index,
            parent_high=plan.parent_high,
            child_high=plan.child_high,
            n_parents=self.catalog.collection_size(rel.parent_collection),
            parent_key=plan.parent_key,
            child_key=plan.child_key,
            child_ref=rel.child_ref,
            parent_set=rel.set_attr,
            parent_project=plan.parent_project,
            child_project=plan.child_project,
        )
        join: Operator = JOIN_OPERATORS[plan.algorithm](ctx, query)
        if plan.parent_first:
            return join
        return Map(
            ctx,
            join,
            lambda row: (row[1], row[0]),
        )


def run_oql(catalog: Catalog, source: str) -> list[tuple]:
    """One-shot convenience: parse, optimize, execute."""
    return OQLEngine(catalog).execute(source)
