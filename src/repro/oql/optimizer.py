"""Plan selection.

Recognizes the two query shapes the paper studied and costs every
applicable physical strategy:

* single-variable selections — full scan vs (sorted) unclustered index
  scan, the Section 4 trade-off;
* two-variable parent/child tree queries — NL vs NOJOIN vs PHJ vs CHJ,
  the Section 5 competition.

Heuristic rewrites come first (normalizing ``literal op path`` to
``path op literal``, splitting conjunctions into sargable + residual);
then the :class:`~repro.oql.cost.CostModel` ranks the candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlanError
from repro.index.btree import BTreeIndex
from repro.objects.database import CHUNK_RIDS
from repro.oql.ast_nodes import (
    AggregateExpr,
    BinOp,
    CollectionRef,
    ExistsExpr,
    Expr,
    Literal,
    Path,
    Query,
    TupleExpr,
    conjuncts,
)
from repro.oql.catalog import Catalog, RelationshipInfo
from repro.oql.cost import CostModel, JoinStats, PlanEstimate

_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}


@dataclass(frozen=True)
class SargablePredicate:
    """``var.attr op literal`` — what an index can evaluate."""

    var: str
    attr: str
    op: str
    value: object

    def bounds(self) -> tuple[object | None, object | None, bool, bool]:
        """(low, high, include_low, include_high) for an index scan."""
        if self.op == "<":
            return None, self.value, True, False
        if self.op == "<=":
            return None, self.value, True, True
        if self.op == ">":
            return self.value, None, False, True
        if self.op == ">=":
            return self.value, None, True, True
        if self.op == "=":
            return self.value, self.value, True, True
        raise PlanError(f"operator {self.op!r} is not sargable")


@dataclass(frozen=True)
class ExistsFilter:
    """``exists child in var.set_attr : child.attr op literal`` — applied
    by navigating the set until a child matches."""

    set_attr: str
    child_pred: SargablePredicate


@dataclass(frozen=True)
class SelectionParts:
    """The validated logical pieces of a single-variable selection —
    what is left for a planner to decide is purely physical (access
    path and driving predicate)."""

    collection_name: str
    projection: tuple[tuple[str, Path], ...]
    aggregate: tuple[str, str | None] | None
    order_by: tuple[tuple[str, bool], ...]
    predicates: tuple[SargablePredicate, ...]
    exists_filters: tuple[ExistsFilter, ...]


@dataclass
class SelectionPlan:
    """Physical plan for a single-variable selection."""

    collection_name: str
    project: tuple[str, ...]           # attribute names, in output order
    columns: tuple[str, ...]           # output column labels
    predicate: SargablePredicate | None
    residuals: tuple[SargablePredicate, ...]
    index: BTreeIndex | None
    sorted_rids: bool
    estimate: PlanEstimate
    alternatives: dict[str, PlanEstimate] = field(default_factory=dict)
    distinct: bool = False
    #: (func, attr-or-None) when the query is an aggregate.
    aggregate: tuple[str, str | None] | None = None
    #: The aggregate/count can be answered from index entries alone —
    #: no object is ever fetched.
    index_only: bool = False
    #: (attribute, descending) sort terms applied to the result.
    order_by: tuple[tuple[str, bool], ...] = ()
    #: Existential semijoin filters (navigated per candidate).
    exists_filters: tuple[ExistsFilter, ...] = ()
    #: Emit at most this many rows (early-exits the pipeline).
    limit: int | None = None
    #: Estimated output rows (filled by the planner; ``explain``
    #: compares it to the actual row count).
    est_rows: float | None = None

    @property
    def description(self) -> str:
        return self.estimate.description


@dataclass
class TreeJoinPlan:
    """Physical plan for the parent/child tree query."""

    relationship: RelationshipInfo
    algorithm: str
    parent_key: str
    child_key: str
    parent_high: object
    child_high: object
    parent_project: str
    child_project: str
    columns: tuple[str, ...]
    parent_first: bool            # column order: parent attr first?
    estimate: PlanEstimate
    alternatives: dict[str, PlanEstimate] = field(default_factory=dict)
    distinct: bool = False
    #: Emit at most this many rows (early-exits the pipeline).
    limit: int | None = None
    #: Estimated output rows (filled by the planner; ``explain``
    #: compares it to the actual row count).
    est_rows: float | None = None

    @property
    def description(self) -> str:
        return f"tree join via {self.algorithm}"


class Optimizer:
    """Chooses physical plans for parsed queries."""

    def __init__(self, catalog: Catalog, include_extensions: bool = False):
        self.catalog = catalog
        self.cost = CostModel(catalog.db.params)
        self.include_extensions = include_extensions

    # -- entry point ------------------------------------------------------

    def plan(self, query: Query) -> SelectionPlan | TreeJoinPlan:
        if len(query.from_clauses) == 1:
            return self._plan_selection(query)
        if len(query.from_clauses) == 2:
            return self._plan_tree_join(query)
        raise PlanError(
            f"queries over {len(query.from_clauses)} variables are outside "
            "the supported subset"
        )

    # -- predicate normalization ----------------------------------------------

    @staticmethod
    def _as_sargable(expr: Expr, variables: set[str]) -> SargablePredicate | None:
        if not isinstance(expr, BinOp):
            return None
        left, right, op = expr.left, expr.right, expr.op
        if isinstance(left, Literal) and isinstance(right, Path):
            left, right, op = right, left, _FLIP[op]
        if not (isinstance(left, Path) and isinstance(right, Literal)):
            return None
        if left.var not in variables or len(left.attrs) != 1:
            return None
        return SargablePredicate(left.var, left.attrs[0], op, right.value)

    def _as_exists(self, term: ExistsExpr, outer_var: str) -> ExistsFilter:
        if term.source.var != outer_var or len(term.source.attrs) != 1:
            raise PlanError(
                "exists must range over a set attribute of the selection "
                f"variable (got {term.source})"
            )
        child_pred = self._as_sargable(term.condition, {term.var})
        if child_pred is None:
            raise PlanError(
                f"unsupported exists condition: {term.condition!r}"
            )
        return ExistsFilter(term.source.attrs[0], child_pred)

    @staticmethod
    def _projection(query: Query, variables: set[str]) -> list[tuple[str, Path]]:
        """Normalize the select clause into (label, path) pairs."""
        select = query.select
        if isinstance(select, Path):
            fields = [(str(select), select)]
        elif isinstance(select, TupleExpr):
            fields = [(name, expr) for name, expr in select.fields]
        else:
            raise PlanError("select clause must be a path or a tuple of paths")
        out: list[tuple[str, Path]] = []
        for label, expr in fields:
            if not isinstance(expr, Path) or len(expr.attrs) != 1:
                raise PlanError(
                    f"projection {label!r} must be var.attribute"
                )
            if expr.var not in variables:
                raise PlanError(f"unknown variable {expr.var!r} in select")
            out.append((label, expr))
        return out

    # -- selections ---------------------------------------------------------

    def _plan_selection(self, query: Query) -> SelectionPlan:
        return self._choose_selection(query, self._selection_parts(query))

    def _selection_parts(self, query: Query) -> SelectionParts:
        """Validate the logical shape; raises PlanError outside the
        supported subset.  Shared by every planner."""
        clause = query.from_clauses[0]
        if not isinstance(clause.source, CollectionRef):
            raise PlanError("single-variable queries must range over a name")
        name = clause.source.name
        self.catalog.collection(name)
        variables = {clause.var}

        aggregate: tuple[str, str | None] | None = None
        if isinstance(query.select, AggregateExpr):
            agg = query.select
            if agg.arg is not None and agg.arg.var not in variables:
                raise PlanError(f"unknown variable {agg.arg.var!r} in select")
            if agg.func == "count":
                aggregate = ("count", None)
            else:
                if agg.arg is None or len(agg.arg.attrs) != 1:
                    raise PlanError(f"{agg.func}() needs var.attribute")
                aggregate = (agg.func, agg.arg.attrs[0])
            if query.order_by:
                raise PlanError("order by makes no sense with an aggregate")
            projection: list[tuple[str, Path]] = []
        else:
            projection = self._projection(query, variables)

        order_by: list[tuple[str, bool]] = []
        for term in query.order_by:
            if term.key.var not in variables or len(term.key.attrs) != 1:
                raise PlanError("order by expects var.attribute of the "
                                "selection variable")
            order_by.append((term.key.attrs[0], term.descending))
        predicates: list[SargablePredicate] = []
        exists_filters: list[ExistsFilter] = []
        for term in conjuncts(query.where):
            if isinstance(term, ExistsExpr):
                exists_filters.append(self._as_exists(term, clause.var))
                continue
            pred = self._as_sargable(term, variables)
            if pred is None:
                raise PlanError(f"unsupported where term: {term!r}")
            predicates.append(pred)
        return SelectionParts(
            collection_name=name,
            projection=tuple(projection),
            aggregate=aggregate,
            order_by=tuple(order_by),
            predicates=tuple(predicates),
            exists_filters=tuple(exists_filters),
        )

    def _predicate_selectivity(
        self, collection_name: str, pred: SargablePredicate,
        index: BTreeIndex,
    ) -> float:
        """Selectivity of one sargable predicate.  The heuristic planner
        interpolates over the index's leaf directory; the cost-based
        planner (:class:`repro.opt.CostBasedOptimizer`) overrides this
        with histogram estimates."""
        low, high, __, ___ = pred.bounds()
        return index.selectivity(low, high)

    def _output_selectivity(
        self,
        collection_name: str,
        parts: SelectionParts,
        best: tuple[SargablePredicate, BTreeIndex, float] | None,
    ) -> float:
        """Estimated fraction of the extent the query emits.  The
        heuristic only knows the best indexed predicate; subclasses with
        statistics combine every conjunct."""
        return best[2] if best else 1.0

    def _choose_selection(
        self, query: Query, parts: SelectionParts
    ) -> SelectionPlan:
        name = parts.collection_name
        predicates = parts.predicates
        n = self.catalog.collection_size(name)
        pages = self.catalog.file_pages(name)
        extent_pages = self.catalog.extent_pages(name)

        # Pick the indexed predicate with the best (lowest) selectivity.
        best: tuple[SargablePredicate, BTreeIndex, float] | None = None
        for pred in predicates:
            index = self.catalog.index_for(name, pred.attr)
            if index is None or pred.op == "!=":
                continue
            sel = self._predicate_selectivity(name, pred, index)
            if best is None or sel < best[2]:
                best = (pred, index, sel)

        sel_any = best[2] if best else 1.0
        alternatives = {
            "scan": self.cost.selection_scan(n, pages, extent_pages, sel_any)
        }
        if best is not None:
            pred, index, sel = best
            alternatives["index"] = self.cost.selection_index(
                n, pages, index.leaf_count, sel, index.clustering_ratio,
                sorted_rids=False,
            )
            alternatives["sorted-index"] = self.cost.selection_index(
                n, pages, index.leaf_count, sel, index.clustering_ratio,
                sorted_rids=True,
            )
        est_rows = (
            1.0 if parts.aggregate is not None
            else n * self._output_selectivity(name, parts, best)
        )
        # An aggregate whose answer lives entirely in the index (counts,
        # or aggregates over the indexed key itself) never fetches an
        # object: always prefer the index when one applies.
        plan = self._index_only_aggregate(
            query, parts, best, alternatives, alternatives.get("index")
        )
        if plan is not None:
            return plan

        choice = min(alternatives, key=lambda k: alternatives[k].seconds)

        residuals = tuple(p for p in predicates if best is None or p != best[0])
        if choice == "scan" or best is None:
            return SelectionPlan(
                collection_name=name,
                project=tuple(path.attrs[0] for __, path in parts.projection),
                columns=tuple(label for label, __ in parts.projection),
                predicate=None,
                residuals=tuple(predicates),
                index=None,
                sorted_rids=False,
                estimate=alternatives[choice],
                alternatives=alternatives,
                distinct=query.distinct,
                aggregate=parts.aggregate,
                order_by=parts.order_by,
                exists_filters=parts.exists_filters,
                limit=query.limit,
                est_rows=est_rows,
            )

        return SelectionPlan(
            collection_name=name,
            project=tuple(path.attrs[0] for __, path in parts.projection),
            columns=tuple(label for label, __ in parts.projection),
            predicate=best[0],
            residuals=residuals,
            index=best[1],
            sorted_rids=(choice == "sorted-index"),
            estimate=alternatives[choice],
            alternatives=alternatives,
            distinct=query.distinct,
            aggregate=parts.aggregate,
            order_by=parts.order_by,
            exists_filters=parts.exists_filters,
            limit=query.limit,
            est_rows=est_rows,
        )

    def _index_only_aggregate(
        self,
        query: Query,
        parts: SelectionParts,
        best: tuple[SargablePredicate, BTreeIndex, float] | None,
        alternatives: dict[str, PlanEstimate],
        estimate: PlanEstimate | None,
    ) -> SelectionPlan | None:
        """The index-only aggregate fast path, when it applies.

        ``estimate`` is the caller's cost of the unsorted index scan
        driven by ``best`` (label conventions differ between planners).
        """
        aggregate = parts.aggregate
        if (
            aggregate is None or best is None or estimate is None
            or parts.exists_filters
        ):
            return None
        agg_residuals = tuple(p for p in parts.predicates if p != best[0])
        if agg_residuals or not (
            aggregate[1] is None or aggregate[1] == best[0].attr
        ):
            return None
        return SelectionPlan(
            collection_name=parts.collection_name,
            project=(),
            columns=(aggregate[0],),
            predicate=best[0],
            residuals=(),
            index=best[1],
            sorted_rids=False,
            estimate=estimate,
            alternatives=alternatives,
            distinct=query.distinct,
            aggregate=aggregate,
            index_only=True,
            limit=query.limit,
            est_rows=1.0,
        )

    # -- tree joins -----------------------------------------------------------

    def _plan_tree_join(self, query: Query) -> TreeJoinPlan:
        if isinstance(query.select, AggregateExpr):
            raise PlanError("aggregates over tree joins are outside the "
                            "supported subset")
        if query.order_by:
            raise PlanError("order by over tree joins is outside the "
                            "supported subset")
        parent_clause, child_clause = query.from_clauses
        if not isinstance(parent_clause.source, CollectionRef):
            raise PlanError("the first from-clause must range over a name")
        if not (
            isinstance(child_clause.source, Path)
            and child_clause.source.var == parent_clause.var
            and len(child_clause.source.attrs) == 1
        ):
            raise PlanError(
                "the second from-clause must navigate a set attribute of "
                "the first variable (e.g. 'pa in p.clients')"
            )
        parent_name = parent_clause.source.name
        set_attr = child_clause.source.attrs[0]
        rel = self.catalog.relationship(parent_name, set_attr)

        variables = {parent_clause.var, child_clause.var}
        preds: dict[str, SargablePredicate] = {}
        for term in conjuncts(query.where):
            pred = self._as_sargable(term, variables)
            if pred is None or pred.op not in ("<", "<="):
                raise PlanError(
                    "tree-join predicates must be 'var.attr < literal' "
                    f"(got {term!r})"
                )
            if pred.var in preds:
                raise PlanError("one predicate per variable, please")
            preds[pred.var] = pred
        if set(preds) != variables:
            raise PlanError(
                "the tree query needs one predicate on the parent and one "
                "on the child"
            )
        parent_pred = preds[parent_clause.var]
        child_pred = preds[child_clause.var]

        parent_index = self.catalog.index_for(parent_name, parent_pred.attr)
        child_index = self.catalog.index_for(rel.child_collection, child_pred.attr)
        if parent_index is None or child_index is None:
            raise PlanError(
                "tree joins need indexes on both predicate attributes"
            )

        projection = self._projection(query, variables)
        if len(projection) != 2:
            raise PlanError("the tree query projects one parent and one "
                            "child attribute")
        by_var = {path.var: (label, path) for label, path in projection}
        if set(by_var) != variables:
            raise PlanError(
                "the projection must reference both the parent and the child"
            )
        parent_project = by_var[parent_clause.var][1].attrs[0]
        child_project = by_var[child_clause.var][1].attrs[0]
        parent_first = projection[0][1].var == parent_clause.var

        stats = self._join_stats(rel, parent_index, child_index,
                                 parent_pred, child_pred)
        estimates = self.cost.join_estimates(
            stats, include_extensions=self.include_extensions
        )
        algorithm = min(estimates, key=lambda k: estimates[k].seconds)
        return TreeJoinPlan(
            relationship=rel,
            algorithm=algorithm,
            parent_key=parent_pred.attr,
            child_key=child_pred.attr,
            parent_high=parent_pred.value,
            child_high=child_pred.value,
            parent_project=parent_project,
            child_project=child_project,
            columns=tuple(label for label, __ in projection),
            parent_first=parent_first,
            estimate=estimates[algorithm],
            alternatives=estimates,
            distinct=query.distinct,
            limit=query.limit,
            est_rows=stats.sel_parents * stats.sel_children * stats.n_children,
        )

    def _join_stats(
        self,
        rel: RelationshipInfo,
        parent_index: BTreeIndex,
        child_index: BTreeIndex,
        parent_pred: SargablePredicate,
        child_pred: SargablePredicate,
    ) -> JoinStats:
        n_parents = self.catalog.collection_size(rel.parent_collection)
        n_children = self.catalog.collection_size(rel.child_collection)
        avg_children = n_children / max(1, n_parents)
        set_bytes = avg_children * 8
        parent_set_chunks = (
            0.0 if set_bytes <= 3400 else avg_children / CHUNK_RIDS
        )
        return JoinStats(
            n_parents=n_parents,
            n_children=n_children,
            parent_pages=self.catalog.file_pages(rel.parent_collection),
            child_pages=self.catalog.file_pages(rel.child_collection),
            parent_leaves=parent_index.leaf_count,
            child_leaves=child_index.leaf_count,
            sel_parents=parent_index.selectivity(*parent_pred.bounds()[:2]),
            sel_children=child_index.selectivity(*child_pred.bounds()[:2]),
            avg_children=avg_children,
            children_with_parents=rel.children_with_parents,
            child_index_clustering=child_index.clustering_ratio,
            parent_index_clustering=parent_index.clustering_ratio,
            parent_set_chunks=parent_set_chunks,
        )
