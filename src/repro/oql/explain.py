"""``explain`` and ``analyze`` as first-class, governed statements.

Both are ordinary pull-based operators, so every consumer of the engine
— the shell, the multi-client service with its resource governor and
scheduler batch points, a plain :meth:`OQLEngine.execute` — runs them
like any other statement and pays their simulated time.

``explain <query>`` plans the query with the engine's installed planner
(heuristic or cost-based), *runs* it against a fresh pipeline, and emits
text rows: the operator tree the engine would compile, estimated vs.
actual rows and cost, and the full alternatives table with the chosen
candidate marked.  Running the query is deliberate — the paper's whole
point is measured truth, and an explain that stopped at estimates could
not report the estimation error.

``analyze [collections]`` delegates to the statistics collector
(:mod:`repro.opt.collector`), installs the result into the engine's
planner when that planner accepts statistics (the cost-based one does),
and emits one summary row per analyzed extent/association.
"""

from __future__ import annotations

from repro.exec.operators.base import Cursor, Operator, PipelineContext
from repro.oql.ast_nodes import AnalyzeStmt, ExplainStmt
from repro.oql.optimizer import SelectionPlan, TreeJoinPlan
from repro.oql.printer import print_query

#: Estimated-rows / estimated-cost placeholder for planners predating
#: the est_rows field (never the shipped ones; belt and braces).
_UNKNOWN = "?"


def _fmt_rows(value: float | None) -> str:
    if value is None:
        return _UNKNOWN
    return f"{value:.1f}"


def plan_tree_lines(plan: SelectionPlan | TreeJoinPlan) -> list[str]:
    """The operator tree the engine compiles for ``plan``, one line per
    operator, children indented under parents — mirrors
    :meth:`OQLEngine.compile` exactly."""
    if isinstance(plan, SelectionPlan):
        core = _selection_lines(plan)
    else:
        core = _tree_join_lines(plan)
    for wrapper in ("Distinct" if plan.distinct else None,
                    f"Limit({plan.limit})" if plan.limit is not None else None):
        if wrapper is not None:
            core = [wrapper] + ["  " + line for line in core]
    return core


def _pred_text(pred) -> str:
    return f"{pred.attr} {pred.op} {pred.value!r}"


def _selection_lines(plan: SelectionPlan) -> list[str]:
    if plan.index is None:
        source = f"CollectionScan({plan.collection_name})"
    else:
        sorted_txt = ", sorted rids" if plan.sorted_rids else ""
        source = (
            f"IndexScan({plan.collection_name}.{_pred_text(plan.predicate)}"
            f"{sorted_txt})"
        )
    if plan.index_only:
        func = plan.aggregate[0] if plan.aggregate else "count"
        return [f"IndexOnlyAggregate[{func}]", "  " + source]
    filters = [_pred_text(p) for p in plan.residuals]
    filters += [
        f"exists {f.set_attr}: {_pred_text(f.child_pred)}"
        for f in plan.exists_filters
    ]
    suffix = f" [filter: {' and '.join(filters)}]" if filters else ""
    if plan.aggregate is not None:
        func, attr = plan.aggregate
        label = f"FetchingAggregate[{func}({attr or '*'})]{suffix}"
        return [label, "  " + source]
    fetch = f"Fetch({', '.join(plan.project)}){suffix}"
    lines = [fetch, "  " + source]
    if plan.order_by:
        terms = ", ".join(
            f"{attr}{' desc' if descending else ''}"
            for attr, descending in plan.order_by
        )
        lines = [f"Sort({terms})"] + ["  " + line for line in lines]
    return lines


def _tree_join_lines(plan: TreeJoinPlan) -> list[str]:
    rel = plan.relationship
    lines = [
        f"TreeJoin[{plan.algorithm}]"
        f"({rel.parent_collection}.{rel.set_attr} -> "
        f"{rel.child_collection})",
        f"  parent: {rel.parent_collection}.{plan.parent_key}"
        f" < {plan.parent_high!r} via index",
        f"  child:  {rel.child_collection}.{plan.child_key}"
        f" < {plan.child_high!r} via index",
    ]
    if not plan.parent_first:
        lines = ["Map(flip columns)"] + ["  " + line for line in lines]
    return lines


def _chosen_key(plan: SelectionPlan | TreeJoinPlan) -> str | None:
    if isinstance(plan, TreeJoinPlan):
        return plan.algorithm
    for key, estimate in plan.alternatives.items():
        if estimate is plan.estimate:
            return key
    return None


def render_explain(
    plan: SelectionPlan | TreeJoinPlan,
    actual_rows: int,
    actual_s: float,
    query_text: str,
) -> list[str]:
    """The text rows an ``explain`` statement emits."""
    lines = [f"query: {query_text}", f"plan: {plan.description}"]
    lines += ["  " + line for line in plan_tree_lines(plan)]
    lines.append(
        f"rows: estimated {_fmt_rows(plan.est_rows)}, actual {actual_rows}"
    )
    lines.append(
        f"cost: estimated {plan.estimate.seconds:.6f} s, "
        f"actual {actual_s:.6f} s"
    )
    chosen = _chosen_key(plan)
    lines.append("alternatives:")
    width = max(len(key) for key in plan.alternatives)
    for key in sorted(
        plan.alternatives, key=lambda k: plan.alternatives[k].seconds
    ):
        marker = "  <- chosen" if key == chosen else ""
        lines.append(
            f"  {key.ljust(width)}  {plan.alternatives[key].seconds:.6f} s"
            f"{marker}"
        )
    return lines


class _TextRows(Operator):
    """Shared tail: emit precomputed text rows, charging the result
    price per row like any other root operator."""

    def __init__(self, ctx: PipelineContext):
        super().__init__(ctx)
        self._lines: list[str] = []
        self._pos = 0

    def _next(self, n: int) -> list:
        batch = self._lines[self._pos : self._pos + n]
        self._pos += len(batch)
        for __ in batch:
            self.ctx.charge_result(transactional=False)
        return batch


class ExplainOperator(_TextRows):
    """Runs ``explain <query>``: plan, execute, compare, render."""

    def __init__(self, ctx: PipelineContext, engine, stmt: ExplainStmt):
        super().__init__(ctx)
        self.engine = engine
        self.stmt = stmt

    def _open(self) -> None:
        engine = self.engine
        clock = engine.catalog.db.clock
        plan = engine.optimizer.plan(self.stmt.query)
        start_s = clock.elapsed_s
        inner = engine.compile(plan)
        rows = Cursor(inner.ctx, inner, engine.batch_size).drain()
        self._lines = render_explain(
            plan,
            actual_rows=len(rows),
            actual_s=clock.elapsed_s - start_s,
            query_text=print_query(self.stmt.query),
        )


class AnalyzeOperator(_TextRows):
    """Runs ``analyze [collections]``: collect statistics, install them
    into the engine's planner, emit the summary."""

    def __init__(self, ctx: PipelineContext, engine, stmt: AnalyzeStmt):
        super().__init__(ctx)
        self.engine = engine
        self.stmt = stmt

    def _open(self) -> None:
        # Function-scoped import: repro.opt layers *above* repro.oql, so
        # the wiring runs upward here the same way service.checkpoint
        # reaches repro.recovery (the sanctioned LAYER escape hatch).
        from repro.opt import StatsCollector, summarize

        engine = self.engine
        for name in self.stmt.collections:
            engine.catalog.collection(name)    # unknown name -> PlanError
        collector = StatsCollector(engine.catalog)
        stats = collector.collect(self.stmt.collections or None)
        engine.table_stats = stats
        install = getattr(engine.optimizer, "install_stats", None)
        if install is not None:
            install(stats)
        self._lines = summarize(stats)
