"""OQL tokenizer."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OQLSyntaxError

KEYWORDS = {
    "select",
    "distinct",
    "from",
    "in",
    "where",
    "and",
    "or",
    "not",
    "tuple",
    "count",
    "sum",
    "avg",
    "min",
    "max",
    "order",
    "by",
    "asc",
    "desc",
    "exists",
    "limit",
    "explain",
    "analyze",
}

_TWO_CHAR_OPS = ("<=", ">=", "!=")
_ONE_CHAR_OPS = "<>=.,():[]*-"


@dataclass(frozen=True)
class Token:
    kind: str        # "kw", "ident", "int", "float", "string", "op", "eof"
    text: str
    pos: int

    def is_kw(self, word: str) -> bool:
        return self.kind == "kw" and self.text == word

    def is_op(self, op: str) -> bool:
        return self.kind == "op" and self.text == op


def tokenize(source: str) -> list[Token]:
    """Split OQL text into tokens; raises OQLSyntaxError on junk."""
    tokens: list[Token] = []
    i, n = 0, len(source)
    while i < n:
        ch = source[i]
        if ch.isspace():
            i += 1
            continue
        if ch == '"' or ch == "'":
            end = source.find(ch, i + 1)
            if end < 0:
                raise OQLSyntaxError(f"unterminated string at position {i}")
            tokens.append(Token("string", source[i + 1 : end], i))
            i = end + 1
            continue
        if ch.isdigit():
            j = i
            while j < n and (source[j].isdigit() or source[j] == "_"):
                j += 1
            if j < n and source[j] == "." and j + 1 < n and source[j + 1].isdigit():
                j += 1
                while j < n and source[j].isdigit():
                    j += 1
                tokens.append(Token("float", source[i:j], i))
            else:
                tokens.append(Token("int", source[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            kind = "kw" if word.lower() in KEYWORDS else "ident"
            text = word.lower() if kind == "kw" else word
            tokens.append(Token(kind, text, i))
            i = j
            continue
        two = source[i : i + 2]
        if two in _TWO_CHAR_OPS:
            tokens.append(Token("op", two, i))
            i += 2
            continue
        if ch in _ONE_CHAR_OPS:
            tokens.append(Token("op", ch, i))
            i += 1
            continue
        raise OQLSyntaxError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token("eof", "", n))
    return tokens
