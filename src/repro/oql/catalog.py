"""The catalog: what the optimizer knows about the database.

The paper's cost-model project began with "what statistics should the
system maintain" (Section 2); this is our answer for the query family it
studied: collection sizes, backing-file page counts, available indexes
with their clustering ratios, and parent/child relationships with their
physical co-location properties.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.loader import (
    INDEX_BY_MRN,
    INDEX_BY_NUM,
    INDEX_BY_UPIN,
    DerbyDatabase,
)
from repro.cluster.strategies import file_names
from repro.derby.config import Clustering
from repro.derby.schema import PATIENTS_NAME, PROVIDERS_NAME
from repro.errors import PlanError
from repro.index.btree import BTreeIndex
from repro.objects.database import Database, PersistentCollection


@dataclass(frozen=True)
class RelationshipInfo:
    """A 1-N parent/child relationship traversable in both directions."""

    parent_collection: str
    set_attr: str             # parent -> set(child)
    child_collection: str
    child_ref: str            # child -> parent back-reference
    #: True when the physical layout stores children next to their
    #: parent (composition / association clustering).
    children_with_parents: bool = False


@dataclass(frozen=True)
class CollectionInfo:
    """One named collection and its physical backing."""

    name: str
    collection: PersistentCollection
    class_name: str
    file_name: str


class Catalog:
    """Schema + statistics registry for one database."""

    def __init__(self, db: Database):
        self.db = db
        self._collections: dict[str, CollectionInfo] = {}
        self._indexes: dict[tuple[str, str], BTreeIndex] = {}
        self._relationships: list[RelationshipInfo] = []

    # -- registration ---------------------------------------------------

    def register_collection(
        self, name: str, collection: PersistentCollection,
        class_name: str, file_name: str,
    ) -> None:
        self._collections[name] = CollectionInfo(
            name, collection, class_name, file_name
        )

    def register_index(self, collection_name: str, attr: str, index: BTreeIndex) -> None:
        self._indexes[(collection_name, attr)] = index

    def register_relationship(self, info: RelationshipInfo) -> None:
        self._relationships.append(info)

    # -- lookup -----------------------------------------------------------

    def collection(self, name: str) -> CollectionInfo:
        try:
            return self._collections[name]
        except KeyError:
            raise PlanError(f"unknown collection {name!r}") from None

    def has_collection(self, name: str) -> bool:
        return name in self._collections

    def collection_names(self) -> tuple[str, ...]:
        """Every registered collection name, sorted (deterministic
        iteration order for ANALYZE passes and explain output)."""
        return tuple(sorted(self._collections))

    def relationships(self) -> tuple[RelationshipInfo, ...]:
        """Every registered relationship, in registration order."""
        return tuple(self._relationships)

    def indexed_attrs(self, collection_name: str) -> tuple[str, ...]:
        """Attributes of ``collection_name`` with an index, sorted."""
        return tuple(sorted(
            attr for (name, attr) in self._indexes
            if name == collection_name
        ))

    def index_for(self, collection_name: str, attr: str) -> BTreeIndex | None:
        return self._indexes.get((collection_name, attr))

    def relationship(self, parent_collection: str, set_attr: str) -> RelationshipInfo:
        for info in self._relationships:
            if (
                info.parent_collection == parent_collection
                and info.set_attr == set_attr
            ):
                return info
        raise PlanError(
            f"no relationship {parent_collection}.{set_attr} in catalog"
        )

    # -- statistics ----------------------------------------------------------

    def collection_size(self, name: str) -> int:
        return len(self.collection(name).collection)

    def file_pages(self, name: str) -> int:
        info = self.collection(name)
        return self.db.file(info.file_name).num_pages

    def extent_pages(self, name: str) -> int:
        """Pages of collection-chunk records an extent scan reads."""
        size = self.collection_size(name)
        from repro.objects.database import CHUNK_RIDS

        return -(-size // CHUNK_RIDS)

    # -- construction from a loaded Derby database ---------------------------

    @classmethod
    def from_derby(cls, derby: DerbyDatabase) -> "Catalog":
        catalog = cls(derby.db)
        provider_file, patient_file = file_names(derby.config.clustering)
        catalog.register_collection(
            PROVIDERS_NAME, derby.providers, "Provider", provider_file
        )
        catalog.register_collection(
            PATIENTS_NAME, derby.patients, "Patient", patient_file
        )
        catalog.register_index(
            PROVIDERS_NAME, "upin", derby.db.indexes[INDEX_BY_UPIN]
        )
        catalog.register_index(
            PATIENTS_NAME, "mrn", derby.db.indexes[INDEX_BY_MRN]
        )
        catalog.register_index(
            PATIENTS_NAME, "num", derby.db.indexes[INDEX_BY_NUM]
        )
        catalog.register_relationship(
            RelationshipInfo(
                parent_collection=PROVIDERS_NAME,
                set_attr="clients",
                child_collection=PATIENTS_NAME,
                child_ref="primary_care_provider",
                children_with_parents=derby.config.clustering
                in (Clustering.COMPOSITION, Clustering.ASSOCIATION),
            )
        )
        return catalog
