"""On-disk object headers.

"In order to maintain indexes properly, the O2 system records, for each
object, the indexes it belongs to.  This information is stored on disk in
the object header.  When an object becomes persistent, if it is part of
some indexed collection the system creates a header allowing to store
information about 8 indexes (it can be extended if required).  If it is
not indexed, the header does not contain space for any index
information."  — paper, Section 3.2.

Layout::

    byte 0      flags (persistent / indexed / deleted / versioned)
    bytes 1-2   class id (exact type, needed because of inheritance)
    byte 3      number of reserved index slots (0 or 8, 16, 24 ...)
    byte 4      schema version of the class when the record was written
                ("some information about the schema update history of
                the object class" — paper, Section 4.4)
    then        slot bytes: 2 bytes per slot, 0 = empty, else index id

Adding an index id to an object without a free slot *grows the record*,
which may force the storage layer to move it — the expensive reallocation
behind the paper's create-your-first-index-before-loading advice.
"""

from __future__ import annotations

import struct

from repro.errors import IndexSlotOverflowError, SchemaError

#: Slots granted in one extension step.
INDEX_SLOT_BLOCK = 8

#: Struct for the fixed part: flags, class_id, slot count, schema version.
_FIXED = struct.Struct("<BHBB")

FLAG_PERSISTENT = 0x01
FLAG_INDEXED = 0x02
FLAG_DELETED = 0x04
FLAG_VERSIONED = 0x08


class ObjectHeader:
    """Decoded header; encode back with :meth:`encode`."""

    __slots__ = ("flags", "class_id", "index_ids", "slot_count", "schema_version")

    def __init__(
        self,
        class_id: int,
        flags: int = FLAG_PERSISTENT,
        slot_count: int = 0,
        index_ids: list[int] | None = None,
        schema_version: int = 0,
    ):
        if not 0 <= class_id <= 0xFFFF:
            raise SchemaError(f"class id out of range: {class_id}")
        if not 0 <= schema_version <= 0xFF:
            raise SchemaError(f"schema version out of range: {schema_version}")
        self.class_id = class_id
        self.flags = flags
        self.slot_count = slot_count
        self.index_ids = list(index_ids or [])
        self.schema_version = schema_version
        if len(self.index_ids) > self.slot_count:
            raise SchemaError("more index ids than reserved slots")

    # -- construction -------------------------------------------------

    @classmethod
    def for_new_object(
        cls,
        class_id: int,
        in_indexed_collection: bool,
        schema_version: int = 0,
    ) -> "ObjectHeader":
        """Header for a freshly persistent object.  Members of indexed
        collections get a block of 8 slots up front; others get none."""
        slots = INDEX_SLOT_BLOCK if in_indexed_collection else 0
        flags = FLAG_PERSISTENT | (FLAG_INDEXED if in_indexed_collection else 0)
        return cls(class_id, flags, slots, schema_version=schema_version)

    # -- flags ----------------------------------------------------------

    @property
    def is_persistent(self) -> bool:
        return bool(self.flags & FLAG_PERSISTENT)

    @property
    def is_indexed(self) -> bool:
        return bool(self.flags & FLAG_INDEXED)

    @property
    def is_deleted(self) -> bool:
        return bool(self.flags & FLAG_DELETED)

    # -- index membership ---------------------------------------------

    def add_index(self, index_id: int, allow_extend: bool = True) -> bool:
        """Record membership in ``index_id``.

        Returns ``True`` if the header *grew* (a new slot block had to be
        reserved) — the caller must then rewrite, and possibly move, the
        record.  Raises :class:`IndexSlotOverflowError` when extension is
        disallowed and no slot is free.
        """
        if index_id in self.index_ids:
            return False
        grew = False
        if len(self.index_ids) >= self.slot_count:
            if not allow_extend:
                raise IndexSlotOverflowError(
                    f"object header has no free index slot for index {index_id}"
                )
            self.slot_count += INDEX_SLOT_BLOCK
            grew = True
        self.index_ids.append(index_id)
        self.flags |= FLAG_INDEXED
        return grew

    def remove_index(self, index_id: int) -> None:
        """Drop membership (slots stay reserved; headers never shrink)."""
        if index_id in self.index_ids:
            self.index_ids.remove(index_id)
        if not self.index_ids:
            self.flags &= ~FLAG_INDEXED

    # -- wire format -------------------------------------------------------

    @property
    def size(self) -> int:
        return _FIXED.size + 2 * self.slot_count

    def encode(self) -> bytes:
        slots = self.index_ids + [0] * (self.slot_count - len(self.index_ids))
        return _FIXED.pack(
            self.flags, self.class_id, self.slot_count, self.schema_version
        ) + struct.pack(f"<{self.slot_count}H", *slots)

    @classmethod
    def decode(cls, record: bytes, offset: int = 0) -> "ObjectHeader":
        flags, class_id, slot_count, version = _FIXED.unpack_from(record, offset)
        raw = struct.unpack_from(f"<{slot_count}H", record, offset + _FIXED.size)
        index_ids = [i for i in raw if i != 0]
        return cls(class_id, flags, slot_count, index_ids, version)

    @staticmethod
    def peek_class_id(record: bytes) -> int:
        """Read only the class id (cheap exact-type dispatch)."""
        return _FIXED.unpack_from(record, 0)[1]

    @staticmethod
    def peek_schema_version(record: bytes) -> int:
        """Read only the schema version the record was written under."""
        return record[4]

    @staticmethod
    def peek_size(record: bytes) -> int:
        """Header size without a full decode (for payload offsets)."""
        slot_count = record[3]
        return _FIXED.size + 2 * slot_count

    def __repr__(self) -> str:
        return (
            f"ObjectHeader(class={self.class_id}, flags={self.flags:#04x}, "
            f"slots={self.slot_count}, indexes={self.index_ids}, "
            f"v{self.schema_version})"
        )
