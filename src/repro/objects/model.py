"""Class model: typed attributes, classes, inheritance, schema.

The model covers what the paper's databases need (Figure 1 and the
``Stat`` schema of Figure 3): 32-bit integers, 64-bit reals, single
characters, booleans, fixed-width strings, object references, and sets of
references.  Strings are fixed-width because the paper sizes its objects
that way ("16 characters strings", Section 2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SchemaError
from repro.storage.rid import Rid


class AttrKind(enum.Enum):
    """Storage type of an attribute."""

    INT32 = "int32"
    REAL64 = "real64"
    CHAR = "char"
    BOOL = "bool"
    STRING = "string"   # fixed width, NUL padded
    REF = "ref"         # 8-byte rid
    REF_SET = "ref_set"  # set of rids: inline or overflow (variable size)


#: Fixed on-disk byte width per scalar kind.
_SCALAR_WIDTHS = {
    AttrKind.INT32: 4,
    AttrKind.REAL64: 8,
    AttrKind.CHAR: 1,
    AttrKind.BOOL: 1,
    AttrKind.REF: Rid.DISK_SIZE,
}

#: Default fixed width of STRING attributes (paper, Section 2).
DEFAULT_STRING_WIDTH = 16


@dataclass(frozen=True)
class AttributeDef:
    """One attribute of a class."""

    name: str
    kind: AttrKind
    #: Byte width for STRING attributes; ignored for other kinds.
    width: int = DEFAULT_STRING_WIDTH
    #: For REF / REF_SET: the class name the reference targets (purely
    #: informational — rids are untyped on disk).
    target: str | None = None
    #: Value reported for objects written before this attribute existed
    #: (dynamic class evolution) and encoded when the caller omits it.
    default: object = None

    def __post_init__(self) -> None:
        if self.kind is AttrKind.STRING and self.width < 1:
            raise SchemaError(f"string attribute {self.name!r} needs width >= 1")

    @property
    def fixed_size(self) -> int | None:
        """On-disk byte size, or ``None`` for variable-size kinds."""
        if self.kind is AttrKind.STRING:
            return self.width
        return _SCALAR_WIDTHS.get(self.kind)

    @property
    def is_variable(self) -> bool:
        return self.kind is AttrKind.REF_SET


@dataclass
class ClassDef:
    """A class: named, numbered, with ordered attributes and an optional
    superclass (attributes are inherited, prepended in superclass order).

    ``schema_version`` counts evolution steps: records on disk carry the
    version they were written under, and decode with that version's
    layout (dynamic class evolution — one of the O2 features the paper's
    Section 4.4 lists among the reasons handles are heavy).
    """

    name: str
    class_id: int
    attributes: list[AttributeDef]
    superclass: "ClassDef | None" = None
    schema_version: int = 0

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for attr in self.all_attributes():
            if attr.name in seen:
                raise SchemaError(
                    f"class {self.name!r}: duplicate attribute {attr.name!r}"
                )
            seen.add(attr.name)

    def all_attributes(self) -> list[AttributeDef]:
        """Inherited attributes first, then own (stable storage layout)."""
        inherited = self.superclass.all_attributes() if self.superclass else []
        return inherited + self.attributes

    def attribute(self, name: str) -> AttributeDef:
        for attr in self.all_attributes():
            if attr.name == name:
                return attr
        raise SchemaError(f"class {self.name!r} has no attribute {name!r}")

    def has_attribute(self, name: str) -> bool:
        return any(a.name == name for a in self.all_attributes())

    def is_subclass_of(self, other: "ClassDef") -> bool:
        """Reflexive subclass test (exact-type info lives in headers)."""
        cls: ClassDef | None = self
        while cls is not None:
            if cls.class_id == other.class_id:
                return True
            cls = cls.superclass
        return False

    def scalar_attributes(self) -> list[AttributeDef]:
        return [a for a in self.all_attributes() if not a.is_variable]

    def set_attributes(self) -> list[AttributeDef]:
        return [a for a in self.all_attributes() if a.is_variable]


class Schema:
    """A named registry of classes, with dynamic class evolution."""

    def __init__(self) -> None:
        self._by_name: dict[str, ClassDef] = {}
        self._by_id: dict[int, ClassDef] = {}
        #: class_id -> every version of the class, oldest first.
        self._history: dict[int, list[ClassDef]] = {}
        self._next_id = 1

    def define(
        self,
        name: str,
        attributes: list[AttributeDef],
        superclass: str | None = None,
    ) -> ClassDef:
        """Register a new class and return its definition."""
        if name in self._by_name:
            raise SchemaError(f"class {name!r} already defined")
        parent = None
        if superclass is not None:
            parent = self._by_name.get(superclass)
            if parent is None:
                raise SchemaError(f"unknown superclass {superclass!r}")
        cls = ClassDef(name, self._next_id, attributes, parent)
        self._next_id += 1
        self._by_name[name] = cls
        self._by_id[cls.class_id] = cls
        self._history[cls.class_id] = [cls]
        return cls

    def evolve(self, name: str, new_attributes: list[AttributeDef]) -> ClassDef:
        """Append attributes to a class (dynamic class evolution).

        Existing records keep their old layout on disk; they decode with
        the version recorded in their header, and the new attributes
        report their declared defaults until the record is upgraded
        (:meth:`repro.objects.manager.ObjectManager.upgrade_record`).
        Only additive evolution is supported — removing or retyping
        attributes would orphan on-disk data.
        """
        current = self.cls(name)
        for attr in new_attributes:
            if current.has_attribute(attr.name):
                raise SchemaError(
                    f"class {name!r} already has attribute {attr.name!r}"
                )
            if attr.is_variable:
                raise SchemaError(
                    "evolution can only add scalar attributes (set "
                    "attributes would reshuffle the variable section of "
                    "existing records)"
                )
        evolved = ClassDef(
            name,
            current.class_id,
            current.attributes + new_attributes,
            current.superclass,
            current.schema_version + 1,
        )
        self._by_name[name] = evolved
        self._by_id[current.class_id] = evolved
        self._history[current.class_id].append(evolved)
        return evolved

    def class_version(self, class_id: int, version: int) -> ClassDef:
        """The definition of ``class_id`` as of ``version``."""
        history = self._history.get(class_id)
        if history is None:
            raise SchemaError(f"unknown class id {class_id}")
        if not 0 <= version < len(history):
            raise SchemaError(
                f"class id {class_id} has versions 0..{len(history) - 1}, "
                f"not {version}"
            )
        return history[version]

    def cls(self, name: str) -> ClassDef:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"unknown class {name!r}") from None

    def by_id(self, class_id: int) -> ClassDef:
        try:
            return self._by_id[class_id]
        except KeyError:
            raise SchemaError(f"unknown class id {class_id}") from None

    def class_names(self) -> list[str]:
        return sorted(self._by_name)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name
