"""In-memory object representatives: O2's *Handles*.

Section 4.4 of the paper lists what a Handle carries: a pointer to the
object (in memory or on disk), status flags, a pointer to the shared
type-information structure, the list of indexes containing the object,
the count of pointers to the in-memory structure, a version pointer, and
schema-update history — "all in all, the structure takes 60 Bytes of
memory that have to be allocated, updated and freed whenever necessary".

The paper's diagnosis is that this traffic dominates cold associative
scans, and its proposed cures are a class hierarchy of handles (compact
handles for literals), no handles at all for fixed-size tuple literals,
and bulk allocation.  :class:`HandleMode` switches between O2-as-measured
and each cure, so the Section 4.4 ablation is a one-argument change.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from typing import Callable

from repro.errors import HandleError
from repro.objects.model import ClassDef
from repro.simtime import Bucket, CostParams, CounterSet, SimClock
from repro.storage.rid import Rid

#: Bytes of a full O2 handle (paper, Section 4.4).
FULL_HANDLE_BYTES = 60
#: Bytes of the proposed compact literal handle.
COMPACT_HANDLE_BYTES = 16
#: Extra bytes a handle carries when its Section 4.4 *version pointer*
#: is populated (an MVCC snapshot read resolved the rid to a version
#: chain entry instead of the live record): the chain reference plus
#: the version timestamp.
VERSION_REF_BYTES = 8

#: Fraction of the allocation cost charged when an existing handle is
#: merely re-referenced (refcount bump, no allocation).
_TOUCH_FRACTION = 0.1


class HandleMode(enum.Enum):
    """Which handle regime the system runs under."""

    #: O2 as the paper measured it: 60-byte handles for objects *and*
    #: literals (strings, complex values).
    FULL = "full"
    #: Section 4.4 cure #1: a handle class hierarchy — literals get
    #: compact handles, objects keep full ones.
    COMPACT_LITERALS = "compact_literals"
    #: Section 4.4 cure #2: fixed-size tuple literals embedded in their
    #: object get *no* separate handle at all (strings of fixed width
    #: included); objects keep full handles.
    INLINE_TUPLES = "inline_tuples"
    #: Section 4.4 cure #3: bulk allocation — handles for whole pages of
    #: objects are allocated/freed together, amortizing the cost.
    BULK = "bulk"


class Handle:
    """One in-memory object representative."""

    __slots__ = (
        "rid",
        "record",
        "class_def",
        "refcount",
        "is_indexed",
        "index_ids",
        "version",
        "schema_history",
    )

    def __init__(self, rid: Rid, record: bytes, class_def: ClassDef):
        self.rid = rid
        self.record = record
        self.class_def = class_def
        self.refcount = 1
        self.is_indexed = False
        self.index_ids: tuple[int, ...] = ()
        self.version = None
        self.schema_history = None

    @property
    def memory_bytes(self) -> int:
        if self.version is not None:
            return FULL_HANDLE_BYTES + VERSION_REF_BYTES
        return FULL_HANDLE_BYTES

    def __repr__(self) -> str:
        version = "" if self.version is None else f", v@{self.version}"
        return (
            f"Handle({self.rid}, {self.class_def.name}, "
            f"rc={self.refcount}{version})"
        )


class HandleTable:
    """Allocates, shares, and (lazily) frees handles.

    * ``get`` returns the existing handle when one is live or parked in
      the delayed-free list — O2 "allocates only one and keeps a record
      of the number of pointers to this structure".
    * ``unreference`` drops a refcount; at zero the handle parks in a
      bounded FIFO ("the destruction of Handles is delayed as much as
      possible so as to avoid unnecessary free/allocate").
    * literal handles model the separate records O2 creates for strings
      and complex values; their cost depends on :class:`HandleMode`.
    """

    def __init__(
        self,
        clock: SimClock,
        params: CostParams,
        counters: CounterSet,
        mode: HandleMode = HandleMode.FULL,
        delayed_free_capacity: int = 4096,
    ):
        if delayed_free_capacity < 0:
            raise ValueError("delayed_free_capacity must be >= 0")
        self.clock = clock
        self.params = params
        self.counters = counters
        self.mode = mode
        self.delayed_free_capacity = delayed_free_capacity
        self._live: dict[Rid, Handle] = {}
        self._parked: OrderedDict[Rid, Handle] = OrderedDict()
        #: Version-tagged handles (MVCC snapshot reads), keyed by
        #: ``(rid, version_ts)`` so readers at different snapshots get
        #: distinct representatives of the same object.  Dropped at
        #: refcount zero — the delayed-free list is for live records.
        self._versioned: dict[tuple[Rid, int], Handle] = {}
        self.peak_live = 0

    # -- object handles -------------------------------------------------

    def get(
        self,
        rid: Rid,
        loader: Callable[[], tuple[bytes, ClassDef]],
        version: int | None = None,
    ) -> Handle:
        """Return a referenced handle for ``rid``, loading the record via
        ``loader`` only if no handle exists yet.

        With ``version`` (a commit timestamp), the handle represents
        that *version chain entry* instead of the live record: its
        ``version`` slot is populated (paper, Section 4.4 — the version
        pointer), it costs :data:`VERSION_REF_BYTES` extra bytes, and it
        is cached separately from live-record handles."""
        if version is not None:
            return self._get_versioned(rid, loader, version)
        handle = self._live.get(rid)
        if handle is not None:
            handle.refcount += 1
            self._charge_alloc(_TOUCH_FRACTION)
            return handle
        handle = self._parked.pop(rid, None)
        if handle is not None:
            handle.refcount = 1
            self._live[rid] = handle
            self._charge_alloc(_TOUCH_FRACTION)
            return handle
        record, class_def = loader()
        handle = Handle(rid, record, class_def)
        self._live[rid] = handle
        self.peak_live = max(self.peak_live, len(self._live))
        self.counters.handles_allocated += 1
        self._charge_alloc(1.0)
        return handle

    def _get_versioned(
        self,
        rid: Rid,
        loader: Callable[[], tuple[bytes, ClassDef]],
        version: int,
    ) -> Handle:
        key = (rid, version)
        handle = self._versioned.get(key)
        if handle is not None:
            handle.refcount += 1
            self._charge_alloc(_TOUCH_FRACTION)
            return handle
        record, class_def = loader()
        handle = Handle(rid, record, class_def)
        handle.version = version
        self._versioned[key] = handle
        self.counters.handles_allocated += 1
        self._charge_alloc(1.0)
        return handle

    def unreference(self, handle: Handle) -> None:
        """Drop one reference; park the handle when none remain (version
        handles are freed outright — the snapshot that needed them is
        the only plausible re-user)."""
        if handle.refcount <= 0:
            raise HandleError(f"double unreference of {handle!r}")
        handle.refcount -= 1
        self.counters.handles_unreferenced += 1
        self._charge_unref()
        if handle.refcount == 0:
            if handle.version is not None:
                self._versioned.pop((handle.rid, handle.version), None)
            else:
                del self._live[handle.rid]
                self._park(handle)

    # -- literal handles ----------------------------------------------------

    def charge_literal(self, fixed_size: bool = True) -> None:
        """Account for the handle O2 gives a string/complex-value literal
        when an attribute of that kind is materialized.

        FULL mode pays the full get+unref pair; COMPACT_LITERALS pays the
        compact pair; INLINE_TUPLES pays nothing for *fixed-size*
        literals (they are embedded in their owner's tuple — Section 4.4)
        and the compact pair for variable-size ones; BULK pays the
        amortized full pair.
        """
        params = self.params
        if self.mode is HandleMode.FULL:
            us = params.handle_get_us + params.handle_unref_us
        elif self.mode is HandleMode.COMPACT_LITERALS:
            us = params.compact_handle_get_us + params.compact_handle_unref_us
        elif self.mode is HandleMode.INLINE_TUPLES:
            if fixed_size:
                return
            us = params.compact_handle_get_us + params.compact_handle_unref_us
        else:  # BULK
            us = (
                params.handle_get_us + params.handle_unref_us
            ) * params.bulk_handle_factor
        self.counters.handles_allocated += 1
        self.counters.handles_unreferenced += 1
        self.clock.charge_us(Bucket.HANDLE, us)

    # -- introspection ----------------------------------------------------

    @property
    def live_count(self) -> int:
        return len(self._live) + len(self._versioned)

    @property
    def parked_count(self) -> int:
        return len(self._parked)

    @property
    def memory_bytes(self) -> int:
        tables = (self._live.values(), self._parked.values(),
                  self._versioned.values())
        return sum(h.memory_bytes for table in tables for h in table)

    # simlint: ok[CHARGE] restart discard models no O2 cost; reloads pay on next access
    def clear(self) -> None:
        """Forget every handle (client restart)."""
        self._live.clear()
        self._parked.clear()
        self._versioned.clear()

    # simlint: ok[CHARGE] invalidation is free (see docstring); the reload pays
    def forget_page(self, file_id: int, page_no: int) -> None:
        """Drop cached handles for records living on one page — used when
        the page's content was physically rolled back, so any cached
        decoded copy is stale.  Free, like :meth:`clear`: invalidation
        models no O2 cost, only the reload that follows does."""
        for table in (self._live, self._parked):
            stale = [
                rid for rid in table
                if rid.file_id == file_id and rid.page_no == page_no
            ]
            for rid in stale:
                del table[rid]
        stale_versions = [
            key for key in self._versioned
            if key[0].file_id == file_id and key[0].page_no == page_no
        ]
        for key in stale_versions:
            del self._versioned[key]

    # -- internals -------------------------------------------------------

    def _charge_alloc(self, fraction: float) -> None:
        us = self.params.handle_get_us * fraction
        if self.mode is HandleMode.BULK:
            us *= self.params.bulk_handle_factor
        self.clock.charge_us(Bucket.HANDLE, us)

    def _charge_unref(self) -> None:
        us = self.params.handle_unref_us
        if self.mode is HandleMode.BULK:
            us *= self.params.bulk_handle_factor
        self.clock.charge_us(Bucket.HANDLE, us)

    def _park(self, handle: Handle) -> None:
        if self.delayed_free_capacity == 0:
            return
        self._parked[handle.rid] = handle
        while len(self._parked) > self.delayed_free_capacity:
            self._parked.popitem(last=False)
