"""Object versioning.

"A pointer to some structure representing the version to which the
object belongs" is one of the handle fields the paper blames for O2's
handle weight (Section 4.4), and versioning is among the features a
"less functionality" O2 could drop.  This module provides the feature
itself: snapshot an object's state, list its versions, read any of them,
and restore one — so the ablation between a versioning and a
versioning-free system is a real choice, not a stub.

Version snapshots are full record copies in a dedicated file (a simple
and honest model of O2's version records); the per-object version chain
is catalog state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ObjectError
from repro.objects.database import Database
from repro.objects.header import FLAG_VERSIONED, ObjectHeader
from repro.simtime import Bucket
from repro.storage.rid import Rid

#: File holding version snapshot records.
VERSIONS_FILE = "__versions__"


@dataclass(frozen=True)
class VersionInfo:
    """One snapshot of one object."""

    version_no: int
    label: str
    snapshot_rid: Rid


class VersionManager:
    """Snapshot / inspect / restore object versions for one database."""

    def __init__(self, db: Database):
        self.db = db
        self._chains: dict[Rid, list[VersionInfo]] = {}

    def _file(self):
        if not self.db.has_file(VERSIONS_FILE):
            self.db.create_file(VERSIONS_FILE)
        return self.db.file(VERSIONS_FILE)

    # -- operations ------------------------------------------------------

    def snapshot(self, rid: Rid, label: str = "") -> VersionInfo:
        """Persist the object's current state as a new version."""
        record, __class_def = self.db.manager.read_record(rid)
        snapshot_rid = self._file().insert(record)
        self.db.clock.charge_us(Bucket.LOAD, self.db.params.object_create_us)
        chain = self._chains.setdefault(rid, [])
        info = VersionInfo(len(chain) + 1, label, snapshot_rid)
        chain.append(info)
        if len(chain) == 1:
            self._mark_versioned(rid)
        return info

    def versions(self, rid: Rid) -> list[VersionInfo]:
        """All snapshots of ``rid``, oldest first."""
        return list(self._chains.get(rid, []))

    def read_version(self, rid: Rid, version_no: int) -> dict[str, object]:
        """Decode one snapshot's attribute values."""
        info = self._find(rid, version_no)
        record = self._file().read(info.snapshot_rid)
        class_def = self.db.schema.class_version(
            ObjectHeader.peek_class_id(record),
            ObjectHeader.peek_schema_version(record),
        )
        return self.db.manager.codec(class_def).decode(record)

    def restore(self, rid: Rid, version_no: int) -> Rid:
        """Overwrite the live object with a snapshot's state.

        The restored record keeps its versioned flag; restoring does not
        erase later snapshots (they remain readable history).
        """
        info = self._find(rid, version_no)
        snapshot = self._file().read(info.snapshot_rid)
        sfile = self.db.manager.file_for(rid)
        __, actual = sfile.read_resolving(rid)
        new_rid = sfile.update(actual, snapshot)
        self.db.manager._invalidate_handle(rid, actual, snapshot)
        return new_rid

    # -- internals ----------------------------------------------------------

    def _find(self, rid: Rid, version_no: int) -> VersionInfo:
        chain = self._chains.get(rid)
        if not chain or not 1 <= version_no <= len(chain):
            raise ObjectError(
                f"object {rid} has {len(chain or [])} versions, "
                f"no version {version_no}"
            )
        return chain[version_no - 1]

    def _mark_versioned(self, rid: Rid) -> None:
        record, __ = self.db.manager.read_record(rid)
        header = ObjectHeader.decode(record)
        header.flags |= FLAG_VERSIONED
        self.db.manager.rewrite_header(rid, header)
