"""Object versioning.

"A pointer to some structure representing the version to which the
object belongs" is one of the handle fields the paper blames for O2's
handle weight (Section 4.4), and versioning is among the features a
"less functionality" O2 could drop.  This module provides the feature
itself: snapshot an object's state, list its versions, read any of them,
and restore one — so the ablation between a versioning and a
versioning-free system is a real choice, not a stub.

Version snapshots are full record copies in a dedicated file (a simple
and honest model of O2's version records); the per-object version chain
is catalog state — and the catalog is itself *persistent*: every
snapshot also appends a catalog record to ``__version_catalog__``, and
the in-memory chain dict is nothing but a lazily rebuilt cache over it.
A crash or restart therefore loses at most the catalog records that
never reached disk (the same durable-prefix rule every unlogged write
obeys); chains whose records were flushed are rebuilt on first access,
and :func:`repro.recovery.aries.restart` calls :meth:`VersionManager.reload`
explicitly.

(The *MVCC* version chains of :mod:`repro.txn.mvcc` are a different,
deliberately volatile structure: those cache committed pre-images for
snapshot readers and are discarded at restart.)
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import ObjectError
from repro.objects.database import Database
from repro.objects.header import FLAG_VERSIONED, ObjectHeader
from repro.simtime import Bucket
from repro.storage.rid import Rid

#: File holding version snapshot records.
VERSIONS_FILE = "__versions__"
#: File holding the persistent version catalog (one record per snapshot:
#: owner rid, version number, snapshot rid, label).
VERSION_CATALOG_FILE = "__version_catalog__"

#: Catalog record header: owner (file, page, slot), version_no,
#: snapshot (file, page, slot), label byte length.  Label UTF-8 follows.
_CATALOG_HEADER = struct.Struct("<7iH")


@dataclass(frozen=True)
class VersionInfo:
    """One snapshot of one object."""

    version_no: int
    label: str
    snapshot_rid: Rid


def _encode_catalog(rid: Rid, info: VersionInfo) -> bytes:
    label = info.label.encode("utf-8")
    return (
        _CATALOG_HEADER.pack(
            rid.file_id,
            rid.page_no,
            rid.slot,
            info.version_no,
            info.snapshot_rid.file_id,
            info.snapshot_rid.page_no,
            info.snapshot_rid.slot,
            len(label),
        )
        + label
    )


def _decode_catalog(record: bytes) -> tuple[Rid, VersionInfo]:
    (
        file_id, page_no, slot, version_no,
        snap_file, snap_page, snap_slot, label_len,
    ) = _CATALOG_HEADER.unpack_from(record, 0)
    label = record[
        _CATALOG_HEADER.size : _CATALOG_HEADER.size + label_len
    ].decode("utf-8")
    return (
        Rid(file_id, page_no, slot),
        VersionInfo(version_no, label, Rid(snap_file, snap_page, snap_slot)),
    )


class VersionManager:
    """Snapshot / inspect / restore object versions for one database."""

    def __init__(self, db: Database):
        self.db = db
        self._chains: dict[Rid, list[VersionInfo]] = {}
        self._loaded = False
        # Register for restart: recovery calls reload() on the attached
        # manager so chains are rebuilt from the durable catalog.
        db.version_manager = self

    def _file(self):
        if not self.db.has_file(VERSIONS_FILE):
            self.db.create_file(VERSIONS_FILE)
        return self.db.file(VERSIONS_FILE)

    def _catalog_file(self):
        if not self.db.has_file(VERSION_CATALOG_FILE):
            self.db.create_file(VERSION_CATALOG_FILE)
        return self.db.file(VERSION_CATALOG_FILE)

    # -- operations ------------------------------------------------------

    def snapshot(self, rid: Rid, label: str = "") -> VersionInfo:
        """Persist the object's current state as a new version (snapshot
        record + catalog record; both are real on-page records, so their
        durability follows the ordinary flushed-page rule)."""
        self._ensure_loaded()
        record, __class_def = self.db.manager.read_record(rid)
        snapshot_rid = self._file().insert(record)
        self.db.clock.charge_us(Bucket.LOAD, self.db.params.object_create_us)
        chain = self._chains.setdefault(rid, [])
        info = VersionInfo(len(chain) + 1, label, snapshot_rid)
        self._catalog_file().insert(_encode_catalog(rid, info))
        chain.append(info)
        if len(chain) == 1:
            self._mark_versioned(rid)
        return info

    def versions(self, rid: Rid) -> list[VersionInfo]:
        """All snapshots of ``rid``, oldest first."""
        self._ensure_loaded()
        return list(self._chains.get(rid, []))

    def read_version(self, rid: Rid, version_no: int) -> dict[str, object]:
        """Decode one snapshot's attribute values."""
        info = self._find(rid, version_no)
        record = self._file().read(info.snapshot_rid)
        class_def = self.db.schema.class_version(
            ObjectHeader.peek_class_id(record),
            ObjectHeader.peek_schema_version(record),
        )
        return self.db.manager.codec(class_def).decode(record)

    def restore(self, rid: Rid, version_no: int) -> Rid:
        """Overwrite the live object with a snapshot's state.

        The restored record keeps its versioned flag; restoring does not
        erase later snapshots (they remain readable history).
        """
        info = self._find(rid, version_no)
        snapshot = self._file().read(info.snapshot_rid)
        sfile = self.db.manager.file_for(rid)
        __, actual = sfile.read_resolving(rid)
        new_rid = sfile.update(actual, snapshot)
        self.db.manager._invalidate_handle(rid, actual, snapshot)
        return new_rid

    # -- persistence -----------------------------------------------------

    # simlint: ok[CHARGE] cache invalidation is free; the rebuild scan pays
    def reload(self) -> None:
        """Drop the in-memory chain cache; the next access rebuilds it
        from the durable catalog.  Called by restart — this is the fix
        for chains silently vanishing across ``crash()``/``restart()``."""
        self._chains.clear()
        self._loaded = False

    def _ensure_loaded(self) -> None:
        """Rebuild the chain cache by scanning the catalog file (charged
        page reads through the normal pager path, plus the per-entry
        decode CPU)."""
        if self._loaded:
            return
        self._loaded = True
        if not self.db.has_file(VERSION_CATALOG_FILE):
            return
        entries: list[tuple[Rid, VersionInfo]] = []
        for __, record in self._catalog_file().scan():
            self.db.clock.charge_us(
                Bucket.CPU, self.db.params.attr_decode_us
            )
            entries.append(_decode_catalog(record))
        entries.sort(key=lambda e: (e[0], e[1].version_no))
        for rid, info in entries:
            self._chains.setdefault(rid, []).append(info)

    # -- internals ----------------------------------------------------------

    def _find(self, rid: Rid, version_no: int) -> VersionInfo:
        self._ensure_loaded()
        chain = self._chains.get(rid)
        if not chain or not 1 <= version_no <= len(chain):
            raise ObjectError(
                f"object {rid} has {len(chain or [])} versions, "
                f"no version {version_no}"
            )
        return chain[version_no - 1]

    def _mark_versioned(self, rid: Rid) -> None:
        record, __ = self.db.manager.read_record(rid)
        header = ObjectHeader.decode(record)
        header.flags |= FLAG_VERSIONED
        self.db.manager.rewrite_header(rid, header)
