"""The object manager: records in, handles out.

Sits between the storage/buffer substrate and everything above: loading
an object means fetching its record through the page caches, then
obtaining a handle from the handle table.  Attribute access decodes from
the record at fixed offsets and pays the literal-handle tax O2 pays for
strings and complex values (Section 4.4).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.errors import DanglingReferenceError, ObjectError
from repro.objects.codec import InlineSet, OverflowSet, RecordCodec
from repro.objects.handle import Handle, HandleTable
from repro.objects.header import ObjectHeader
from repro.objects.model import AttrKind, ClassDef, Schema
from repro.simtime import Bucket
from repro.storage.disk import DiskManager
from repro.storage.file import StorageFile
from repro.storage.rid import Rid


class ObjectManager:
    """Loads objects as handles and decodes their attributes."""

    def __init__(self, schema: Schema, disk: DiskManager, handles: HandleTable):
        self.schema = schema
        self.disk = disk
        self.handles = handles
        self._files: dict[int, StorageFile] = {}
        self._codecs: dict[int, RecordCodec] = {}
        #: Duck-typed MVCC hook (``objects`` sits below ``txn`` in the
        #: layer order, so the type is never imported): while a
        #: snapshot-isolation transaction is the active session, the
        #: transaction manager installs its
        #: :class:`~repro.txn.mvcc.SnapshotView` here and every read-path
        #: ``load``/``borrow`` resolves rids through the version chains.
        #: ``None`` (the default, and always under 2PL) means reads see
        #: the live record, byte-for-byte the pre-MVCC behavior.
        self.read_view = None

    # -- registry ---------------------------------------------------------

    def register_file(self, sfile: StorageFile) -> StorageFile:
        self._files[sfile.file_id] = sfile
        return sfile

    def file_for(self, rid: Rid) -> StorageFile:
        try:
            return self._files[rid.file_id]
        except KeyError:
            raise DanglingReferenceError(
                f"rid {rid} points into an unregistered file"
            ) from None

    def codec(self, class_def: ClassDef) -> RecordCodec:
        key = (class_def.class_id, class_def.schema_version)
        codec = self._codecs.get(key)
        if codec is None:
            codec = RecordCodec(class_def)
            self._codecs[key] = codec
        return codec

    # -- loading ----------------------------------------------------------

    def read_record(self, rid: Rid) -> tuple[bytes, ClassDef]:
        """Raw record + exact class *at the record's schema version*,
        through the page caches, no handle."""
        record, __ = self.file_for(rid).read_resolving(rid)
        return record, self._class_of(record)

    def _class_of(self, record: bytes) -> ClassDef:
        return self.schema.class_version(
            ObjectHeader.peek_class_id(record),
            ObjectHeader.peek_schema_version(record),
        )

    def load(self, rid: Rid) -> Handle:
        """Get a referenced handle for the object at ``rid`` ("get Handle
        h" in the paper's Figure 8 pseudo-code).  Under an installed
        snapshot view the handle represents the snapshot-visible
        *version* of the object, which may differ from the live record."""
        if self.read_view is not None:
            return self.read_view.load(self, rid)
        return self.handles.get(rid, lambda: self.read_record(rid))

    def unref(self, handle: Handle) -> None:
        """"unreference h" in Figure 8."""
        self.handles.unreference(handle)

    @contextmanager
    def borrow(self, rid: Rid) -> Iterator[Handle]:
        """``load`` + guaranteed ``unref``: the exception-safe form of
        Figure 8's get-handle/unreference bracket.  Charges exactly what
        the load/unref pair charges; exists so a predicate or projection
        raising mid-bracket (transaction abort, injected crash) cannot
        leak the handle and pin its page frame."""
        handle = self.load(rid)
        try:
            yield handle
        finally:
            self.unref(handle)

    # -- attribute access -------------------------------------------------------

    def get_attr(self, handle: Handle, name: str) -> object:
        """Decode one attribute ("get_att(h, name)" in Figure 8).

        Charges the decode CPU and, for string/complex-value attributes,
        the literal-handle traffic of the current handle mode.  For an
        attribute added by schema evolution *after* this record was
        written, the attribute's declared default is returned.
        """
        params = self.handles.params
        self.handles.clock.charge_us(Bucket.CPU, params.attr_decode_us)
        if not handle.class_def.has_attribute(name):
            latest = self.schema.by_id(handle.class_def.class_id)
            if latest.has_attribute(name):
                return latest.attribute(name).default
        attr = handle.class_def.attribute(name)
        if attr.kind is AttrKind.STRING:
            self.handles.charge_literal(fixed_size=True)
        elif attr.kind is AttrKind.REF_SET:
            self.handles.charge_literal(fixed_size=False)
        return self.codec(handle.class_def).decode_attr(handle.record, name)

    def get_attr_at(self, rid: Rid, name: str) -> object:
        """Convenience: load, read one attribute, unreference."""
        handle = self.load(rid)
        try:
            return self.get_attr(handle, name)
        finally:
            self.unref(handle)

    def header_of(self, handle: Handle) -> ObjectHeader:
        return ObjectHeader.decode(handle.record)

    # -- mutation ------------------------------------------------------

    def update_scalar(self, rid: Rid, name: str, value: object) -> Rid:
        """Rewrite one scalar attribute in place; returns the (unchanged)
        rid where the record lives."""
        sfile = self.file_for(rid)
        record, actual = sfile.read_resolving(rid)
        class_def = self._class_of(record)
        new_record = self.codec(class_def).update_scalar(record, name, value)
        self._invalidate_handle(rid, actual, new_record)
        return sfile.update(actual, new_record)

    def update_set(self, rid: Rid, name: str, value: InlineSet | OverflowSet) -> Rid:
        """Rewrite one set attribute; the record may grow and move."""
        sfile = self.file_for(rid)
        record, actual = sfile.read_resolving(rid)
        class_def = self._class_of(record)
        new_record = self.codec(class_def).update_set(record, name, value)
        self._invalidate_handle(rid, actual, new_record)
        return sfile.update(actual, new_record)

    def upgrade_record(self, rid: Rid) -> Rid:
        """Rewrite an object at its class's latest schema version.

        New attributes get their declared defaults.  The record grows,
        so it may move — like the post-hoc indexing of Section 3.2,
        lazy upgrades preserve clustering best when batched with a
        reload.  Returns the rid where the record now lives.
        """
        sfile = self.file_for(rid)
        record, actual = sfile.read_resolving(rid)
        old_class = self._class_of(record)
        latest = self.schema.by_id(old_class.class_id)
        if latest.schema_version == old_class.schema_version:
            return actual
        values = self.codec(old_class).decode(record)
        header = ObjectHeader.decode(record)
        header.schema_version = latest.schema_version
        new_record = self.codec(latest).encode(header, values)
        self.handles.clock.charge_us(
            Bucket.LOAD, self.handles.params.object_create_us
        )
        self._invalidate_handle(rid, actual, new_record)
        new_rid = sfile.update(actual, new_record)
        # A parked handle for the old layout is stale: drop it.
        self.handles._parked.pop(rid, None)
        live = self.handles._live.get(rid)
        if live is not None:
            live.class_def = latest
        return new_rid

    def rewrite_header(self, rid: Rid, header: ObjectHeader) -> Rid:
        """Replace an object's header (index-slot growth); the record
        grows when slots are added, possibly moving the object — the
        Section 3.2 reallocation."""
        sfile = self.file_for(rid)
        record, actual = sfile.read_resolving(rid)
        old_size = ObjectHeader.peek_size(record)
        new_record = header.encode() + record[old_size:]
        self._invalidate_handle(rid, actual, new_record)
        return sfile.update(actual, new_record)

    def _invalidate_handle(self, rid: Rid, actual: Rid, new_record: bytes) -> None:
        """Keep any cached handle's record in sync after a write — both
        live handles and parked ones (which :meth:`HandleTable.get`
        revives without reloading the record)."""
        for key in (rid, actual):
            for table in (self.handles._live, self.handles._parked):
                handle = table.get(key)
                if handle is not None:
                    handle.record = new_record


def require_class(schema: Schema, name: str) -> ClassDef:
    """Lookup helper that turns a missing class into an ObjectError."""
    if name not in schema:
        raise ObjectError(f"class {name!r} is not defined in this schema")
    return schema.cls(name)
