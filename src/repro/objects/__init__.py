"""The object layer: an ODMG-style data model over the storage substrate.

This package implements the pieces of O2's object machinery that the
paper's analysis rests on:

* a class model with inheritance and typed attributes
  (:mod:`~repro.objects.model`),
* a binary record codec with fixed-offset scalar attributes and
  inline-or-overflow set attributes (:mod:`~repro.objects.codec`) —
  collections whose encoding exceeds a threshold move to a separate
  large-collection file, as in O2 (paper, Section 2),
* on-disk object headers carrying index-membership slots
  (:mod:`~repro.objects.header`) — eight slots reserved at creation for
  objects in indexed collections, and an expensive record *move* when a
  slot-less object must be indexed later (paper, Section 3.2),
* in-memory object representatives — *Handles* — with reference counts,
  delayed destruction, and the paper's proposed compact/bulk variants
  (:mod:`~repro.objects.handle`, Section 4.4),
* an :class:`~repro.objects.manager.ObjectManager` tying it together, and
* a :class:`~repro.objects.database.Database` with named roots and
  persistent collections.
"""

from repro.objects.codec import RecordCodec
from repro.objects.database import Database, PersistentCollection
from repro.objects.handle import Handle, HandleMode, HandleTable
from repro.objects.header import ObjectHeader
from repro.objects.manager import ObjectManager
from repro.objects.model import (
    AttributeDef,
    AttrKind,
    ClassDef,
    Schema,
)
from repro.objects.proxy import ObjectProxy, SetProxy, proxies
from repro.objects.versions import VersionInfo, VersionManager

__all__ = [
    "AttrKind",
    "AttributeDef",
    "ClassDef",
    "Schema",
    "RecordCodec",
    "ObjectHeader",
    "Handle",
    "HandleMode",
    "HandleTable",
    "ObjectManager",
    "Database",
    "PersistentCollection",
    "VersionManager",
    "VersionInfo",
    "proxies",
    "ObjectProxy",
    "SetProxy",
]
