"""The database: files, named roots, persistent collections, objects.

A :class:`Database` wires the whole stack together — disk, two-tier
buffer system, handle table, object manager — and owns:

* named storage files (one per class for class clustering, a single file
  for random/composition clustering — paper, Figure 2),
* a *large-collection file* holding spilled set values and extent
  collections (O2 stores collections beyond a page in a separate file),
* named roots (ODMG names, Figure 1: ``Providers``, ``Patients``),
* the index registry filled in by :class:`repro.index.IndexManager`.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.buffer import ClientServerSystem
from repro.errors import ObjectError, SchemaError
from repro.objects.codec import (
    INLINE_SET_LIMIT_BYTES,
    InlineSet,
    OverflowSet,
    decode_rid,
    encode_rid,
)
from repro.objects.handle import HandleMode, HandleTable
from repro.objects.header import ObjectHeader
from repro.objects.manager import ObjectManager
from repro.objects.model import Schema
from repro.simtime import Bucket, CostParams, CounterSet, SimClock
from repro.storage.disk import DiskManager
from repro.storage.file import StorageFile
from repro.storage.rid import NIL_RID, Rid

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.index.btree import BTreeIndex

#: Rids per collection chunk record (~3.2 KB, one chunk per page).
CHUNK_RIDS = 400

_CHUNK_PREFIX = struct.Struct("<I")  # element count; then next-rid, rids

#: Reserved file name for spilled collections and extents.
COLLECTIONS_FILE = "__collections__"


class PersistentCollection:
    """A persistent list of rids, stored as chunk records.

    Extents and named roots are instances of this class.  Appends buffer
    in memory and flush whole chunks (one write per chunk, the pattern a
    bulk loader produces); iteration reads the chunks back through the
    page caches, so scanning a large extent costs real simulated I/O.
    """

    def __init__(self, db: "Database", name: str | None = None):
        self._db = db
        self.name = name
        #: ``True`` once an index exists on this collection — objects
        #: created into an indexed collection get header slots up front.
        self.indexed = False
        self._chunk_rids: list[Rid] = []
        self._pending: list[Rid] = []
        self._count = 0

    def append(self, rid: Rid) -> None:
        self._pending.append(rid)
        self._count += 1
        if len(self._pending) >= CHUNK_RIDS:
            self._flush_chunk()

    def extend(self, rids: Iterable[Rid]) -> None:
        for rid in rids:
            self.append(rid)

    def flush(self) -> None:
        """Write any buffered tail chunk."""
        if self._pending:
            self._flush_chunk()

    def __len__(self) -> int:
        return self._count

    def iter_rids(self) -> Iterator[Rid]:
        """Yield every element rid, reading chunks through the caches."""
        self.flush()
        sfile = self._db.collections_file
        for chunk_rid in self._chunk_rids:
            record = sfile.read(chunk_rid)
            (count,) = _CHUNK_PREFIX.unpack_from(record, 0)
            base = _CHUNK_PREFIX.size + Rid.DISK_SIZE  # skip next-ptr
            for i in range(count):
                yield decode_rid(record, base + i * Rid.DISK_SIZE)

    def _flush_chunk(self) -> None:
        chunk = _encode_chunk(self._pending, NIL_RID)
        self._chunk_rids.append(self._db.collections_file.insert(chunk))
        self._pending.clear()


def _encode_chunk(rids: list[Rid], next_rid: Rid) -> bytes:
    return (
        _CHUNK_PREFIX.pack(len(rids))
        + encode_rid(next_rid)
        + b"".join(encode_rid(r) for r in rids)
    )


def _decode_chunk(record: bytes) -> tuple[list[Rid], Rid]:
    (count,) = _CHUNK_PREFIX.unpack_from(record, 0)
    next_rid = decode_rid(record, _CHUNK_PREFIX.size)
    base = _CHUNK_PREFIX.size + Rid.DISK_SIZE
    rids = [decode_rid(record, base + i * Rid.DISK_SIZE) for i in range(count)]
    return rids, next_rid


class Database:
    """One simulated O2 database instance."""

    def __init__(
        self,
        schema: Schema | None = None,
        params: CostParams | None = None,
        handle_mode: HandleMode = HandleMode.FULL,
    ):
        self.schema = schema or Schema()
        self.params = params or CostParams()
        self.clock = SimClock()
        self.counters = CounterSet()
        self.disk = DiskManager(self.params, self.clock, self.counters)
        self.system = ClientServerSystem(self.disk, self.params.memory)
        self.handles = HandleTable(self.clock, self.params, self.counters, handle_mode)
        self.manager = ObjectManager(self.schema, self.disk, self.handles)
        self.indexes: dict[str, "BTreeIndex"] = {}
        #: Set by :class:`~repro.objects.versions.VersionManager` when one
        #: attaches; restart (:func:`repro.recovery.aries.restart`) calls
        #: its ``reload()`` so version chains are rebuilt from the durable
        #: catalog instead of silently vanishing with the process.
        self.version_manager = None
        self._files: dict[str, StorageFile] = {}
        self._names: dict[str, PersistentCollection] = {}

    # -- files ---------------------------------------------------------------

    def create_file(self, name: str, fill_factor: float = 0.85) -> StorageFile:
        if name in self._files:
            raise ObjectError(f"file {name!r} already exists")
        sfile = StorageFile(self.disk, self.system, fill_factor=fill_factor)
        self._files[name] = sfile
        self.manager.register_file(sfile)
        return sfile

    def file(self, name: str) -> StorageFile:
        try:
            return self._files[name]
        except KeyError:
            raise ObjectError(f"no file named {name!r}") from None

    def has_file(self, name: str) -> bool:
        return name in self._files

    @property
    def collections_file(self) -> StorageFile:
        if COLLECTIONS_FILE not in self._files:
            self.create_file(COLLECTIONS_FILE, fill_factor=1.0)
        return self._files[COLLECTIONS_FILE]

    # -- named roots -----------------------------------------------------------

    def new_collection(self, name: str | None = None) -> PersistentCollection:
        collection = PersistentCollection(self, name)
        if name is not None:
            if name in self._names:
                raise ObjectError(f"name {name!r} already bound")
            self._names[name] = collection
        return collection

    def name(self, name: str) -> PersistentCollection:
        try:
            return self._names[name]
        except KeyError:
            raise ObjectError(f"no database name {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._names)

    # -- objects -------------------------------------------------------------

    def create_object(
        self,
        class_name: str,
        values: dict[str, object],
        file_name: str,
        indexed: bool = False,
        index_ids: tuple[int, ...] = (),
    ) -> Rid:
        """Make ``values`` persistent as a new object of ``class_name`` in
        file ``file_name``.

        ``indexed=True`` (or a non-empty ``index_ids``) reserves eight
        index slots in the object header — the object is created as a
        member of an indexed collection; otherwise the header has no
        index space and indexing the object later forces a record
        rewrite, possibly a move (Section 3.2).  ``index_ids`` stamps
        memberships directly into the fresh header (the create-index-
        before-loading workflow).
        """
        class_def = self.schema.cls(class_name)
        codec = self.manager.codec(class_def)
        prepared = dict(values)
        for attr in class_def.set_attributes():
            prepared[attr.name] = self.prepare_set(prepared.get(attr.name))
        header = ObjectHeader.for_new_object(
            class_def.class_id,
            indexed or bool(index_ids),
            schema_version=class_def.schema_version,
        )
        for index_id in index_ids:
            header.add_index(index_id)
        record = codec.encode(header, prepared)
        self.clock.charge_us(Bucket.LOAD, self.params.object_create_us)
        return self.file(file_name).insert(record)

    def prepare_set(self, value: object) -> InlineSet | OverflowSet:
        """Normalize a set value: small sequences stay inline, large ones
        spill to the collection file."""
        if value is None:
            return InlineSet(())
        if isinstance(value, (InlineSet, OverflowSet)):
            return value
        rids = tuple(value)  # type: ignore[arg-type]
        if len(rids) * Rid.DISK_SIZE > INLINE_SET_LIMIT_BYTES:
            return self.spill_set(rids)
        return InlineSet(rids)

    def spill_set(self, rids: Iterable[Rid]) -> OverflowSet:
        """Write a large set to the collection file as a chunk chain and
        return the :class:`OverflowSet` descriptor to embed in the owner."""
        all_rids = list(rids)
        sfile = self.collections_file
        next_rid = NIL_RID
        # Write chunks back-to-front so each knows its successor.
        for start in range(
            (len(all_rids) - 1) // CHUNK_RIDS * CHUNK_RIDS, -1, -CHUNK_RIDS
        ):
            chunk = _encode_chunk(all_rids[start : start + CHUNK_RIDS], next_rid)
            next_rid = sfile.insert(chunk)
        return OverflowSet(next_rid, len(all_rids))

    def iter_set_rids(self, value: object) -> Iterator[Rid]:
        """Iterate the rids of a decoded set attribute value, charging
        chunk reads for overflow sets."""
        if isinstance(value, InlineSet):
            yield from value.rids
            return
        if not isinstance(value, OverflowSet):
            raise SchemaError(f"not a set value: {value!r}")
        sfile = self.collections_file
        head = value.head
        while head != NIL_RID:
            rids, head = _decode_chunk(sfile.read(head))
            yield from rids

    # -- lifecycle -------------------------------------------------------------

    def shutdown(self) -> None:
        """Flush dirty pages and drop all cached state (charged)."""
        self.system.shutdown()
        self.handles.clear()

    # simlint: ok[CHARGE] deliberately uncharged: harness reset between runs
    def restart_cold(self) -> None:
        """Drop all cached state without charging (between experiments)."""
        self.system.restart_cold()
        self.handles.clear()

    # simlint: ok[CHARGE] zeroing the meters is the one thing that must not meter itself
    def reset_meters(self) -> None:
        """Zero the clock and counters (start of a measured run)."""
        self.clock.reset()
        self.counters.reset()
