"""A friendly object-access façade: proxies over handles.

The raw :class:`~repro.objects.manager.ObjectManager` API mirrors O2's
engine interface (get handle / get_att / unreference) because that is
what the experiments measure.  Application code — like the paper's O2C
loaders — wants objects that behave like objects.  :class:`ObjectProxy`
wraps a handle with attribute access, automatic dereferencing of
references and sets, and deterministic release:

    with proxies(db).fetch(rid) as patient:
        print(patient.name, patient.age)
        doctor = patient.primary_care_provider     # auto-deref
        print(doctor.name)
        for sibling in doctor.clients:             # iterate a ref-set
            print(sibling.mrn)

Everything still goes through handles and the caches, so proxy access
costs exactly what the benchmarks measure for the same path.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import ObjectError
from repro.objects.codec import InlineSet, OverflowSet
from repro.objects.database import Database
from repro.storage.rid import Rid


class ObjectProxy:
    """One object, attribute-accessible.  Use as a context manager (or
    call :meth:`release`) to drop the underlying handle reference."""

    __slots__ = ("_db", "_handle", "_released")

    def __init__(self, db: Database, rid: Rid):
        object.__setattr__(self, "_db", db)
        object.__setattr__(self, "_handle", db.manager.load(rid))
        object.__setattr__(self, "_released", False)

    # -- attribute access ------------------------------------------------

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        handle = object.__getattribute__(self, "_handle")
        db: Database = object.__getattribute__(self, "_db")
        if object.__getattribute__(self, "_released"):
            raise ObjectError("proxy used after release")
        value = db.manager.get_attr(handle, name)
        if isinstance(value, Rid):
            return ObjectProxy(db, value)
        if isinstance(value, (InlineSet, OverflowSet)):
            return SetProxy(db, value)
        return value

    def __setattr__(self, name: str, value) -> None:
        raise ObjectError(
            "proxies are read-only; use ObjectManager.update_scalar / "
            "update_set for writes"
        )

    # -- identity / lifecycle ------------------------------------------------

    @property
    def rid(self) -> Rid:
        return object.__getattribute__(self, "_handle").rid

    @property
    def class_name(self) -> str:
        return object.__getattribute__(self, "_handle").class_def.name

    def release(self) -> None:
        """Unreference the handle (idempotent)."""
        if not object.__getattribute__(self, "_released"):
            db: Database = object.__getattribute__(self, "_db")
            db.manager.unref(object.__getattribute__(self, "_handle"))
            object.__setattr__(self, "_released", True)

    def __enter__(self) -> "ObjectProxy":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<{self.class_name} at {self.rid}>"


class SetProxy:
    """A ref-set attribute: sized, iterable, yielding proxies."""

    __slots__ = ("_db", "_value")

    def __init__(self, db: Database, value: InlineSet | OverflowSet):
        self._db = db
        self._value = value

    def __len__(self) -> int:
        return self._value.count

    def rids(self) -> list[Rid]:
        return list(self._db.iter_set_rids(self._value))

    def __iter__(self) -> Iterator[ObjectProxy]:
        for rid in self._db.iter_set_rids(self._value):
            proxy = ObjectProxy(self._db, rid)
            try:
                yield proxy
            finally:
                proxy.release()


class ProxyFactory:
    """Entry point bound to one database."""

    def __init__(self, db: Database):
        self.db = db

    def fetch(self, rid: Rid) -> ObjectProxy:
        return ObjectProxy(self.db, rid)


def proxies(db: Database) -> ProxyFactory:
    """Proxy factory for ``db`` (see module docstring for usage)."""
    return ProxyFactory(db)
