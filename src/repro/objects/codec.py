"""Binary record codec.

Record layout::

    [object header][scalar attributes, fixed offsets][set attributes]

Scalars (ints, reals, chars, bools, fixed-width strings, refs) live at
offsets precomputed per class, so a query can decode a single attribute
without materializing the whole object.  Set attributes come last and are
either *inline* (small sets: the rids follow the count) or *overflow*
(large sets: only a head rid pointing into the large-collection file) —
O2 stores collections beyond a page threshold in a separate file (paper,
Section 2), which is why 1000-patient ``clients`` sets live apart while
3-patient ones sit next to their provider.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import SchemaError
from repro.objects.header import ObjectHeader
from repro.objects.model import AttrKind, AttributeDef, ClassDef
from repro.storage.rid import NIL_RID, Rid

#: A set whose rids would exceed this many bytes moves to the
#: large-collection file (O2's threshold is the 4 KB page; records also
#: carry the object's other attributes, hence a bit less).
INLINE_SET_LIMIT_BYTES = 3400

_RID = struct.Struct("<hih")  # file_id, page_no, slot  (8 bytes)
_SET_PREFIX = struct.Struct("<BI")  # tag, count

_SCALAR_STRUCTS = {
    AttrKind.INT32: struct.Struct("<i"),
    AttrKind.REAL64: struct.Struct("<d"),
    AttrKind.BOOL: struct.Struct("<?"),
}


def encode_rid(rid: Rid) -> bytes:
    return _RID.pack(rid.file_id, rid.page_no, rid.slot)


def decode_rid(buf: bytes, offset: int = 0) -> Rid:
    file_id, page_no, slot = _RID.unpack_from(buf, offset)
    return Rid(file_id, page_no, slot)


@dataclass(frozen=True)
class InlineSet:
    """A small ref-set stored inside its owner's record."""

    rids: tuple[Rid, ...]

    @property
    def count(self) -> int:
        return len(self.rids)


@dataclass(frozen=True)
class OverflowSet:
    """A large ref-set: only a head pointer into the collection store."""

    head: Rid
    count: int


class RecordCodec:
    """Encodes/decodes instances of one class."""

    def __init__(self, class_def: ClassDef):
        self.class_def = class_def
        self._offsets: dict[str, int] = {}
        offset = 0
        for attr in class_def.scalar_attributes():
            self._offsets[attr.name] = offset
            offset += attr.fixed_size  # type: ignore[operator]
        self.scalar_size = offset
        self._set_attrs = class_def.set_attributes()

    # -- encoding -----------------------------------------------------------

    def encode(self, header: ObjectHeader, values: dict[str, object]) -> bytes:
        """Serialize ``values`` (attribute name -> python value) behind
        ``header``.  Set attributes accept an :class:`InlineSet`, an
        :class:`OverflowSet`, or a plain sequence of rids (encoded
        inline; the caller must have checked the inline limit)."""
        parts = [header.encode()]
        for attr in self.class_def.scalar_attributes():
            parts.append(
                self._encode_scalar(attr, values.get(attr.name, attr.default))
            )
        for attr in self._set_attrs:
            parts.append(self._encode_set(attr, values.get(attr.name)))
        return b"".join(parts)

    def _encode_scalar(self, attr: AttributeDef, value: object) -> bytes:
        kind = attr.kind
        if kind is AttrKind.STRING:
            raw = str(value or "").encode("utf-8")[: attr.width]
            return raw.ljust(attr.width, b"\x00")
        if kind is AttrKind.CHAR:
            text = str(value or "\x00")
            return text.encode("latin-1")[:1] or b"\x00"
        if kind is AttrKind.REF:
            return encode_rid(value if isinstance(value, Rid) else NIL_RID)
        s = _SCALAR_STRUCTS.get(kind)
        if s is None:
            raise SchemaError(f"cannot encode attribute kind {kind}")
        if kind is AttrKind.INT32:
            return s.pack(int(value or 0))
        if kind is AttrKind.REAL64:
            return s.pack(float(value or 0.0))
        return s.pack(bool(value))

    def _encode_set(self, attr: AttributeDef, value: object) -> bytes:
        if value is None:
            value = InlineSet(())
        if isinstance(value, OverflowSet):
            return _SET_PREFIX.pack(1, value.count) + encode_rid(value.head)
        rids = value.rids if isinstance(value, InlineSet) else tuple(value)
        body = b"".join(encode_rid(r) for r in rids)
        if len(body) > INLINE_SET_LIMIT_BYTES:
            raise SchemaError(
                f"set attribute {attr.name!r} with {len(rids)} elements "
                "exceeds the inline limit; store it through the database, "
                "which spills large sets to the collection file"
            )
        return _SET_PREFIX.pack(0, len(rids)) + body

    # -- decoding -------------------------------------------------------------

    def decode_attr(self, record: bytes, name: str) -> object:
        """Decode a single attribute without touching the others."""
        attr = self.class_def.attribute(name)
        base = ObjectHeader.peek_size(record)
        if not attr.is_variable:
            return self._decode_scalar(record, base + self._offsets[name], attr)
        offset = base + self.scalar_size
        for set_attr in self._set_attrs:
            value, offset = self._decode_set(record, offset)
            if set_attr.name == name:
                return value
        raise SchemaError(f"attribute {name!r} not found while decoding")

    def decode(self, record: bytes) -> dict[str, object]:
        """Decode every attribute."""
        base = ObjectHeader.peek_size(record)
        out: dict[str, object] = {}
        for attr in self.class_def.scalar_attributes():
            out[attr.name] = self._decode_scalar(
                record, base + self._offsets[attr.name], attr
            )
        offset = base + self.scalar_size
        for attr in self._set_attrs:
            out[attr.name], offset = self._decode_set(record, offset)
        return out

    def update_scalar(self, record: bytes, name: str, value: object) -> bytes:
        """Return a copy of ``record`` with one scalar attribute replaced
        (same size, so the record never moves for scalar updates)."""
        attr = self.class_def.attribute(name)
        if attr.is_variable:
            raise SchemaError(f"{name!r} is a set attribute; use update_set")
        offset = ObjectHeader.peek_size(record) + self._offsets[name]
        encoded = self._encode_scalar(attr, value)
        return record[:offset] + encoded + record[offset + len(encoded):]

    def update_set(self, record: bytes, name: str, value: object) -> bytes:
        """Return a copy of ``record`` with one set attribute replaced
        (the record may change size and therefore move on disk)."""
        base = ObjectHeader.peek_size(record)
        offset = base + self.scalar_size
        for attr in self._set_attrs:
            start = offset
            __, offset = self._decode_set(record, offset)
            if attr.name == name:
                encoded = self._encode_set(attr, value)
                return record[:start] + encoded + record[offset:]
        raise SchemaError(f"class {self.class_def.name!r} has no set {name!r}")

    def _decode_scalar(self, record: bytes, offset: int, attr: AttributeDef) -> object:
        kind = attr.kind
        if kind is AttrKind.STRING:
            raw = record[offset : offset + attr.width]
            return raw.rstrip(b"\x00").decode("utf-8", errors="replace")
        if kind is AttrKind.CHAR:
            return record[offset : offset + 1].decode("latin-1")
        if kind is AttrKind.REF:
            rid = decode_rid(record, offset)
            return None if rid == NIL_RID else rid
        return _SCALAR_STRUCTS[kind].unpack_from(record, offset)[0]

    @staticmethod
    def _decode_set(record: bytes, offset: int) -> tuple[InlineSet | OverflowSet, int]:
        tag, count = _SET_PREFIX.unpack_from(record, offset)
        offset += _SET_PREFIX.size
        if tag == 1:
            head = decode_rid(record, offset)
            return OverflowSet(head, count), offset + _RID.size
        rids = tuple(
            decode_rid(record, offset + i * _RID.size) for i in range(count)
        )
        return InlineSet(rids), offset + count * _RID.size
