"""The simulated disk.

A :class:`DiskManager` owns a set of numbered files, each a list of
:class:`~repro.storage.page.Page` objects.  Reading or writing a page
through it charges simulated I/O latency (10 ms per page by default, the
paper's own assumption) and bumps the shared counters.

Higher layers never touch the disk directly during query execution; they
go through a :class:`Pager` (normally the two-tier buffer system of
:mod:`repro.buffer`), which decides *whether* a disk access happens.
:class:`DirectPager` is the trivial pager that always hits the disk —
useful for unit tests and for the no-cache baseline.
"""

from __future__ import annotations

from typing import Iterator, Protocol

from repro.errors import PermanentIOError, StorageError
from repro.simtime import Bucket, CostParams, CounterSet, SimClock
from repro.storage.page import Page, PageImage
from repro.units import PAGE_SIZE


class Pager(Protocol):
    """What the record layer needs from a page source."""

    def get_page(self, file_id: int, page_no: int) -> Page:
        """Return the page, charging whatever traffic that implies."""
        ...

    def mark_dirty(self, file_id: int, page_no: int) -> None:
        """Note that the page was modified and must eventually be written."""
        ...


class DiskManager:
    """All files of one simulated database volume."""

    def __init__(
        self,
        params: CostParams | None = None,
        clock: SimClock | None = None,
        counters: CounterSet | None = None,
        page_size: int = PAGE_SIZE,
    ):
        self.params = params or CostParams()
        self.clock = clock or SimClock()
        self.counters = counters or CounterSet()
        self.page_size = page_size
        self._files: dict[int, list[Page]] = {}
        self._next_file_id = 0
        #: The write-ahead log whose durability the WAL rule must respect
        #: before writing a stamped page (set by a recovery-mode
        #: :class:`~repro.txn.manager.TransactionManager`).
        self.wal = None
        #: Optional :class:`~repro.recovery.CrashInjector` hook.
        self.injector = None
        #: Optional :class:`~repro.recovery.TransientFaultInjector`:
        #: consulted per read attempt; a faulted read is retried with
        #: exponential backoff up to :attr:`read_retry_limit` times and
        #: then escalated to :class:`~repro.errors.PermanentIOError`.
        self.faults = None
        #: Retries before a persistently faulting read is escalated.
        self.read_retry_limit = 3
        # What actually survives a crash.  Page objects are shared with
        # the caches and mutated in place, so the content that is truly
        # on disk is the image captured at the last write_page() call.
        self._durable: dict[tuple[int, int], PageImage] = {}

    # -- file management ------------------------------------------------

    def create_file(self) -> int:
        """Allocate a new, empty file and return its id."""
        file_id = self._next_file_id
        self._next_file_id += 1
        self._files[file_id] = []
        return file_id

    def file_ids(self) -> list[int]:
        return sorted(self._files)

    # simlint: ok[CHARGE] catalog metadata, not a page access
    def num_pages(self, file_id: int) -> int:
        """Pages currently allocated to ``file_id``."""
        return len(self._file(file_id))

    def total_pages(self) -> int:
        """Pages allocated across all files (disk occupancy)."""
        return sum(len(pages) for pages in self._files.values())

    def allocate_page(self, file_id: int) -> Page:
        """Append a fresh page to ``file_id`` (no I/O is charged: new
        pages materialize in memory and are written at flush time)."""
        pages = self._file(file_id)
        page = Page(file_id, len(pages), self.page_size)
        pages.append(page)
        return page

    # -- physical I/O (charged) ------------------------------------------

    def read_page(self, file_id: int, page_no: int) -> Page:
        """Read one page from disk: charges latency, counts the read.

        When a :attr:`faults` injector is armed, each attempt may suffer
        a seeded transient fault: the read is charged anyway (the
        controller noticed the error only after the transfer), a backoff
        delay doubling per attempt is charged, and the read is retried.
        Past :attr:`read_retry_limit` retries the fault is treated as
        permanent and :class:`~repro.errors.PermanentIOError` aborts the
        operation.
        """
        page = self._page(file_id, page_no)
        self.counters.disk_reads += 1
        self.clock.charge_ms(Bucket.IO, self.params.page_read_ms)
        if self.faults is not None:
            attempt = 0
            while self.faults.read_fails(file_id, page_no, attempt):
                self.counters.io_faults += 1
                attempt += 1
                if attempt > self.read_retry_limit:
                    self.counters.io_failures += 1
                    raise PermanentIOError(
                        f"page ({file_id}, {page_no}): read failed "
                        f"{attempt} times (transient fault escalated)"
                    )
                self.clock.charge_ms(
                    Bucket.IO,
                    self.params.io_retry_backoff_ms * (2 ** (attempt - 1)),
                )
                self.counters.disk_reads += 1
                self.clock.charge_ms(Bucket.IO, self.params.page_read_ms)
        return page

    def write_page(self, file_id: int, page_no: int) -> None:
        """Write one page back to disk: charges latency, counts the write.

        Enforces the WAL rule first: the log record that last stamped
        this page must be durable before the page version it produced
        reaches disk, so a forced log flush may be charged here.
        """
        page = self._page(file_id, page_no)
        if self.wal is not None and page.page_lsn > self.wal.durable_lsn:
            self.wal.forced_flushes += 1
            self.wal.flush()
        if self.injector is not None:
            self.injector.on_page_write((file_id, page_no))
        page.dirty = False
        self.counters.disk_writes += 1
        self.clock.charge_ms(Bucket.IO, self.params.page_write_ms)
        self._durable[(file_id, page_no)] = page.capture()
        if self.wal is not None:
            self.wal.note_page_written((file_id, page_no))

    # -- unaccounted access (loader bookkeeping, assertions, tests) -------

    # simlint: ok[CHARGE] the documented unaccounted peephole (tests, reports)
    def peek_page(self, file_id: int, page_no: int) -> Page:
        """Access a page without charging I/O.  Only for code that is
        explicitly outside the measured system (test assertions, report
        generation)."""
        return self._page(file_id, page_no)

    # simlint: ok[CHARGE] the documented unaccounted peephole (tests, reports)
    def iter_pages(self, file_id: int) -> Iterator[Page]:
        """Iterate a file's pages without charging I/O (see peek_page)."""
        return iter(self._file(file_id))

    # -- crash semantics (recovery) ----------------------------------------

    def durable_image(self, file_id: int, page_no: int) -> PageImage | None:
        """The image the disk actually holds for a page, or ``None`` if
        the page was allocated but never written."""
        return self._durable.get((file_id, page_no))

    def crash(self) -> None:
        """Lose everything volatile: every page reverts to the image of
        its last :meth:`write_page`; pages that were allocated but never
        written vanish (the file shrinks back to its durable tail).

        No I/O is charged — a power cut is free.  Bookkeeping such as
        file ids and page counts of *written* pages survives, exactly as
        a real volume's metadata would.
        """
        durable_tail: dict[int, int] = {}
        for file_id, page_no in self._durable:
            tail = durable_tail.get(file_id, 0)
            durable_tail[file_id] = max(tail, page_no + 1)
        for file_id in self._files:
            n = durable_tail.get(file_id, 0)
            pages = []
            for page_no in range(n):
                page = Page(file_id, page_no, self.page_size)
                image = self._durable.get((file_id, page_no))
                if image is not None:
                    page.restore(image)
                pages.append(page)
            self._files[file_id] = pages

    # -- internals ---------------------------------------------------------

    def _file(self, file_id: int) -> list[Page]:
        try:
            return self._files[file_id]
        except KeyError:
            raise StorageError(f"no such file: {file_id}") from None

    def _page(self, file_id: int, page_no: int) -> Page:
        pages = self._file(file_id)
        if not 0 <= page_no < len(pages):
            raise StorageError(
                f"file {file_id} has {len(pages)} pages, no page {page_no}"
            )
        return pages[page_no]


class DirectPager:
    """A pager with no cache: every access is a disk read.

    Used by unit tests and as the degenerate baseline configuration
    ("what if O2 had no client cache").
    """

    def __init__(self, disk: DiskManager):
        self.disk = disk

    def get_page(self, file_id: int, page_no: int) -> Page:
        return self.disk.read_page(file_id, page_no)

    def mark_dirty(self, file_id: int, page_no: int) -> None:
        self.disk.write_page(file_id, page_no)
