"""The simulated disk.

A :class:`DiskManager` owns a set of numbered files, each a list of
:class:`~repro.storage.page.Page` objects.  Reading or writing a page
through it charges simulated I/O latency (10 ms per page by default, the
paper's own assumption) and bumps the shared counters.

Higher layers never touch the disk directly during query execution; they
go through a :class:`Pager` (normally the two-tier buffer system of
:mod:`repro.buffer`), which decides *whether* a disk access happens.
:class:`DirectPager` is the trivial pager that always hits the disk —
useful for unit tests and for the no-cache baseline.
"""

from __future__ import annotations

from typing import Iterator, Protocol

from repro.errors import StorageError
from repro.simtime import Bucket, CostParams, CounterSet, SimClock
from repro.storage.page import Page
from repro.units import PAGE_SIZE


class Pager(Protocol):
    """What the record layer needs from a page source."""

    def get_page(self, file_id: int, page_no: int) -> Page:
        """Return the page, charging whatever traffic that implies."""
        ...

    def mark_dirty(self, file_id: int, page_no: int) -> None:
        """Note that the page was modified and must eventually be written."""
        ...


class DiskManager:
    """All files of one simulated database volume."""

    def __init__(
        self,
        params: CostParams | None = None,
        clock: SimClock | None = None,
        counters: CounterSet | None = None,
        page_size: int = PAGE_SIZE,
    ):
        self.params = params or CostParams()
        self.clock = clock or SimClock()
        self.counters = counters or CounterSet()
        self.page_size = page_size
        self._files: dict[int, list[Page]] = {}
        self._next_file_id = 0

    # -- file management ------------------------------------------------

    def create_file(self) -> int:
        """Allocate a new, empty file and return its id."""
        file_id = self._next_file_id
        self._next_file_id += 1
        self._files[file_id] = []
        return file_id

    def file_ids(self) -> list[int]:
        return sorted(self._files)

    def num_pages(self, file_id: int) -> int:
        """Pages currently allocated to ``file_id``."""
        return len(self._file(file_id))

    def total_pages(self) -> int:
        """Pages allocated across all files (disk occupancy)."""
        return sum(len(pages) for pages in self._files.values())

    def allocate_page(self, file_id: int) -> Page:
        """Append a fresh page to ``file_id`` (no I/O is charged: new
        pages materialize in memory and are written at flush time)."""
        pages = self._file(file_id)
        page = Page(file_id, len(pages), self.page_size)
        pages.append(page)
        return page

    # -- physical I/O (charged) ------------------------------------------

    def read_page(self, file_id: int, page_no: int) -> Page:
        """Read one page from disk: charges latency, counts the read."""
        page = self._page(file_id, page_no)
        self.counters.disk_reads += 1
        self.clock.charge_ms(Bucket.IO, self.params.page_read_ms)
        return page

    def write_page(self, file_id: int, page_no: int) -> None:
        """Write one page back to disk: charges latency, counts the write."""
        page = self._page(file_id, page_no)
        page.dirty = False
        self.counters.disk_writes += 1
        self.clock.charge_ms(Bucket.IO, self.params.page_write_ms)

    # -- unaccounted access (loader bookkeeping, assertions, tests) -------

    def peek_page(self, file_id: int, page_no: int) -> Page:
        """Access a page without charging I/O.  Only for code that is
        explicitly outside the measured system (test assertions, report
        generation)."""
        return self._page(file_id, page_no)

    def iter_pages(self, file_id: int) -> Iterator[Page]:
        """Iterate a file's pages without charging I/O (see peek_page)."""
        return iter(self._file(file_id))

    # -- internals ---------------------------------------------------------

    def _file(self, file_id: int) -> list[Page]:
        try:
            return self._files[file_id]
        except KeyError:
            raise StorageError(f"no such file: {file_id}") from None

    def _page(self, file_id: int, page_no: int) -> Page:
        pages = self._file(file_id)
        if not 0 <= page_no < len(pages):
            raise StorageError(
                f"file {file_id} has {len(pages)} pages, no page {page_no}"
            )
        return pages[page_no]


class DirectPager:
    """A pager with no cache: every access is a disk read.

    Used by unit tests and as the degenerate baseline configuration
    ("what if O2 had no client cache").
    """

    def __init__(self, disk: DiskManager):
        self.disk = disk

    def get_page(self, file_id: int, page_no: int) -> Page:
        return self.disk.read_page(file_id, page_no)

    def mark_dirty(self, file_id: int, page_no: int) -> None:
        self.disk.write_page(file_id, page_no)
