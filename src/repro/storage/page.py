"""A slotted 4 KB page.

Records are opaque byte strings addressed by a slot number.  The page
keeps a slot directory so records can be deleted or moved while their
slot number (and hence every :class:`~repro.storage.rid.Rid` pointing at
them) stays stable.  A slot can also hold a *forwarding* entry when its
record was reallocated elsewhere (see :meth:`Page.forward`), which is how
the expensive post-hoc re-indexing of Section 3.2 is modeled.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PageFullError, RecordNotFoundError, RecordTooLargeError
from repro.storage.rid import Rid
from repro.units import PAGE_SIZE

#: Bytes of page bookkeeping (LSN, free-space pointer, slot count...).
PAGE_HEADER_SIZE = 32

#: Bytes of slot-directory bookkeeping per record.
SLOT_OVERHEAD = 4

#: Marker object stored in a slot whose record moved; holds the new rid.
class _Forward:
    __slots__ = ("target",)

    def __init__(self, target: Rid) -> None:
        self.target = target


@dataclass(frozen=True)
class PageImage:
    """An immutable snapshot of a page's logical content.

    Slots hold ``bytes`` for live records, a :class:`Rid` for forwarding
    entries and ``None`` for deleted slots — exactly the information a
    physical log record needs to redo or undo a change.  ``page_lsn`` is
    the stamp the page carried when the image was taken.
    """

    slots: tuple[bytes | Rid | None, ...]
    used: int
    page_lsn: int


#: The image of a page that has never held a record (before-image of a
#: freshly allocated page).
EMPTY_PAGE_IMAGE = PageImage(slots=(), used=0, page_lsn=0)


class Page:
    """One slotted page of a simulated file."""

    __slots__ = (
        "file_id",
        "page_no",
        "_slots",
        "_used",
        "capacity",
        "dirty",
        "page_lsn",
    )

    def __init__(self, file_id: int, page_no: int, page_size: int = PAGE_SIZE):
        if page_size <= PAGE_HEADER_SIZE:
            raise ValueError(f"page size {page_size} too small")
        self.file_id = file_id
        self.page_no = page_no
        self._slots: list[bytes | _Forward | None] = []
        self._used = 0
        self.capacity = page_size - PAGE_HEADER_SIZE
        self.dirty = False
        #: LSN of the last log record whose change touched this page
        #: (0 = never touched by a logged update).  The WAL rule compares
        #: it against the log's durable LSN before a disk write.
        self.page_lsn = 0

    # -- space accounting ---------------------------------------------

    @property
    def used_bytes(self) -> int:
        """Bytes consumed by live records and their slot entries."""
        return self._used

    @property
    def free_bytes(self) -> int:
        """Bytes still available for new records (incl. slot overhead)."""
        return self.capacity - self._used

    @property
    def record_count(self) -> int:
        """Number of live (non-deleted, non-forwarded) records."""
        return sum(1 for s in self._slots if isinstance(s, bytes))

    def fits(self, record: bytes, slack: int = 0) -> bool:
        """Whether ``record`` fits while leaving ``slack`` bytes free."""
        return len(record) + SLOT_OVERHEAD + slack <= self.free_bytes

    # -- record operations --------------------------------------------

    def insert(self, record: bytes, slack: int = 0) -> int:
        """Store ``record`` and return its slot number.

        ``slack`` reserves extra free bytes, modeling O2 "always leaving
        some extra space to deal with growing strings or collections"
        (paper, Section 2).
        """
        need = len(record) + SLOT_OVERHEAD
        if need > self.capacity:
            raise RecordTooLargeError(
                f"record of {len(record)} bytes exceeds page capacity "
                f"{self.capacity}"
            )
        if not self.fits(record, slack):
            raise PageFullError(
                f"page {self.file_id}:{self.page_no} has {self.free_bytes} "
                f"free bytes, record needs {need} (+{slack} slack)"
            )
        self._slots.append(record)
        self._used += need
        self.dirty = True
        return len(self._slots) - 1

    def read(self, slot: int) -> bytes:
        """Return the record at ``slot``.

        Raises :class:`RecordNotFoundError` for deleted slots; raises a
        forwarding-aware error for moved records (callers resolve moves
        through :meth:`forward_target`).
        """
        entry = self._entry(slot)
        if isinstance(entry, _Forward):
            raise RecordNotFoundError(
                f"slot {slot} of page {self.file_id}:{self.page_no} was "
                f"forwarded to {entry.target}; resolve via forward_target()"
            )
        return entry

    def update(self, slot: int, record: bytes) -> bool:
        """Replace the record at ``slot`` in place.

        Returns ``True`` on success, ``False`` when the new record does
        not fit (the caller must then move the record to another page).
        """
        entry = self._entry(slot)
        if isinstance(entry, _Forward):
            raise RecordNotFoundError(
                f"cannot update forwarded slot {slot} of page "
                f"{self.file_id}:{self.page_no}"
            )
        delta = len(record) - len(entry)
        if delta > self.free_bytes:
            return False
        self._slots[slot] = record
        self._used += delta
        self.dirty = True
        return True

    def delete(self, slot: int) -> None:
        """Drop the record at ``slot``; its space becomes reusable."""
        entry = self._entry(slot)
        size = entry.target.DISK_SIZE if isinstance(entry, _Forward) else len(entry)
        self._slots[slot] = None
        self._used -= size + SLOT_OVERHEAD
        self.dirty = True

    def forward(self, slot: int, target: Rid) -> None:
        """Replace the record at ``slot`` with a forwarding entry to
        ``target`` (the record was reallocated on another page)."""
        entry = self._entry(slot)
        if isinstance(entry, _Forward):
            raise RecordNotFoundError(
                f"slot {slot} of page {self.file_id}:{self.page_no} is "
                "already forwarded"
            )
        self._used -= len(entry) + SLOT_OVERHEAD
        self._used += Rid.DISK_SIZE + SLOT_OVERHEAD
        self._slots[slot] = _Forward(target)
        self.dirty = True

    def forward_target(self, slot: int) -> Rid | None:
        """The rid a forwarded slot points at, or ``None`` if the slot
        holds a live record."""
        entry = self._entry(slot)
        return entry.target if isinstance(entry, _Forward) else None

    def repoint(self, slot: int, target: Rid) -> None:
        """Re-aim an existing forwarding entry (chain collapse when a
        moved record moves again)."""
        entry = self._entry(slot)
        if not isinstance(entry, _Forward):
            raise RecordNotFoundError(
                f"slot {slot} of page {self.file_id}:{self.page_no} is not "
                "forwarded"
            )
        entry.target = target
        self.dirty = True

    def slots(self) -> list[int]:
        """Slot numbers of live records, in slot order (creation order)."""
        return [i for i, s in enumerate(self._slots) if isinstance(s, bytes)]

    # -- physical images (recovery) ------------------------------------

    def capture(self) -> PageImage:
        """Snapshot the page's logical content as an immutable image."""
        return PageImage(
            slots=tuple(
                s.target if isinstance(s, _Forward) else s for s in self._slots
            ),
            used=self._used,
            page_lsn=self.page_lsn,
        )

    def restore(self, image: PageImage) -> None:
        """Overwrite the page's content with ``image`` (disk-crash
        rollback to the durable version, or a redo of an after-image)."""
        self._slots = [
            _Forward(s) if isinstance(s, Rid) else s for s in image.slots
        ]
        self._used = image.used
        self.page_lsn = image.page_lsn
        self.dirty = False

    def apply_undo(self, before: PageImage, after: PageImage) -> None:
        """Revert only the slots that differ between ``before`` and
        ``after``.

        A full-page ``restore(before)`` would be unsound under
        record-level locking: another transaction may have committed its
        own update to a *different* slot of the same page since the
        before-image was taken, and restoring the whole page would erase
        that committed change.  Slot-diff undo touches exactly the slots
        the logged change modified.
        """
        width = max(len(before.slots), len(after.slots))
        for slot in range(width):
            b = before.slots[slot] if slot < len(before.slots) else None
            a = after.slots[slot] if slot < len(after.slots) else None
            if b == a:
                continue
            while len(self._slots) <= slot:
                self._slots.append(None)
            self._slots[slot] = _Forward(b) if isinstance(b, Rid) else b
        # An undone insert leaves a dead slot at the tail rather than
        # shrinking the directory: slot numbers (and hence rids) are
        # never reused, same as delete().
        self._recompute_used()
        self.dirty = True

    def _recompute_used(self) -> None:
        used = 0
        for s in self._slots:
            if isinstance(s, bytes):
                used += len(s) + SLOT_OVERHEAD
            elif isinstance(s, _Forward):
                used += Rid.DISK_SIZE + SLOT_OVERHEAD
        self._used = used

    # -- internals -----------------------------------------------------

    def _entry(self, slot: int) -> bytes | _Forward:
        if not 0 <= slot < len(self._slots):
            raise RecordNotFoundError(
                f"no slot {slot} on page {self.file_id}:{self.page_no}"
            )
        entry = self._slots[slot]
        if entry is None:
            raise RecordNotFoundError(
                f"slot {slot} of page {self.file_id}:{self.page_no} was deleted"
            )
        return entry

    def __repr__(self) -> str:
        return (
            f"Page({self.file_id}:{self.page_no}, records={self.record_count}, "
            f"free={self.free_bytes})"
        )
