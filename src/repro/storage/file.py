"""Heap files of records with creation-order placement.

O2 places objects in files in creation order ("objects are located on
files according to their creation time" — paper, Section 3.2), leaving
growth slack on every page.  When an updated record no longer fits on its
page it is *moved* to the end of the file and a forwarding entry is left
behind — which both costs I/O and destroys clustering, the effect behind
the paper's warning about indexing collections after loading.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import RecordNotFoundError
from repro.simtime import Bucket
from repro.storage.disk import DiskManager, Pager
from repro.storage.page import Page
from repro.storage.rid import Rid

#: Fraction of a page usable by records before growth slack kicks in.
DEFAULT_FILL_FACTOR = 0.85


class StorageFile:
    """A file of records, addressed by :class:`Rid`."""

    def __init__(
        self,
        disk: DiskManager,
        pager: Pager,
        file_id: int | None = None,
        fill_factor: float = DEFAULT_FILL_FACTOR,
    ):
        if not 0.0 < fill_factor <= 1.0:
            raise ValueError(f"fill factor must be in (0, 1], got {fill_factor}")
        self.disk = disk
        self.pager = pager
        self.file_id = disk.create_file() if file_id is None else file_id
        self.fill_factor = fill_factor
        self._record_count = 0

    # -- sizing ----------------------------------------------------------

    @property
    def num_pages(self) -> int:
        return self.disk.num_pages(self.file_id)

    @property
    def record_count(self) -> int:
        """Live records inserted minus deleted (forwarded records count
        once, at their new location)."""
        return self._record_count

    def _slack(self, page: Page) -> int:
        """Bytes of growth slack to preserve on ``page`` at insert time."""
        return int(page.capacity * (1.0 - self.fill_factor))

    # -- record operations -------------------------------------------------

    def insert(self, record: bytes) -> Rid:
        """Append ``record`` at the end of the file; return its rid."""
        page = self._tail_page()
        if page is None or not page.fits(record, self._slack(page)):
            page = self.disk.allocate_page(self.file_id)
        slot = page.insert(record, self._slack(page))
        self.pager.mark_dirty(self.file_id, page.page_no)
        self._record_count += 1
        return Rid(self.file_id, page.page_no, slot)

    def read(self, rid: Rid) -> bytes:
        """Fetch the record at ``rid``, transparently following at most
        one forwarding hop (each hop is a separate page access)."""
        record, _actual = self.read_resolving(rid)
        return record

    def read_resolving(self, rid: Rid) -> tuple[bytes, Rid]:
        """Like :meth:`read` but also returns the rid where the record
        actually lives, so callers can repair stale references."""
        self._check_file(rid)
        page = self.pager.get_page(rid.file_id, rid.page_no)
        target = page.forward_target(rid.slot)
        if target is None:
            return page.read(rid.slot), rid
        fpage = self.pager.get_page(target.file_id, target.page_no)
        if fpage.forward_target(target.slot) is not None:
            raise RecordNotFoundError(
                f"forwarding chain longer than one hop at {rid} -> {target}"
            )
        return fpage.read(target.slot), target

    def update(self, rid: Rid, record: bytes) -> Rid:
        """Replace the record at ``rid``.

        If the new record still fits on its page the rid is preserved.
        Otherwise the record moves to the end of the file, a forwarding
        entry is left at the old slot, and the *new* rid is returned —
        this is the "reallocate all objects on disk" cost of Section 3.2.
        Forwarding never chains: when an already-moved record moves
        again, the original slot is re-pointed at the new location and
        the intermediate stub is reclaimed.
        """
        self._check_file(rid)
        origin = rid
        origin_page = self.pager.get_page(rid.file_id, rid.page_no)
        page = origin_page
        target = origin_page.forward_target(rid.slot)
        if target is not None:
            page = self.pager.get_page(target.file_id, target.page_no)
            rid = target
        if page.update(rid.slot, record):
            self.pager.mark_dirty(rid.file_id, rid.page_no)
            return rid
        new_rid = self._move(rid, page, record)
        if origin != rid:
            # Collapse the chain: origin -> new location directly.
            origin_page.repoint(origin.slot, new_rid)
            page.delete(rid.slot)
            self.pager.mark_dirty(origin.file_id, origin.page_no)
        return new_rid

    def delete(self, rid: Rid) -> None:
        """Remove the record at ``rid`` (following a forwarding hop)."""
        self._check_file(rid)
        page = self.pager.get_page(rid.file_id, rid.page_no)
        target = page.forward_target(rid.slot)
        if target is not None:
            page.delete(rid.slot)
            self.pager.mark_dirty(rid.file_id, rid.page_no)
            page = self.pager.get_page(target.file_id, target.page_no)
            rid = target
        page.delete(rid.slot)
        self.pager.mark_dirty(rid.file_id, rid.page_no)
        self._record_count -= 1

    def scan(self) -> Iterator[tuple[Rid, bytes]]:
        """Sequential scan in physical order, yielding ``(rid, record)``.

        Forwarded slots are skipped (their record is yielded at its new
        physical position), so each live record appears exactly once.
        """
        for page_no in range(self.num_pages):
            page = self.pager.get_page(self.file_id, page_no)
            for slot in page.slots():
                yield Rid(self.file_id, page_no, slot), page.read(slot)

    def rids(self) -> Iterator[Rid]:
        """Sequential scan yielding rids only (still reads every page)."""
        for rid, _record in self.scan():
            yield rid

    # -- internals ---------------------------------------------------------

    def _tail_page(self) -> Page | None:
        n = self.num_pages
        if n == 0:
            return None
        return self.pager.get_page(self.file_id, n - 1)

    def _move(self, rid: Rid, page: Page, record: bytes) -> Rid:
        tail = self._tail_page()
        if tail is None or tail.page_no == rid.page_no or not tail.fits(
            record, self._slack(tail)
        ):
            tail = self.disk.allocate_page(self.file_id)
        slot = tail.insert(record, self._slack(tail))
        new_rid = Rid(self.file_id, tail.page_no, slot)
        page.forward(rid.slot, new_rid)
        self.pager.mark_dirty(rid.file_id, rid.page_no)
        self.pager.mark_dirty(new_rid.file_id, new_rid.page_no)
        self.disk.counters.records_moved += 1
        self.disk.clock.charge_us(Bucket.LOAD, self.disk.params.record_move_us)
        return new_rid

    def _check_file(self, rid: Rid) -> None:
        if rid.file_id != self.file_id:
            raise RecordNotFoundError(
                f"rid {rid} does not belong to file {self.file_id}"
            )
