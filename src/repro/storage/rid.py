"""Physical record identifiers.

O2's ``Rid`` is a physical disk address (paper, Section 4.1: "Rids (for
Record identifiers) correspond to physical addresses on disks").  Sorting
rids therefore sorts by physical position — the property the paper's
*sorted unclustered index scan* (Figure 8) exploits.
"""

from __future__ import annotations

from typing import NamedTuple


class Rid(NamedTuple):
    """A physical record address: file, page within the file, slot within
    the page.

    Tuple ordering is exactly physical disk order, so ``sorted(rids)``
    yields the sequential access pattern of Figure 8's sorted index scan.
    """

    file_id: int
    page_no: int
    slot: int

    #: Bytes one rid occupies on disk or in an index leaf (paper,
    #: Section 2: "8 per address or object identifier").
    DISK_SIZE = 8

    def __repr__(self) -> str:  # compact, log-friendly
        return f"@{self.file_id}:{self.page_no}.{self.slot}"


#: A rid that is never allocated; used as the encoding of a nil reference.
NIL_RID = Rid(-1, -1, -1)


def is_nil(rid: Rid) -> bool:
    """True if ``rid`` encodes a nil reference."""
    return rid == NIL_RID
