"""Page-based storage substrate.

This package simulates the disk layer of an O2-style object store:

* :class:`~repro.storage.rid.Rid` — a *physical* record identifier
  (file, page, slot), the paper's ``@``-prefixed addresses (Figure 2).
* :class:`~repro.storage.page.Page` — a 4 KB slotted page.
* :class:`~repro.storage.disk.DiskManager` — the simulated disk: a set of
  files of pages, with I/O counters and simulated read/write latency.
* :class:`~repro.storage.file.StorageFile` — a heap file of records with
  creation-order placement (objects are located on files according to
  their creation time — paper, Section 3.2), growth slack, record moves
  with forwarding.
"""

from repro.storage.disk import DiskManager, DirectPager, Pager
from repro.storage.file import StorageFile
from repro.storage.page import Page
from repro.storage.rid import Rid

__all__ = [
    "Rid",
    "Page",
    "DiskManager",
    "Pager",
    "DirectPager",
    "StorageFile",
]
