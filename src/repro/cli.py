"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``figures``
    Regenerate one (or all) of the paper's tables and print it.
``load``
    Build a Derby database and print the loading report (the Section
    3.2 numbers).
``shell``
    An interactive OQL shell over a freshly loaded Derby database:
    shows the optimizer's plan and the simulated meters for every query.
``serve``
    A multi-session shell over one shared server: open several client
    sessions, take locks, and watch conflicts happen (fail-fast mode).
``mix``
    Run a deterministic multi-client workload mix (navigators +
    scanners + updaters) through the query service and print
    per-session latency/throughput plus the aggregate.
``crash``
    Crash-recovery tooling: ``crash demo`` kills a running mix at a
    named crash point and restarts it through ARIES-lite;
    ``crash fuzz`` runs the seeded (workload x crash point) checker
    grid and exits nonzero on any recovery-contract violation.
``shard``
    Horizontal-sharding tooling: ``shard demo`` partitions a database
    across N simulated nodes, runs a distributed query through the
    coordinator and a sharded workload mix (``--replicas 1`` pairs
    every shard with a warm standby); ``shard chaos`` runs the seeded
    two-phase-commit crash/recovery checker and exits nonzero on any
    atomic-commitment violation.
``failover``
    Per-shard replication tooling: ``failover demo`` kills a primary
    under load and narrates detection, fenced promotion and the
    availability window; ``failover chaos`` runs the seeded
    primary-kill checker (zero acked loss in sync mode, fenced
    promotion, clean retry accounting) and exits nonzero on any
    violation.
``analyze``
    Collect optimizer statistics (extent cardinalities, equi-depth
    histograms, association fan-out) over a freshly built database,
    print the summary and the simulated cost, and persist the rows
    through the statistics database (``repro.stats``).
``calibrate``
    Run a measurement grid, fit the cost model coefficients by least
    squares, and score the heuristic optimizer against the measured
    winners (the old ``analyze`` command, renamed: ANALYZE now means
    what it means in a database).
``info``
    Print the cost model and memory budgets in use.
``lint``
    Run simlint, the AST invariant linter, over ``src/repro``: checks
    determinism (DET), cost charging (CHARGE), the layering DAG
    (LAYER), paired resource release (PAIR) and over-broad excepts
    (EXC).  See ``docs/lint.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.bench import ExperimentRunner
from repro.bench.figures import (
    figure4_rids_vs_handles,
    figure6,
    figure7,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    handle_modes_figure,
)
from repro.cluster import load_derby
from repro.derby import DerbyConfig
from repro.derby.config import Clustering
from repro.oql import Catalog, OQLEngine, Query, parse_statement
from repro.errors import ReproError
from repro.units import MB

_CLUSTERING = {c.value: c for c in Clustering}
_DB_MAKERS = {
    "1to1000": DerbyConfig.db_1to1000,
    "1to3": DerbyConfig.db_1to3,
}


def _make_config(args: argparse.Namespace) -> DerbyConfig:
    maker = _DB_MAKERS[args.db]
    return maker(scale=args.scale, clustering=_CLUSTERING[args.clustering])


def _add_optimizer_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--optimizer", choices=("heuristic", "cost"), default="heuristic",
        help="query planner: the default heuristic planner, or the "
        "statistics-driven cost-based planner (run 'analyze' in the "
        "shell to feed it)",
    )


def _make_plan_optimizer(args: argparse.Namespace, catalog: Catalog):
    """The ``optimizer=`` argument for :class:`OQLEngine` (``None``
    keeps the engine's own heuristic planner)."""
    if args.optimizer == "cost":
        from repro.opt import CostBasedOptimizer

        return CostBasedOptimizer(catalog)
    return None


def _add_db_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--db", choices=sorted(_DB_MAKERS), default="1to1000",
        help="which of the paper's two databases to build",
    )
    parser.add_argument(
        "--clustering", choices=sorted(_CLUSTERING), default="class",
        help="physical organization (paper, Figure 2)",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="database scale factor (default: REPRO_SCALE or 0.01)",
    )


# ------------------------------------------------------------------ figures

_SIMPLE_FIGURES: dict[str, tuple[str, str, Callable]] = {
    # name -> (db, clustering, builder over an ExperimentRunner)
    "fig04": ("1to1000", "class", lambda r: figure4_rids_vs_handles(r)),
    "fig06": ("1to1000", "class", figure6),
    "fig07": ("1to1000", "class", figure7),
    "fig09": ("1to1000", "class", figure9),
    "fig11": ("1to1000", "class", lambda r: figure11(r)[0]),
    "fig12": ("1to3", "class", lambda r: figure12(r)[0]),
    "fig13": ("1to1000", "composition", lambda r: figure13(r)[0]),
    "fig14": ("1to3", "composition", lambda r: figure14(r)[0]),
    "handles": ("1to1000", "class", handle_modes_figure),
}


def cmd_figures(args: argparse.Namespace) -> int:
    names = (
        sorted(_SIMPLE_FIGURES) + ["fig10"]
        if args.figure == "all"
        else [args.figure]
    )
    for name in names:
        if name == "fig10":
            print(figure10())
            continue
        db_name, clustering, builder = _SIMPLE_FIGURES[name]
        maker = _DB_MAKERS[db_name]
        config = maker(
            scale=args.scale, clustering=_CLUSTERING[clustering]
        )
        print(
            f"building {db_name} / {clustering} at scale "
            f"{config.scale:g} ...",
            file=sys.stderr,
        )
        runner = ExperimentRunner(load_derby(config))
        print(builder(runner))
    return 0


# ------------------------------------------------------------------ load

def cmd_load(args: argparse.Namespace) -> int:
    config = _make_config(args)
    derby = load_derby(config)
    report = derby.load_report
    print(f"database        : {config.n_providers} providers, "
          f"{config.n_patients} patients")
    print(f"organization    : {config.clustering.value}")
    print(f"load time       : {report.seconds:.1f} simulated s")
    print(f"objects created : {report.objects_created}")
    print(f"commits         : {report.commits}")
    print(f"records moved   : {report.records_moved}")
    print(f"disk pages      : {report.disk_pages}")
    for name, build in report.index_reports.items():
        print(f"index {name}: grew {build.headers_grown} headers, "
              f"moved {build.records_moved} records")
    return 0


# ------------------------------------------------------------------ shell

def cmd_shell(args: argparse.Namespace) -> int:
    config = _make_config(args)
    print(f"loading {config.n_providers} providers / "
          f"{config.n_patients} patients "
          f"({config.clustering.value} clustering) ...")
    derby = load_derby(config)
    catalog = Catalog.from_derby(derby)
    engine = OQLEngine(
        catalog, optimizer=_make_plan_optimizer(args, catalog)
    )
    print(f"OQL shell ({args.optimizer} planner) — try:")
    print("  select count(p) from p in Patients where p.mrn < 1000")
    print("  select tuple(n: p.name, a: pa.age) from p in Providers, "
          "pa in p.clients where pa.mrn < 500 and p.upin < 5")
    print("  analyze              -- collect optimizer statistics")
    print("  explain <query>      -- plan, run, compare estimates")
    print("Type 'quit' to exit.\n")
    while True:
        try:
            line = input("oql> ").strip()
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        if not line:
            continue
        if line.lower() in ("quit", "exit", r"\q"):
            return 0
        try:
            stmt = parse_statement(line)
            plan = engine.plan(stmt) if isinstance(stmt, Query) else None
            derby.start_cold_run()
            rows = engine.execute(stmt)
        except ReproError as exc:
            print(f"error: {exc}")
            continue
        if plan is not None:
            print(f"-- plan: {plan.description}")
        shown = rows[:20] if plan is not None else rows
        for row in shown:
            print(f"   {row}")
        if len(rows) > len(shown):
            print(f"   ... {len(rows) - len(shown)} more rows")
        meters = derby.db.counters.snapshot()
        print(f"-- {len(rows)} row(s); {derby.db.clock.elapsed_s:.3f} "
              f"simulated s; {meters.disk_reads} page reads; "
              f"{meters.rpcs} RPCs; client miss "
              f"{meters.client_miss_rate:.0%}\n")


# ------------------------------------------------------------------ serve

def cmd_serve(args: argparse.Namespace) -> int:
    """Multi-session shell: several clients against one shared server."""
    from repro.service import QueryService

    config = _make_config(args)
    print(f"loading {config.n_providers} providers / "
          f"{config.n_patients} patients "
          f"({config.clustering.value} clustering) ...")
    derby = load_derby(config)
    service = QueryService(derby, optimizer=args.optimizer)
    current = service.open_session("main")
    print("Multi-session shell — one server cache, one lock table, a")
    print("private client cache per session.  Commands:")
    print(r"  \open NAME | \use NAME | \sessions")
    print(r"  \begin | \commit | \abort")
    print(r"  \lock r|w patients|providers INDEX")
    print(r"  any other line runs as OQL in the current session")
    print(r"  \quit to exit" + "\n")
    by_name = {current.name: current}
    while True:
        try:
            line = input(f"{current.name}> ").strip()
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        if not line:
            continue
        words = line.split()
        try:
            if words[0] in (r"\quit", "quit", "exit"):
                return 0
            if words[0] == r"\open":
                session = service.open_session(words[1])
                by_name[session.name] = session
                current = session
                continue
            if words[0] == r"\use":
                current = by_name[words[1]]
                continue
            if words[0] == r"\sessions":
                for name, session in by_name.items():
                    m = session.metrics
                    txn = session.txn
                    state = txn.state if txn is not None else "none"
                    print(f"  {name:10s} txn={state:9s} "
                          f"queries={m.queries} updates={m.updates} "
                          f"committed={m.committed} aborted={m.aborted} "
                          f"busy={m.busy_s:.3f}s")
                continue
            if words[0] == r"\begin":
                with service.immediate(current):
                    # simlint: ok[PROTO] interactive txn spans shell commands; \commit / \abort complete it
                    current.begin()
                continue
            if words[0] == r"\commit":
                with service.immediate(current):
                    current.commit()
                continue
            if words[0] == r"\abort":
                with service.immediate(current):
                    current.abort()
                continue
            if words[0] == r"\lock":
                mode, coll, idx = words[1], words[2], int(words[3])
                if mode not in ("r", "w"):
                    print(f"error: lock mode must be r or w, not {mode!r}")
                    continue
                rids = (derby.patient_rids if coll.startswith("pat")
                        else derby.provider_rids)
                if not 0 <= idx < len(rids):
                    print(f"error: {coll} index must be in "
                          f"0..{len(rids) - 1}, not {idx}")
                    continue
                with service.immediate(current):
                    if current.txn is None or current.txn.state != "active":
                        # simlint: ok[PROTO] auto-begin for \lock; the shell's \commit / \abort complete it
                        current.begin()
                    if mode == "w":
                        current.write_lock(rids[idx])
                    else:
                        current.read_lock(rids[idx])
                print(f"  {mode}-lock on {coll}[{idx}] granted")
                continue
            # -- OQL ----------------------------------------------------
            before_s = derby.db.clock.elapsed_s
            before_m = derby.db.counters.snapshot()
            with service.immediate(current):
                rows = current.execute(line)
            spent_s = derby.db.clock.elapsed_s - before_s
            delta = derby.db.counters.snapshot() - before_m
            for row in rows[:10]:
                print(f"   {row}")
            if len(rows) > 10:
                print(f"   ... {len(rows) - 10} more rows")
            print(f"-- {len(rows)} row(s); {spent_s:.3f} simulated s; "
                  f"{delta.disk_reads} page reads; {delta.rpcs} RPCs\n")
        except (ReproError, KeyError, IndexError, ValueError) as exc:
            print(f"error: {exc}")


# ------------------------------------------------------------------ mix

def cmd_mix(args: argparse.Namespace) -> int:
    """Run a multi-client mix and report per-session + aggregate costs."""
    from repro.service import MixConfig, WorkloadMixer
    from repro.stats import StatsDatabase, mix_to_csv, to_csv

    try:
        if args.navigators or args.scanners or args.updaters:
            mix_config = MixConfig(
                navigators=args.navigators,
                scanners=args.scanners,
                updaters=args.updaters,
            )
        else:
            mix_config = MixConfig.from_clients(args.clients)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    from dataclasses import replace as _replace
    mix_config = _replace(
        mix_config,
        ops_per_client=args.ops,
        seed=args.seed,
        lock_timeout_s=args.lock_timeout,
        batch_size=args.batch_size,
        max_retries=args.max_retries,
        budget_pages=args.budget_pages,
        budget_busy_s=args.budget_busy,
        budget_rows=args.budget_rows,
        statement_timeout_s=args.statement_timeout,
        max_active=args.max_active,
        optimizer=args.optimizer,
        isolation=args.isolation,
    )
    config = _make_config(args)
    print(f"loading {config.n_providers} providers / "
          f"{config.n_patients} patients "
          f"({config.clustering.value} clustering) ...", file=sys.stderr)
    derby = load_derby(config)
    stats = StatsDatabase()
    mixer = WorkloadMixer(derby, mix_config, stats=stats)
    report = mixer.run()
    print(report.table())
    print(f"stats database: {len(stats)} Stat row(s) recorded")
    if args.csv:
        with open(args.csv, "w") as fh:
            fh.write(to_csv(stats.rows()))
        print(f"wrote {args.csv}")
    if args.sessions_csv:
        with open(args.sessions_csv, "w") as fh:
            fh.write(mix_to_csv(report))
        print(f"wrote {args.sessions_csv}")
    return 0


# ------------------------------------------------------------------ crash

def cmd_crash_demo(args: argparse.Namespace) -> int:
    """Crash a workload mix at a named point, then recover it."""
    from repro.recovery import CrashInjector
    from repro.service import MixConfig, WorkloadMixer

    config = _make_config(args)
    print(f"loading {config.n_providers} providers / "
          f"{config.n_patients} patients "
          f"({config.clustering.value} clustering) ...", file=sys.stderr)
    derby = load_derby(config)
    injector = CrashInjector(args.point, args.occurrence)
    mix_config = MixConfig.from_clients(
        args.clients, ops_per_client=args.ops, seed=args.seed
    )
    mixer = WorkloadMixer(derby, mix_config, injector=injector)
    report = mixer.run()
    service = mixer.service
    assert service is not None
    if not report.crashed:
        print(f"mix finished cleanly: crash point {args.point!r} was "
              f"reached {injector.seen} time(s), needed "
              f"{args.occurrence}.  Try --occurrence "
              f"{max(1, injector.seen // 2)} or more --ops.")
        return 1
    wal = service.txm.log
    durable = [r for r in wal.records]
    committed = [r.txn_id for r in durable if r.kind == "commit"]
    print(f"\ncrash: {args.point} fired on occurrence {injector.seen}")
    print(f"  durable log: {len(durable)} records, LSN <= {wal.durable_lsn}")
    print(f"  acked commits before the crash: "
          f"{sum(s.metrics.committed for s in service.sessions)}")
    recovery = service.recover()
    print(f"recovery: {recovery.seconds:.4f} simulated s")
    print(f"  analysis scanned {recovery.log_records_scanned} records "
          f"({recovery.log_pages_read} log pages) from checkpoint "
          f"LSN {recovery.checkpoint_lsn}")
    print(f"  redo reapplied {recovery.records_redone} records on "
          f"{recovery.pages_redone} pages from LSN "
          f"{recovery.redo_start_lsn}")
    print(f"  undo rolled back {recovery.records_undone} records in "
          f"{recovery.txns_undone} loser transaction(s)")
    print(f"recovered transactions (durably committed): "
          f"{sorted(committed) or 'none'}")
    print(f"lost transactions (in flight, rolled back) : "
          f"{sorted(recovery.losers) or 'none'}")
    age = derby.db.manager.get_attr_at(derby.patient_rids[0], "age")
    print(f"post-recovery sanity read: patient[0].age = {age}")
    return 0


def cmd_crash_fuzz(args: argparse.Namespace) -> int:
    """Run the seeded crash/recovery checker grid."""
    from repro.recovery import CRASH_POINTS, run_fuzz, summarize
    from repro.stats import recovery_to_csv

    points = tuple(args.points) if args.points else CRASH_POINTS
    results = run_fuzz(
        range(args.seeds),
        points=points,
        txns=args.txns,
        checkpoint_every=args.checkpoint_every,
        check_determinism=not args.no_determinism,
    )
    print(summarize(results))
    if args.csv:
        from types import SimpleNamespace

        rows = [
            SimpleNamespace(
                label=f"fuzz-{r.seed}",
                crash_point=r.point,
                checkpoint_every=args.checkpoint_every,
                txns=r.txns_started,
                committed=r.durable_commits,
                lost=r.losers,
                recovery_s=r.report.seconds,
                log_records_scanned=r.report.log_records_scanned,
                log_pages_read=r.report.log_pages_read,
                pages_redone=r.report.pages_redone,
                records_redone=r.report.records_redone,
                txns_undone=r.report.txns_undone,
                records_undone=r.report.records_undone,
                durability_ok=int(r.ok),
            )
            for r in results
        ]
        with open(args.csv, "w") as fh:
            fh.write(recovery_to_csv(rows))
        print(f"wrote {args.csv}")
    return 0 if all(r.ok for r in results) else 1


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run the seeded transient-fault chaos checker."""
    from repro.service.chaos import run_chaos, summarize

    results = run_chaos(
        args.cases,
        base_seed=args.seed,
        check_determinism=not args.no_determinism,
    )
    print(summarize(results))
    for r in results:
        for failure in r.failures:
            print(f"seed {r.seed}: {failure}", file=sys.stderr)
    return 0 if all(r.ok for r in results) else 1


# ------------------------------------------------------------------ shard

def cmd_shard_demo(args: argparse.Namespace) -> int:
    """Partition a database, run a distributed query and a mix."""
    from repro.bench.report import Table
    from repro.dist import Coordinator, ShardedMixConfig, ShardedWorkload, load_sharded

    config = _make_config(args)
    cluster = load_sharded(
        config,
        args.shards,
        scheme=args.scheme,
        replicas=args.replicas,
        ship_mode=args.ship_mode,
    )
    coordinator = Coordinator(cluster)
    cluster.start_cold()
    threshold = config.num_threshold(args.selectivity)
    query = f"select p.age from p in Patients where p.num > {threshold}"
    rows = coordinator.execute(query, strategy=args.strategy)
    plan = coordinator.last_plan
    assert plan is not None
    print(f"> {query}")
    print(f"  {plan.description()}")
    print(
        f"  {len(rows)} rows in {cluster.elapsed_s:.3f} simulated s "
        f"({cluster.total_busy_s:.3f} s of shard work, "
        f"{cluster.msgs} messages)"
    )
    table = Table(
        f"Per-shard meters ({args.shards}x{args.scheme})",
        ["Shard", "Providers", "Patients", "Busy (s)", "Wait (s)",
         "Msgs", "Pages read"],
    )
    for node, (providers, patients) in zip(
        cluster.nodes, cluster.part.shard_sizes()
    ):
        table.add(
            node.shard_id, providers, patients, node.busy_s,
            node.remote_wait_s, node.msgs,
            node.db.disk.counters.disk_reads,
        )
    print()
    print(table)
    print()
    mix = ShardedMixConfig.from_clients(
        args.clients, ops_per_client=args.ops, seed=args.seed
    )
    report = ShardedWorkload(cluster, mix).run()
    print(report.table())
    if cluster.links:
        ship = Table(
            f"WAL shipping ({args.ship_mode})",
            ["Shard", "Ship msgs", "Records", "Bytes", "Lag",
             "Ack wait (s)"],
        )
        for sid in sorted(cluster.links):
            link = cluster.links[sid]
            ship.add(
                sid, link.ship_msgs, link.shipped_records,
                link.shipped_bytes, link.lag_records(), link.ack_wait_s,
            )
        print()
        print(ship)
    return 0


def cmd_shard_chaos(args: argparse.Namespace) -> int:
    """Run the seeded 2PC crash/recovery chaos checker."""
    from repro.dist import run_2pc_chaos, summarize_2pc

    results = run_2pc_chaos(
        args.cases,
        base_seed=args.seed,
        check_determinism=not args.no_determinism,
    )
    print(summarize_2pc(results))
    for r in results:
        for failure in r.failures:
            print(f"seed {r.seed}: {failure}", file=sys.stderr)
    return 0 if all(r.ok for r in results) else 1


# ------------------------------------------------------------------ failover

def cmd_failover_demo(args: argparse.Namespace) -> int:
    """Kill a primary under load and narrate the failover."""
    from repro.dist import ShardedMixConfig, ShardedWorkload, load_sharded

    config = _make_config(args)
    cluster = load_sharded(
        config,
        args.shards,
        scheme=args.scheme,
        replicas=1,
        ship_mode=args.ship_mode,
    )
    cluster.start_cold()
    detector = cluster.detector
    assert detector is not None
    victim = args.victim % args.shards
    cluster.schedule_kill(victim, at_s=args.kill_at)
    print(
        f"{cluster!r}: killing shard {victim}'s primary at "
        f"t={args.kill_at:.3f}s (lease {detector.lease_s:.3f}s + grace "
        f"{detector.grace_s:.3f}s, {args.ship_mode} shipping)"
    )
    mix = ShardedMixConfig.from_clients(
        args.clients, ops_per_client=args.ops, seed=args.seed
    )
    report = ShardedWorkload(cluster, mix).run()
    print(report.table())
    print()
    print(f"kills {cluster.kills}, failovers {cluster.route.failovers}, "
          f"epochs {cluster.route.epochs}")
    print(f"shard {victim} unavailable "
          f"{cluster.shard_unavailable_s(victim):.4f} simulated s, "
          f"acked-loss window {cluster.loss_windows.get(victim, 0)} "
          "records")
    serving = cluster.route.node_for(victim)
    if serving.down:
        print(f"shard {victim} is still down (no promotable standby)",
              file=sys.stderr)
        return 1
    print(f"shard {victim} serving again from the promoted standby "
          f"(epoch {serving.epoch})")
    return 0


def cmd_failover_chaos(args: argparse.Namespace) -> int:
    """Run the seeded primary-kill failover chaos checker."""
    from repro.dist import run_failover_chaos, summarize_failover

    results = run_failover_chaos(
        args.cases,
        base_seed=args.seed,
        ship_mode=args.ship_mode,
        check_determinism=not args.no_determinism,
    )
    print(summarize_failover(results))
    for r in results:
        for failure in r.failures:
            print(f"seed {r.seed}: {failure}", file=sys.stderr)
    return 0 if all(r.ok for r in results) else 1


# ------------------------------------------------------------------ layout

def cmd_layout(args: argparse.Namespace) -> int:
    """Print the paper's Figure 2 for a freshly built database."""
    from repro.cluster.inspect import describe_derby_layout

    config = _make_config(args)
    derby = load_derby(config)
    print(describe_derby_layout(derby, max_records=args.records))
    return 0


# ------------------------------------------------------------------ analyze

def cmd_analyze(args: argparse.Namespace) -> int:
    """Collect optimizer statistics and persist them (ANALYZE)."""
    from repro.opt import StatsCollector, save_table_stats, summarize
    from repro.stats import StatsDatabase

    config = _make_config(args)
    print(
        f"building {config.n_providers} providers / {config.n_patients} "
        f"patients ({config.clustering.value}) ...",
        file=sys.stderr,
    )
    derby = load_derby(config)
    catalog = Catalog.from_derby(derby)
    start_s = derby.db.clock.elapsed_s
    collector = StatsCollector(catalog, buckets=args.buckets)
    try:
        stats = collector.collect(args.collections or None)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    spent_s = derby.db.clock.elapsed_s - start_s
    for line in summarize(stats):
        print(line)
    print(f"analyze cost {spent_s:.3f} simulated s")
    stats_db = StatsDatabase()
    n_rows = save_table_stats(stats_db, stats)
    print(f"persisted {n_rows} statistics row(s) through repro.stats")
    return 0


# ------------------------------------------------------------------ calibrate

def cmd_calibrate(args: argparse.Namespace) -> int:
    """Run a measurement grid, fit the cost model, score the optimizer."""
    from repro.analysis import fit_cost_model, score_optimizer
    from repro.bench.figures import PAPER_ALGORITHMS
    from repro.bench.workloads import SELECTIVITY_GRID

    config = _make_config(args)
    print(
        f"building {config.n_providers} providers / {config.n_patients} "
        f"patients ({config.clustering.value}) ...",
        file=sys.stderr,
    )
    derby = load_derby(config)
    runner = ExperimentRunner(derby)
    runs = runner.run_join_grid(PAPER_ALGORITHMS, SELECTIVITY_GRID)

    fit = fit_cost_model(runs)
    print(f"cost model fitted over {fit.n_runs} runs "
          f"(R^2 = {fit.r_squared:.4f})")
    for name, coef in fit.coefficients.items():
        print(f"  {name:16s} {coef * 1e6:12.2f} us/event")

    score = score_optimizer(derby, runs)
    print(f"\noptimizer: picked the measured winner in {score.wins}/"
          f"{len(score.verdicts)} cells, mean regret "
          f"{score.mean_regret:.2f}, max {score.max_regret:.2f}")
    for v in score.verdicts:
        mark = "==" if v.chosen == v.best else "!="
        print(f"  {v.sel_patients:2d}/{v.sel_providers:2d}: chose "
              f"{v.chosen:7s} {mark} best {v.best:7s} "
              f"(regret {v.regret:.2f})")
    return 0


# ------------------------------------------------------------------ info

def cmd_info(args: argparse.Namespace) -> int:
    config = _make_config(args)
    params = config.params
    memory = params.memory
    print("cost model")
    print(f"  page read          : {params.page_read_ms} ms")
    print(f"  page transfer      : {params.page_transfer_ms} ms")
    print(f"  rpc overhead       : {params.rpc_overhead_ms} ms")
    print(f"  handle get/unref   : {params.handle_get_us}/"
          f"{params.handle_unref_us} us")
    print(f"  swap fault         : {params.swap_fault_ms} ms")
    print(f"  result element     : {params.result_append_txn_us} us (txn)")
    print("memory (scaled)")
    print(f"  ram                : {memory.ram_bytes / MB:.2f} MB")
    print(f"  server cache       : {memory.server_cache_bytes / MB:.2f} MB "
          f"({memory.server_cache_pages} pages)")
    print(f"  client cache       : {memory.client_cache_bytes / MB:.2f} MB "
          f"({memory.client_cache_pages} pages)")
    print(f"  query memory       : {memory.query_memory_bytes / MB:.2f} MB")
    print("database")
    print(f"  providers          : {config.n_providers}")
    print(f"  patients           : {config.n_patients}")
    print(f"  scale              : {config.scale:g}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import run_lint

    return run_lint(args)


# ------------------------------------------------------------------ main

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Benchmarking Queries over Trees' "
        "(SIGMOD 2000)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="regenerate a paper figure")
    figures.add_argument(
        "figure",
        choices=sorted(_SIMPLE_FIGURES) + ["fig10", "all"],
        help="which figure to build",
    )
    figures.add_argument("--scale", type=float, default=None)
    figures.set_defaults(func=cmd_figures)

    load_cmd = sub.add_parser("load", help="build a database, report costs")
    _add_db_options(load_cmd)
    load_cmd.set_defaults(func=cmd_load)

    shell = sub.add_parser("shell", help="interactive OQL shell")
    _add_db_options(shell)
    _add_optimizer_option(shell)
    shell.set_defaults(func=cmd_shell)

    serve = sub.add_parser(
        "serve", help="multi-session shell over one shared server"
    )
    _add_db_options(serve)
    _add_optimizer_option(serve)
    serve.set_defaults(func=cmd_serve)

    mix = sub.add_parser(
        "mix", help="run a deterministic multi-client workload mix"
    )
    _add_db_options(mix)
    mix.add_argument("--clients", type=int, default=4,
                     help="client count, dealt round-robin over "
                     "navigator/scanner/updater profiles")
    mix.add_argument("--navigators", type=int, default=0)
    mix.add_argument("--scanners", type=int, default=0)
    mix.add_argument("--updaters", type=int, default=0)
    mix.add_argument("--ops", type=int, default=4,
                     help="operations (transactions) per client")
    mix.add_argument("--seed", type=int, default=1)
    mix.add_argument("--batch-size", type=int, default=None,
                     help="rows per operator batch for every session's "
                          "queries (default: engine default)")
    mix.add_argument("--lock-timeout", type=float, default=None,
                     help="lock wait bound in simulated seconds "
                     "(default: none, deadlock detection only)")
    mix.add_argument("--max-retries", type=int, default=2,
                     help="retries after a deadlock/lock-timeout abort "
                          "before an op gives up (default 2)")
    mix.add_argument("--budget-pages", type=int, default=None,
                     help="per-statement client page-fault budget")
    mix.add_argument("--budget-busy", type=float, default=None,
                     help="per-statement simulated busy-time budget (s)")
    mix.add_argument("--budget-rows", type=int, default=None,
                     help="per-statement peak live-row budget")
    mix.add_argument("--statement-timeout", type=float, default=None,
                     help="per-statement elapsed-time limit (simulated s)")
    mix.add_argument("--max-active", type=int, default=None,
                     help="admission control: sessions allowed to run an "
                          "op concurrently (others queue FIFO)")
    mix.add_argument("--isolation", choices=("2pl", "si"), default="2pl",
                     help="concurrency control: strict 2PL (readers take "
                          "S locks) or MVCC snapshot isolation (lock-free "
                          "snapshot reads, first-committer-wins writes; "
                          "implies physical logging)")
    _add_optimizer_option(mix)
    mix.add_argument("--csv", default=None,
                     help="also export the Stat rows as CSV to this path")
    mix.add_argument("--sessions-csv", default=None,
                     help="also export per-session metrics as CSV "
                     "to this path")
    mix.set_defaults(func=cmd_mix)

    crash = sub.add_parser(
        "crash", help="crash-recovery demo and fuzz checker"
    )
    crash_sub = crash.add_subparsers(dest="action", required=True)

    demo = crash_sub.add_parser(
        "demo", help="crash a mix at a named point, then recover"
    )
    _add_db_options(demo)
    from repro.recovery import CRASH_POINTS as _POINTS
    demo.add_argument("--point", choices=_POINTS, default="mix-run",
                      help="which named crash point to arm")
    demo.add_argument("--occurrence", type=int, default=12,
                      help="fire the n-th time the point is reached")
    demo.add_argument("--clients", type=int, default=4)
    demo.add_argument("--ops", type=int, default=4,
                      help="operations (transactions) per client")
    demo.add_argument("--seed", type=int, default=1)
    demo.set_defaults(func=cmd_crash_demo)

    fuzz = crash_sub.add_parser(
        "fuzz", help="seeded (workload x crash point) recovery checker"
    )
    fuzz.add_argument("--seeds", type=int, default=8,
                      help="seeds per crash point (cases = seeds x points)")
    fuzz.add_argument("--points", nargs="*", choices=_POINTS, default=None,
                      help="crash points to cover (default: all)")
    fuzz.add_argument("--txns", type=int, default=10,
                      help="transactions per two-slot workload case")
    fuzz.add_argument("--checkpoint-every", type=int, default=3,
                      help="checkpoint every n started transactions "
                      "(0: never)")
    fuzz.add_argument("--no-determinism", action="store_true",
                      help="skip the double-run determinism check")
    fuzz.add_argument("--csv", default=None,
                      help="export per-case recovery rows as CSV")
    fuzz.set_defaults(func=cmd_crash_fuzz)

    chaos = sub.add_parser(
        "chaos",
        help="seeded transient-fault chaos checker (flaky reads, "
             "lock-timeout storms, governors)",
    )
    chaos.add_argument("--cases", type=int, default=50,
                       help="seeded fault-injected mix cases to run")
    chaos.add_argument("--seed", type=int, default=0,
                       help="base seed (case i uses seed base+i)")
    chaos.add_argument("--no-determinism", action="store_true",
                       help="skip the double-run determinism check")
    chaos.set_defaults(func=cmd_chaos)

    shard = sub.add_parser(
        "shard", help="horizontal-sharding demo and 2PC chaos checker"
    )
    shard_sub = shard.add_subparsers(dest="action", required=True)

    shard_demo = shard_sub.add_parser(
        "demo", help="partition a database, run a distributed query + mix"
    )
    _add_db_options(shard_demo)
    shard_demo.add_argument("--shards", type=int, default=4,
                            help="number of shard nodes")
    shard_demo.add_argument("--scheme", choices=("hash", "range"),
                            default="hash", help="partitioning scheme")
    shard_demo.add_argument("--strategy", choices=("auto", "query", "data"),
                            default="auto",
                            help="shipping strategy for the demo query")
    shard_demo.add_argument("--selectivity", type=float, default=10.0,
                            help="selectivity (%%) of the demo selection")
    shard_demo.add_argument("--clients", type=int, default=4,
                            help="clients in the sharded mix")
    shard_demo.add_argument("--ops", type=int, default=4,
                            help="operations per client")
    shard_demo.add_argument("--seed", type=int, default=1)
    shard_demo.add_argument("--replicas", type=int, default=0,
                            help="warm standbys per shard (0 or 1)")
    shard_demo.add_argument("--ship-mode", choices=("sync", "async"),
                            default="sync",
                            help="WAL shipping mode when replicated")
    shard_demo.set_defaults(func=cmd_shard_demo)

    shard_chaos = shard_sub.add_parser(
        "chaos",
        help="seeded 2PC crash/recovery checker over sharded clusters",
    )
    shard_chaos.add_argument("--cases", type=int, default=25,
                             help="seeded crash-injected cases to run")
    shard_chaos.add_argument("--seed", type=int, default=0,
                             help="base seed (case i uses seed base+i)")
    shard_chaos.add_argument("--no-determinism", action="store_true",
                             help="skip the double-run determinism check")
    shard_chaos.set_defaults(func=cmd_shard_chaos)

    failover = sub.add_parser(
        "failover",
        help="per-shard replication tooling: failover demo and chaos",
    )
    failover_sub = failover.add_subparsers(dest="action", required=True)

    failover_demo = failover_sub.add_parser(
        "demo",
        help="kill a primary under load, watch detection + promotion",
    )
    _add_db_options(failover_demo)
    failover_demo.add_argument("--shards", type=int, default=2,
                               help="number of shard nodes")
    failover_demo.add_argument("--scheme", choices=("hash", "range"),
                               default="hash", help="partitioning scheme")
    failover_demo.add_argument("--ship-mode", choices=("sync", "async"),
                               default="sync", help="WAL shipping mode")
    failover_demo.add_argument("--victim", type=int, default=0,
                               help="shard whose primary dies")
    failover_demo.add_argument("--kill-at", type=float, default=0.05,
                               help="kill time on the simulated clock (s)")
    failover_demo.add_argument("--clients", type=int, default=4,
                               help="clients in the sharded mix")
    failover_demo.add_argument("--ops", type=int, default=4,
                               help="operations per client")
    failover_demo.add_argument("--seed", type=int, default=1)
    failover_demo.set_defaults(func=cmd_failover_demo)

    failover_chaos = failover_sub.add_parser(
        "chaos",
        help="seeded primary-kill checker: zero acked loss (sync), "
        "fenced promotion, clean retries",
    )
    failover_chaos.add_argument("--cases", type=int, default=25,
                                help="seeded kill-injected cases to run")
    failover_chaos.add_argument("--seed", type=int, default=0,
                                help="base seed (case i uses seed base+i)")
    failover_chaos.add_argument("--ship-mode", choices=("sync", "async"),
                                default="sync", help="WAL shipping mode")
    failover_chaos.add_argument("--no-determinism", action="store_true",
                                help="skip the double-run determinism check")
    failover_chaos.set_defaults(func=cmd_failover_chaos)

    layout = sub.add_parser(
        "layout", help="print the Figure 2 view of a database's files"
    )
    _add_db_options(layout)
    layout.add_argument("--records", type=int, default=10,
                        help="records shown per file")
    layout.set_defaults(func=cmd_layout)

    analyze = sub.add_parser(
        "analyze",
        help="collect optimizer statistics (cardinalities, histograms, "
        "fan-out) and persist them",
    )
    _add_db_options(analyze)
    analyze.add_argument("collections", nargs="*",
                         help="collections to analyze (default: all)")
    from repro.opt import DEFAULT_BUCKETS as _BUCKETS
    analyze.add_argument("--buckets", type=int, default=_BUCKETS,
                         help="equi-depth histogram buckets per attribute")
    analyze.set_defaults(func=cmd_analyze)

    calibrate = sub.add_parser(
        "calibrate", help="fit the cost model, score the heuristic optimizer"
    )
    _add_db_options(calibrate)
    calibrate.set_defaults(func=cmd_calibrate)

    info = sub.add_parser("info", help="print cost model and budgets")
    _add_db_options(info)
    info.set_defaults(func=cmd_info)

    from repro.lint.cli import add_lint_arguments

    lint = sub.add_parser(
        "lint",
        help="run simlint, the invariant linter (determinism, cost "
        "charging, layering, pairing, exceptions)",
    )
    add_lint_arguments(lint)
    lint.set_defaults(func=cmd_lint)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
