"""Update churn: how clustering decays in production.

The paper warns that O2's composition clustering "can be specified, but
is not guaranteed.  It may be necessary to dump and reload the database
once in a while to maintain a reasonable cluster" (Section 2).  This
module provides the decay: new patients register over time, landing at
the end of the file (far from their provider) and growing their
provider's ``clients`` set (which can move the provider too).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cluster.loader import DerbyDatabase
from repro.cluster.strategies import file_names
from repro.derby.lrand48 import Lrand48
from repro.derby.schema import PATIENT_CLASS, character_name


@dataclass(frozen=True)
class ChurnReport:
    """What a registration wave did to the database."""

    new_patients: int
    records_moved: int
    pages_before: int
    pages_after: int


def register_new_patients(
    derby: DerbyDatabase, count: int, seed: int = 2000
) -> ChurnReport:
    """Register ``count`` new patients with random providers.

    Each new patient is appended at the tail of the patient file —
    regardless of where its provider lives — added to the ``Patients``
    extent and both patient indexes, and linked into its provider's
    ``clients`` set (growing it, possibly moving the provider).  Under
    composition clustering this is exactly the decay the paper warns
    about.
    """
    if count < 0:
        raise ValueError(f"negative patient count: {count}")
    db = derby.db
    om = db.manager
    rng = Lrand48(seed)
    __, patient_file = file_names(derby.config.clustering)
    moved_before = db.counters.records_moved
    pages_before = db.disk.total_pages()

    mrn = len(derby.patient_rids)
    by_mrn, by_num = derby.by_mrn, derby.by_num
    for __step in range(count):
        mrn += 1
        provider_idx = rng.randrange(len(derby.provider_rids))
        provider_rid = derby.provider_rids[provider_idx]
        num = rng.randrange(max(1, len(derby.patient_rids)))
        rid = db.create_object(
            PATIENT_CLASS,
            {
                "name": character_name(mrn + 13),
                "mrn": mrn,
                "age": 1 + rng.randrange(99),
                "sex": "F" if rng.randrange(2) else "M",
                "random_integer": provider_idx + 1,
                "num": num,
                "primary_care_provider": provider_rid,
            },
            patient_file,
            index_ids=(by_mrn.index_id, by_num.index_id),
        )
        derby.patient_rids.append(rid)
        derby.patients.append(rid)
        by_mrn.insert(mrn, rid)
        by_num.insert(num, rid)

        # Grow the provider's clients set (may relocate the provider).
        with om.borrow(provider_rid) as handle:
            clients = om.get_attr(handle, "clients")
        members = list(db.iter_set_rids(clients))
        members.append(rid)
        new_provider_rid = om.update_set(
            provider_rid, "clients", db.prepare_set(members)
        )
        if new_provider_rid != provider_rid:
            derby.provider_rids[provider_idx] = new_provider_rid

    derby.patients.flush()
    # Keep the config's cardinality truthful so selectivity thresholds
    # computed from it stay meaningful after churn.
    derby.config = replace(
        derby.config, n_patients=len(derby.patient_rids)
    )
    return ChurnReport(
        new_patients=count,
        records_moved=db.counters.records_moved - moved_before,
        pages_before=pages_before,
        pages_after=db.disk.total_pages(),
    )
