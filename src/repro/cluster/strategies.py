"""Physical placement orders for each clustering strategy.

A placement order is a sequence of ``("P", i)`` / ``("p", j)`` steps —
create provider ``i`` / patient ``j`` next — plus, per step, the file the
object goes to.  The loader walks the sequence; everything else
(extents, indexes, association fix-up) is organization-independent.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.derby.config import Clustering
from repro.derby.generator import LogicalDatabase

#: File names used by the loaders.
PROVIDERS_FILE = "providers"
PATIENTS_FILE = "patients"
OBJECTS_FILE = "objects"

#: A placement step: (kind, logical index, file name).
PlacementStep = tuple[str, int, str]

PROVIDER_STEP = "P"
PATIENT_STEP = "p"


def file_names(clustering: Clustering) -> tuple[str, str]:
    """(provider file, patient file) for a clustering strategy."""
    if clustering in (Clustering.RANDOM, Clustering.COMPOSITION):
        return OBJECTS_FILE, OBJECTS_FILE
    return PROVIDERS_FILE, PATIENTS_FILE


def placement_order(
    logical: LogicalDatabase, clustering: Clustering
) -> Iterator[PlacementStep]:
    """Yield the creation sequence for ``clustering``."""
    provider_file, patient_file = file_names(clustering)

    if clustering is Clustering.CLASS:
        # The paper's build: all doctors, then all patients (Section 3.2).
        for i in range(logical.n_providers):
            yield PROVIDER_STEP, i, provider_file
        for j in range(logical.n_patients):
            yield PATIENT_STEP, j, patient_file
        return

    if clustering is Clustering.RANDOM:
        steps: list[PlacementStep] = [
            (PROVIDER_STEP, i, provider_file) for i in range(logical.n_providers)
        ]
        steps.extend(
            (PATIENT_STEP, j, patient_file) for j in range(logical.n_patients)
        )
        random.Random(logical.config.seed).shuffle(steps)
        yield from steps
        return

    # COMPOSITION and ASSOCIATION: patients follow their provider; the
    # difference is only which file each kind goes to.  Within a
    # provider, patients land in set-iteration order — O2 sets are
    # unordered, so the within-group order carries no mrn correlation
    # (a shuffled order here; without this, an mrn range would select a
    # neat prefix of every group and composition would look unrealistically
    # friendly to index scans).
    for i, provider in enumerate(logical.providers):
        yield PROVIDER_STEP, i, provider_file
        group = list(provider.patient_idxs)
        random.Random(logical.config.seed * 31 + i).shuffle(group)
        for j in group:
            yield PATIENT_STEP, j, patient_file
