"""Physical organizations and the bulk loader.

The paper studies the same logical database under three physical
organizations (Figure 2): class clustering (one file per class, creation
order), random (one file, random interleaving), and composition
clustering (each provider followed by its patients).  Section 5.3 also
discusses the alternative of Carey & Lapis [4] — patients in provider
order but in their *own* file — which we provide as
``Clustering.ASSOCIATION``.

:func:`~repro.cluster.loader.load_derby` materializes a
:class:`~repro.derby.config.DerbyConfig` into a fully loaded database,
applying the paper's Section 3.2 loading lessons (transaction-off mode,
commit batches, index-first header stamping).
"""

from repro.cluster.churn import ChurnReport, register_new_patients
from repro.cluster.inspect import describe_derby_layout, describe_layout
from repro.cluster.loader import DerbyDatabase, LoadReport, load_derby
from repro.cluster.reorganize import ReorganizeReport, dump_and_reload, dump_logical
from repro.cluster.strategies import placement_order

__all__ = [
    "load_derby",
    "DerbyDatabase",
    "LoadReport",
    "placement_order",
    "register_new_patients",
    "ChurnReport",
    "dump_logical",
    "dump_and_reload",
    "ReorganizeReport",
    "describe_layout",
    "describe_derby_layout",
]
