"""Dump and reload: restoring clustering after churn.

"In O2 this kind of clustering can be specified, but is not guaranteed.
It may be necessary to dump and reload the database once in a while to
maintain a reasonable cluster." — paper, Section 2.

:func:`dump_and_reload` reads the logical content back out of a
(possibly fragmented) database — a full charged scan, the dump's real
cost — and bulk-loads a pristine replacement under the same (or a
different) clustering strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cluster.loader import DerbyDatabase, load_derby
from repro.derby.config import Clustering, DerbyConfig
from repro.derby.generator import (
    LogicalDatabase,
    LogicalPatient,
    LogicalProvider,
)


@dataclass(frozen=True)
class ReorganizeReport:
    """Costs of one dump-and-reload cycle."""

    dump_seconds: float
    reload_seconds: float
    pages_before: int
    pages_after: int


def dump_logical(derby: DerbyDatabase) -> LogicalDatabase:
    """Read the database's full logical content back out (charged).

    Providers come back in ``upin`` order and patients in ``mrn`` order,
    which is exactly the creation order the loader expects.
    """
    om = derby.db.manager
    providers: list[LogicalProvider] = []
    for entry in derby.by_upin.range_scan():
        record, class_def = om.read_record(entry.rid)
        values = om.codec(class_def).decode(record)
        providers.append(
            LogicalProvider(
                upin=values["upin"],        # type: ignore[arg-type]
                name=values["name"],        # type: ignore[arg-type]
                address=values["address"],  # type: ignore[arg-type]
                specialty=values["specialty"],  # type: ignore[arg-type]
                office=values["office"],    # type: ignore[arg-type]
            )
        )
    patients: list[LogicalPatient] = []
    for j, entry in enumerate(derby.by_mrn.range_scan()):
        record, class_def = om.read_record(entry.rid)
        values = om.codec(class_def).decode(record)
        patient = LogicalPatient(
            mrn=values["mrn"],                       # type: ignore[arg-type]
            name=values["name"],                     # type: ignore[arg-type]
            age=values["age"],                       # type: ignore[arg-type]
            sex=values["sex"],                       # type: ignore[arg-type]
            random_integer=values["random_integer"],  # type: ignore[arg-type]
            num=values["num"],                       # type: ignore[arg-type]
        )
        patients.append(patient)
        providers[patient.provider_idx].patient_idxs.append(j)

    config = replace(
        derby.config,
        n_providers=len(providers),
        n_patients=len(patients),
    )
    return LogicalDatabase(config, providers, patients)


def dump_and_reload(
    derby: DerbyDatabase, clustering: Clustering | None = None
) -> tuple[DerbyDatabase, ReorganizeReport]:
    """Dump ``derby`` and bulk-load a fresh, perfectly clustered copy.

    ``clustering`` defaults to the database's current strategy; passing
    a different one converts the physical organization — the way the
    paper built its three representations of the same logical database.
    """
    derby.db.reset_meters()
    pages_before = derby.db.disk.total_pages()
    logical = dump_logical(derby)
    dump_seconds = derby.db.clock.elapsed_s

    config: DerbyConfig = logical.config
    if clustering is not None:
        config = replace(config, clustering=clustering)
        logical = LogicalDatabase(config, logical.providers, logical.patients)
    fresh = load_derby(config, logical=logical)
    report = ReorganizeReport(
        dump_seconds=dump_seconds,
        reload_seconds=fresh.load_report.seconds,
        pages_before=pages_before,
        pages_after=fresh.db.disk.total_pages(),
    )
    return fresh, report
