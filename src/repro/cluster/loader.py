"""Bulk loading of Derby databases under every clustering strategy.

The loader applies the lessons of the paper's Section 3.2:

* objects are created in commit batches (default 10,000 — more raises
  the simulated "out of memory"),
* transactions are off by default for loading ("we used this mode only
  for loading, not for running our tests"),
* with ``index_first=True`` (default) indexes are declared before
  population so objects are born with header slots; with
  ``index_first=False`` the indexes are created afterwards, paying the
  full header-rewrite pass (and record moves for the first index),
* the doctor-patient association is randomized: patients reference their
  provider via ``random_integer`` and the provider ``clients`` sets are
  filled by a final join pass, exactly as the paper loads its data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.strategies import (
    PATIENT_STEP,
    file_names,
    placement_order,
)
from repro.derby.config import DerbyConfig
from repro.derby.generator import LogicalDatabase, generate
from repro.derby.schema import (
    PATIENT_CLASS,
    PATIENTS_NAME,
    PROVIDER_CLASS,
    PROVIDERS_NAME,
    build_derby_schema,
)
from repro.index import BTreeIndex, IndexBuildReport, IndexManager
from repro.objects.codec import INLINE_SET_LIMIT_BYTES, InlineSet
from repro.objects.database import Database, PersistentCollection
from repro.objects.handle import HandleMode
from repro.storage.rid import NIL_RID, Rid
from repro.txn import TransactionManager

#: Index names every loaded Derby database carries.
INDEX_BY_MRN = "Patients_by_mrn"
INDEX_BY_UPIN = "Providers_by_upin"
INDEX_BY_NUM = "Patients_by_num"


@dataclass
class LoadReport:
    """What loading cost (the paper's 12-hours-to-5-hours story)."""

    seconds: float = 0.0
    objects_created: int = 0
    commits: int = 0
    records_moved: int = 0
    disk_pages: int = 0
    index_reports: dict[str, IndexBuildReport] = field(default_factory=dict)


@dataclass
class DerbyDatabase:
    """A loaded, queryable physical Derby database."""

    config: DerbyConfig
    db: Database
    providers: PersistentCollection
    patients: PersistentCollection
    provider_rids: list[Rid]
    patient_rids: list[Rid]
    load_report: LoadReport

    @property
    def by_mrn(self) -> BTreeIndex:
        return self.db.indexes[INDEX_BY_MRN]

    @property
    def by_upin(self) -> BTreeIndex:
        return self.db.indexes[INDEX_BY_UPIN]

    @property
    def by_num(self) -> BTreeIndex:
        return self.db.indexes[INDEX_BY_NUM]

    def start_cold_run(self) -> None:
        """Empty caches and zero meters: the state every measured query
        starts from (paper, Section 2)."""
        self.db.restart_cold()
        self.db.reset_meters()


def load_derby(
    config: DerbyConfig,
    logical: LogicalDatabase | None = None,
    handle_mode: HandleMode = HandleMode.FULL,
) -> DerbyDatabase:
    """Generate (unless given) and physically load a Derby database."""
    logical = logical or generate(config)
    db = Database(build_derby_schema(), config.params, handle_mode)
    provider_file, patient_file = file_names(config.clustering)
    db.create_file(provider_file)
    if patient_file != provider_file:
        db.create_file(patient_file)

    providers = db.new_collection(PROVIDERS_NAME)
    patients = db.new_collection(PATIENTS_NAME)
    index_manager = IndexManager(db)
    report = LoadReport()

    provider_index_ids: tuple[int, ...] = ()
    patient_index_ids: tuple[int, ...] = ()
    if config.index_first:
        by_upin, __ = index_manager.create_index(INDEX_BY_UPIN, providers, "upin")
        by_mrn, __ = index_manager.create_index(INDEX_BY_MRN, patients, "mrn")
        by_num, __ = index_manager.create_index(INDEX_BY_NUM, patients, "num")
        provider_index_ids = (by_upin.index_id,)
        patient_index_ids = (by_mrn.index_id, by_num.index_id)

    provider_rids: list[Rid | None] = [None] * logical.n_providers
    patient_rids: list[Rid | None] = [None] * logical.n_patients
    deferred_refs: list[int] = []  # patient idxs created before their provider

    # Reserve inline space for the clients set at creation time — the
    # growth slack O2 leaves "to deal with growing strings or
    # collections" (Section 2) — so the association pass mostly updates
    # records in place instead of moving providers around.  Sets that
    # will spill to the collection file need no reservation.
    avg = config.avg_children
    if avg * Rid.DISK_SIZE <= INLINE_SET_LIMIT_BYTES // 2:
        clients_placeholder = InlineSet((NIL_RID,) * (int(avg) + 2))
    else:
        clients_placeholder = InlineSet(())

    txm = TransactionManager(db, config.commit_batch)
    txn = txm.begin(logged=config.logged_load)
    created_in_batch = 0

    try:
        for kind, idx, fname in placement_order(logical, config.clustering):
            if created_in_batch >= config.commit_batch:
                txn.commit()
                report.commits += 1
                txn = txm.begin(logged=config.logged_load)
                created_in_batch = 0
            if kind == PATIENT_STEP:
                patient = logical.patients[idx]
                owner = provider_rids[patient.provider_idx]
                if owner is None:
                    deferred_refs.append(idx)
                rid = txn.create_object(
                    PATIENT_CLASS,
                    {
                        "name": patient.name,
                        "mrn": patient.mrn,
                        "age": patient.age,
                        "sex": patient.sex,
                        "random_integer": patient.random_integer,
                        "num": patient.num,
                        "primary_care_provider": owner,
                    },
                    fname,
                    index_ids=patient_index_ids,
                )
                patient_rids[idx] = rid
                patients.append(rid)
            else:
                provider = logical.providers[idx]
                rid = txn.create_object(
                    PROVIDER_CLASS,
                    {
                        "name": provider.name,
                        "upin": provider.upin,
                        "address": provider.address,
                        "specialty": provider.specialty,
                        "office": provider.office,
                        "clients": clients_placeholder,
                    },
                    fname,
                    index_ids=provider_index_ids,
                )
                provider_rids[idx] = rid
                providers.append(rid)
            created_in_batch += 1
            report.objects_created += 1

        # -- the association join (paper, Section 3.2) ---------------------
        # Fix patients created before their provider existed (random order).
        for idx in deferred_refs:
            patient = logical.patients[idx]
            db.manager.update_scalar(
                patient_rids[idx],                      # type: ignore[arg-type]
                "primary_care_provider",
                provider_rids[patient.provider_idx],
            )
        # Fill every provider's clients set; large sets spill, growing
        # records may move (the "not always right next to them" effect).
        for i, provider in enumerate(logical.providers):
            members = [patient_rids[j] for j in provider.patient_idxs]
            new_rid = db.manager.update_set(
                provider_rids[i],                        # type: ignore[arg-type]
                "clients",
                db.prepare_set(members),
            )
            provider_rids[i] = new_rid

        txn.commit()
        report.commits += 1
    except BaseException:
        # a failed load is unrecoverable by design (the caller
        # rebuilds from scratch), but the open batch transaction
        # must still release its locks and WAL claim on the way out
        if txn.state == "active":
            txn.abort()
        raise
    providers.flush()
    patients.flush()

    # -- indexes ----------------------------------------------------------
    if config.index_first:
        db.indexes[INDEX_BY_UPIN].bulk_build(
            (logical.providers[i].upin, provider_rids[i])
            for i in range(logical.n_providers)
        )
        db.indexes[INDEX_BY_MRN].bulk_build(
            (logical.patients[j].mrn, patient_rids[j])
            for j in range(logical.n_patients)
        )
        db.indexes[INDEX_BY_NUM].bulk_build(
            (logical.patients[j].num, patient_rids[j])
            for j in range(logical.n_patients)
        )
    else:
        for name, coll, attr in (
            (INDEX_BY_UPIN, providers, "upin"),
            (INDEX_BY_MRN, patients, "mrn"),
            (INDEX_BY_NUM, patients, "num"),
        ):
            __, build = index_manager.create_index(name, coll, attr)
            report.index_reports[name] = build

    db.shutdown()
    report.seconds = db.clock.elapsed_s
    report.records_moved = db.counters.records_moved
    report.disk_pages = db.disk.total_pages()

    return DerbyDatabase(
        config=config,
        db=db,
        providers=providers,
        patients=patients,
        provider_rids=[r for r in provider_rids if r is not None],
        patient_rids=[r for r in patient_rids if r is not None],
        load_report=report,
    )
