"""Figure 2, generated: dump a database's physical organization.

The paper's Figure 2 shows the three layouts as annotated file listings
("@d1 'Donald Duck' ... {p14, p22, p50}").  :func:`describe_layout`
produces the same picture from a live database — records in physical
order, with names and references — which makes clustering effects
visible at a glance and gives tests something concrete to assert about
placement.

Inspection is *unaccounted*: it peeks at pages without charging the
clock or counters (it is tooling, not workload).
"""

from __future__ import annotations

import io
import struct

from repro.cluster.loader import DerbyDatabase
from repro.errors import SchemaError
from repro.objects.codec import InlineSet, OverflowSet
from repro.objects.database import Database
from repro.objects.header import ObjectHeader
from repro.storage.rid import Rid


def describe_layout(
    db: Database,
    file_names: list[str],
    max_records: int = 8,
    name_attr: str = "name",
) -> str:
    """Render the first records of each file in physical order."""
    out = io.StringIO()
    for fname in file_names:
        sfile = db.file(fname)
        out.write(
            f"{fname} file: {sfile.num_pages} pages, "
            f"{sfile.record_count} records\n"
        )
        shown = 0
        for page in db.disk.iter_pages(sfile.file_id):
            for slot in page.slots():
                if shown >= max_records:
                    break
                rid = Rid(sfile.file_id, page.page_no, slot)
                out.write(f"  {rid}  {_describe_record(db, page.read(slot))}\n")
                shown += 1
            if shown >= max_records:
                break
        if sfile.record_count > max_records:
            out.write(f"  ... {sfile.record_count - max_records} more\n")
    return out.getvalue()


def describe_derby_layout(derby: DerbyDatabase, max_records: int = 8) -> str:
    """Figure 2 for a loaded Derby database, whatever its organization."""
    names = [
        fname
        for fname in ("providers", "patients", "objects")
        if derby.db.has_file(fname)
    ]
    header = (
        f"Physical organization: {derby.config.clustering.value} "
        f"({derby.config.n_providers} providers, "
        f"{derby.config.n_patients} patients)\n"
    )
    return header + describe_layout(derby.db, names, max_records)


def _describe_record(db: Database, record: bytes) -> str:
    try:
        class_def = db.schema.class_version(
            ObjectHeader.peek_class_id(record),
            ObjectHeader.peek_schema_version(record),
        )
    except (SchemaError, struct.error, IndexError):
        # Not a decodable object record (free space, torn bytes): show
        # it opaquely.  Anything else — aborts, lock errors — must
        # propagate.
        return f"<{len(record)}-byte record>"
    codec = db.manager.codec(class_def)
    values = codec.decode(record)
    parts = [class_def.name]
    name = values.get("name")
    if isinstance(name, str) and name:
        parts.append(f"{name!r}")
    for attr in ("upin", "mrn", "id"):
        if attr in values:
            parts.append(f"{attr}={values[attr]}")
            break
    for attr, value in values.items():
        if isinstance(value, Rid):
            parts.append(f"{attr}->{value}")
        elif isinstance(value, InlineSet) and value.count:
            rids = ", ".join(repr(r) for r in value.rids[:4])
            suffix = ", ..." if value.count > 4 else ""
            parts.append(f"{attr}={{{rids}{suffix}}}")
        elif isinstance(value, OverflowSet):
            parts.append(
                f"{attr}=<{value.count} elements via {value.head}>"
            )
    return " ".join(parts)
