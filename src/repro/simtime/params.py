"""Cost-model constants for the simulated O2-style system.

Each constant is calibrated against a number the paper states or lets us
derive:

* ``page_read_ms = 10`` — "assuming 10ms per page read" (Section 4.2).
* ``handle_get_us + handle_unref_us ~= 125 us`` — the paper derives ~250 s
  of non-I/O time for a full scan of 2 M patients (Section 4.2), i.e.
  about 125 us of handle traffic per object.
* ``result_append_txn_us ~= 600 us`` — "the cost of constructing a
  collection of 1.8 millions integers is ... about 1100 seconds"
  (Section 4.2), i.e. ~0.6 ms per element in standard transaction mode.
* the memory model reproduces Figure 10's swap thresholds: hash tables of
  14.5 MB fit, tables of 57.6 MB and up swap.

Absolute wall-clock fidelity to a 1999 Sparc 20 is a non-goal (DESIGN.md,
Section 6); these constants exist so that the *shape* of every figure —
who wins, by what factor, where the crossovers sit — is reproduced by the
same mechanism the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.units import MB, PAGE_SIZE


@dataclass(frozen=True)
class MemoryModel:
    """RAM budget of the simulated machine (paper, Section 2: a Sparc 20
    with 128 MB of RAM, 4 MB server cache, 32 MB client cache, plus an
    unquantified slice for Solaris, AFS and the twm window manager).

    ``scale`` shrinks every budget by the same factor as the database so
    cache-hit ratios and swap thresholds are preserved (DESIGN.md §5).
    """

    ram_bytes: int = 128 * MB
    server_cache_bytes: int = 4 * MB
    client_cache_bytes: int = 32 * MB
    system_reserved_bytes: int = 52 * MB
    page_size: int = PAGE_SIZE

    def scaled(self, scale: float) -> "MemoryModel":
        """Return a copy with all budgets multiplied by ``scale``."""
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        return MemoryModel(
            ram_bytes=max(self.page_size, int(self.ram_bytes * scale)),
            server_cache_bytes=max(
                self.page_size, int(self.server_cache_bytes * scale)
            ),
            client_cache_bytes=max(
                self.page_size, int(self.client_cache_bytes * scale)
            ),
            system_reserved_bytes=int(self.system_reserved_bytes * scale),
            page_size=self.page_size,
        )

    @property
    def server_cache_pages(self) -> int:
        return max(1, self.server_cache_bytes // self.page_size)

    @property
    def client_cache_pages(self) -> int:
        return max(1, self.client_cache_bytes // self.page_size)

    @property
    def query_memory_bytes(self) -> int:
        """RAM available to query working structures (hash tables, sort
        runs) once the caches and the system slice are accounted for.

        With the defaults this is 40 MB, which reproduces Figure 10's
        finding that a 14.5 MB hash table fits while 57.6 MB tables swap.
        """
        free = (
            self.ram_bytes
            - self.server_cache_bytes
            - self.client_cache_bytes
            - self.system_reserved_bytes
        )
        return max(0, free)


@dataclass(frozen=True)
class CostParams:
    """Every modeled cost constant, in the unit its name states."""

    # --- I/O and client-server traffic -------------------------------
    #: Disk page read into the server cache (paper: 10 ms/page).
    page_read_ms: float = 10.0
    #: Disk page write from the server cache.
    page_write_ms: float = 10.0
    #: Page transfer server cache -> client cache.
    page_transfer_ms: float = 1.0
    #: Fixed overhead per client/server RPC.
    rpc_overhead_ms: float = 0.2
    #: Base delay before re-trying a transient page-read fault; the
    #: disk doubles it per attempt (bounded retry-with-backoff, see
    #: ``DiskManager.read_page``).
    io_retry_backoff_ms: float = 2.0
    #: Extra penalty per page when the OS swaps query working memory
    #: (thrashing reads *and* dirty-page writes, hence > page_read_ms;
    #: calibrated so Figure 12's 90/90 cell reproduces the paper's
    #: NOJOIN < NL < PHJ < CHJ ordering).
    swap_fault_ms: float = 40.0

    # --- handles (Section 4.4: the 60-byte representative) -----------
    #: Allocate + fill a full object handle ("get Handle h").
    handle_get_us: float = 80.0
    #: Unreference (and eventually free) a full handle.
    handle_unref_us: float = 45.0
    #: Same operations for the compact literal handle of the paper's
    #: proposed improvement (Section 4.4).
    compact_handle_get_us: float = 8.0
    compact_handle_unref_us: float = 4.0
    #: Multiplier applied to handle costs when handles are allocated in
    #: bulk for a whole page of objects (Section 4.4 proposal).
    bulk_handle_factor: float = 0.15

    # --- CPU micro-operations ----------------------------------------
    #: Compare two integers / two rids.
    compare_us: float = 0.05
    #: Per-element, per-log2(n) coefficient of an in-memory sort.
    sort_per_element_log_us: float = 0.35
    #: Insert an entry into a query hash table.
    hash_insert_us: float = 2.0
    #: Probe a query hash table.
    hash_probe_us: float = 1.2
    #: Decode one attribute from an on-page record.
    attr_decode_us: float = 0.8
    #: Evaluate one predicate term.
    predicate_us: float = 0.3

    # --- result construction (Section 4.2 arithmetic) ----------------
    #: Append an element to a query result under standard transaction
    #: mode (the result collection is built as if it could persist).
    result_append_txn_us: float = 600.0
    #: Append when the result is a transient, non-persistent value.
    result_append_us: float = 5.0

    # --- loading / transactions (Section 3.2) ------------------------
    #: Encode + insert one new object record.
    object_create_us: float = 120.0
    #: Per-record WAL append (amortized CPU; the flush is charged as
    #: page writes at commit time).
    log_append_us: float = 15.0
    #: Per-record CPU to scan or apply a log record during rollback and
    #: ARIES restart (analysis/redo/undo passes).
    log_apply_us: float = 10.0
    #: Acquire/release one lock.
    lock_us: float = 4.0
    #: Commit bookkeeping, per transaction.
    commit_ms: float = 5.0
    #: Move (reallocate) one object record on disk, e.g. when its header
    #: grows to gain index slots (Section 3.2's expensive re-indexing).
    record_move_us: float = 150.0

    # --- multi-version concurrency (Section 4.4 versioning weight) ---
    #: Copy a record's pre-image into its version chain on first update
    #: (one extra record materialization per record per writer txn).
    version_stash_us: float = 30.0
    #: Resolve a rid through the version chain to the snapshot-visible
    #: version (chain walk + record swap into a fresh handle).
    version_read_us: float = 12.0
    #: Examine one chain entry during the governed GC sweep.
    version_gc_us: float = 1.0

    memory: MemoryModel = field(default_factory=MemoryModel)

    def scaled(self, scale: float) -> "CostParams":
        """Return a copy whose memory model is scaled; time constants are
        per-operation and therefore scale-free."""
        return replace(self, memory=self.memory.scaled(scale))

    def remote_workstation(self) -> "CostParams":
        """Client and server on *different* machines (Figure 3's
        ``sameworkstation = false``): RPCs cross a LAN instead of a
        local socket, so per-round-trip overhead and page transfer both
        grow by an order of magnitude.  Disk and CPU are unchanged."""
        return replace(
            self,
            rpc_overhead_ms=self.rpc_overhead_ms * 10,
            page_transfer_ms=self.page_transfer_ms * 10,
        )
