"""The simulation clock.

Every substrate charges modeled time here, tagged with a :class:`Bucket`,
so that experiments can report both a total elapsed time (the paper's
``ElapsedTime``) and its decomposition (the paper's Figure 9 analysis of
standard scan vs sorted index scan).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.units import MS_PER_S, US_PER_S


class Bucket(enum.Enum):
    """Where a slice of simulated time was spent."""

    IO = "io"                # disk page reads/writes
    TRANSFER = "transfer"    # server cache -> client cache pages
    RPC = "rpc"              # per-RPC fixed overhead
    HANDLE = "handle"        # handle get/unreference
    CPU = "cpu"              # compares, decodes, predicates, hash ops
    SORT = "sort"            # sorting rids / keys
    RESULT = "result"        # result collection construction
    SWAP = "swap"            # OS paging of query working memory
    LOG = "log"              # WAL traffic
    LOCK = "lock"            # lock manager
    LOAD = "load"            # object creation / record moves
    BACKOFF = "backoff"      # retry backoff after aborts / faults
    REMOTE = "remote"        # waiting on parallel work at remote shards


@dataclass
class SimClock:
    """Accumulates simulated seconds, split by :class:`Bucket`.

    The clock is deliberately dumb: it never decides *what* costs, only
    adds up what components charge.  All mutating methods return ``None``.
    """

    _buckets: dict[Bucket, float] = field(default_factory=dict)

    def charge_ms(self, bucket: Bucket, ms: float) -> None:
        """Add ``ms`` milliseconds of simulated time to ``bucket``."""
        if ms < 0:
            raise ValueError(f"negative charge: {ms} ms")
        self._buckets[bucket] = self._buckets.get(bucket, 0.0) + ms / MS_PER_S

    def charge_us(self, bucket: Bucket, us: float) -> None:
        """Add ``us`` microseconds of simulated time to ``bucket``."""
        if us < 0:
            raise ValueError(f"negative charge: {us} us")
        self._buckets[bucket] = self._buckets.get(bucket, 0.0) + us / US_PER_S

    def charge_s(self, bucket: Bucket, seconds: float) -> None:
        """Add ``seconds`` of simulated time to ``bucket``."""
        if seconds < 0:
            raise ValueError(f"negative charge: {seconds} s")
        self._buckets[bucket] = self._buckets.get(bucket, 0.0) + seconds

    @property
    def elapsed_s(self) -> float:
        """Total simulated seconds across all buckets."""
        return sum(self._buckets.values())

    def bucket_s(self, bucket: Bucket) -> float:
        """Simulated seconds accumulated in one bucket."""
        return self._buckets.get(bucket, 0.0)

    def breakdown(self) -> dict[str, float]:
        """Mapping of bucket name to seconds, for reports."""
        return {bucket.value: seconds for bucket, seconds in self._buckets.items()}

    def reset(self) -> None:
        """Zero every bucket (start of a fresh, cold experiment)."""
        self._buckets.clear()

    def snapshot(self) -> dict[Bucket, float]:
        """Copy of the current per-bucket totals."""
        return dict(self._buckets)

    def since(self, earlier: dict[Bucket, float]) -> dict[Bucket, float]:
        """Per-bucket difference between now and a prior :meth:`snapshot`.

        Buckets are emitted in name order: this dict flows into Stat
        rows and reports, so its iteration order must not depend on set
        hashing."""
        buckets = sorted(set(self._buckets) | set(earlier), key=lambda b: b.value)
        return {
            bucket: self._buckets.get(bucket, 0.0) - earlier.get(bucket, 0.0)
            for bucket in buckets
        }
