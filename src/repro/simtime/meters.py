"""Event counters shared by the storage and buffer substrates.

The paper's ``Stat`` schema (Figure 3) records, for every experiment, the
number of RPCs, their total size, disk-to-server-cache page reads,
server-to-client-cache page reads, client-cache page faults and the two
miss rates.  :class:`CounterSet` is the mutable tally those components
update; :class:`MeterSnapshot` is the immutable difference between two
points in time that gets stored in a ``Stat`` row.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class CounterSet:
    """Mutable event counters for one simulated system."""

    disk_reads: int = 0          # pages read disk -> server cache
    disk_writes: int = 0         # pages written server cache -> disk
    server_to_client: int = 0    # pages read server cache -> client cache
    rpcs: int = 0                # client/server round trips
    rpc_bytes: int = 0           # total payload of those RPCs
    client_faults: int = 0       # client-cache misses (page faults)
    client_hits: int = 0         # client-cache hits
    server_faults: int = 0       # server-cache misses
    server_hits: int = 0         # server-cache hits
    swap_faults: int = 0         # OS paging events on query memory
    handles_allocated: int = 0   # full + compact handles created
    handles_unreferenced: int = 0
    records_moved: int = 0       # on-disk record reallocations
    io_faults: int = 0           # transient page-read faults retried
    io_failures: int = 0         # reads escalated to PermanentIOError

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    def snapshot(self) -> "MeterSnapshot":
        return MeterSnapshot(
            **{f.name: getattr(self, f.name) for f in fields(self)}
        )


@dataclass(frozen=True)
class MeterSnapshot:
    """Immutable counter values (or counter deltas)."""

    disk_reads: int = 0
    disk_writes: int = 0
    server_to_client: int = 0
    rpcs: int = 0
    rpc_bytes: int = 0
    client_faults: int = 0
    client_hits: int = 0
    server_faults: int = 0
    server_hits: int = 0
    swap_faults: int = 0
    handles_allocated: int = 0
    handles_unreferenced: int = 0
    records_moved: int = 0
    io_faults: int = 0
    io_failures: int = 0

    def __sub__(self, other: "MeterSnapshot") -> "MeterSnapshot":
        return MeterSnapshot(
            **{
                f.name: getattr(self, f.name) - getattr(other, f.name)
                for f in fields(self)
            }
        )

    @property
    def client_miss_rate(self) -> float:
        """Client-cache miss rate in [0, 1] (``CCMissrate`` in Figure 3)."""
        accesses = self.client_hits + self.client_faults
        if accesses == 0:
            return 0.0
        return self.client_faults / accesses

    @property
    def server_miss_rate(self) -> float:
        """Server-cache miss rate in [0, 1] (``SCMissrate`` in Figure 3)."""
        accesses = self.server_hits + self.server_faults
        if accesses == 0:
            return 0.0
        return self.server_faults / accesses
