"""Simulated time: the cost model and the clock every substrate charges.

The paper analyses its measurements as a sum of I/O time ("assuming 10 ms
per page read", Section 4.2) and CPU terms (handle get/unreference, rid
sorts, integer compares — Figure 9).  This package makes that
decomposition executable: a :class:`~repro.simtime.clock.SimClock`
accumulates modeled time in named buckets, and
:class:`~repro.simtime.params.CostParams` holds every constant, calibrated
against the arithmetic the paper itself performs.
"""

from repro.simtime.clock import Bucket, SimClock
from repro.simtime.meters import CounterSet, MeterSnapshot
from repro.simtime.params import CostParams, MemoryModel

__all__ = [
    "Bucket",
    "SimClock",
    "CostParams",
    "MemoryModel",
    "CounterSet",
    "MeterSnapshot",
]
