"""Benchmark-result storage — the paper's Figure 3 schema, self-hosted.

"After messing around in this fashion for some time, we realized that a
database was a very reasonable place to store information" (Section 3.3).
This package stores every experiment as a ``Stat`` object — with its
``Query``, ``Extent`` and ``System`` companions — inside an instance of
*this library's own object database*, and provides the query helpers and
export tools (CSV, gnuplot) the paper built around its results database.
"""

from repro.stats.export import (
    mix_to_csv,
    optimizer_to_csv,
    recovery_to_csv,
    replication_to_csv,
    sharding_to_csv,
    to_csv,
    to_gnuplot,
)
from repro.stats.schema import build_stats_schema
from repro.stats.store import StatRow, StatsDatabase

__all__ = [
    "build_stats_schema",
    "StatsDatabase",
    "StatRow",
    "to_csv",
    "to_gnuplot",
    "mix_to_csv",
    "optimizer_to_csv",
    "recovery_to_csv",
    "replication_to_csv",
    "sharding_to_csv",
]
