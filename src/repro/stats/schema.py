"""The Figure 3 object schema for benchmark results.

Classes (attribute comments quote the paper's own annotations)::

    class Stat
        numtest, query: Query, database: {Extent}, cluster, algo,
        system: System,
        CCPagefaults      /* page faults in the client cache */
        ElapsedTime       /* elapsed time of the query */
        RPCsnumber        /* RPCs between client and server cache */
        RPCstotalsize     /* total size (Mb) of those messages */
        D2SCreadpages     /* pages read disk -> server cache */
        SC2CCreadpages    /* pages read server cache -> client cache */
        CCMissrate        /* client cache miss rate (percent) */
        SCMissrate        /* server cache miss rate (percent) */

    class Query:  cold, projectiontype, selectivity, text
    class Extent: classname, size, associations {[extent, linkratio]}
    class System: servercachesize, clientcachesize, sameworkstation
"""

from __future__ import annotations

from repro.objects.model import AttrKind, AttributeDef, Schema

STAT_CLASS = "Stat"
QUERY_CLASS = "Query"
EXTENT_CLASS = "Extent"
SYSTEM_CLASS = "System"
ASSOCIATION_CLASS = "Association"

# Optimizer-statistics classes (the ANALYZE pass persists its output
# through the same results database — see repro.opt.persist).
COLUMN_STAT_CLASS = "ColumnStat"
HIST_BUCKET_CLASS = "HistBucket"
EXTENT_STAT_CLASS = "ExtentStat"
FANOUT_STAT_CLASS = "FanoutStat"

#: Query text is longer than the default 16-byte strings.
_TEXT_WIDTH = 128


def build_stats_schema() -> Schema:
    """The Figure 3 schema, expressed in our object model."""
    schema = Schema()
    schema.define(
        SYSTEM_CLASS,
        [
            AttributeDef("servercachesize", AttrKind.INT32),
            AttributeDef("clientcachesize", AttrKind.INT32),
            AttributeDef("sameworkstation", AttrKind.BOOL),
        ],
    )
    schema.define(
        QUERY_CLASS,
        [
            AttributeDef("cold", AttrKind.BOOL),
            AttributeDef("projectiontype", AttrKind.STRING, width=32),
            AttributeDef("selectivity", AttrKind.INT32),
            AttributeDef("text", AttrKind.STRING, width=_TEXT_WIDTH),
        ],
    )
    schema.define(
        EXTENT_CLASS,
        [
            AttributeDef("classname", AttrKind.STRING, width=32),
            AttributeDef("size", AttrKind.INT32),
            AttributeDef("associations", AttrKind.REF_SET, target=ASSOCIATION_CLASS),
        ],
    )
    schema.define(
        ASSOCIATION_CLASS,
        [
            AttributeDef("extent", AttrKind.REF, target=EXTENT_CLASS),
            AttributeDef("linkratio", AttrKind.INT32),
        ],
    )
    schema.define(
        STAT_CLASS,
        [
            AttributeDef("numtest", AttrKind.INT32),
            AttributeDef("query", AttrKind.REF, target=QUERY_CLASS),
            AttributeDef("database", AttrKind.REF_SET, target=EXTENT_CLASS),
            AttributeDef("cluster", AttrKind.STRING, width=32),
            AttributeDef("algo", AttrKind.STRING, width=32),
            AttributeDef("system", AttrKind.REF, target=SYSTEM_CLASS),
            AttributeDef("CCPagefaults", AttrKind.INT32),
            AttributeDef("ElapsedTime", AttrKind.REAL64),
            AttributeDef("RPCsnumber", AttrKind.INT32),
            AttributeDef("RPCstotalsize", AttrKind.REAL64),
            AttributeDef("D2SCreadpages", AttrKind.INT32),
            AttributeDef("SC2CCreadpages", AttrKind.INT32),
            AttributeDef("CCMissrate", AttrKind.INT32),
            AttributeDef("SCMissrate", AttrKind.INT32),
            # Pipeline instrumentation (post-paper extension): simulated
            # milliseconds to the first result row, and the high-water
            # mark of rows buffered across the operator tree.
            AttributeDef("FirstRowTime", AttrKind.REAL64),
            AttributeDef("PeakLiveRows", AttrKind.INT32),
            # Governor instrumentation: retried statements, cooperative
            # cancellations delivered, and budget-exceeded aborts.
            AttributeDef("Retries", AttrKind.INT32),
            AttributeDef("Cancelled", AttrKind.INT32),
            AttributeDef("OverBudget", AttrKind.INT32),
        ],
    )
    # Optimizer statistics: what an ANALYZE pass learns about one
    # database, in the same spirit as the Figure 3 result classes.
    schema.define(
        HIST_BUCKET_CLASS,
        [
            AttributeDef("upper", AttrKind.REAL64),
            AttributeDef("count", AttrKind.INT32),
        ],
    )
    schema.define(
        COLUMN_STAT_CLASS,
        [
            AttributeDef("extentname", AttrKind.STRING, width=32),
            AttributeDef("attrname", AttrKind.STRING, width=32),
            AttributeDef("lovalue", AttrKind.REAL64),
            AttributeDef("minval", AttrKind.REAL64),
            AttributeDef("maxval", AttrKind.REAL64),
            AttributeDef("ndistinct", AttrKind.INT32),
            AttributeDef("buckets", AttrKind.REF_SET, target=HIST_BUCKET_CLASS),
        ],
    )
    schema.define(
        EXTENT_STAT_CLASS,
        [
            AttributeDef("collection", AttrKind.STRING, width=32),
            AttributeDef("nobjects", AttrKind.INT32),
            AttributeDef("filepages", AttrKind.INT32),
            AttributeDef("extentpages", AttrKind.INT32),
            AttributeDef("sampled", AttrKind.INT32),
        ],
    )
    schema.define(
        FANOUT_STAT_CLASS,
        [
            AttributeDef("parent", AttrKind.STRING, width=32),
            AttributeDef("setattr", AttrKind.STRING, width=32),
            AttributeDef("child", AttrKind.STRING, width=32),
            AttributeDef("sampled", AttrKind.INT32),
            AttributeDef("avgchildren", AttrKind.REAL64),
            AttributeDef("maxchildren", AttrKind.INT32),
            AttributeDef("withchildren", AttrKind.REAL64),
        ],
    )
    return schema
