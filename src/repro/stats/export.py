"""Export benchmark results for external analysis.

The paper converted its O2 results to Gnuplot input with YAT [8]; we go
straight to CSV and gnuplot ``.dat`` text from :class:`StatRow` lists.
"""

from __future__ import annotations

import io
from typing import Iterable, Sequence

from repro.stats.store import StatRow

_CSV_COLUMNS = (
    "numtest",
    "algo",
    "cluster",
    "selectivity",
    "selectivity_parents",
    "cold",
    "elapsed_s",
    "rpcs",
    "rpc_mb",
    "d2sc_pages",
    "sc2cc_pages",
    "cc_faults",
    "cc_missrate",
    "sc_missrate",
    "first_row_ms",
    "peak_rows",
    "retries",
    "cancelled",
    "over_budget",
)


def to_csv(rows: Iterable[StatRow]) -> str:
    """Render rows as CSV text (header + one line per Stat)."""
    out = io.StringIO()
    out.write(",".join(_CSV_COLUMNS) + "\n")
    for row in rows:
        values = [getattr(row, col) for col in _CSV_COLUMNS]
        out.write(
            ",".join(
                f"{v:.4f}" if isinstance(v, float) else str(v) for v in values
            )
            + "\n"
        )
    return out.getvalue()


_MIX_COLUMNS = (
    "session",
    "profile",
    "committed",
    "aborted",
    "deadlocks",
    "timeouts",
    "conflicts",
    "queries",
    "updates",
    "busy_s",
    "lock_wait_s",
    "lock_waits",
    "mean_latency_s",
    "max_latency_s",
    "throughput_ops_s",
    "client_faults",
    "server_hits",
    "disk_reads",
    "first_row_ms",
    "peak_rows",
    "retries",
    "cancelled",
    "over_budget",
    "queue_wait_ms",
)


def mix_to_csv(report) -> str:
    """Render a :class:`repro.service.MixReport`'s per-session metrics
    as CSV (duck-typed so this module never imports ``repro.service``,
    which imports us)."""
    out = io.StringIO()
    out.write(",".join(_MIX_COLUMNS) + "\n")
    for sr in report.sessions:
        m = sr.metrics
        values = (
            sr.name,
            sr.profile,
            m.committed,
            m.aborted,
            m.deadlocks,
            m.timeouts,
            m.conflicts,
            m.queries,
            m.updates,
            m.busy_s,
            m.lock_wait_s,
            m.lock_waits,
            m.mean_latency_s,
            m.max_latency_s,
            sr.throughput_ops_s,
            m.meters.client_faults,
            m.meters.server_hits,
            m.meters.disk_reads,
            m.mean_first_row_ms,
            m.peak_rows,
            m.retries,
            m.cancelled,
            m.over_budget,
            m.queue_wait_s * 1_000.0,
        )
        out.write(
            ",".join(
                f"{v:.4f}" if isinstance(v, float) else str(v) for v in values
            )
            + "\n"
        )
    return out.getvalue()


_RECOVERY_COLUMNS = (
    "label",
    "crash_point",
    "checkpoint_every",
    "txns",
    "updates",
    "committed",
    "lost",
    "recovery_s",
    "log_records_scanned",
    "log_pages_read",
    "pages_redone",
    "records_redone",
    "txns_undone",
    "records_undone",
    "durability_ok",
)


def recovery_to_csv(rows) -> str:
    """Render recovery-run rows as CSV in the same spirit as the Figure 3
    stats schema (duck-typed like :func:`mix_to_csv`: any object carrying
    the column attributes works — missing attributes render empty)."""
    out = io.StringIO()
    out.write(",".join(_RECOVERY_COLUMNS) + "\n")
    for row in rows:
        values = [getattr(row, col, "") for col in _RECOVERY_COLUMNS]
        out.write(
            ",".join(
                f"{v:.4f}" if isinstance(v, float) else str(v) for v in values
            )
            + "\n"
        )
    return out.getvalue()


_OPTIMIZER_COLUMNS = (
    "family",
    "database",
    "clustering",
    "label",
    "heuristic_plan",
    "cost_plan",
    "est_rows",
    "actual_rows",
    "rows_qerror",
    "est_cost_s",
    "actual_cost_s",
    "cost_qerror",
    "heuristic_s",
    "cost_s",
    "speedup",
    "validated",
)


def optimizer_to_csv(rows) -> str:
    """Render optimizer-leaderboard cells (``bench_optimizer``'s
    per-query records) as CSV — duck-typed like :func:`mix_to_csv`:
    any object carrying the column attributes works, missing ones
    render empty."""
    out = io.StringIO()
    out.write(",".join(_OPTIMIZER_COLUMNS) + "\n")
    for row in rows:
        values = [getattr(row, col, "") for col in _OPTIMIZER_COLUMNS]
        out.write(
            ",".join(
                f"{v:.4f}" if isinstance(v, float) else str(v) for v in values
            )
            + "\n"
        )
    return out.getvalue()


_SHARDING_COLUMNS = (
    "label",
    "n_shards",
    "scheme",
    "shard",
    "providers",
    "patients",
    "busy_s",
    "remote_wait_s",
    "msgs",
    "msg_bytes",
    "pages_read",
    "pages_written",
    "rows_shipped",
    "lock_wait_s",
)


def sharding_to_csv(rows) -> str:
    """Render per-shard benchmark records (``bench_sharding``'s rows:
    one line per shard per configuration — pages, messages, queue
    waits) as CSV.  Duck-typed like :func:`mix_to_csv` so this module
    never imports ``repro.dist``; any object carrying the column
    attributes works, missing ones render empty."""
    out = io.StringIO()
    out.write(",".join(_SHARDING_COLUMNS) + "\n")
    for row in rows:
        values = [getattr(row, col, "") for col in _SHARDING_COLUMNS]
        out.write(
            ",".join(
                f"{v:.4f}" if isinstance(v, float) else str(v) for v in values
            )
            + "\n"
        )
    return out.getvalue()


_REPLICATION_COLUMNS = (
    "label",
    "n_shards",
    "ship_mode",
    "shard",
    "ship_msgs",
    "shipped_records",
    "shipped_bytes",
    "ship_lag_records",
    "ack_wait_s",
    "failovers",
    "epoch",
    "unavailable_s",
    "loss_window_records",
)


def replication_to_csv(rows) -> str:
    """Render per-shard replication records (``bench_replication``'s
    rows: one line per shard per configuration — ship traffic and lag,
    ack latency, failover counts, downtime, acked-loss windows) as CSV.
    Duck-typed like :func:`sharding_to_csv`; any object carrying the
    column attributes works, missing ones render empty."""
    out = io.StringIO()
    out.write(",".join(_REPLICATION_COLUMNS) + "\n")
    for row in rows:
        values = [getattr(row, col, "") for col in _REPLICATION_COLUMNS]
        out.write(
            ",".join(
                f"{v:.4f}" if isinstance(v, float) else str(v) for v in values
            )
            + "\n"
        )
    return out.getvalue()


def to_gnuplot(
    rows: Sequence[StatRow],
    x: str = "selectivity",
    y: str = "elapsed_s",
    series: str = "algo",
) -> str:
    """Render rows as a gnuplot ``.dat`` file: one indexed block per
    series value, ``x y`` pairs sorted by x."""
    blocks: dict[str, list[tuple[float, float]]] = {}
    for row in rows:
        key = str(getattr(row, series))
        blocks.setdefault(key, []).append(
            (float(getattr(row, x)), float(getattr(row, y)))
        )
    out = io.StringIO()
    for name in sorted(blocks):
        out.write(f"# series: {name}\n")
        for px, py in sorted(blocks[name]):
            out.write(f"{px:g} {py:g}\n")
        out.write("\n\n")
    return out.getvalue()
