"""The benchmark-results database.

A :class:`StatsDatabase` is an instance of this library's own object
database holding ``Stat`` objects — the paper's own medicine, taken.
``record_experiment`` turns one measured run (metadata + meter snapshot +
elapsed simulated time) into a persistent ``Stat``; the query helpers do
what the paper praises a real query language for ("a query language can
be used to extract the information you are looking for").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.objects.database import Database
from repro.simtime import MeterSnapshot
from repro.stats.schema import (
    COLUMN_STAT_CLASS,
    EXTENT_CLASS,
    EXTENT_STAT_CLASS,
    FANOUT_STAT_CLASS,
    HIST_BUCKET_CLASS,
    QUERY_CLASS,
    STAT_CLASS,
    SYSTEM_CLASS,
    build_stats_schema,
)
from repro.storage.rid import Rid
from repro.units import MB

_FILE = "stats"


@dataclass(frozen=True)
class StatRow:
    """One decoded Stat (plus its Query), flat for analysis/export."""

    numtest: int
    algo: str
    cluster: str
    selectivity: int
    selectivity_parents: int
    cold: bool
    projectiontype: str
    text: str
    elapsed_s: float
    rpcs: int
    rpc_mb: float
    d2sc_pages: int
    sc2cc_pages: int
    cc_faults: int
    cc_missrate: int
    sc_missrate: int
    #: Simulated milliseconds from query start to the first result row
    #: (0.0 when the run predates pipelining or produced no rows).
    first_row_ms: float = 0.0
    #: High-water mark of rows buffered across the operator tree.
    peak_rows: int = 0
    #: Statements retried after a deadlock/lock-timeout abort.
    retries: int = 0
    #: Cooperative cancellations delivered by the resource governor.
    cancelled: int = 0
    #: Statements aborted for exceeding a resource budget.
    over_budget: int = 0


@dataclass(frozen=True)
class ExtentStatRow:
    """One decoded ExtentStat (ANALYZE output), flat for reloading."""

    collection: str
    n_objects: int
    file_pages: int
    extent_pages: int
    sampled: int


@dataclass(frozen=True)
class ColumnStatRow:
    """One decoded ColumnStat with its histogram buckets in order."""

    collection: str
    attr: str
    lo: float
    min_value: float
    max_value: float
    n_distinct: int
    buckets: tuple[tuple[float, int], ...]   # (upper, count) per bucket


@dataclass(frozen=True)
class FanoutStatRow:
    """One decoded FanoutStat (association fan-out)."""

    parent: str
    set_attr: str
    child: str
    sampled: int
    avg_children: float
    max_children: int
    frac_with_children: float


class StatsDatabase:
    """Stores and queries experiment results."""

    def __init__(self) -> None:
        self.db = Database(build_stats_schema())
        self.db.create_file(_FILE)
        self.stats = self.db.new_collection("Stats")
        #: Optimizer-statistics collections, created on first use so
        #: experiment-only databases pay nothing for them.
        self._opt_collections: dict[str, object] = {}
        self._numtest = 0
        #: (selectivity on children, selectivity on parents) per stat,
        #: kept alongside because Figure 3's Query has one selectivity
        #: field while the Section 5 experiments vary two.
        self._parent_sel: dict[Rid, int] = {}

    # -- recording ----------------------------------------------------------

    def record_experiment(
        self,
        algo: str,
        cluster: str,
        elapsed_s: float,
        meters: MeterSnapshot,
        text: str = "",
        selectivity: int = 0,
        selectivity_parents: int = 0,
        cold: bool = True,
        projectiontype: str = "tuple",
        server_cache_bytes: int = 0,
        client_cache_bytes: int = 0,
        first_row_ms: float = 0.0,
        peak_rows: int = 0,
        retries: int = 0,
        cancelled: int = 0,
        over_budget: int = 0,
    ) -> Rid:
        """Persist one experiment; returns the Stat's rid."""
        self._numtest += 1
        system_rid = self.db.create_object(
            SYSTEM_CLASS,
            {
                "servercachesize": server_cache_bytes,
                "clientcachesize": client_cache_bytes,
                "sameworkstation": True,
            },
            _FILE,
        )
        query_rid = self.db.create_object(
            QUERY_CLASS,
            {
                "cold": cold,
                "projectiontype": projectiontype,
                "selectivity": selectivity,
                "text": text,
            },
            _FILE,
        )
        stat_rid = self.db.create_object(
            STAT_CLASS,
            {
                "numtest": self._numtest,
                "query": query_rid,
                "cluster": cluster,
                "algo": algo,
                "system": system_rid,
                "CCPagefaults": meters.client_faults,
                "ElapsedTime": elapsed_s,
                "RPCsnumber": meters.rpcs,
                "RPCstotalsize": meters.rpc_bytes / MB,
                "D2SCreadpages": meters.disk_reads,
                "SC2CCreadpages": meters.server_to_client,
                "CCMissrate": round(meters.client_miss_rate * 100),
                "SCMissrate": round(meters.server_miss_rate * 100),
                "FirstRowTime": first_row_ms,
                "PeakLiveRows": peak_rows,
                "Retries": retries,
                "Cancelled": cancelled,
                "OverBudget": over_budget,
            },
            _FILE,
        )
        self.stats.append(stat_rid)
        self._parent_sel[stat_rid] = selectivity_parents
        return stat_rid

    def record_extent(self, classname: str, size: int) -> Rid:
        """Persist an Extent description (database shape metadata)."""
        return self.db.create_object(
            EXTENT_CLASS, {"classname": classname, "size": size}, _FILE
        )

    # -- optimizer statistics (ANALYZE output) ------------------------------

    def _opt_collection(self, name: str):
        collection = self._opt_collections.get(name)
        if collection is None:
            collection = self.db.new_collection(name)
            self._opt_collections[name] = collection
        return collection

    def record_extent_stat(
        self, collection: str, n_objects: int, file_pages: int,
        extent_pages: int, sampled: int,
    ) -> Rid:
        """Persist one extent's ANALYZE cardinalities."""
        rid = self.db.create_object(
            EXTENT_STAT_CLASS,
            {
                "collection": collection,
                "nobjects": n_objects,
                "filepages": file_pages,
                "extentpages": extent_pages,
                "sampled": sampled,
            },
            _FILE,
        )
        self._opt_collection("ExtentStats").append(rid)
        return rid

    def record_column_stat(
        self,
        collection: str,
        attr: str,
        lo: float,
        min_value: float,
        max_value: float,
        n_distinct: int,
        buckets: list[tuple[float, int]],
    ) -> Rid:
        """Persist one attribute's equi-depth histogram.  Buckets become
        HistBucket objects referenced, in order, by the ColumnStat's set
        (overflow chunks preserve insertion order, so the histogram
        round-trips exactly)."""
        bucket_rids = [
            self.db.create_object(
                HIST_BUCKET_CLASS,
                {"upper": upper, "count": count},
                _FILE,
            )
            for upper, count in buckets
        ]
        rid = self.db.create_object(
            COLUMN_STAT_CLASS,
            {
                "extentname": collection,
                "attrname": attr,
                "lovalue": lo,
                "minval": min_value,
                "maxval": max_value,
                "ndistinct": n_distinct,
                "buckets": bucket_rids,
            },
            _FILE,
        )
        self._opt_collection("ColumnStats").append(rid)
        return rid

    def record_fanout_stat(
        self,
        parent: str,
        set_attr: str,
        child: str,
        sampled: int,
        avg_children: float,
        max_children: int,
        frac_with_children: float,
    ) -> Rid:
        """Persist one association's fan-out statistics."""
        rid = self.db.create_object(
            FANOUT_STAT_CLASS,
            {
                "parent": parent,
                "setattr": set_attr,
                "child": child,
                "sampled": sampled,
                "avgchildren": avg_children,
                "maxchildren": max_children,
                "withchildren": frac_with_children,
            },
            _FILE,
        )
        self._opt_collection("FanoutStats").append(rid)
        return rid

    def _decode(self, rid: Rid) -> dict:
        om = self.db.manager
        record, class_def = om.read_record(rid)
        return om.codec(class_def).decode(record)

    def extent_stat_rows(self) -> list[ExtentStatRow]:
        """Decode every stored ExtentStat, in recording order."""
        out = []
        for rid in self._opt_collection("ExtentStats").iter_rids():
            data = self._decode(rid)
            out.append(ExtentStatRow(
                collection=data["collection"],
                n_objects=data["nobjects"],
                file_pages=data["filepages"],
                extent_pages=data["extentpages"],
                sampled=data["sampled"],
            ))
        return out

    def column_stat_rows(self) -> list[ColumnStatRow]:
        """Decode every stored ColumnStat with its buckets, in order."""
        out = []
        for rid in self._opt_collection("ColumnStats").iter_rids():
            data = self._decode(rid)
            buckets = []
            for bucket_rid in self.db.iter_set_rids(data["buckets"]):
                bucket = self._decode(bucket_rid)
                buckets.append((bucket["upper"], bucket["count"]))
            out.append(ColumnStatRow(
                collection=data["extentname"],
                attr=data["attrname"],
                lo=data["lovalue"],
                min_value=data["minval"],
                max_value=data["maxval"],
                n_distinct=data["ndistinct"],
                buckets=tuple(buckets),
            ))
        return out

    def fanout_stat_rows(self) -> list[FanoutStatRow]:
        """Decode every stored FanoutStat, in recording order."""
        out = []
        for rid in self._opt_collection("FanoutStats").iter_rids():
            data = self._decode(rid)
            out.append(FanoutStatRow(
                parent=data["parent"],
                set_attr=data["setattr"],
                child=data["child"],
                sampled=data["sampled"],
                avg_children=data["avgchildren"],
                max_children=data["maxchildren"],
                frac_with_children=data["withchildren"],
            ))
        return out

    # -- querying -------------------------------------------------------------

    def rows(
        self,
        algo: str | None = None,
        cluster: str | None = None,
        selectivity: int | None = None,
        cold: bool | None = None,
    ) -> list[StatRow]:
        """Decode (and filter) every stored Stat."""
        om = self.db.manager
        out: list[StatRow] = []
        for rid in self.stats.iter_rids():
            record, class_def = om.read_record(rid)
            codec = om.codec(class_def)
            stat = codec.decode(record)
            query_rid = stat["query"]
            qrecord, qclass = om.read_record(query_rid)
            query = om.codec(qclass).decode(qrecord)
            row = StatRow(
                numtest=stat["numtest"],
                algo=stat["algo"],
                cluster=stat["cluster"],
                selectivity=query["selectivity"],
                selectivity_parents=self._parent_sel.get(rid, 0),
                cold=query["cold"],
                projectiontype=query["projectiontype"],
                text=query["text"],
                elapsed_s=stat["ElapsedTime"],
                rpcs=stat["RPCsnumber"],
                rpc_mb=stat["RPCstotalsize"],
                d2sc_pages=stat["D2SCreadpages"],
                sc2cc_pages=stat["SC2CCreadpages"],
                cc_faults=stat["CCPagefaults"],
                cc_missrate=stat["CCMissrate"],
                sc_missrate=stat["SCMissrate"],
                first_row_ms=stat["FirstRowTime"],
                peak_rows=stat["PeakLiveRows"],
                retries=stat["Retries"],
                cancelled=stat["Cancelled"],
                over_budget=stat["OverBudget"],
            )
            if algo is not None and row.algo != algo:
                continue
            if cluster is not None and row.cluster != cluster:
                continue
            if selectivity is not None and row.selectivity != selectivity:
                continue
            if cold is not None and row.cold != cold:
                continue
            out.append(row)
        return out

    def best_algorithm(
        self, cluster: str, selectivity: int, selectivity_parents: int
    ) -> StatRow | None:
        """The fastest recorded algorithm for one experimental cell."""
        candidates = [
            row
            for row in self.rows(cluster=cluster, selectivity=selectivity)
            if row.selectivity_parents == selectivity_parents
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda row: row.elapsed_s)

    def __len__(self) -> int:
        return len(self.stats)
