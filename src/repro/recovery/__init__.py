"""Crash recovery: physical WAL replay, checkpoints, fault injection.

The subsystem has three parts.  :mod:`repro.recovery.aries` is the
ARIES-lite restart driver (analysis/redo/undo over the durable log) and
the checkpoint writer.  :mod:`repro.recovery.crash` owns the crash
semantics — a :class:`CrashInjector` that kills the system at named
crash points and :func:`crash_database`, which discards everything
volatile.  :mod:`repro.recovery.fuzz` is the seeded correctness checker
that crashes random workloads at random points and verifies the
committed-visible / uncommitted-gone contract after restart.

:mod:`repro.recovery.transient` covers the *survivable* failure modes:
a :class:`TransientFaultInjector` arms seeded transient page-read
faults (retried with backoff by the disk, escalated to
:class:`~repro.errors.PermanentIOError` when sticky) and lock-timeout
storms; the chaos checker over workload mixes lives in
:mod:`repro.service.chaos` (the service layer sits above recovery).

See ``docs/recovery.md`` for the log format and the recovery protocol.
"""

from repro.recovery.aries import (
    RecoveryReport,
    redo_apply,
    restart,
    take_checkpoint,
)
from repro.recovery.crash import CRASH_POINTS, CrashInjector, crash_database
from repro.recovery.fuzz import (
    FuzzResult,
    run_case,
    run_fuzz,
    summarize,
)
from repro.recovery.transient import TransientFaultInjector

__all__ = [
    "CRASH_POINTS",
    "CrashInjector",
    "FuzzResult",
    "TransientFaultInjector",
    "RecoveryReport",
    "crash_database",
    "redo_apply",
    "restart",
    "run_case",
    "run_fuzz",
    "summarize",
    "take_checkpoint",
]
