"""Seeded crash-recovery fuzz checker.

Each case builds a small durably-loaded database, runs a seeded random
transactional workload with a :class:`CrashInjector` armed at one of the
named crash points, crashes, restarts through the ARIES-lite driver and
then verifies the recovery contract against an oracle kept outside the
simulated system:

* every transaction whose ``commit()`` returned (the ack) has a durable
  commit record — no lost acks;
* the recovered value of every record equals the last write of the
  durably-committed transactions, applied in commit-LSN order;
* every object created by a loser transaction is gone;
* recovery is deterministic: re-running the same (seed, crash point)
  case reproduces the identical recovered state and report;
* **snapshot consistency** (``mix-run`` cases): a snapshot-isolation
  reader runs alongside the writers, and every value it reads must
  equal the committed state of that record *at the reader's begin
  timestamp* — stable across writer commits, aborts and yields — per
  an oracle maintained outside the simulated system.

``mix-run`` cases drive several concurrent workers through the
cooperative scheduler (lock waits, deadlock retries) — the same
machinery the :class:`~repro.service.WorkloadMixer` runs on — so the
crash lands mid-concurrent-run; the other points use a two-slot
interleaved workload over disjoint key pools.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random

from repro.errors import (
    LockConflictError,
    ReproError,
    ServiceError,
    SimulatedCrashError,
    StorageError,
)
from repro.objects import AttrKind, AttributeDef, Database, Schema
from repro.recovery.aries import RecoveryReport, restart, take_checkpoint
from repro.recovery.crash import CRASH_POINTS, CrashInjector, crash_database
from repro.storage.rid import Rid
from repro.txn import TransactionManager

#: Fixed-width filler so base records spread over several pages.
_PAD = "x" * 96

#: How many times each crash point can plausibly be reached in one case;
#: the occurrence is drawn from this range so crashes land early, late
#: and (sometimes) never — the never case degenerates to a clean crash
#: at quiesce, which recovery must also handle.
_OCCURRENCE_RANGE = {
    "log-append": 48,
    "commit-flush": 14,
    "flush-write-gap": 8,
    "checkpoint": 4,
    "mix-run": 56,
}


@dataclass
class FuzzResult:
    """Outcome of one (seed, crash point) case."""

    seed: int
    point: str
    occurrence: int
    fired: bool
    txns_started: int
    acked: int
    durable_commits: int
    losers: int
    failures: list[str] = field(default_factory=list)
    report: RecoveryReport = field(default_factory=RecoveryReport)
    #: Canonical recovered state: ``((rid, value | None), ...)`` — used
    #: by the determinism check.
    digest: tuple = ()

    @property
    def ok(self) -> bool:
        return not self.failures


def _make_db(base_records: int = 96) -> tuple[Database, list[Rid]]:
    """A small Thing database whose base records are durably on disk."""
    schema = Schema()
    schema.define(
        "Thing",
        [
            AttributeDef("x", AttrKind.INT32),
            AttributeDef("pad", AttrKind.STRING, width=len(_PAD)),
        ],
    )
    db = Database(schema)
    db.create_file("things")
    rids = [
        db.create_object("Thing", {"x": i * 100, "pad": _PAD}, "things")
        for i in range(base_records)
    ]
    db.shutdown()  # flush: the preload is durable before the fuzz starts
    return db, rids


def _read_x(db: Database, rid: Rid):
    """Recovered value of ``rid``'s x, or ``None`` if the record is gone."""
    try:
        return db.manager.get_attr_at(rid, "x")
    except (StorageError, ReproError):
        return None


def run_case(
    seed: int,
    point: str,
    txns: int = 10,
    checkpoint_every: int = 3,
) -> FuzzResult:
    """Run one seeded workload, crash at ``point``, recover and verify."""
    rng = Random(seed * 1_000_003 + CRASH_POINTS.index(point))
    db, rids = _make_db()
    txm = TransactionManager(db, recovery=True)
    occurrence = rng.randint(1, _OCCURRENCE_RANGE[point])
    injector = CrashInjector(point, occurrence)
    injector.arm(db, txm.log)

    base = {rid: i * 100 for i, rid in enumerate(rids)}
    txn_writes: dict[int, dict[Rid, int]] = {}
    txn_creates: dict[int, list[Rid]] = {}
    acked: list[int] = []

    snapshot_failures: list[str] = []
    try:
        if point == "mix-run":
            started = _mix_workload(
                db, txm, rids, rng, txn_writes, txn_creates, acked,
                snapshot_failures,
            )
        else:
            started = _two_slot_workload(
                db, txm, rids, rng, txn_writes, txn_creates, acked,
                txns, checkpoint_every,
            )
    except SimulatedCrashError:
        started = len(txn_writes)

    crash_database(db, txm)
    commit_order = [r.txn_id for r in txm.log.records if r.kind == "commit"]
    report = restart(db, txm)

    failures: list[str] = list(snapshot_failures)
    durable = set(commit_order)
    for txn_id in acked:
        if txn_id not in durable:
            failures.append(f"txn {txn_id}: commit acked but not durable")

    expected = dict(base)
    for txn_id in commit_order:
        expected.update(txn_writes.get(txn_id, {}))
    loser_creates = [
        rid
        for txn_id, created in txn_creates.items()
        if txn_id not in durable
        for rid in created
    ]
    for rid in sorted(expected):
        value = _read_x(db, rid)
        if value != expected[rid]:
            failures.append(
                f"rid {tuple(rid)}: expected {expected[rid]}, found {value}"
            )
    for rid in sorted(loser_creates):
        value = _read_x(db, rid)
        if value is not None:
            failures.append(
                f"rid {tuple(rid)}: loser-created object survived ({value})"
            )

    digest = tuple(
        (tuple(rid), _read_x(db, rid))
        for rid in sorted(set(expected) | set(loser_creates))
    ) + (
        report.log_records_scanned,
        report.records_redone,
        report.records_undone,
        report.txns_undone,
        round(report.seconds, 9),
    )
    return FuzzResult(
        seed=seed,
        point=point,
        occurrence=occurrence,
        fired=injector.fired,
        txns_started=started,
        acked=len(acked),
        durable_commits=len(durable),
        losers=report.txns_undone,
        failures=failures,
        report=report,
        digest=digest,
    )


def _two_slot_workload(
    db, txm, rids, rng, txn_writes, txn_creates, acked, txns, checkpoint_every
) -> int:
    """Up to two interleaved transactions over disjoint rid pools, so a
    crash can leave several losers and checkpoints see a live ATT."""
    half = len(rids) // 2
    pools = (rids[:half], rids[half:])
    slots: list[dict | None] = [None, None]
    started = 0
    while started < txns or any(s is not None for s in slots):
        i = rng.randrange(2)
        if slots[i] is None:
            if started >= txns:
                i = next(j for j, s in enumerate(slots) if s is not None)
            else:
                if checkpoint_every and started and started % checkpoint_every == 0:
                    take_checkpoint(db, txm)
                txn = txm.begin()
                txn_writes[txn.txn_id] = {}
                txn_creates[txn.txn_id] = []
                slots[i] = {"txn": txn, "ops": 0}
                started += 1
                continue
        slot = slots[i]
        txn = slot["txn"]
        roll = rng.random()
        if roll < 0.55 or slot["ops"] == 0:
            rid = pools[i][rng.randrange(len(pools[i]))]
            value = rng.randrange(1_000_000)
            txn.update_scalar(rid, "x", value)
            txn_writes[txn.txn_id][rid] = value
            slot["ops"] += 1
        elif roll < 0.70:
            value = rng.randrange(1_000_000)
            rid = txn.create_object("Thing", {"x": value, "pad": _PAD}, "things")
            txn_writes[txn.txn_id][rid] = value
            txn_creates[txn.txn_id].append(rid)
            slot["ops"] += 1
        elif roll < 0.88:
            txn.commit()
            acked.append(txn.txn_id)
            slots[i] = None
        else:
            txn.abort()
            slots[i] = None
    return started


def _mix_workload(
    db, txm, rids, rng, txn_writes, txn_creates, acked, snapshot_failures
) -> int:
    """Three concurrent writers plus one snapshot-isolation reader over
    an overlapping hot set, scheduled cooperatively with lock waits and
    deadlock-abort retries.  The reader verifies snapshot consistency
    against ``committed_now`` — the committed value of every hot record,
    maintained at each commit ack (ack order on the single deterministic
    timeline *is* commit order, so the dict at the reader's ``begin()``
    is exactly the committed state at its begin timestamp)."""
    from repro.service.scheduler import CooperativeScheduler

    scheduler = CooperativeScheduler(db.clock, txm.locks)
    db.system.on_fault = scheduler.yield_point
    hot = rids[: max(6, len(rids) // 3)]
    # Enable MVCC before any writer begins (the way QueryService does for
    # isolation="si"), so every write stashes its pre-image and the
    # reader's snapshots have no blind spot.
    txm.enable_mvcc()
    committed_now = {rid: i * 100 for i, rid in enumerate(hot)}

    def worker(worker_seed: int, ops: int):
        wrng = Random(worker_seed)

        def run() -> None:
            for __ in range(ops):
                for __retry in range(4):
                    txn = txm.begin()
                    txn_writes[txn.txn_id] = {}
                    txn_creates[txn.txn_id] = []
                    try:
                        for __w in range(2):
                            rid = hot[wrng.randrange(len(hot))]
                            value = wrng.randrange(1_000_000)
                            txn.update_scalar(rid, "x", value)
                            txn_writes[txn.txn_id][rid] = value
                            scheduler.yield_point()
                        txn.commit()
                        acked.append(txn.txn_id)
                        committed_now.update(txn_writes[txn.txn_id])
                        break
                    except LockConflictError:
                        if txn.state == "active":
                            txn.abort()

        return run

    def reader(worker_seed: int, ops: int):
        wrng = Random(worker_seed)

        def run() -> None:
            for __ in range(ops):
                # Captured in the same scheduler slice as begin() (no
                # yield between), so this IS the committed state at the
                # snapshot's begin timestamp.
                expected = dict(committed_now)
                txn = txm.begin(isolation="si")
                try:
                    sample = [
                        hot[wrng.randrange(len(hot))] for __r in range(3)
                    ]
                    seen = {}
                    for rid in sample:
                        value = txn.read_attr(rid, "x")
                        seen[rid] = value
                        if value != expected[rid]:
                            snapshot_failures.append(
                                f"si reader txn {txn.txn_id}: rid "
                                f"{tuple(rid)} read {value}, committed "
                                f"state at begin-ts was {expected[rid]}"
                            )
                        scheduler.yield_point()
                    for rid in sample:
                        again = txn.read_attr(rid, "x")
                        if again != seen[rid]:
                            snapshot_failures.append(
                                f"si reader txn {txn.txn_id}: rid "
                                f"{tuple(rid)} moved {seen[rid]} -> "
                                f"{again} inside one snapshot"
                            )
                        scheduler.yield_point()
                    txn.commit()
                except LockConflictError:
                    if txn.state == "active":
                        txn.abort()

        return run

    for w in range(3):
        scheduler.spawn(f"w{w}", worker(rng.randrange(2**31), ops=4))
    scheduler.spawn("si-reader", reader(rng.randrange(2**31), ops=4))
    try:
        tasks = scheduler.run()
    finally:
        db.system.on_fault = None
        txm.locks.detach()
    crashed = False
    for task in tasks:
        if task.error is None:
            continue
        if isinstance(task.error, SimulatedCrashError):
            crashed = True
        elif not isinstance(task.error, (ServiceError, LockConflictError)):
            raise task.error
    if crashed:
        raise SimulatedCrashError("mix-run workload crashed")
    return len(txn_writes)


def run_fuzz(
    seeds,
    points=CRASH_POINTS,
    txns: int = 10,
    checkpoint_every: int = 3,
    check_determinism: bool = True,
) -> list[FuzzResult]:
    """Run the full (seed × crash point) grid; each case is independent.

    With ``check_determinism`` every case runs twice and the recovered
    state digests must match exactly.
    """
    results = []
    for point in points:
        for seed in seeds:
            result = run_case(seed, point, txns, checkpoint_every)
            if check_determinism:
                rerun = run_case(seed, point, txns, checkpoint_every)
                if rerun.digest != result.digest:
                    result.failures.append(
                        f"non-deterministic recovery for seed={seed} point={point}"
                    )
            results.append(result)
    return results


def summarize(results) -> str:
    """Human-readable per-point summary of a fuzz run."""
    lines = []
    by_point: dict[str, list[FuzzResult]] = {}
    for r in results:
        by_point.setdefault(r.point, []).append(r)
    header = (
        f"{'point':<16} {'cases':>5} {'fired':>5} {'acked':>6} "
        f"{'durable':>7} {'losers':>6} {'failures':>8}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for point in sorted(by_point):
        rs = by_point[point]
        lines.append(
            f"{point:<16} {len(rs):>5} {sum(r.fired for r in rs):>5} "
            f"{sum(r.acked for r in rs):>6} "
            f"{sum(r.durable_commits for r in rs):>7} "
            f"{sum(r.losers for r in rs):>6} "
            f"{sum(len(r.failures) for r in rs):>8}"
        )
    total = len(results)
    bad = [r for r in results if not r.ok]
    lines.append(
        f"{total} cases, {len(bad)} failed"
        + ("" if not bad else f" (first: {bad[0].failures[0]})")
    )
    return "\n".join(lines)
