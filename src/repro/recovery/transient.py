"""Seeded transient-fault injection: flaky reads and lock-timeout storms.

:class:`~repro.recovery.crash.CrashInjector` models the *fatal* failure
mode — the whole process dies and restart recovery earns its keep.  This
module models the *survivable* one: faults the system is expected to
absorb while the workload keeps running.

Two fault families, each drawn from its **own** seeded random stream so
that arming one does not perturb the other (and neither perturbs the
workload's randomness):

* **transient page-read faults** — each disk read attempt may fail with
  probability ``read_fault_rate``; once a page is faulting, each *retry*
  fails again with probability ``read_fault_persistence``.  The
  :class:`~repro.storage.disk.DiskManager` retries with exponential
  backoff and escalates to :class:`~repro.errors.PermanentIOError` past
  its retry budget.
* **lock-timeout storms** — precomputed windows of simulated time during
  which the effective lock timeout collapses to ``storm_timeout_s``, so
  patient waiters abort in bursts.  Windows are generated lazily from
  the storm stream alone, keyed to the simulated clock; they do not
  depend on what the workload does, which keeps runs deterministic.

Determinism: same seed + same workload ⇒ the same faults hit the same
reads, so a chaos run (:func:`repro.service.chaos.run_chaos`) reproduces
bit-for-bit.
"""

from __future__ import annotations

from random import Random


class TransientFaultInjector:
    """Arms seeded transient faults on a database's disk and lock table.

    Duck-typed like :class:`~repro.recovery.crash.CrashInjector`: the
    disk consults :meth:`read_fails` per read attempt, the lock manager
    consults :meth:`lock_timeout_s` when expiring waiters.  ``arm`` /
    ``disarm`` attach and detach both hooks.
    """

    def __init__(
        self,
        seed: int = 0,
        read_fault_rate: float = 0.0,
        read_fault_persistence: float = 0.25,
        storm_mean_gap_s: float | None = None,
        storm_len_s: float = 0.05,
        storm_timeout_s: float = 0.002,
    ):
        if not 0.0 <= read_fault_rate <= 1.0:
            raise ValueError(f"read_fault_rate not in [0, 1]: {read_fault_rate}")
        if not 0.0 <= read_fault_persistence <= 1.0:
            raise ValueError(
                f"read_fault_persistence not in [0, 1]: {read_fault_persistence}"
            )
        if storm_mean_gap_s is not None and storm_mean_gap_s <= 0:
            raise ValueError(f"storm_mean_gap_s must be > 0: {storm_mean_gap_s}")
        self.seed = seed
        self.read_fault_rate = read_fault_rate
        self.read_fault_persistence = read_fault_persistence
        #: Mean simulated seconds between storms (``None``: no storms).
        self.storm_mean_gap_s = storm_mean_gap_s
        self.storm_len_s = storm_len_s
        self.storm_timeout_s = storm_timeout_s
        # Independent streams: read faults must not shift when storms
        # are reconfigured, and vice versa.
        self._read_rng = Random(seed * 7_919 + 1)
        self._storm_rng = Random(seed * 7_919 + 2)
        #: Generated storm windows, ``(start_s, end_s)``, ascending.
        self._storms: list[tuple[float, float]] = []
        self._storm_horizon_s = 0.0
        #: Transient read faults injected (mirrors ``counters.io_faults``
        #: for the reads this injector faulted).
        self.faults_injected = 0

    def for_node(self, node_id: int, replica: int = 0) -> "TransientFaultInjector":
        """A child injector for one shard of a cluster, with the same
        fault configuration but an independent seed derived from this
        injector's seed, the node id and the replica index (0 = the
        primary, 1+ = its replicas).

        Sharing one injector across shards would make fault placement
        depend on the global interleaving of reads (whichever shard
        draws next consumes the stream), so adding a shard would reshuffle
        every other shard's faults.  Per-node derived streams keep each
        node's fault schedule a function of (seed, node id, replica)
        alone.  The replica term uses a stride (1009) that is coprime
        with the node stride (31), so a replica's seed never collides
        with any primary's: before replication landed, a primary and
        its replica would have derived the *same* child seed and drawn
        perfectly correlated fault streams — the opposite of
        independent failures."""
        return TransientFaultInjector(
            seed=self.seed * 1_000_003 + 31 * node_id + 1_009 * replica + 7,
            read_fault_rate=self.read_fault_rate,
            read_fault_persistence=self.read_fault_persistence,
            storm_mean_gap_s=self.storm_mean_gap_s,
            storm_len_s=self.storm_len_s,
            storm_timeout_s=self.storm_timeout_s,
        )

    # -- arming ----------------------------------------------------------

    def arm(self, db, locks=None) -> None:
        """Attach to a database's disk (and optionally a lock table)."""
        db.disk.faults = self
        if locks is not None:
            locks.injector = self

    def disarm(self, db, locks=None) -> None:
        if db.disk.faults is self:
            db.disk.faults = None
        if locks is not None and locks.injector is self:
            locks.injector = None

    # -- transient read faults ------------------------------------------

    def read_fails(self, file_id: int, page_no: int, attempt: int) -> bool:
        """Does this read attempt fail?  Drawn per attempt: the first
        attempt faults at ``read_fault_rate``, retries of a faulting
        read at ``read_fault_persistence`` (a sticky fault escalates)."""
        rate = (
            self.read_fault_rate if attempt == 0
            else self.read_fault_persistence
        )
        if rate <= 0.0:
            return False
        failed = self._read_rng.random() < rate
        if failed:
            self.faults_injected += 1
        return failed

    # -- lock-timeout storms --------------------------------------------

    def lock_timeout_s(
        self, base_s: float | None, now_s: float
    ) -> float | None:
        """The effective lock timeout at simulated time ``now_s``."""
        if self.storm_mean_gap_s is None or not self.storm_active(now_s):
            return base_s
        if base_s is None:
            return self.storm_timeout_s
        return min(base_s, self.storm_timeout_s)

    def storm_active(self, now_s: float) -> bool:
        """Is a lock-timeout storm in progress at ``now_s``?"""
        if self.storm_mean_gap_s is None:
            return False
        self._extend_storms(now_s)
        return any(start <= now_s < end for start, end in self._storms)

    def _extend_storms(self, horizon_s: float) -> None:
        """Generate windows up to ``horizon_s`` from the storm stream."""
        while self._storm_horizon_s <= horizon_s:
            gap = self.storm_mean_gap_s * self._storm_rng.uniform(0.5, 1.5)
            start = self._storm_horizon_s + gap
            end = start + self.storm_len_s
            self._storms.append((start, end))
            self._storm_horizon_s = end
