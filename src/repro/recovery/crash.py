"""Crash-point fault injection.

A :class:`CrashInjector` arms hooks inside the write-ahead log and the
disk manager and kills the system — by raising
:class:`~repro.errors.SimulatedCrashError` — at a *named* crash point
the n-th time it is reached.  The points cover the places where a real
recovery protocol earns its keep:

``log-append``
    mid log-append: the record is in the volatile log buffer, nothing
    reached disk.
``commit-flush``
    mid multi-page commit flush: only a prefix of the pending records'
    log pages was written, so the durable boundary lands *inside* the
    flush — the torn commit.
``flush-write-gap``
    between the WAL-rule log flush and the data-page write: the log says
    the change happened, the page still holds the old version.
``checkpoint``
    mid checkpoint: dirty pages were flushed but the checkpoint record
    itself was lost.
``mix-run``
    mid concurrent run (a :class:`~repro.service.WorkloadMixer` or any
    scheduled workload): fires on a log append while several sessions
    are in flight.

After the injector fires, every further hook refuses service with the
same exception, so the rest of the workload cannot mutate durable state
"after" the crash.  :func:`crash_database` then performs the actual loss
of volatility: caches, lock table, open transactions and the unflushed
log tail vanish; the disk reverts every page to its last written image.
"""

from __future__ import annotations

from repro.errors import RecoveryError, SimulatedCrashError

#: The named crash points, in the order the tentpole lists them.
CRASH_POINTS = (
    "log-append",
    "commit-flush",
    "flush-write-gap",
    "checkpoint",
    "mix-run",
)


class CrashInjector:
    """Kills the system the ``occurrence``-th time ``point`` is reached."""

    def __init__(self, point: str, occurrence: int = 1):
        if point not in CRASH_POINTS:
            raise RecoveryError(
                f"unknown crash point {point!r}; choose from {CRASH_POINTS}"
            )
        if occurrence < 1:
            raise RecoveryError(f"occurrence must be >= 1, got {occurrence}")
        self.point = point
        self.occurrence = occurrence
        self.seen = 0
        self.fired = False

    def arm(self, db, wal) -> None:
        """Attach to a database's log and disk."""
        wal.injector = self
        db.disk.injector = self

    def disarm(self, db, wal) -> None:
        if wal.injector is self:
            wal.injector = None
        if db.disk.injector is self:
            db.disk.injector = None

    def fire(self, detail: str) -> None:
        self.fired = True
        raise SimulatedCrashError(
            f"simulated crash at {self.point} (occurrence {self.seen}: {detail})"
        )

    def _down(self) -> None:
        if self.fired:
            raise SimulatedCrashError(
                f"system is down (crashed at {self.point})"
            )

    # -- hooks (called by WriteAheadLog / DiskManager / checkpoint) ------

    def on_append(self, record) -> None:
        self._down()
        if self.point in ("log-append", "mix-run"):
            self.seen += 1
            if self.seen == self.occurrence:
                self.fire(f"record lsn={record.lsn} kind={record.kind}")

    def on_flush(self, pages_needed: int) -> int | None:
        """Return a page budget to tear the flush, or ``None`` to let it
        complete.  The log writes the budgeted pages and then calls
        :meth:`fire`, so a durable record prefix survives."""
        self._down()
        if self.point != "commit-flush" or pages_needed < 1:
            return None
        self.seen += 1
        if self.seen == self.occurrence:
            return pages_needed // 2  # 0 for single-page flushes
        return None

    def on_page_write(self, page_key: tuple[int, int]) -> None:
        self._down()
        if self.point == "flush-write-gap":
            self.seen += 1
            if self.seen == self.occurrence:
                self.fire(f"page {page_key} never written")

    def on_checkpoint(self) -> None:
        self._down()
        if self.point == "checkpoint":
            self.seen += 1
            if self.seen == self.occurrence:
                self.fire("pages flushed, checkpoint record lost")


def crash_database(db, txm=None) -> None:
    """Lose everything volatile, keeping only durable state.

    Order matters: the log is truncated to its durable boundary first
    (so nothing later can consult unflushed records), then the caches,
    handle table, open transactions and lock table evaporate, and
    finally the disk reverts every page to its last written image.
    No simulated time is charged — power cuts are free.
    """
    wal = txm.log if txm is not None else db.disk.wal
    if wal is not None:
        injector = wal.injector
        if injector is not None:
            injector.disarm(db, wal)
        wal.crash()
    db.disk.injector = None
    db.system.crash_volatile()
    db.handles.clear()
    if txm is not None:
        txm.crash_volatile()
    db.disk.crash()
