"""ARIES-lite restart: analysis, redo, undo.

The restart driver rebuilds a consistent database from the two things
that survive a crash — the durable page images and the durable log
prefix — following the shape of ARIES (Mohan et al., PAPERS.md):

* **analysis** scans forward from the last checkpoint rebuilding the
  active-transaction table (losers) and the dirty-page table (pages
  whose durable version may predate logged changes);
* **redo** repeats history from the oldest ``rec_lsn`` in the dirty-page
  table: every physical record — winner, loser or compensation — whose
  LSN is newer than the page's durable ``page_lsn`` is reapplied;
* **undo** rolls back the losers newest-first through their ``prev_lsn``
  chains, writing compensation (``clr``) records exactly like a live
  abort does, then an ``abort`` record per loser, so recovery itself is
  recoverable and idempotent.

Everything charges simulated time: log pages read at disk read latency
(``Bucket.LOG``), per-record scan/apply CPU (``log_apply_us``), data
pages read and written at normal I/O cost.  Recovery duration is a
first-class measurement — ``benchmarks/bench_recovery.py`` sweeps it
against checkpoint interval and update rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simtime import Bucket
from repro.txn.log import (
    ABORT_RECORD_BYTES,
    COMMIT_RECORD_BYTES,
    CHECKPOINT_ATT_ENTRY_BYTES,
    CHECKPOINT_DPT_ENTRY_BYTES,
    CHECKPOINT_HEADER_BYTES,
    PHYSICAL_KINDS,
    UNDOABLE_KINDS,
    LogRecord,
)
from repro.units import PAGE_SIZE, pages_for_bytes


@dataclass
class RecoveryReport:
    """What one restart did and how long (simulated) it took."""

    seconds: float = 0.0
    checkpoint_lsn: int = 0
    redo_start_lsn: int = 0
    log_records_scanned: int = 0
    log_pages_read: int = 0
    pages_redone: int = 0
    records_redone: int = 0
    txns_committed: int = 0
    txns_undone: int = 0
    records_undone: int = 0
    pages_flushed: int = 0
    losers: tuple[int, ...] = ()
    #: Transactions with a durable ``prepare`` vote but no durable
    #: outcome — 2PC branches whose fate the coordinator must decide.
    txns_in_doubt: tuple[int, ...] = ()
    txns_resolved_commit: int = 0
    txns_resolved_abort: int = 0


def take_checkpoint(db, txm, flush_pages: bool = True) -> LogRecord:
    """Write a checkpoint: flush the dirty-page table's pages (unless
    ``flush_pages=False``, the fuzzy variant), then log a ``checkpoint``
    record holding the active-transaction table and the remaining
    dirty-page table, and force it to disk.

    More frequent checkpoints cost more during normal operation (the
    page flushes) and buy shorter restarts — the trade the checkpoint
    sweep benchmark measures.
    """
    wal = txm.log
    if flush_pages:
        for key in sorted(wal.dirty_pages):
            db.disk.write_page(*key)
    if wal.injector is not None:
        wal.injector.on_checkpoint()
    att = tuple(
        sorted((t.txn_id, t.last_lsn) for t in txm.active_transactions() if t.logged)
    )
    dpt = tuple(sorted(wal.dirty_pages.items()))
    nbytes = (
        CHECKPOINT_HEADER_BYTES
        + CHECKPOINT_ATT_ENTRY_BYTES * len(att)
        + CHECKPOINT_DPT_ENTRY_BYTES * len(dpt)
    )
    record = wal.append(0, "checkpoint", nbytes, att=att, dpt=dpt)
    wal.flush()
    return record


def _recovery_page(disk, fetched: set, key: tuple[int, int]):
    """Fetch a page for redo, allocating anything missing (a crash may
    predate the durable allocation) and paying the read cost only on
    first touch per pass."""
    file_id, page_no = key
    while disk.num_pages(file_id) <= page_no:
        disk.allocate_page(file_id)
    if key in fetched:
        return disk.peek_page(file_id, page_no)
    fetched.add(key)
    return disk.read_page(file_id, page_no)


def redo_apply(db, records, fetched: set | None = None) -> int:
    """Repeat history: apply physical log records to the database's
    pages, oldest first, skipping anything a page already reflects
    (``page_lsn >= lsn``) — the redo half of :func:`restart`, packaged
    as its own entry point so a replication replica can apply shipped
    records *continuously* as they arrive instead of all at once after
    a crash.  Charges per-record apply CPU and first-touch page reads;
    returns the number of records applied.  Idempotent: re-applying a
    shipped batch after a partial apply is a no-op."""
    clock = db.clock
    params = db.params
    disk = db.disk
    if fetched is None:
        fetched = set()
    applied = 0
    for record in records:
        if record.kind not in PHYSICAL_KINDS:
            continue
        clock.charge_us(Bucket.LOG, params.log_apply_us)
        page = _recovery_page(disk, fetched, record.page_key)
        if page.page_lsn < record.lsn:
            page.restore(record.after)
            page.page_lsn = record.lsn
            page.dirty = True
            applied += 1
    return applied


def restart(db, txm, resolve_in_doubt=None) -> RecoveryReport:
    """Run analysis/redo/undo over the durable log and disk, leaving the
    database consistent: every durably-committed change applied, every
    loser rolled back and aborted, all recovered pages flushed.

    ``resolve_in_doubt`` handles two-phase-commit branches: a transaction
    with a durable ``prepare`` record but no outcome is *in doubt*, and
    the callback (local txn id -> ``"commit"`` | ``"abort"``) asks the
    coordinator's decision log for its fate.  Resolved commits get a
    commit record (their redo already repeated history); everything else
    — including all in-doubt branches when no resolver is given — is
    undone as a loser (presumed abort)."""
    clock = db.clock
    params = db.params
    wal = txm.log
    disk = db.disk
    report = RecoveryReport()
    start_s = clock.elapsed_s
    records = wal.durable_records()

    # --- analysis -----------------------------------------------------
    cp_idx = None
    for i in range(len(records) - 1, -1, -1):
        if records[i].kind == "checkpoint":
            cp_idx = i
            break
    att: dict[int, int] = {}
    dpt: dict[tuple[int, int], int] = {}
    scan_from = 0
    if cp_idx is not None:
        checkpoint = records[cp_idx]
        report.checkpoint_lsn = checkpoint.lsn
        att.update(checkpoint.att)
        dpt.update(checkpoint.dpt)
        scan_from = cp_idx
    prepared: set[int] = set()
    for record in records[scan_from:]:
        report.log_records_scanned += 1
        clock.charge_us(Bucket.LOG, params.log_apply_us)
        if record.kind == "begin":
            att[record.txn_id] = record.lsn
        elif record.kind in PHYSICAL_KINDS:
            att[record.txn_id] = record.lsn
            dpt.setdefault(record.page_key, record.lsn)
        elif record.kind == "prepare":
            att[record.txn_id] = record.lsn
            prepared.add(record.txn_id)
        elif record.kind == "commit":
            att.pop(record.txn_id, None)
            prepared.discard(record.txn_id)
        elif record.kind == "abort":
            att.pop(record.txn_id, None)
            prepared.discard(record.txn_id)
    report.txns_committed = sum(1 for r in records if r.kind == "commit")

    # In-doubt resolution: a prepared branch is not a loser until the
    # coordinator says so.
    in_doubt = sorted(t for t in att if t in prepared)
    report.txns_in_doubt = tuple(in_doubt)
    resolved_commit: dict[int, int] = {}  # txn id -> prev_lsn for commit
    for txn_id in in_doubt:
        decision = (
            "abort" if resolve_in_doubt is None else resolve_in_doubt(txn_id)
        )
        if decision == "commit":
            resolved_commit[txn_id] = att.pop(txn_id)
    report.txns_resolved_commit = len(resolved_commit)
    report.txns_resolved_abort = len(in_doubt) - len(resolved_commit)
    losers = sorted(att)
    report.losers = tuple(losers)

    # --- redo: repeat history from the oldest rec_lsn -----------------
    fetched: set[tuple[int, int]] = set()

    def recovery_page(key: tuple[int, int]):
        return _recovery_page(disk, fetched, key)

    redone_pages: set[tuple[int, int]] = set()
    if dpt:
        report.redo_start_lsn = min(dpt.values())
        for record in records:
            if record.lsn < report.redo_start_lsn:
                continue
            if record.kind not in PHYSICAL_KINDS:
                continue
            if record.page_key not in dpt or record.lsn < dpt[record.page_key]:
                continue
            clock.charge_us(Bucket.LOG, params.log_apply_us)
            page = recovery_page(record.page_key)
            if page.page_lsn < record.lsn:
                page.restore(record.after)
                page.page_lsn = record.lsn
                page.dirty = True
                redone_pages.add(record.page_key)
                report.records_redone += 1
    report.pages_redone = len(redone_pages)

    # --- undo the losers, newest change first -------------------------
    compensated = {r.undoes_lsn for r in records if r.kind == "clr"}
    undo_records = sorted(
        (
            r
            for r in records
            if r.txn_id in att
            and r.kind in UNDOABLE_KINDS
            and r.lsn not in compensated
        ),
        key=lambda r: r.lsn,
        reverse=True,
    )
    for record in undo_records:
        clock.charge_us(Bucket.LOG, params.log_apply_us)
        page = recovery_page(record.page_key)
        before = page.capture()
        page.apply_undo(record.before, record.after)
        clr = wal.append(
            record.txn_id,
            "clr",
            record.nbytes,
            prev_lsn=att[record.txn_id],
            page_key=record.page_key,
            before=before,
            after=page.capture(),
            undoes_lsn=record.lsn,
        )
        att[record.txn_id] = clr.lsn
        wal.stamp(page, clr)
        page.dirty = True
        report.records_undone += 1
    for txn_id in losers:
        wal.append(txn_id, "abort", ABORT_RECORD_BYTES, prev_lsn=att[txn_id])
    report.txns_undone = len(losers)
    # In-doubt branches the coordinator decided to commit: redo already
    # repeated their history, so only the durable outcome is missing.
    for txn_id in sorted(resolved_commit):
        wal.append(
            txn_id,
            "commit",
            COMMIT_RECORD_BYTES,
            prev_lsn=resolved_commit[txn_id],
        )
    if losers or undo_records or resolved_commit:
        wal.flush()

    # --- charge the log read (pages covering everything we consulted) --
    needed_from = len(records)
    if report.log_records_scanned or report.records_redone or undo_records:
        candidates = []
        if cp_idx is not None:
            candidates.append(cp_idx)
        else:
            candidates.append(0)
        if report.redo_start_lsn:
            candidates.append(
                next(i for i, r in enumerate(records) if r.lsn >= report.redo_start_lsn)
            )
        if undo_records:
            oldest = min(r.lsn for r in undo_records)
            candidates.append(next(i for i, r in enumerate(records) if r.lsn == oldest))
        needed_from = min(candidates)
    log_bytes = sum(r.nbytes for r in records[needed_from:])
    report.log_pages_read = pages_for_bytes(log_bytes, PAGE_SIZE)
    for __ in range(report.log_pages_read):
        clock.charge_ms(Bucket.LOG, params.page_read_ms)

    # --- make the recovered state durable ------------------------------
    for key in sorted(fetched):
        page = disk.peek_page(*key)
        if page.dirty:
            disk.write_page(*key)
            report.pages_flushed += 1

    # Volatile per-file record counters died with the process; rebuild
    # them from the recovered pages (free bookkeeping, like the loader's).
    for sfile in db.manager._files.values():
        sfile._record_count = sum(
            p.record_count for p in disk.iter_pages(sfile.file_id)
        )
    # Restart is a fresh boot: no decoded object may outlive it (reads
    # between crash and restart would otherwise pin stale versions).
    db.handles.clear()

    # MVCC state is volatile by design: every active snapshot died with
    # its transaction and the committed state needs no pre-images, so
    # restart *discards* the version chains.  Only the commit-timestamp
    # high-water survives — rebuilt from durable commit records, so
    # post-restart snapshots order strictly after every pre-crash commit.
    txm.mvcc.clear()
    txm._snapshots.clear()
    txm.commit_ts = max(
        [txm.commit_ts]
        + [r.commit_ts for r in records if r.kind == "commit"]
    )
    # Persistent object-version chains (repro.objects.versions) are the
    # opposite: catalog records on durable pages.  Drop the in-memory
    # cache so the next access rebuilds it from what actually survived.
    if db.version_manager is not None:
        db.version_manager.reload()

    report.seconds = clock.elapsed_s - start_s
    return report
