"""A B+-tree index with disk-resident leaves.

Leaves are records in an index :class:`~repro.storage.file.StorageFile`
(~330 entries each, about one page per leaf), so every leaf visited by a
lookup or range scan costs real simulated I/O — the "read index pages"
term of the paper's Figure 9.  The inner directory (first key of each
leaf) is kept in memory and charged as CPU compares, matching the paper's
working assumption that non-leaf levels are cached.

The index stores ``(key, rid)`` pairs; keys are 64-bit integers or
fixed-width strings.  Leaves only hold object identifiers, never object
properties — as the paper's indexes do ("store only object identifiers
in their leaves", Section 5).
"""

from __future__ import annotations

import bisect
import math
import struct
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import IndexError_
from repro.objects.codec import decode_rid, encode_rid
from repro.simtime import Bucket
from repro.storage.file import StorageFile
from repro.storage.rid import Rid

#: Entries per leaf: 330 * (8 + 8) bytes ~ 5.2 KB... too big for a page;
#: with int keys an entry is 16 bytes, so 200 entries ~ 3.2 KB fits one
#: page with slack for splits.
LEAF_CAPACITY = 200

_COUNT = struct.Struct("<I")
_INT_KEY = struct.Struct("<q")
_STR_KEY_WIDTH = 16


@dataclass(frozen=True)
class IndexEntry:
    """One (key, rid) pair returned by scans."""

    key: object
    rid: Rid


class _KeyCodec:
    """Fixed-width key serialization (ints or strings)."""

    def __init__(self, key_type: type):
        if key_type not in (int, str):
            raise IndexError_(f"unsupported index key type: {key_type.__name__}")
        self.key_type = key_type
        self.width = _INT_KEY.size if key_type is int else _STR_KEY_WIDTH

    def encode(self, key: object) -> bytes:
        if self.key_type is int:
            return _INT_KEY.pack(int(key))  # type: ignore[arg-type]
        raw = str(key).encode("utf-8")[: self.width]
        return raw.ljust(self.width, b"\x00")

    def decode(self, buf: bytes, offset: int) -> object:
        if self.key_type is int:
            return _INT_KEY.unpack_from(buf, offset)[0]
        return buf[offset : offset + self.width].rstrip(b"\x00").decode(
            "utf-8", "replace"
        )


class BTreeIndex:
    """B+-tree over one key attribute of one collection."""

    def __init__(
        self,
        name: str,
        index_id: int,
        index_file: StorageFile,
        key_type: type = int,
        leaf_capacity: int = LEAF_CAPACITY,
    ):
        if index_id < 1:
            raise IndexError_("index ids start at 1 (0 marks an empty slot)")
        self.name = name
        self.index_id = index_id
        self.file = index_file
        self.codec = _KeyCodec(key_type)
        self.leaf_capacity = leaf_capacity
        #: Parallel arrays: first key of each leaf / (first key, first
        #: rid) pair of each leaf (placement among duplicate keys) / rid
        #: of the leaf record / number of entries in the leaf.
        self._first_keys: list[object] = []
        self._first_pairs: list[tuple[object, Rid]] = []
        self._leaf_rids: list[Rid] = []
        self._leaf_counts: list[int] = []
        self.entry_count = 0
        self._max_key: object | None = None
        #: Fraction of adjacent key-ordered entries that are also in
        #: physical (rid) order; 1.0 means a perfectly clustered index.
        self.clustering_ratio = 0.0

    # -- bulk build ----------------------------------------------------

    def bulk_build(self, pairs: Iterable[tuple[object, Rid]]) -> None:
        """(Re)build the tree from scratch.

        Sorting the pairs is charged to the clock; each leaf is written
        once, sequentially, into the index file.
        """
        items = sorted(pairs, key=lambda kv: (kv[0], kv[1]))
        self._charge_sort(len(items))
        self._first_keys.clear()
        self._first_pairs.clear()
        self._leaf_rids.clear()
        self._leaf_counts.clear()
        self.entry_count = len(items)
        self._max_key = items[-1][0] if items else None
        for start in range(0, len(items), self.leaf_capacity):
            chunk = items[start : start + self.leaf_capacity]
            leaf_rid = self.file.insert(self._encode_leaf(chunk))
            self._first_keys.append(chunk[0][0])
            self._first_pairs.append(chunk[0])
            self._leaf_rids.append(leaf_rid)
            self._leaf_counts.append(len(chunk))
        self.clustering_ratio = _clustering_ratio(items)

    # -- point / range access ------------------------------------------

    def lookup(self, key: object) -> list[Rid]:
        """All rids filed under ``key`` (keys need not be unique)."""
        return [entry.rid for entry in self.range_scan(key, key)]

    def range_scan(
        self,
        low: object | None = None,
        high: object | None = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[IndexEntry]:
        """Yield entries with ``low <= key <= high`` in key order,
        reading each visited leaf through the page caches."""
        if not self._leaf_rids:
            return
        start_leaf = 0
        if low is not None:
            # bisect_left - 1: a run of duplicate keys can span leaves
            # whose first key all equal ``low``; the run may even begin
            # at the tail of the leaf before them.
            start_leaf = max(0, bisect.bisect_left(self._first_keys, low) - 1)
            self._charge_directory_search()
        for leaf_no in range(start_leaf, len(self._leaf_rids)):
            entries = self._read_leaf(leaf_no)
            if low is not None and entries and entries[-1][0] < low:
                continue
            for key, rid in entries:
                if low is not None:
                    if key < low or (not include_low and key == low):
                        continue
                if high is not None:
                    if key > high or (not include_high and key == high):
                        return
                yield IndexEntry(key, rid)

    # -- maintenance -----------------------------------------------------------

    def insert(self, key: object, rid: Rid) -> None:
        """Add one entry (splits the target leaf when full)."""
        if not self._leaf_rids:
            leaf_rid = self.file.insert(self._encode_leaf([(key, rid)]))
            self._first_keys.append(key)
            self._first_pairs.append((key, rid))
            self._leaf_rids.append(leaf_rid)
            self._leaf_counts.append(1)
            self.entry_count = 1
            self._max_key = key
            return
        leaf_no = self._placement_leaf(key, rid)
        entries = self._read_leaf(leaf_no)
        bisect.insort(entries, (key, rid))
        self.entry_count += 1
        if self._max_key is None or key > self._max_key:  # type: ignore[operator]
            self._max_key = key
        if len(entries) <= self.leaf_capacity:
            self._write_leaf(leaf_no, entries)
            self._leaf_counts[leaf_no] = len(entries)
        else:
            self._split_leaf(leaf_no, entries)

    def remove(self, key: object, rid: Rid) -> bool:
        """Remove one (key, rid) entry; returns whether it existed."""
        if not self._leaf_rids:
            return False
        leaf_no = self._placement_leaf(key, rid)
        entries = self._read_leaf(leaf_no)
        try:
            entries.remove((key, rid))
        except ValueError:
            return False
        self.entry_count -= 1
        self._write_leaf(leaf_no, entries)
        self._leaf_counts[leaf_no] = len(entries)
        return True

    # -- statistics for the optimizer ----------------------------------

    @property
    def leaf_count(self) -> int:
        return len(self._leaf_rids)

    def min_key(self) -> object | None:
        if not self._leaf_rids:
            return None
        return self._first_keys[0]

    def selectivity(self, low: object | None, high: object | None) -> float:
        """Estimated fraction of entries in [low, high], from the leaf
        directory (no I/O).

        Entry positions are interpolated *within* the boundary leaves
        using the leaf-boundary keys (numeric keys only; strings fall
        back to leaf granularity), so the estimate stays useful even for
        single-leaf indexes.
        """
        if self.entry_count == 0:
            return 0.0
        lo_pos = 0.0 if low is None else self._position(low)
        hi_pos = float(self.entry_count) if high is None else self._position(high)
        return max(0.0, min(1.0, (hi_pos - lo_pos) / self.entry_count))

    def _position(self, key: object) -> float:
        """Estimated number of entries with keys strictly below ``key``."""
        if not self._first_keys:
            return 0.0
        if key <= self._first_keys[0]:  # type: ignore[operator]
            return 0.0
        leaf = bisect.bisect_right(self._first_keys, key) - 1
        before = float(sum(self._leaf_counts[:leaf]))
        count = self._leaf_counts[leaf]
        lo_key = self._first_keys[leaf]
        hi_key = (
            self._first_keys[leaf + 1]
            if leaf + 1 < len(self._first_keys)
            else self._max_key
        )
        if (
            isinstance(key, (int, float))
            and isinstance(lo_key, (int, float))
            and isinstance(hi_key, (int, float))
            and hi_key > lo_key
        ):
            fraction = min(1.0, (key - lo_key) / (hi_key - lo_key))
        else:
            fraction = 0.5
        return before + fraction * count

    # -- internals --------------------------------------------------------

    def _encode_leaf(self, entries: list[tuple[object, Rid]]) -> bytes:
        parts = [_COUNT.pack(len(entries))]
        for key, rid in entries:
            parts.append(self.codec.encode(key))
            parts.append(encode_rid(rid))
        return b"".join(parts)

    def _decode_leaf(self, record: bytes) -> list[tuple[object, Rid]]:
        (count,) = _COUNT.unpack_from(record, 0)
        entries: list[tuple[object, Rid]] = []
        offset = _COUNT.size
        stride = self.codec.width + Rid.DISK_SIZE
        for __ in range(count):
            key = self.codec.decode(record, offset)
            rid = decode_rid(record, offset + self.codec.width)
            entries.append((key, rid))
            offset += stride
        return entries

    def _read_leaf(self, leaf_no: int) -> list[tuple[object, Rid]]:
        return self._decode_leaf(self.file.read(self._leaf_rids[leaf_no]))

    def _placement_leaf(self, key: object, rid: Rid) -> int:
        """Leaf where the (key, rid) pair belongs under global
        (key, rid) ordering — correct even when one key value spans
        several leaves."""
        self._charge_directory_search()
        return max(0, bisect.bisect_right(self._first_pairs, (key, rid)) - 1)

    def _write_leaf(self, leaf_no: int, entries: list[tuple[object, Rid]]) -> None:
        new_rid = self.file.update(self._leaf_rids[leaf_no], self._encode_leaf(entries))
        self._leaf_rids[leaf_no] = new_rid
        if entries:
            self._first_keys[leaf_no] = entries[0][0]
            self._first_pairs[leaf_no] = entries[0]

    def _split_leaf(self, leaf_no: int, entries: list[tuple[object, Rid]]) -> None:
        mid = len(entries) // 2
        left, right = entries[:mid], entries[mid:]
        self._write_leaf(leaf_no, left)
        self._leaf_counts[leaf_no] = len(left)
        right_rid = self.file.insert(self._encode_leaf(right))
        self._first_keys.insert(leaf_no + 1, right[0][0])
        self._first_pairs.insert(leaf_no + 1, right[0])
        self._leaf_rids.insert(leaf_no + 1, right_rid)
        self._leaf_counts.insert(leaf_no + 1, len(right))

    def _charge_sort(self, n: int) -> None:
        if n < 2:
            return
        us = self.file.disk.params.sort_per_element_log_us * n * math.log2(n)
        self.file.disk.clock.charge_us(Bucket.SORT, us)

    def _charge_directory_search(self) -> None:
        depth = max(1, math.ceil(math.log2(len(self._first_keys) + 1)))
        self.file.disk.clock.charge_us(
            Bucket.CPU, self.file.disk.params.compare_us * depth
        )


def _clustering_ratio(sorted_items: list[tuple[object, Rid]]) -> float:
    """Fraction of adjacent key-ordered pairs that are also rid-ordered.

    1.0 means scanning the index visits pages sequentially (a *clustered*
    index in the paper's vocabulary); ~0.5 means the key is random with
    respect to physical placement (the paper's ``num`` attribute).
    """
    if len(sorted_items) < 2:
        return 1.0
    in_order = sum(
        1
        for (__, a), (___, b) in zip(sorted_items, sorted_items[1:])
        if a <= b
    )
    return in_order / (len(sorted_items) - 1)
