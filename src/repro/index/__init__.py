"""Indexes on arbitrary collections.

O2 "manages indexes on arbitrary collections (i.e., not just class
extents)" (paper, Section 1) — which is exactly why every object must
record, in its disk header, the indexes it belongs to, and why adding the
first index to an already-populated collection reallocates every object
(Section 3.2).

:class:`~repro.index.btree.BTreeIndex` is a B+-tree whose leaves live as
records in an index file (leaf reads cost real simulated I/O; the inner
directory is assumed cached, as the paper's analysis does).
:class:`~repro.index.manager.IndexManager` creates indexes, updates the
member objects' headers — paying the reallocation when headers must grow
— and registers the index with the database.
"""

from repro.index.btree import BTreeIndex, IndexEntry
from repro.index.manager import IndexBuildReport, IndexManager

__all__ = ["BTreeIndex", "IndexEntry", "IndexManager", "IndexBuildReport"]
