"""Index creation and maintenance.

Two workflows, with very different costs (paper, Section 3.2):

* **index first, then populate** — the collection is marked indexed
  before loading, so every object is created with eight header slots and
  the index absorbs one cheap insert per object;
* **populate, then index** — ``create_index`` must visit every member,
  record the membership in its header, and — for objects created without
  slots — *grow* the header, which moves the record and destroys the
  clustering the loader worked to impose.

"We have always heard that it is more efficient to create an index once
the collection is populated ... This is often true, but not for the
first index."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DuplicateIndexError
from repro.index.btree import BTreeIndex
from repro.objects.database import Database, PersistentCollection
from repro.objects.header import ObjectHeader


@dataclass(frozen=True)
class IndexBuildReport:
    """What building an index cost."""

    name: str
    entries: int
    headers_rewritten: int
    headers_grown: int
    records_moved: int
    build_seconds: float


class IndexManager:
    """Creates and maintains B+-tree indexes for one database."""

    def __init__(self, db: Database):
        self.db = db
        self._next_index_id = 1
        self._collections: dict[str, PersistentCollection] = {}
        self._key_attrs: dict[str, str] = {}

    # -- creation ------------------------------------------------------------

    def create_index(
        self,
        name: str,
        collection: PersistentCollection,
        key_attr: str,
        key_type: type = int,
    ) -> tuple[BTreeIndex, IndexBuildReport]:
        """Create an index on ``collection`` keyed by ``key_attr``.

        Existing members are visited one by one: their key is extracted,
        their header gains the index id (growing — and possibly moving
        the record — when no slot is free), and the tree is bulk-built.
        On an empty collection this is the cheap "index first" setup.
        """
        if name in self.db.indexes:
            raise DuplicateIndexError(f"index {name!r} already exists")
        index_id = self._next_index_id
        self._next_index_id += 1
        index_file = self.db.create_file(f"__index_{name}__")
        index = BTreeIndex(name, index_id, index_file, key_type)

        moved_before = self.db.counters.records_moved
        start = self.db.clock.elapsed_s
        pairs = []
        rewritten = grown = 0
        for rid in collection.iter_rids():
            record, class_def = self.db.manager.read_record(rid)
            key = self.db.manager.codec(class_def).decode_attr(record, key_attr)
            header = ObjectHeader.decode(record)
            if index_id not in header.index_ids:
                if header.add_index(index_id):
                    grown += 1
                actual = self.db.manager.rewrite_header(rid, header)
                if actual != rid:
                    # The record moved: its rid changed, index the new one.
                    rid = actual
                rewritten += 1
            pairs.append((key, rid))
        index.bulk_build(pairs)

        self.db.indexes[name] = index
        collection.indexed = True
        self._collections[name] = collection
        self._key_attrs[name] = key_attr
        report = IndexBuildReport(
            name=name,
            entries=len(pairs),
            headers_rewritten=rewritten,
            headers_grown=grown,
            records_moved=self.db.counters.records_moved - moved_before,
            build_seconds=self.db.clock.elapsed_s - start,
        )
        return index, report

    # -- maintenance -----------------------------------------------------

    def key_attr(self, name: str) -> str:
        return self._key_attrs[name]

    def on_member_added(self, index_name: str, rid, key: object) -> None:
        """A new object entered an indexed collection.

        Objects created with ``index_ids`` already carry the membership
        in their header (no rewrite); this inserts the tree entry.
        """
        self.db.indexes[index_name].insert(key, rid)

    def on_member_removed(self, index_name: str, rid, key: object) -> None:
        self.db.indexes[index_name].remove(key, rid)

    def on_key_updated(
        self, index_name: str, rid, old_key: object, new_key: object
    ) -> None:
        index = self.db.indexes[index_name]
        index.remove(old_key, rid)
        index.insert(new_key, rid)
