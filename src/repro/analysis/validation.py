"""Optimizer validation: does the cost model pick the right algorithm?

For every experimental cell, compare the algorithm the cost-based
optimizer *would* choose against the measured winner, and quantify the
regret (chosen time / best time).  A perfect optimizer scores regret 1.0
everywhere; the paper's heuristic optimizer — improved one customer
complaint at a time — was exactly what this harness is meant to replace.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.figures import cell_times
from repro.bench.runner import JoinMeasurement
from repro.bench.workloads import SELECTIVITY_GRID
from repro.cluster.loader import DerbyDatabase
from repro.oql import Catalog, OQLEngine
from repro.bench.workloads import tree_query_text


@dataclass(frozen=True)
class CellVerdict:
    """One selectivity cell's outcome."""

    sel_patients: int
    sel_providers: int
    chosen: str
    best: str
    regret: float           # chosen elapsed / best elapsed (>= 1.0)
    estimated_s: float      # optimizer's estimate for its choice
    measured_s: float       # what its choice actually took


@dataclass(frozen=True)
class OptimizerScore:
    """Aggregate verdict across a grid."""

    verdicts: list[CellVerdict]

    @property
    def mean_regret(self) -> float:
        return sum(v.regret for v in self.verdicts) / len(self.verdicts)

    @property
    def max_regret(self) -> float:
        return max(v.regret for v in self.verdicts)

    @property
    def wins(self) -> int:
        """Cells where the optimizer picked the measured winner."""
        return sum(1 for v in self.verdicts if v.chosen == v.best)


def score_optimizer(
    derby: DerbyDatabase,
    measurements: list[JoinMeasurement],
    grid: tuple[tuple[int, int], ...] = SELECTIVITY_GRID,
) -> OptimizerScore:
    """Score the cost-based plan choice against measured grid results.

    ``measurements`` must cover every cell of ``grid`` for the paper's
    four algorithms (as produced by
    :meth:`~repro.bench.runner.ExperimentRunner.run_join_grid`).
    """
    engine = OQLEngine(Catalog.from_derby(derby))
    verdicts = []
    for sel_pat, sel_prov in grid:
        plan = engine.plan(tree_query_text(derby.config, sel_pat, sel_prov))
        times = cell_times(measurements, sel_pat, sel_prov)
        best = min(times, key=times.get)
        chosen = plan.algorithm
        verdicts.append(
            CellVerdict(
                sel_patients=sel_pat,
                sel_providers=sel_prov,
                chosen=chosen,
                best=best,
                regret=times[chosen] / times[best],
                estimated_s=plan.estimate.seconds,
                measured_s=times[chosen],
            )
        )
    return OptimizerScore(verdicts)
