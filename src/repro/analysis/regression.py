"""Least-squares elicitation of the cost model from measured runs.

Each measured experiment exposes its elapsed simulated time, its event
counters (page reads, server-to-client transfers, RPCs, handle
operations, swap faults — the quantities the paper's Figure 3 ``Stat``
schema records) and its result cardinality.  Regressing elapsed time on
those observables recovers the per-event costs; on the simulator the
recovered coefficients can be checked against the true
:class:`~repro.simtime.params.CostParams`, which is the validation the
paper could never perform on O2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, Sequence

import numpy as np

from repro.errors import BenchError
from repro.simtime import MeterSnapshot


class MeasuredRun(Protocol):
    """What the regression needs from one experiment."""

    @property
    def elapsed_s(self) -> float: ...

    @property
    def meters(self) -> MeterSnapshot: ...

    @property
    def rows(self) -> int: ...


#: Feature name -> extractor over a measured run.
FEATURES: dict[str, Callable[[MeasuredRun], float]] = {
    "disk_pages": lambda r: r.meters.disk_reads + r.meters.disk_writes,
    "transfer_pages": lambda r: r.meters.server_to_client,
    "rpcs": lambda r: r.meters.rpcs,
    "handle_ops": lambda r: (
        r.meters.handles_allocated + r.meters.handles_unreferenced
    ),
    "swap_faults": lambda r: r.meters.swap_faults,
    "result_rows": lambda r: r.rows,
}


@dataclass(frozen=True)
class CostFit:
    """A fitted linear cost model: elapsed ~ sum(coef * feature)."""

    coefficients: dict[str, float]   # seconds per event
    r_squared: float
    n_runs: int

    def predict(self, run: MeasuredRun) -> float:
        """Predicted elapsed seconds for one run's observables."""
        return sum(
            self.coefficients[name] * extract(run)
            for name, extract in FEATURES.items()
        )

    @property
    def page_read_ms(self) -> float:
        """Fitted milliseconds per disk page (compare to the true
        ``CostParams.page_read_ms``)."""
        return self.coefficients["disk_pages"] * 1000.0

    @property
    def handle_us(self) -> float:
        """Fitted microseconds per handle operation (the true value is
        the get/unref pair split over two events)."""
        return self.coefficients["handle_ops"] * 1e6

    @property
    def result_us(self) -> float:
        """Fitted microseconds per result element (the true value is
        ``CostParams.result_append_txn_us``)."""
        return self.coefficients["result_rows"] * 1e6


def fit_cost_model(
    runs: Sequence[MeasuredRun], nonnegative: bool = True
) -> CostFit:
    """Fit per-event costs from measured runs by least squares.

    Needs at least as many runs as features, and runs diverse enough to
    make the design matrix well-conditioned (mix selectivities,
    algorithms and organizations, as the paper planned to).

    ``nonnegative=True`` (default) uses a projected fit: negative
    coefficients — physically meaningless — are clamped to zero and the
    remaining features refit.
    """
    if len(runs) < len(FEATURES):
        raise BenchError(
            f"need at least {len(FEATURES)} runs to fit "
            f"{len(FEATURES)} coefficients, got {len(runs)}"
        )
    names = list(FEATURES)
    design = np.array(
        [[FEATURES[name](run) for name in names] for run in runs],
        dtype=float,
    )
    target = np.array([run.elapsed_s for run in runs], dtype=float)

    active = list(range(len(names)))
    coef = np.zeros(len(names))
    while active:
        sub = design[:, active]
        solution, *_rest = np.linalg.lstsq(sub, target, rcond=None)
        if not nonnegative or (solution >= 0).all():
            for idx, value in zip(active, solution):
                coef[idx] = value
            break
        # Drop the most negative coefficient and refit without it.
        del active[int(np.argmin(solution))]

    predicted = design @ coef
    residual = target - predicted
    centered = target - target.mean() if len(runs) > 1 else target
    denom = float(centered @ centered)
    r_squared = 1.0 - float(residual @ residual) / denom if denom else 1.0

    return CostFit(
        coefficients={name: float(c) for name, c in zip(names, coef)},
        r_squared=r_squared,
        n_runs=len(runs),
    )
