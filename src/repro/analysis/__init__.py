"""Data analysis over benchmark results — the paper's unreached goal.

"Our hope was that, with the help of an expert in data analysis ..., we
could elicit a cost model from the results (in a manner similar to what
[Fedorowicz] proposes)" (Section 2).  The paper never collected enough
runs; this package closes the loop on the simulator:

* :mod:`repro.analysis.regression` fits per-event cost coefficients
  (milliseconds per page read, microseconds per handle, ...) from
  measured experiments by least squares, and — because the simulator's
  true constants are known — validates that the fit *recovers* them;
* :mod:`repro.analysis.validation` scores the optimizer: for every
  experimental cell, how close was the cost-based choice to the actual
  winner?
"""

from repro.analysis.regression import CostFit, fit_cost_model
from repro.analysis.validation import OptimizerScore, score_optimizer

__all__ = ["fit_cost_model", "CostFit", "score_optimizer", "OptimizerScore"]
