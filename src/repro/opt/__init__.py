"""The cost-based optimizer subsystem.

The paper's optimizer project — "find out what statistics the system
should maintain and how to incorporate them into a cost model" (Section
2) — gets its missing half here.  :mod:`repro.oql` supplies the cost
model and a heuristic planner; this package adds the statistics and the
search:

* :mod:`repro.opt.collector` — ANALYZE passes that scan extents through
  the object manager (paying simulated time) and build per-extent
  cardinalities, per-attribute equi-depth histograms
  (:mod:`repro.opt.histogram`), distinct counts and association fan-out;
* :mod:`repro.opt.estimator` — selectivity/cardinality estimation over
  those statistics, emitting the cost model's
  :class:`~repro.oql.cost.JoinStats`;
* :mod:`repro.opt.enumerator` — :class:`CostBasedOptimizer`, which
  enumerates access paths × join strategies with estimated simtime as
  the objective and plugs into :class:`~repro.oql.OQLEngine` unchanged;
* :mod:`repro.opt.persist` — round-trip of statistics through the
  :mod:`repro.stats` results database.

The ``analyze`` and ``explain`` OQL statements (:mod:`repro.oql.explain`)
drive the lifecycle at the query layer; ``benchmarks/bench_optimizer.py``
scores the planner against the heuristic with semantic validation and a
zero-regression gate.
"""

from repro.opt.collector import (
    AttributeStats,
    DEFAULT_SAMPLE_LIMIT,
    ExtentStats,
    FanoutStats,
    StatsCollector,
    TableStats,
    selectivity_error_bound,
    summarize,
)
from repro.opt.enumerator import CostBasedOptimizer
from repro.opt.estimator import CardinalityEstimator
from repro.opt.histogram import DEFAULT_BUCKETS, EquiDepthHistogram
from repro.opt.persist import load_table_stats, save_table_stats

__all__ = [
    "AttributeStats",
    "CardinalityEstimator",
    "CostBasedOptimizer",
    "DEFAULT_BUCKETS",
    "DEFAULT_SAMPLE_LIMIT",
    "EquiDepthHistogram",
    "ExtentStats",
    "FanoutStats",
    "StatsCollector",
    "TableStats",
    "load_table_stats",
    "save_table_stats",
    "selectivity_error_bound",
    "summarize",
]
