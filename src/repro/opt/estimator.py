"""Cardinality and selectivity estimation from collected statistics.

The estimator is the bridge between ANALYZE output
(:class:`~repro.opt.collector.TableStats`) and the planner: it answers
"what fraction of this extent satisfies this predicate" and "what does
this parent/child join look like" in the vocabulary the simtime
:class:`~repro.oql.cost.CostModel` consumes (:class:`JoinStats`).

Estimates degrade gracefully: with no histogram for an attribute it
falls back to the index's leaf-directory interpolation (the heuristic
planner's only source), and with no index either, to textbook default
selectivities.  Conjunctions multiply under the usual independence
assumption.
"""

from __future__ import annotations

from repro.index.btree import BTreeIndex
from repro.objects.database import CHUNK_RIDS
from repro.oql.catalog import Catalog, RelationshipInfo
from repro.oql.cost import JoinStats
from repro.oql.optimizer import SargablePredicate
from repro.opt.collector import TableStats

#: Defaults when neither histogram nor index covers an attribute.
DEFAULT_EQ_SELECTIVITY = 0.01
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0

#: Rid sets larger than this many bytes overflow to chunk records
#: (mirrors the inline-set limit in :mod:`repro.objects.database`).
_INLINE_SET_BYTES = 3400


class CardinalityEstimator:
    """Answers row-count and selectivity questions for one catalog."""

    def __init__(self, catalog: Catalog, stats: TableStats | None = None):
        self.catalog = catalog
        self.stats = stats if stats is not None else TableStats()

    def install(self, stats: TableStats) -> None:
        """Adopt a fresh ANALYZE result (replaces any previous one)."""
        self.stats = stats

    # -- row counts -------------------------------------------------------

    def collection_rows(self, name: str) -> int:
        extent = self.stats.extent(name)
        if extent is not None:
            return extent.n_objects
        return self.catalog.collection_size(name)

    # -- predicate selectivity -------------------------------------------

    def selectivity(self, collection: str, pred: SargablePredicate) -> float:
        """Fraction of ``collection`` satisfying ``pred``."""
        if pred.op == "!=":
            return max(0.0, 1.0 - self._eq_selectivity(collection, pred))
        extent = self.stats.extent(collection)
        attr = extent.attribute(pred.attr) if extent is not None else None
        if attr is None or attr.histogram.n == 0:
            return self._fallback(collection, pred)
        return attr.histogram.selectivity(*pred.bounds())

    def _eq_selectivity(self, collection: str, pred: SargablePredicate) -> float:
        extent = self.stats.extent(collection)
        attr = extent.attribute(pred.attr) if extent is not None else None
        if attr is None or attr.histogram.n == 0:
            return DEFAULT_EQ_SELECTIVITY
        return attr.histogram.eq_fraction()

    def _fallback(self, collection: str, pred: SargablePredicate) -> float:
        index = self.catalog.index_for(collection, pred.attr)
        if index is not None:
            low, high, __, ___ = pred.bounds()
            return index.selectivity(low, high)
        if pred.op == "=":
            return DEFAULT_EQ_SELECTIVITY
        return DEFAULT_RANGE_SELECTIVITY

    def conjunct_selectivity(
        self, collection: str, predicates: tuple[SargablePredicate, ...]
    ) -> float:
        """Independence-assumption product over a conjunction."""
        sel = 1.0
        for pred in predicates:
            sel *= self.selectivity(collection, pred)
        return sel

    # -- associations -----------------------------------------------------

    def fanout(self, rel: RelationshipInfo) -> float:
        """Average children per parent along ``rel``."""
        stats = self.stats.fanout(rel.parent_collection, rel.set_attr)
        if stats is not None and stats.sampled:
            return stats.avg_children
        n_parents = self.collection_rows(rel.parent_collection)
        return self.collection_rows(rel.child_collection) / max(1, n_parents)

    def join_stats(
        self,
        rel: RelationshipInfo,
        parent_index: BTreeIndex,
        child_index: BTreeIndex,
        parent_pred: SargablePredicate,
        child_pred: SargablePredicate,
    ) -> JoinStats:
        """The cost model's input for a parent/child tree join, with
        selectivities and fan-out drawn from ANALYZE statistics."""
        n_parents = self.collection_rows(rel.parent_collection)
        n_children = self.collection_rows(rel.child_collection)
        avg_children = self.fanout(rel)
        set_bytes = avg_children * 8
        parent_set_chunks = (
            0.0 if set_bytes <= _INLINE_SET_BYTES
            else avg_children / CHUNK_RIDS
        )
        return JoinStats(
            n_parents=n_parents,
            n_children=n_children,
            parent_pages=self.catalog.file_pages(rel.parent_collection),
            child_pages=self.catalog.file_pages(rel.child_collection),
            parent_leaves=parent_index.leaf_count,
            child_leaves=child_index.leaf_count,
            sel_parents=self.selectivity(rel.parent_collection, parent_pred),
            sel_children=self.selectivity(rel.child_collection, child_pred),
            avg_children=avg_children,
            children_with_parents=rel.children_with_parents,
            child_index_clustering=child_index.clustering_ratio,
            parent_index_clustering=parent_index.clustering_ratio,
            parent_set_chunks=parent_set_chunks,
        )
