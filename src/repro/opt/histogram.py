"""Equi-depth histograms over scalar attribute values.

The ANALYZE pass (:mod:`repro.opt.collector`) sorts the sampled values
of each numeric attribute and cuts them into buckets of (near-)equal
row count; each bucket remembers only its upper boundary and its count.
Selectivity of a range predicate is then the sum of fully covered
buckets plus a linear interpolation inside the boundary buckets — the
classic equi-depth estimate, which bounds the error of any single
predicate by roughly one bucket's worth of rows regardless of skew.

Everything here is pure computation over already-sampled values; the
simulated-time charges for reading those values (and for the sort that
builds the histogram) are levied by the collector.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Default number of buckets — enough for ~2.5% worst-case resolution.
DEFAULT_BUCKETS = 40


@dataclass(frozen=True)
class EquiDepthHistogram:
    """An equi-depth histogram over one attribute's sampled values.

    ``uppers[i]`` is the largest value in bucket ``i``; bucket ``i``
    covers ``(uppers[i-1], uppers[i]]`` (the first bucket starts at
    ``lo``, the sample minimum, inclusively).  ``counts[i]`` is the
    number of sampled values in the bucket.
    """

    lo: float
    uppers: tuple[float, ...]
    counts: tuple[int, ...]
    #: Estimated distinct values in the *extent* (scaled up from the
    #: sample by the collector when sampling was in effect).
    n_distinct: int

    @property
    def n(self) -> int:
        """Sampled values represented by the histogram."""
        return sum(self.counts)

    @property
    def hi(self) -> float:
        return self.uppers[-1] if self.uppers else self.lo

    # -- construction ---------------------------------------------------

    @classmethod
    def build(
        cls,
        values: list[float],
        buckets: int = DEFAULT_BUCKETS,
        n_distinct: int | None = None,
    ) -> "EquiDepthHistogram":
        """Build from raw (unsorted) values; deterministic — the only
        data dependence is the sorted value sequence itself."""
        ordered = sorted(float(v) for v in values)
        if not ordered:
            return cls(0.0, (), (), 0)
        total = len(ordered)
        if n_distinct is None:
            n_distinct = 1 + sum(
                1 for a, b in zip(ordered, ordered[1:]) if a != b
            )
        uppers: list[float] = []
        counts: list[int] = []
        start = 0
        n_buckets = max(1, min(buckets, total))
        for i in range(n_buckets):
            end = min(total, round((i + 1) * total / n_buckets))
            if end <= start:
                continue
            uppers.append(ordered[end - 1])
            counts.append(end - start)
            start = end
        return cls(ordered[0], tuple(uppers), tuple(counts), n_distinct)

    # -- estimation ------------------------------------------------------

    def eq_fraction(self) -> float:
        """Estimated fraction of rows equal to one in-range value."""
        if self.n == 0 or self.n_distinct == 0:
            return 0.0
        return 1.0 / self.n_distinct

    def fraction_le(self, x: float) -> float:
        """Estimated fraction of values ``<= x``."""
        n = self.n
        if n == 0:
            return 0.0
        if x < self.lo:
            return 0.0
        acc = 0.0
        prev = self.lo
        for upper, count in zip(self.uppers, self.counts):
            if x >= upper:
                acc += count
                prev = upper
                continue
            width = upper - prev
            if width > 0:
                acc += count * (x - prev) / width
            break
        return min(1.0, acc / n)

    def fraction_lt(self, x: float) -> float:
        """Estimated fraction of values strictly ``< x``."""
        return max(0.0, self.fraction_le(x) - self.eq_fraction())

    def selectivity(
        self,
        low: object | None,
        high: object | None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> float:
        """Estimated fraction of rows in the range — the same
        ``(low, high, include_low, include_high)`` convention as
        :meth:`~repro.oql.optimizer.SargablePredicate.bounds`."""
        if self.n == 0:
            return 0.0
        if high is None:
            hi_frac = 1.0
        elif include_high:
            hi_frac = self.fraction_le(float(high))
        else:
            hi_frac = self.fraction_lt(float(high))
        if low is None:
            lo_frac = 0.0
        elif include_low:
            lo_frac = self.fraction_lt(float(low))
        else:
            lo_frac = self.fraction_le(float(low))
        return max(0.0, hi_frac - lo_frac)
