"""The ANALYZE pass: scan extents, build optimizer statistics.

The collector reads sampled objects through the object manager — handle
brackets, page faults, cache traffic and all — so an ``analyze``
statement is charged simulated time exactly like any other workload (the
paper's cost-model premise: the statistics the system maintains are
themselves paid for by the system).  Sampling is systematic with a
seeded offset so repeated runs over the same database produce identical
statistics (the simlint DET discipline).

Output is a :class:`TableStats` bundle: per-extent cardinalities and
page counts, per-attribute equi-depth histograms with distinct counts,
and per-relationship fan-out statistics.  :mod:`repro.opt.persist`
round-trips the bundle through the ``repro.stats`` results database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random

from repro.objects.model import AttrKind
from repro.oql.catalog import Catalog, RelationshipInfo
from repro.oql.cost import CostModel
from repro.opt.histogram import DEFAULT_BUCKETS, EquiDepthHistogram
from repro.simtime import Bucket

#: Attribute kinds that get histograms (orderable numeric scalars).
_NUMERIC_KINDS = (AttrKind.INT32, AttrKind.REAL64)

#: Default cap on objects read per extent; above it the collector
#: switches to systematic sampling (every k-th object, seeded start).
DEFAULT_SAMPLE_LIMIT = 4000


@dataclass(frozen=True)
class AttributeStats:
    """Statistics for one numeric attribute of one extent."""

    attr: str
    min_value: float
    max_value: float
    histogram: EquiDepthHistogram

    @property
    def n_distinct(self) -> int:
        return self.histogram.n_distinct


@dataclass(frozen=True)
class ExtentStats:
    """Statistics for one named collection."""

    collection: str
    n_objects: int
    file_pages: int
    extent_pages: int
    #: Objects actually read (== ``n_objects`` below the sample limit).
    sampled: int
    attributes: tuple[AttributeStats, ...]

    def attribute(self, name: str) -> AttributeStats | None:
        for stats in self.attributes:
            if stats.attr == name:
                return stats
        return None


@dataclass(frozen=True)
class FanoutStats:
    """Statistics for one parent→children set association."""

    parent_collection: str
    set_attr: str
    child_collection: str
    sampled: int
    avg_children: float
    max_children: int
    #: Fraction of sampled parents with a non-empty child set.
    frac_with_children: float


@dataclass
class TableStats:
    """Everything one ANALYZE pass learned, keyed for the estimator."""

    extents: dict[str, ExtentStats] = field(default_factory=dict)
    fanouts: dict[tuple[str, str], FanoutStats] = field(default_factory=dict)

    def extent(self, name: str) -> ExtentStats | None:
        return self.extents.get(name)

    def fanout(self, parent: str, set_attr: str) -> FanoutStats | None:
        return self.fanouts.get((parent, set_attr))

    def __bool__(self) -> bool:
        return bool(self.extents or self.fanouts)


class StatsCollector:
    """Runs ANALYZE passes against one catalog."""

    def __init__(
        self,
        catalog: Catalog,
        buckets: int = DEFAULT_BUCKETS,
        sample_limit: int = DEFAULT_SAMPLE_LIMIT,
        seed: int = 1,
    ):
        self.catalog = catalog
        self.buckets = buckets
        self.sample_limit = max(1, sample_limit)
        self.seed = seed
        self.cost = CostModel(catalog.db.params)

    # -- entry point ------------------------------------------------------

    def collect(self, collections: tuple[str, ...] | None = None) -> TableStats:
        """Analyze the named collections (default: every registered one)
        plus the relationships rooted at them."""
        names = sorted(collections) if collections else (
            self.catalog.collection_names()
        )
        stats = TableStats()
        for name in names:
            stats.extents[name] = self._collect_extent(name)
        for rel in self.catalog.relationships():
            if rel.parent_collection not in names:
                continue
            key = (rel.parent_collection, rel.set_attr)
            stats.fanouts[key] = self._collect_fanout(rel)
        return stats

    # -- extents ---------------------------------------------------------

    def _sample_step(self, name: str, n: int) -> tuple[int, int]:
        """(step, offset) of the systematic sample over ``n`` objects.

        The offset comes from a generator seeded by ``seed`` and the
        extent name — stable across runs, unlike ``hash(str)``.
        """
        step = max(1, -(-n // self.sample_limit))
        if step == 1:
            return 1, 0
        return step, Random(f"{self.seed}:{name}").randrange(step)

    def _collect_extent(self, name: str) -> ExtentStats:
        catalog = self.catalog
        db = catalog.db
        om = db.manager
        info = catalog.collection(name)
        n = catalog.collection_size(name)
        class_def = db.schema.cls(info.class_name)
        attrs = sorted(
            a.name for a in class_def.scalar_attributes()
            if a.kind in _NUMERIC_KINDS
        )
        step, offset = self._sample_step(name, n)
        values: dict[str, list[float]] = {attr: [] for attr in attrs}
        sampled = 0
        for i, rid in enumerate(info.collection.iter_rids()):
            if i % step != offset:
                continue
            sampled += 1
            with om.borrow(rid) as handle:
                for attr in attrs:
                    values[attr].append(float(om.get_attr(handle, attr)))
        attribute_stats = []
        for attr in attrs:
            sample = values[attr]
            if not sample:
                continue
            # Building the histogram sorts the sample: pay for it.
            db.clock.charge_s(Bucket.SORT, self.cost.sort_s(len(sample)))
            histogram = EquiDepthHistogram.build(sample, self.buckets)
            attribute_stats.append(
                AttributeStats(
                    attr=attr,
                    min_value=min(sample),
                    max_value=max(sample),
                    histogram=self._scale_distinct(histogram, sampled, n),
                )
            )
        return ExtentStats(
            collection=name,
            n_objects=n,
            file_pages=catalog.file_pages(name),
            extent_pages=catalog.extent_pages(name),
            sampled=sampled,
            attributes=tuple(attribute_stats),
        )

    @staticmethod
    def _scale_distinct(
        histogram: EquiDepthHistogram, sampled: int, n: int
    ) -> EquiDepthHistogram:
        """Scale the sample's distinct count up to the extent.

        A systematic sample sees at most one value in ``step``; when the
        sample is saturated with distinct values (near-key attributes)
        the extent plausibly is too, so extrapolate linearly and clamp.
        """
        if sampled >= n or histogram.n == 0:
            return histogram
        scaled = min(n, round(histogram.n_distinct * n / max(1, sampled)))
        return EquiDepthHistogram(
            histogram.lo, histogram.uppers, histogram.counts, scaled
        )

    # -- fan-out ---------------------------------------------------------

    def _collect_fanout(self, rel: RelationshipInfo) -> FanoutStats:
        catalog = self.catalog
        db = catalog.db
        om = db.manager
        info = catalog.collection(rel.parent_collection)
        n = catalog.collection_size(rel.parent_collection)
        step, offset = self._sample_step(
            f"{rel.parent_collection}.{rel.set_attr}", n
        )
        counts: list[int] = []
        for i, rid in enumerate(info.collection.iter_rids()):
            if i % step != offset:
                continue
            with om.borrow(rid) as handle:
                value = om.get_attr(handle, rel.set_attr)
            counts.append(sum(1 for __ in db.iter_set_rids(value)))
        sampled = len(counts)
        if sampled == 0:
            return FanoutStats(
                rel.parent_collection, rel.set_attr, rel.child_collection,
                0, 0.0, 0, 0.0,
            )
        return FanoutStats(
            parent_collection=rel.parent_collection,
            set_attr=rel.set_attr,
            child_collection=rel.child_collection,
            sampled=sampled,
            avg_children=sum(counts) / sampled,
            max_children=max(counts),
            frac_with_children=sum(1 for c in counts if c) / sampled,
        )


def summarize(stats: TableStats) -> list[str]:
    """One human-readable line per analyzed extent and association —
    what the ``analyze`` statement returns as its result rows."""
    lines: list[str] = []
    for name in sorted(stats.extents):
        extent = stats.extents[name]
        lines.append(
            f"analyzed {name}: {extent.n_objects} objects, "
            f"{extent.file_pages} pages, {len(extent.attributes)} "
            f"attribute histogram(s), sampled {extent.sampled}"
        )
    for parent, set_attr in sorted(stats.fanouts):
        fanout = stats.fanouts[(parent, set_attr)]
        lines.append(
            f"analyzed {parent}.{set_attr}: avg fan-out "
            f"{fanout.avg_children:.1f}, max {fanout.max_children}, "
            f"{fanout.frac_with_children * 100:.0f}% with children"
        )
    return lines


def selectivity_error_bound(buckets: int) -> float:
    """Worst-case selectivity error of an equi-depth histogram: one
    bucket's fraction on each boundary."""
    return 2.0 / max(1, buckets)


__all__ = [
    "AttributeStats",
    "ExtentStats",
    "FanoutStats",
    "TableStats",
    "StatsCollector",
    "summarize",
    "selectivity_error_bound",
    "DEFAULT_SAMPLE_LIMIT",
]
