"""Round-trip optimizer statistics through the results database.

ANALYZE output is persisted as first-class objects in a
:class:`~repro.stats.store.StatsDatabase` — the paper's own
eat-your-own-dogfood discipline, extended from benchmark results to the
planner's statistics.  ``save_table_stats`` writes one ExtentStat per
analyzed collection, one ColumnStat (plus ordered HistBucket objects)
per attribute histogram, and one FanoutStat per association;
``load_table_stats`` reconstructs an equivalent
:class:`~repro.opt.collector.TableStats` bundle, so a planner can be
warmed from a previous run's statistics without re-scanning anything.
"""

from __future__ import annotations

from repro.opt.collector import (
    AttributeStats,
    ExtentStats,
    FanoutStats,
    TableStats,
)
from repro.opt.histogram import EquiDepthHistogram
from repro.stats.store import StatsDatabase


def save_table_stats(stats_db: StatsDatabase, stats: TableStats) -> int:
    """Persist one ANALYZE result; returns the number of stat objects
    written (extents + columns + fan-outs, excluding buckets)."""
    written = 0
    for name in sorted(stats.extents):
        extent = stats.extents[name]
        stats_db.record_extent_stat(
            collection=extent.collection,
            n_objects=extent.n_objects,
            file_pages=extent.file_pages,
            extent_pages=extent.extent_pages,
            sampled=extent.sampled,
        )
        written += 1
        for attr in extent.attributes:
            histogram = attr.histogram
            stats_db.record_column_stat(
                collection=extent.collection,
                attr=attr.attr,
                lo=histogram.lo,
                min_value=attr.min_value,
                max_value=attr.max_value,
                n_distinct=histogram.n_distinct,
                buckets=list(zip(histogram.uppers, histogram.counts)),
            )
            written += 1
    for key in sorted(stats.fanouts):
        fanout = stats.fanouts[key]
        stats_db.record_fanout_stat(
            parent=fanout.parent_collection,
            set_attr=fanout.set_attr,
            child=fanout.child_collection,
            sampled=fanout.sampled,
            avg_children=fanout.avg_children,
            max_children=fanout.max_children,
            frac_with_children=fanout.frac_with_children,
        )
        written += 1
    return written


def load_table_stats(stats_db: StatsDatabase) -> TableStats:
    """Rebuild a :class:`TableStats` from everything previously saved.

    Stat objects are append-only (the underlying collections have no
    delete), so a re-run ANALYZE leaves earlier rows behind; every key
    — extent name, ``(collection, attr)`` column, fan-out association —
    resolves last-wins, i.e. to the most recent save.
    """
    columns: dict[tuple[str, str], AttributeStats] = {}
    for row in stats_db.column_stat_rows():
        histogram = EquiDepthHistogram(
            lo=row.lo,
            uppers=tuple(upper for upper, __ in row.buckets),
            counts=tuple(count for __, count in row.buckets),
            n_distinct=row.n_distinct,
        )
        columns[(row.collection, row.attr)] = AttributeStats(
            attr=row.attr,
            min_value=row.min_value,
            max_value=row.max_value,
            histogram=histogram,
        )
    stats = TableStats()
    for row in stats_db.extent_stat_rows():
        stats.extents[row.collection] = ExtentStats(
            collection=row.collection,
            n_objects=row.n_objects,
            file_pages=row.file_pages,
            extent_pages=row.extent_pages,
            sampled=row.sampled,
            attributes=tuple(
                sorted(
                    (stat for (name, __), stat in columns.items()
                     if name == row.collection),
                    key=lambda a: a.attr,
                )
            ),
        )
    for row in stats_db.fanout_stat_rows():
        stats.fanouts[(row.parent, row.set_attr)] = FanoutStats(
            parent_collection=row.parent,
            set_attr=row.set_attr,
            child_collection=row.child,
            sampled=row.sampled,
            avg_children=row.avg_children,
            max_children=row.max_children,
            frac_with_children=row.frac_with_children,
        )
    return stats
