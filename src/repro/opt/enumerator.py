"""The cost-based planner: statistics-driven plan enumeration.

:class:`CostBasedOptimizer` extends the heuristic
:class:`~repro.oql.optimizer.Optimizer` along the axes the paper's
optimizer project called for:

* **selections** — instead of committing to the single best-selectivity
  indexed predicate, it enumerates *every* applicable index × access
  path (unsorted and rid-sorted index scan) against the full scan, and
  costs each candidate with histogram selectivities instead of the
  index's leaf-directory guess;
* **tree joins** — the six join strategies (NL, NOJOIN, PHJ, CHJ, and
  with extensions PHJ-HYBRID and SMJ) are costed from
  :class:`~repro.opt.estimator.CardinalityEstimator`-supplied
  :class:`~repro.oql.cost.JoinStats`, i.e. from measured fan-out and
  histogram selectivities rather than catalog ratios.  Which side
  drives (join order) is implicit in the strategy: NL/NOJOIN descend
  parent→child, the hash variants build on the cheaper filtered side.

The search objective is the same simtime :class:`CostModel` the
benchmarks measure, so a plan's estimated seconds and its executed
seconds live on one scale — that is what ``explain`` prints and what
``bench_optimizer`` scores.

Plans come out as ordinary :class:`SelectionPlan` / :class:`TreeJoinPlan`
objects; the engine compiles them with no knowledge of which planner
chose them.
"""

from __future__ import annotations

from repro.index.btree import BTreeIndex
from repro.oql.catalog import Catalog
from repro.oql.optimizer import (
    Optimizer,
    SargablePredicate,
    SelectionParts,
    SelectionPlan,
)
from repro.oql.ast_nodes import Query
from repro.opt.collector import TableStats
from repro.opt.estimator import CardinalityEstimator


class CostBasedOptimizer(Optimizer):
    """Statistics-fed plan enumeration; heuristic behavior until the
    first ANALYZE installs statistics."""

    def __init__(
        self,
        catalog: Catalog,
        include_extensions: bool = False,
        stats: TableStats | None = None,
    ):
        super().__init__(catalog, include_extensions)
        self.estimator = CardinalityEstimator(catalog, stats)

    # -- statistics lifecycle --------------------------------------------

    @property
    def table_stats(self) -> TableStats:
        return self.estimator.stats

    def install_stats(self, stats: TableStats) -> None:
        """Adopt the result of an ANALYZE pass (the ``analyze``
        statement calls this on the session's planner)."""
        self.estimator.install(stats)

    # -- hook overrides ---------------------------------------------------

    def _predicate_selectivity(
        self, collection_name: str, pred: SargablePredicate,
        index: BTreeIndex,
    ) -> float:
        return self.estimator.selectivity(collection_name, pred)

    def _output_selectivity(self, collection_name, parts, best) -> float:
        return self.estimator.conjunct_selectivity(
            collection_name, parts.predicates
        )

    def _join_stats(self, rel, parent_index, child_index,
                    parent_pred, child_pred):
        return self.estimator.join_stats(
            rel, parent_index, child_index, parent_pred, child_pred
        )

    # -- selection enumeration -------------------------------------------

    def _choose_selection(
        self, query: Query, parts: SelectionParts
    ) -> SelectionPlan:
        name = parts.collection_name
        n = self.catalog.collection_size(name)
        pages = self.catalog.file_pages(name)
        extent_pages = self.catalog.extent_pages(name)
        sel_out = self.estimator.conjunct_selectivity(name, parts.predicates)

        # Every indexed sargable predicate is a candidate driver.
        candidates: list[tuple[SargablePredicate, BTreeIndex, float]] = []
        for pred in parts.predicates:
            index = self.catalog.index_for(name, pred.attr)
            if index is None or pred.op == "!=":
                continue
            sel = self.estimator.selectivity(name, pred)
            candidates.append((pred, index, sel))

        alternatives = {
            "scan": self.cost.selection_scan(n, pages, extent_pages, sel_out)
        }
        by_label: dict[str, tuple[SargablePredicate, BTreeIndex, bool]] = {}
        for pred, index, sel in candidates:
            for sorted_rids in (False, True):
                kind = "sorted-index" if sorted_rids else "index"
                label = f"{kind}({pred.attr})"
                alternatives[label] = self.cost.selection_index(
                    n, pages, index.leaf_count, sel,
                    index.clustering_ratio, sorted_rids=sorted_rids,
                )
                by_label[label] = (pred, index, sorted_rids)

        best = min(candidates, key=lambda c: c[2]) if candidates else None
        index_only_estimate = None
        if best is not None:
            index_only_estimate = self.cost.selection_index_only(
                n, best[1].leaf_count, best[2]
            )
            alternatives[f"index-only({best[0].attr})"] = index_only_estimate
        plan = self._index_only_aggregate(
            query, parts, best, alternatives, index_only_estimate
        )
        if plan is not None:
            return plan
        if best is not None:
            # Not an index-only-answerable query after all; the entry
            # would only clutter the alternatives table.
            del alternatives[f"index-only({best[0].attr})"]

        est_rows = 1.0 if parts.aggregate is not None else n * sel_out
        choice = min(alternatives, key=lambda k: alternatives[k].seconds)
        if choice == "scan":
            return SelectionPlan(
                collection_name=name,
                project=tuple(path.attrs[0] for __, path in parts.projection),
                columns=tuple(label for label, __ in parts.projection),
                predicate=None,
                residuals=parts.predicates,
                index=None,
                sorted_rids=False,
                estimate=alternatives[choice],
                alternatives=alternatives,
                distinct=query.distinct,
                aggregate=parts.aggregate,
                order_by=parts.order_by,
                exists_filters=parts.exists_filters,
                limit=query.limit,
                est_rows=est_rows,
            )
        pred, index, sorted_rids = by_label[choice]
        residuals = tuple(p for p in parts.predicates if p != pred)
        return SelectionPlan(
            collection_name=name,
            project=tuple(path.attrs[0] for __, path in parts.projection),
            columns=tuple(label for label, __ in parts.projection),
            predicate=pred,
            residuals=residuals,
            index=index,
            sorted_rids=sorted_rids,
            estimate=alternatives[choice],
            alternatives=alternatives,
            distinct=query.distinct,
            aggregate=parts.aggregate,
            order_by=parts.order_by,
            exists_filters=parts.exists_filters,
            limit=query.limit,
            est_rows=est_rows,
        )
