"""The experiment runner.

Executes one measured query the way the paper ran all of its tests:
**cold** — caches emptied, meters zeroed — and records the outcome as a
``Stat`` in the Figure 3 results database.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.loader import DerbyDatabase
from repro.errors import BenchError
from repro.exec import (
    ALGORITHMS,
    TreeJoinQuery,
    select_indexed,
    select_scan,
)
from repro.objects.handle import HandleMode
from repro.simtime import MeterSnapshot
from repro.stats import StatsDatabase


@dataclass(frozen=True)
class JoinMeasurement:
    """One measured run of the Section 5 tree query."""

    algo: str
    clustering: str
    sel_patients: int
    sel_providers: int
    elapsed_s: float
    rows: int
    meters: MeterSnapshot
    breakdown: dict[str, float]


@dataclass(frozen=True)
class SelectionMeasurement:
    """One measured run of the Section 4 selection."""

    method: str          # "scan" | "index" | "sorted-index"
    selectivity_pct: float
    elapsed_s: float
    rows: int
    page_reads: int
    meters: MeterSnapshot
    breakdown: dict[str, float]


class ExperimentRunner:
    """Runs cold experiments against one loaded Derby database."""

    def __init__(self, derby: DerbyDatabase, stats: StatsDatabase | None = None):
        self.derby = derby
        self.stats = stats

    # -- Section 5: the tree query -------------------------------------------

    def tree_query(self, sel_patients: int, sel_providers: int) -> TreeJoinQuery:
        config = self.derby.config
        return TreeJoinQuery(
            db=self.derby.db,
            parent_index=self.derby.by_upin,
            child_index=self.derby.by_mrn,
            parent_high=config.upin_threshold(sel_providers),
            child_high=config.mrn_threshold(sel_patients),
            n_parents=config.n_providers,
        )

    def run_join(
        self, algo: str, sel_patients: int, sel_providers: int,
        cold: bool = True,
    ) -> JoinMeasurement:
        """One run of one algorithm at one selectivity pair.

        ``cold=True`` (the paper's protocol) empties both caches and the
        handle table first; ``cold=False`` keeps them warm — the
        main-memory-navigation regime object benchmarks optimize for
        (paper, Section 4.4) — and only zeroes the meters.
        """
        if algo not in ALGORITHMS:
            raise BenchError(
                f"unknown algorithm {algo!r}; have {sorted(ALGORITHMS)}"
            )
        derby = self.derby
        if cold:
            derby.start_cold_run()
        else:
            derby.db.reset_meters()
        rows = ALGORITHMS[algo](self.tree_query(sel_patients, sel_providers))
        measurement = JoinMeasurement(
            algo=algo,
            clustering=derby.config.clustering.value,
            sel_patients=sel_patients,
            sel_providers=sel_providers,
            elapsed_s=derby.db.clock.elapsed_s,
            rows=len(rows),
            meters=derby.db.counters.snapshot(),
            breakdown=derby.db.clock.breakdown(),
        )
        self._record(
            algo,
            measurement.elapsed_s,
            measurement.meters,
            sel_patients,
            sel_providers,
        )
        return measurement

    def run_join_grid(
        self, algorithms: tuple[str, ...], grid: tuple[tuple[int, int], ...]
    ) -> list[JoinMeasurement]:
        return [
            self.run_join(algo, sel_pat, sel_prov)
            for sel_pat, sel_prov in grid
            for algo in algorithms
        ]

    # -- Section 4: selections ------------------------------------------------

    def run_selection(
        self, method: str, selectivity_pct: float, project: str = "age"
    ) -> SelectionMeasurement:
        """One cold run of ``select p.<project> from Patients where
        num > k``."""
        derby = self.derby
        k = derby.config.num_threshold(selectivity_pct)
        derby.start_cold_run()
        if method == "scan":
            result = select_scan(
                derby.db, derby.patients, "num", lambda v: v > k, project
            )
        elif method in ("index", "sorted-index"):
            result = select_indexed(
                derby.db,
                derby.by_num,
                k,
                None,
                project,
                sorted_rids=(method == "sorted-index"),
                include_low=False,
            )
        else:
            raise BenchError(f"unknown selection method {method!r}")
        measurement = SelectionMeasurement(
            method=method,
            selectivity_pct=selectivity_pct,
            elapsed_s=derby.db.clock.elapsed_s,
            rows=result.selected,
            page_reads=derby.db.counters.disk_reads,
            meters=derby.db.counters.snapshot(),
            breakdown=derby.db.clock.breakdown(),
        )
        self._record(
            f"select/{method}",
            measurement.elapsed_s,
            measurement.meters,
            int(selectivity_pct),
            0,
        )
        return measurement

    # -- handle-mode ablation --------------------------------------------------

    def with_handle_mode(self, mode: HandleMode) -> "ExperimentRunner":
        """A runner over the same database with a different handle
        regime (Section 4.4 ablation).  Only the handle table changes —
        the data on disk is shared."""
        derby = self.derby
        derby.db.handles.mode = mode
        return self

    # -- internals ----------------------------------------------------------------

    def _record(
        self,
        algo: str,
        elapsed_s: float,
        meters: MeterSnapshot,
        selectivity: int,
        selectivity_parents: int,
    ) -> None:
        if self.stats is None:
            return
        memory = self.derby.config.params.memory
        self.stats.record_experiment(
            algo=algo,
            cluster=self.derby.config.clustering.value,
            elapsed_s=elapsed_s,
            meters=meters,
            selectivity=selectivity,
            selectivity_parents=selectivity_parents,
            server_cache_bytes=memory.server_cache_bytes,
            client_cache_bytes=memory.client_cache_bytes,
        )
