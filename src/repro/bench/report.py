"""Plain-text tables in the paper's layout."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Table:
    """A titled ASCII table."""

    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *values: object) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.headers)} "
                "columns"
            )
        self.rows.append(list(values))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        cells = [[_fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.headers[i]), *(len(r[i]) for r in cells), 1)
            if cells
            else len(self.headers[i])
            for i in range(len(self.headers))
        ]
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title)]
        lines.append(
            " | ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        )
        lines.append(sep)
        for row in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  * {note}")
        return "\n".join(lines) + "\n"

    def __str__(self) -> str:
        return self.render()


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.1f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)
