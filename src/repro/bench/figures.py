"""One builder per paper figure.

Each builder runs the experiments it needs through an
:class:`~repro.bench.runner.ExperimentRunner` (always cold, as in the
paper) and renders a :class:`~repro.bench.report.Table` in the layout of
the corresponding figure.  Simulated times at scale *s* correspond to
roughly *s* x the paper's seconds; the ratio columns are scale-free.
"""

from __future__ import annotations

from repro.bench.report import Table
from repro.bench.runner import ExperimentRunner, JoinMeasurement
from repro.bench.workloads import (
    SELECTIVITY_GRID,
    figure6_selectivities,
    figure7_selectivities,
)
from repro.exec.hash_table import QueryHashTable, chj_table_bytes, phj_table_bytes
from repro.objects.handle import HandleMode
from repro.simtime import Bucket
from repro.units import MB

#: The four algorithms of the paper's Section 5 figures.
PAPER_ALGORITHMS = ("NL", "NOJOIN", "PHJ", "CHJ")


# ------------------------------------------------------------------ fig 4/5

def figure4_rids_vs_handles(
    runner: ExperimentRunner, selectivity_pct: int = 60
) -> Table:
    """Section 4.1: a hash table of selected patients keyed by provider,
    storing full Handles (pins a 60+ byte structure per element) versus
    storing Rids (8 bytes, re-fetch on use)."""
    derby = runner.derby
    config = derby.config
    k = config.mrn_threshold(selectivity_pct)
    om = derby.db.manager
    table = Table(
        f"Figure 4/5 — Hash table payloads: Rids or Handles? "
        f"(selectivity {selectivity_pct}%, scale {config.scale:g})",
        ["Payload", "Entry bytes", "Table MB", "Build+use time (sec)"],
    )
    for payload, entry_bytes in (("Handles", 60 + 64), ("Rids", 8)):
        derby.start_cold_run()
        hash_table = QueryHashTable(
            derby.db.clock, derby.db.params, derby.db.counters, entry_bytes
        )
        for entry in derby.by_mrn.range_scan(None, k, include_high=False):
            if payload == "Handles":
                # The handle stays referenced (pinned) inside the table.
                handle = om.load(entry.rid)
                owner = om.get_attr(handle, "primary_care_provider")
                hash_table.insert(owner, handle)
            else:
                with om.borrow(entry.rid) as handle:
                    owner = om.get_attr(handle, "primary_care_provider")
                hash_table.insert(owner, entry.rid)
        # Use phase: touch every entry once (e.g. to build f(p, pa)).
        for key in list(hash_table._table):
            for item in hash_table.probe_all(key):
                if payload == "Handles":
                    om.get_attr(item, "age")
                else:
                    om.get_attr_at(item, "age")
        table.add(
            payload,
            entry_bytes,
            hash_table.table_bytes / MB,
            derby.db.clock.elapsed_s,
        )
    table.note("Handles pin every selected object in client memory;")
    table.note("Rids re-fetch through the (warm) cache on use.")
    return table


# ------------------------------------------------------------------ fig 6

def figure6(runner: ExperimentRunner) -> Table:
    """Section 4.2: selection with an unclustered index vs no index —
    page reads and elapsed time across selectivities."""
    config = runner.derby.config
    table = Table(
        f"Figure 6 — Unclustered index vs no index on Patients.num "
        f"({config.n_patients} patients, scale {config.scale:g})",
        [
            "Selectivity %",
            "Index: pages",
            "Index: time (sec)",
            "No index: pages",
            "No index: time (sec)",
        ],
    )
    for sel in figure6_selectivities():
        indexed = runner.run_selection("index", sel)
        scanned = runner.run_selection("scan", sel)
        table.add(
            sel,
            indexed.page_reads,
            indexed.elapsed_s,
            scanned.page_reads,
            scanned.elapsed_s,
        )
    table.note("Without an index the page count is selectivity-independent;")
    table.note("the unclustered index reads MORE pages past a few percent.")
    return table


# ------------------------------------------------------------------ fig 7

def figure7(runner: ExperimentRunner) -> Table:
    """Section 4.2, Figure 7: sorted unclustered index scan vs no index."""
    config = runner.derby.config
    table = Table(
        f"Figure 7 — Sorted unclustered index vs no index "
        f"(time in sec, scale {config.scale:g})",
        ["Selectivity on Patients", "Unclustered index + Sort", "No index"],
    )
    for sel in figure7_selectivities():
        sorted_scan = runner.run_selection("sorted-index", sel)
        scan = runner.run_selection("scan", sel)
        table.add(sel, sorted_scan.elapsed_s, scan.elapsed_s)
    return table


# ------------------------------------------------------------------ fig 9

_FIG9_BUCKETS = (
    ("Input/Output", (Bucket.IO, Bucket.TRANSFER, Bucket.RPC)),
    ("Handles (get & unref)", (Bucket.HANDLE,)),
    ("Sort rids", (Bucket.SORT,)),
    ("Other CPU (compare/decode)", (Bucket.CPU,)),
    ("Result construction", (Bucket.RESULT,)),
)


def figure9(runner: ExperimentRunner, selectivity_pct: int = 90) -> Table:
    """Section 4.3, Figure 9: where the time goes — standard scan vs
    sorted index scan, measured bucket by bucket."""
    scan = runner.run_selection("scan", selectivity_pct)
    sorted_scan = runner.run_selection("sorted-index", selectivity_pct)
    table = Table(
        f"Figure 9 — Standard scan vs sorted index scan: cost "
        f"decomposition at {selectivity_pct}% selectivity (sec)",
        ["Cost component", "Standard scan", "Sorted index scan"],
    )
    for label, buckets in _FIG9_BUCKETS:
        table.add(
            label,
            sum(scan.breakdown.get(b.value, 0.0) for b in buckets),
            sum(sorted_scan.breakdown.get(b.value, 0.0) for b in buckets),
        )
    table.add("TOTAL", scan.elapsed_s, sorted_scan.elapsed_s)
    table.note("The standard scan gets+unrefs a handle for the WHOLE")
    table.note("collection; the index scan only for selected elements.")
    return table


# ------------------------------------------------------------------ fig 10

_FIG10_ROWS = (
    # algo, n_providers, relationship, sel_patients, sel_providers
    ("PHJ", 2_000, "1:1000", 10, 10),
    ("PHJ", 2_000, "1:1000", 90, 90),
    ("PHJ", 1_000_000, "1:3", 10, 10),
    ("PHJ", 1_000_000, "1:3", 90, 90),
    ("CHJ", 2_000, "1:1000", 10, 10),
    ("CHJ", 2_000, "1:1000", 90, 90),
    ("CHJ", 1_000_000, "1:3", 10, 10),
    ("CHJ", 1_000_000, "1:3", 90, 90),
)


def figure10() -> Table:
    """Section 5.1, Figure 10: hash-table size approximations, computed
    from the size model at the paper's full database scale."""
    table = Table(
        "Figure 10 — Approximation of the hash table sizes (MB, full scale)",
        [
            "Algorithm",
            "Providers",
            "Relationship",
            "Sel. patients %",
            "Sel. providers %",
            "Hash table size (MB)",
        ],
    )
    for algo, n_providers, rel, sel_pat, sel_prov in _FIG10_ROWS:
        n_patients = 2_000_000 if rel == "1:1000" else 3_000_000
        if algo == "PHJ":
            size = phj_table_bytes(round(n_providers * sel_prov / 100))
        else:
            size = chj_table_bytes(
                n_providers, round(n_patients * sel_pat / 100)
            )
        # The paper quotes decimal megabytes (0.9M x 64 B = 57.6 MB).
        table.add(algo, n_providers, rel, sel_pat, sel_prov, size / 1e6)
    table.note("Query memory budget is ~40 MB: tables beyond it swap.")
    table.note("CHJ sizes are the paper's over-approximation: the bucket")
    table.note("directory covers the whole parent domain; at run time only")
    table.note("touched buckets materialize.")
    return table


# ------------------------------------------------------------- figs 11-14

def join_figure(
    runner: ExperimentRunner,
    title: str,
    algorithms: tuple[str, ...] = PAPER_ALGORITHMS,
    grid: tuple[tuple[int, int], ...] = SELECTIVITY_GRID,
) -> tuple[Table, list[JoinMeasurement]]:
    """The shared shape of Figures 11-14: for each selectivity pair run
    every algorithm, rank by elapsed time, report time ratios."""
    config = runner.derby.config
    table = Table(
        f"{title} ({config.n_providers} providers, {config.n_patients} "
        f"patients, {config.clustering.value} clustering, "
        f"scale {config.scale:g})",
        [
            "Sel. patients %",
            "Sel. providers %",
            "Algorithm",
            "Time ratio",
            "Time (sec)",
        ],
    )
    all_measurements: list[JoinMeasurement] = []
    for sel_pat, sel_prov in grid:
        cell = [runner.run_join(a, sel_pat, sel_prov) for a in algorithms]
        cell.sort(key=lambda m: m.elapsed_s)
        best = cell[0].elapsed_s
        for m in cell:
            table.add(
                sel_pat,
                sel_prov,
                m.algo,
                m.elapsed_s / best if best else 1.0,
                m.elapsed_s,
            )
        all_measurements.extend(cell)
    return table, all_measurements


def figure11(runner: ExperimentRunner) -> tuple[Table, list[JoinMeasurement]]:
    return join_figure(runner, "Figure 11 — One file per Class, 1:1000")


def figure12(runner: ExperimentRunner) -> tuple[Table, list[JoinMeasurement]]:
    return join_figure(runner, "Figure 12 — One file per Class, 1:3")


def figure13(runner: ExperimentRunner) -> tuple[Table, list[JoinMeasurement]]:
    return join_figure(runner, "Figure 13 — Composition Cluster, 1:1000")


def figure14(runner: ExperimentRunner) -> tuple[Table, list[JoinMeasurement]]:
    return join_figure(runner, "Figure 14 — Composition Cluster, 1:3")


def rank_table(
    measurements: list[JoinMeasurement],
    title: str,
    grid: tuple[tuple[int, int], ...] = SELECTIVITY_GRID,
) -> Table:
    """Render already-run grid measurements in the Figures 11-14 layout
    (per-cell ranking with time ratios)."""
    table = Table(
        title,
        [
            "Sel. patients %",
            "Sel. providers %",
            "Algorithm",
            "Time ratio",
            "Time (sec)",
        ],
    )
    for sel_pat, sel_prov in grid:
        cell = sorted(
            (
                m
                for m in measurements
                if (m.sel_patients, m.sel_providers) == (sel_pat, sel_prov)
            ),
            key=lambda m: m.elapsed_s,
        )
        if not cell:
            continue
        best = cell[0].elapsed_s
        for m in cell:
            table.add(
                sel_pat,
                sel_prov,
                m.algo,
                m.elapsed_s / best if best else 1.0,
                m.elapsed_s,
            )
    return table


def cell_times(
    measurements: list[JoinMeasurement], sel_pat: int, sel_prov: int
) -> dict[str, float]:
    """algo -> elapsed seconds for one selectivity cell."""
    return {
        m.algo: m.elapsed_s
        for m in measurements
        if (m.sel_patients, m.sel_providers) == (sel_pat, sel_prov)
    }


# ------------------------------------------------------------------ fig 15

def figure15(
    results: dict[str, dict[str, list[JoinMeasurement]]]
) -> Table:
    """Section 5.3, Figure 15: per (relationship, selectivity pair), the
    winning algorithm and its time under each physical organization.

    ``results`` maps relationship ("1:1000" / "1:3") to a mapping from
    organization name ("random" / "class" / "composition") to that
    organization's grid measurements.
    """
    table = Table(
        "Figure 15 — Summarizing Results: Winning Algorithms",
        [
            "Rel prov:pat",
            "Sel. pat %",
            "Sel. prov %",
            "Best (random)",
            "Time (random)",
            "Best (class)",
            "Time (class)",
            "Best (comp.)",
            "Time (comp.)",
        ],
    )
    for rel in ("1:1000", "1:3"):
        by_org = results.get(rel, {})
        for sel_pat, sel_prov in SELECTIVITY_GRID:
            row: list[object] = [rel, sel_pat, sel_prov]
            for org in ("random", "class", "composition"):
                best = _best_for_cell(by_org.get(org, []), sel_pat, sel_prov)
                if best is None:
                    row.extend(["-", "-"])
                else:
                    row.extend([best.algo, best.elapsed_s])
            table.add(*row)
    return table


def _best_for_cell(
    measurements: list[JoinMeasurement], sel_pat: int, sel_prov: int
) -> JoinMeasurement | None:
    cell = [
        m
        for m in measurements
        if m.sel_patients == sel_pat and m.sel_providers == sel_prov
    ]
    if not cell:
        return None
    return min(cell, key=lambda m: m.elapsed_s)


def join_cost_breakdown(
    runner: ExperimentRunner,
    sel_patients: int,
    sel_providers: int,
    algorithms: tuple[str, ...] = PAPER_ALGORITHMS,
) -> Table:
    """Per-bucket decomposition of each algorithm at one cell — the
    Figure 9 treatment applied to the Section 5 joins."""
    config = runner.derby.config
    buckets = ("io", "transfer", "rpc", "handle", "sort", "cpu", "swap",
               "result")
    table = Table(
        f"Join cost decomposition at {sel_patients}/{sel_providers} "
        f"({config.clustering.value}, {config.n_providers}p/"
        f"{config.n_patients}c, sec)",
        ["Algorithm", *buckets, "TOTAL"],
    )
    for algo in algorithms:
        m = runner.run_join(algo, sel_patients, sel_providers)
        table.add(
            algo,
            *(m.breakdown.get(bucket, 0.0) for bucket in buckets),
            m.elapsed_s,
        )
    return table


def warm_vs_cold_figure(
    runner: ExperimentRunner, sel_patients: int = 10, sel_providers: int = 10
) -> Table:
    """Cold (the paper's protocol) vs warm (main-memory navigation —
    what object benchmarks like OO7 emphasize, §4.4) runs per algorithm."""
    table = Table(
        f"Cold vs warm runs at {sel_patients}/{sel_providers} (sec)",
        ["Algorithm", "Cold", "Warm", "Cold/Warm"],
    )
    for algo in PAPER_ALGORITHMS:
        cold = runner.run_join(algo, sel_patients, sel_providers, cold=True)
        warm = runner.run_join(algo, sel_patients, sel_providers, cold=False)
        ratio = cold.elapsed_s / warm.elapsed_s if warm.elapsed_s else 0.0
        table.add(algo, cold.elapsed_s, warm.elapsed_s, ratio)
    table.note("Warm runs reuse both cache tiers and parked handles —")
    table.note("the regime O2's handle design was optimized for.")
    return table


# ---------------------------------------------------------------- ablations

def handle_modes_figure(
    runner: ExperimentRunner, selectivity_pct: int = 90
) -> Table:
    """Section 4.4 ablation: the Figure 7 workloads under each proposed
    handle improvement."""
    table = Table(
        f"Section 4.4 — Handle regimes on the {selectivity_pct}% selection "
        "(projecting a string attribute; sec)",
        ["Handle mode", "Standard scan", "Sorted index scan"],
    )
    original = runner.derby.db.handles.mode
    try:
        for mode in HandleMode:
            runner.with_handle_mode(mode)
            # Project a string so literal handles matter (strings are
            # separate records carrying handles in O2 — Section 4.4).
            scan = runner.run_selection("scan", selectivity_pct, project="name")
            sorted_scan = runner.run_selection(
                "sorted-index", selectivity_pct, project="name"
            )
            table.add(mode.value, scan.elapsed_s, sorted_scan.elapsed_s)
    finally:
        runner.derby.db.handles.mode = original
    return table


def extensions_figure(runner: ExperimentRunner) -> tuple[Table, list[JoinMeasurement]]:
    """Section 5/6 extensions: the dropped sort-merge join and the
    untested hybrid-hash variant next to the paper's four."""
    return join_figure(
        runner,
        "Extensions — SMJ (dropped) and hybrid hashing (untested) included",
        algorithms=PAPER_ALGORITHMS + ("SMJ", "PHJ-HYBRID"),
    )
