"""The paper's published numbers, as data.

Figures 11-15 transcribed from the paper (times in seconds on its Sparc
20; the ``Time ratio`` columns are derivable).  Used to *score* the
reproduction automatically: per-cell rank agreement, winner agreement,
and ratio error between the paper's measurements and ours.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import stats as scipy_stats

from repro.bench.report import Table
from repro.bench.runner import JoinMeasurement
from repro.bench.workloads import SELECTIVITY_GRID

Cell = tuple[int, int]  # (selectivity on patients, on providers)

#: Figure 11 — one file per class, 2x10^3 providers / 2x10^6 patients.
PAPER_FIG11: dict[Cell, dict[str, float]] = {
    (10, 10): {"PHJ": 89.83, "CHJ": 101.05, "NOJOIN": 125.90, "NL": 1418.56},
    (10, 90): {"CHJ": 154.09, "PHJ": 154.57, "NOJOIN": 191.51, "NL": 12331.96},
    (90, 10): {"PHJ": 925.07, "NOJOIN": 1266.31, "CHJ": 1320.69, "NL": 1509.19},
    (90, 90): {"PHJ": 1913.80, "CHJ": 1956.35, "NOJOIN": 2315.62, "NL": 13423.38},
}

#: Figure 12 — one file per class, 10^6 providers / 3x10^6 patients.
PAPER_FIG12: dict[Cell, dict[str, float]] = {
    (10, 10): {"PHJ": 365.72, "CHJ": 402.38, "NOJOIN": 3550.62, "NL": 4566.06},
    (10, 90): {"CHJ": 1286.18, "NOJOIN": 3777.10, "PHJ": 5723.28, "NL": 41119.29},
    (90, 10): {"PHJ": 2676.37, "NL": 4738.09, "CHJ": 9457.91, "NOJOIN": 31318.05},
    (90, 90): {"NOJOIN": 34708.13, "NL": 43850.03, "PHJ": 44188.33, "CHJ": 58963.71},
}

#: Figure 13 — composition cluster, 1:1000.
PAPER_FIG13: dict[Cell, dict[str, float]] = {
    (10, 10): {"NL": 92.78, "NOJOIN": 961.88, "CHJ": 971.84, "PHJ": 980.42},
    (10, 90): {"NL": 923.84, "PHJ": 1042.16, "CHJ": 1078.47, "NOJOIN": 1090.98},
    (90, 10): {"NL": 155.17, "PHJ": 1164.97, "CHJ": 1221.29, "NOJOIN": 1303.90},
    (90, 90): {"NL": 1665.51, "PHJ": 1898.97, "CHJ": 1993.88, "NOJOIN": 2006.76},
}

#: Figure 14 — composition cluster, 1:3.
PAPER_FIG14: dict[Cell, dict[str, float]] = {
    (10, 10): {"NL": 165.97, "NOJOIN": 1465.20, "PHJ": 1566.68, "CHJ": 1634.72},
    (10, 90): {"NOJOIN": 1572.40, "NL": 1749.50, "CHJ": 3181.43, "PHJ": 8090.45},
    (90, 10): {"NL": 280.53, "PHJ": 1932.78, "NOJOIN": 1988.82, "CHJ": 4993.11},
    (90, 90): {"NL": 2709.16, "NOJOIN": 3332.08, "PHJ": 10251.0, "CHJ": 10761.14},
}

#: Figure 15 — winning algorithm per (relationship, cell, organization).
PAPER_FIG15_WINNERS: dict[str, dict[Cell, dict[str, str]]] = {
    "1:1000": {
        (10, 10): {"random": "PHJ", "class": "PHJ", "composition": "NL"},
        (10, 90): {"random": "CHJ", "class": "CHJ", "composition": "NL"},
        (90, 10): {"random": "PHJ", "class": "PHJ", "composition": "NL"},
        (90, 90): {"random": "CHJ", "class": "PHJ", "composition": "NL"},
    },
    "1:3": {
        (10, 10): {"random": "PHJ", "class": "PHJ", "composition": "NL"},
        (10, 90): {"random": "CHJ", "class": "CHJ", "composition": "NOJOIN"},
        (90, 10): {"random": "PHJ", "class": "PHJ", "composition": "NL"},
        (90, 90): {"random": "NL", "class": "NOJOIN", "composition": "NL"},
    },
}

PAPER_FIGURES: dict[str, dict[Cell, dict[str, float]]] = {
    "fig11": PAPER_FIG11,
    "fig12": PAPER_FIG12,
    "fig13": PAPER_FIG13,
    "fig14": PAPER_FIG14,
}


@dataclass(frozen=True)
class ShapeScore:
    """How closely the reproduction matches one figure's shape."""

    figure: str
    winners_matched: int          # cells whose fastest algorithm agrees
    cells: int
    mean_spearman: float          # rank correlation of algorithm order
    mean_log_ratio_error: float   # |log10(our ratio / paper ratio)| avg

    @property
    def winner_rate(self) -> float:
        return self.winners_matched / self.cells if self.cells else 0.0


def score_against_paper(
    figure: str, measurements: list[JoinMeasurement]
) -> tuple[Table, ShapeScore]:
    """Compare grid measurements with the paper's table for ``figure``.

    Both sides are normalized per cell (winner = 1.0), so the comparison
    is scale-free, as DESIGN.md §5 requires.
    """
    paper = PAPER_FIGURES[figure]
    table = Table(
        f"{figure} vs the paper — normalized time ratios per cell",
        ["Cell", "Algorithm", "Paper ratio", "Ours", "Paper rank", "Our rank"],
    )
    winners = 0
    spearmans: list[float] = []
    log_errors: list[float] = []
    for cell in SELECTIVITY_GRID:
        paper_cell = paper[cell]
        ours_cell = {
            m.algo: m.elapsed_s
            for m in measurements
            if (m.sel_patients, m.sel_providers) == cell
            and m.algo in paper_cell
        }
        if set(ours_cell) != set(paper_cell):
            raise ValueError(
                f"measurements for cell {cell} do not cover {set(paper_cell)}"
            )
        algos = sorted(paper_cell)
        paper_best = min(paper_cell.values())
        our_best = min(ours_cell.values())
        paper_ratios = [paper_cell[a] / paper_best for a in algos]
        our_ratios = [ours_cell[a] / our_best for a in algos]
        rho = scipy_stats.spearmanr(paper_ratios, our_ratios).statistic
        spearmans.append(float(rho))
        paper_rank = _ranks(paper_cell)
        our_rank = _ranks(ours_cell)
        if min(paper_cell, key=paper_cell.get) == min(ours_cell, key=ours_cell.get):
            winners += 1
        for a, pr, orr in zip(algos, paper_ratios, our_ratios):
            log_errors.append(abs(math.log10(orr / pr)))
            table.add(
                f"{cell[0]}/{cell[1]}", a, pr, orr, paper_rank[a], our_rank[a]
            )
    score = ShapeScore(
        figure=figure,
        winners_matched=winners,
        cells=len(SELECTIVITY_GRID),
        mean_spearman=sum(spearmans) / len(spearmans),
        mean_log_ratio_error=sum(log_errors) / len(log_errors),
    )
    table.note(
        f"winners matched {score.winners_matched}/{score.cells}; "
        f"mean Spearman rho {score.mean_spearman:.2f}; "
        f"mean |log10 ratio error| {score.mean_log_ratio_error:.2f}"
    )
    return table, score


def _ranks(cell: dict[str, float]) -> dict[str, int]:
    ordered = sorted(cell, key=cell.get)
    return {algo: i + 1 for i, algo in enumerate(ordered)}
