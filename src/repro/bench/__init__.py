"""The benchmark harness: regenerate every table and figure of the paper.

One builder per figure (:mod:`repro.bench.figures`), an experiment runner
that executes cold queries and records each run in the Figure 3 stats
database (:mod:`repro.bench.runner`), and plain-text table rendering in
the paper's layout (:mod:`repro.bench.report`).
"""

from repro.bench.report import Table
from repro.bench.runner import ExperimentRunner, JoinMeasurement, SelectionMeasurement
from repro.bench.sweeps import (
    SweepPoint,
    cache_size_sweep,
    find_crossover,
    memory_pressure_sweep,
    selection_method_sweep,
    selectivity_sweep,
)
from repro.bench.workloads import (
    SELECTIVITY_GRID,
    figure6_selectivities,
    figure7_selectivities,
    tree_query_text,
)

__all__ = [
    "Table",
    "ExperimentRunner",
    "JoinMeasurement",
    "SelectionMeasurement",
    "SELECTIVITY_GRID",
    "figure6_selectivities",
    "figure7_selectivities",
    "tree_query_text",
    "SweepPoint",
    "selectivity_sweep",
    "selection_method_sweep",
    "find_crossover",
    "cache_size_sweep",
    "memory_pressure_sweep",
]
