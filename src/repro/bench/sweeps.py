"""Parameter sweeps: continuous curves behind the paper's point tables.

The paper samples its design space at a handful of selectivities and one
memory configuration.  These sweeps trace the full curves and locate the
crossover points its prose talks about:

* :func:`selectivity_sweep` — elapsed time vs selectivity for chosen
  algorithms (the continuous version of Figures 11-14 rows);
* :func:`find_crossover` — the selectivity where one algorithm overtakes
  another (e.g. Figure 6's "threshold situated between 1 and 5%");
* :func:`cache_size_sweep` — elapsed time vs client-cache size (the
  Section 3.2 cache-sizing discussion, measured);
* :func:`memory_pressure_sweep` — hash-join time vs query memory budget
  (where Figure 10's swap predictions bite).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.bench.runner import ExperimentRunner
from repro.errors import BenchError


@dataclass(frozen=True)
class SweepPoint:
    """One sample of a sweep curve."""

    x: float
    elapsed_s: float
    page_reads: int
    label: str


def selectivity_sweep(
    runner: ExperimentRunner,
    algorithms: Sequence[str],
    selectivities: Sequence[int],
    sel_providers: int = 10,
) -> list[SweepPoint]:
    """Elapsed time vs patient selectivity, one curve per algorithm."""
    points = []
    for algo in algorithms:
        for sel in selectivities:
            m = runner.run_join(algo, sel, sel_providers)
            points.append(
                SweepPoint(sel, m.elapsed_s, m.meters.disk_reads, algo)
            )
    return points


def selection_method_sweep(
    runner: ExperimentRunner,
    methods: Sequence[str],
    selectivities: Sequence[float],
) -> list[SweepPoint]:
    """Elapsed time vs selectivity for the Section 4 selection methods."""
    points = []
    for method in methods:
        for sel in selectivities:
            m = runner.run_selection(method, sel)
            points.append(SweepPoint(sel, m.elapsed_s, m.page_reads, method))
    return points


def find_crossover(
    runner: ExperimentRunner,
    method_a: str,
    method_b: str,
    low: float,
    high: float,
    tolerance: float = 0.5,
    max_steps: int = 12,
) -> float:
    """Bisect the selectivity (percent) where selection ``method_a``
    stops beating ``method_b``.

    Requires ``a`` faster at ``low`` and slower at ``high`` (the Figure 6
    setup: the unclustered index wins at 0.1% and loses at 10%+).
    """
    def gap(sel: float) -> float:
        a = runner.run_selection(method_a, sel).elapsed_s
        b = runner.run_selection(method_b, sel).elapsed_s
        return a - b

    lo_gap, hi_gap = gap(low), gap(high)
    if lo_gap >= 0 or hi_gap <= 0:
        raise BenchError(
            f"no crossover bracketed in [{low}, {high}]%: "
            f"gaps {lo_gap:+.3f} / {hi_gap:+.3f} s"
        )
    for __ in range(max_steps):
        if high - low <= tolerance:
            break
        mid = (low + high) / 2
        if gap(mid) < 0:
            low = mid
        else:
            high = mid
    return (low + high) / 2


def cache_size_sweep(
    make_runner,
    client_cache_fractions: Sequence[float],
    algo: str = "NOJOIN",
    sel_patients: int = 90,
    sel_providers: int = 10,
) -> list[SweepPoint]:
    """Elapsed time vs client-cache size.

    ``make_runner(cache_fraction)`` must build (or rebuild) a runner
    whose memory model scales the client cache by the given fraction of
    its default — database layouts must be identical across points.
    """
    points = []
    for fraction in client_cache_fractions:
        runner = make_runner(fraction)
        m = runner.run_join(algo, sel_patients, sel_providers)
        points.append(
            SweepPoint(fraction, m.elapsed_s, m.meters.disk_reads, algo)
        )
    return points


def memory_pressure_sweep(
    runner: ExperimentRunner,
    budget_fractions: Sequence[float],
    algo: str = "PHJ",
    sel_patients: int = 90,
    sel_providers: int = 90,
) -> list[SweepPoint]:
    """Elapsed time of a hash join as the query memory budget shrinks.

    Temporarily replaces the database's memory model; restores it after.
    """
    derby = runner.derby
    db = derby.db
    original = db.params
    points = []
    try:
        for fraction in budget_fractions:
            memory = replace(
                original.memory,
                system_reserved_bytes=int(
                    original.memory.ram_bytes
                    - original.memory.server_cache_bytes
                    - original.memory.client_cache_bytes
                    - original.memory.query_memory_bytes * fraction
                ),
            )
            db.params = replace(original, memory=memory)
            m = runner.run_join(algo, sel_patients, sel_providers)
            points.append(
                SweepPoint(fraction, m.elapsed_s, m.meters.swap_faults, algo)
            )
    finally:
        db.params = original
    return points
