"""Workload definitions shared by the figure builders."""

from __future__ import annotations

from repro.derby.config import DerbyConfig

#: The Section 5 grid: (selectivity on patients, selectivity on providers).
SELECTIVITY_GRID: tuple[tuple[int, int], ...] = (
    (10, 10),
    (10, 90),
    (90, 10),
    (90, 90),
)


def figure6_selectivities() -> tuple[float, ...]:
    """Selectivities (percent) of the Figure 6 selection sweep."""
    return (0.1, 1.0, 5.0, 10.0, 30.0, 60.0, 90.0)


def figure7_selectivities() -> tuple[int, ...]:
    """Selectivities (percent) of the Figure 7 comparison."""
    return (10, 30, 60, 90)


def tree_query_text(config: DerbyConfig, sel_pat: int, sel_prov: int) -> str:
    """The paper's Section 5 query, with thresholds for a selectivity
    pair, as OQL text."""
    k1 = config.mrn_threshold(sel_pat)
    k2 = config.upin_threshold(sel_prov)
    return (
        "select tuple(n: p.name, a: pa.age) "
        "from p in Providers, pa in p.clients "
        f"where pa.mrn < {k1} and p.upin < {k2}"
    )


def selection_query_text(config: DerbyConfig, selectivity_pct: float) -> str:
    """The Section 4 selection, as OQL text."""
    k = config.num_threshold(selectivity_pct)
    return f"select p.age from p in Patients where p.num > {k}"
