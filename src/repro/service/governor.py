"""Resource governance: budgets, cancellation, retry policy, admission.

The service's cooperative scheduler already forces every session through
frequent yield points — client page faults, operator batch boundaries,
lock waits.  The :class:`ResourceGovernor` piggybacks on exactly those
points to give the service the reaction half of a multi-client
benchmark:

* **budgets** (:class:`QueryBudget`) bound what one statement or one
  whole session may consume — client-cache page faults, simulated busy
  seconds, peak live pipeline rows, statement wall time on the shared
  timeline.  Exceeding a bound raises
  :class:`~repro.errors.BudgetExceededError` (or its subclass
  :class:`~repro.errors.StatementTimeoutError`); a budget *exactly*
  exhausted on the final batch completes normally.
* **cancellation** — :meth:`ResourceGovernor.cancel` flags a session; the
  flag is converted into :class:`~repro.errors.QueryCancelledError` at
  the victim's next check point.  A victim blocked in a lock or
  admission wait is interrupted immediately
  (:meth:`~repro.service.scheduler.CooperativeScheduler.interrupt`), so
  cancellation never waits for a lock to clear.
* **retry policy** (:class:`RetryPolicy`) — seeded exponential backoff
  with jitter for deadlock / lock-timeout victims.  Backoff is charged
  to :attr:`~repro.simtime.Bucket.BACKOFF` on the shared simulated
  clock: on a single deterministic timeline, "sleeping" means letting
  the other sessions spend that time.
* **admission control** (:class:`AdmissionGate`) — at most
  ``max_active`` sessions run operations concurrently; the rest queue
  FIFO in a real scheduler ``BLOCKED`` state.  Waiters hold no locks
  (admission wraps whole operations), so admission waits can never
  extend a deadlock cycle.  Queue depth and per-session wait time are
  metered.

Everything here raises :class:`~repro.errors.GovernorError` subclasses,
which deliberately do **not** descend from ``LockConflictError`` — a
governed query was stopped on purpose and must not be auto-retried.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import TYPE_CHECKING

from repro.errors import (
    BudgetExceededError,
    LockConflictError,
    QueryCancelledError,
    ServiceError,
    ShardUnavailableError,
    StatementTimeoutError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.scheduler import CooperativeScheduler
    from repro.service.service import QueryService, Session


@dataclass(frozen=True)
class QueryBudget:
    """Resource bounds for one statement (or one whole session).

    ``None`` disarms a bound.  Bounds trip only when *strictly*
    exceeded, so a query that lands exactly on its budget with its last
    batch completes.
    """

    #: Client-cache page faults (the pages a query actually pulled).
    max_pages: int | None = None
    #: Simulated seconds charged while the session held the baton.
    max_busy_s: float | None = None
    #: Peak live rows buffered across the operator tree.
    max_live_rows: int | None = None
    #: Statement bound on the *shared* timeline (includes time consumed
    #: by other sessions while this statement was in flight) — the
    #: classic statement timeout.  Meaningful per statement only.
    statement_timeout_s: float | None = None

    @property
    def armed(self) -> bool:
        return any(
            v is not None
            for v in (
                self.max_pages,
                self.max_busy_s,
                self.max_live_rows,
                self.statement_timeout_s,
            )
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Seeded exponential backoff with jitter for retryable aborts."""

    #: Retries after a deadlock / lock-timeout abort before giving up.
    max_retries: int = 2
    #: Backoff before the first retry, simulated seconds.
    base_backoff_s: float = 0.02
    #: Growth factor per subsequent retry.
    multiplier: float = 2.0
    #: Backoff ceiling, simulated seconds.
    max_backoff_s: float = 0.5
    #: Fraction of the backoff randomized away (0: fixed; 0.5: each
    #: backoff is uniform in [0.5x, 1x] of the nominal value).
    jitter: float = 0.5

    def backoff_s(self, attempt: int, rng: Random) -> float:
        """Backoff before retry ``attempt`` (0-based), drawn from
        ``rng`` — deterministic for a seeded generator."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0: {attempt}")
        raw = min(
            self.base_backoff_s * self.multiplier ** attempt,
            self.max_backoff_s,
        )
        if self.jitter <= 0.0:
            return raw
        return raw * (1.0 - self.jitter * rng.random())

    @staticmethod
    def retryable(exc: BaseException) -> bool:
        """Is this failure transient — worth backing off and retrying?

        Lock-conflict aborts (deadlock victims, timeouts, SI
        first-committer-wins) always were; a
        :class:`~repro.errors.ShardUnavailableError` joins them with
        replication: a shard whose primary just died fails fast while
        the coordinator detects the death and promotes the replica, so
        the right client reaction is exactly a backed-off retry.
        Governor interventions stay non-retryable on purpose."""
        return isinstance(exc, (LockConflictError, ShardUnavailableError))


@dataclass
class _StatementGuard:
    """Baseline consumption at statement start, for per-query bounds."""

    started_s: float
    busy0_s: float
    faults0: int
    cursor: object | None = None


class AdmissionGate:
    """Max-concurrent-sessions gate with a FIFO wait queue.

    ``enter`` admits immediately when a slot is free *and* nobody is
    queued ahead (strict FIFO — late arrivals cannot overtake), else
    blocks the calling task until ``leave`` promotes it.  Outside a
    scheduled slice (immediate mode, warm-up) the gate is a no-op
    pass-through: with no scheduler there is nobody to queue behind.
    """

    def __init__(self, scheduler: "CooperativeScheduler", max_active: int):
        if max_active < 1:
            raise ServiceError(f"max_active must be >= 1, got {max_active}")
        self.scheduler = scheduler
        self.max_active = max_active
        self._active: set[int] = set()
        self._queue: list[int] = []
        #: Deepest the wait queue ever got.
        self.max_queue_depth = 0
        #: Admissions that had to queue first.
        self.queued_admissions = 0
        #: Total admissions (queued or not).
        self.admissions = 0

    def enter(self, session: "Session") -> float:
        """Admit ``session``; returns simulated seconds spent queued."""
        sid = session.session_id
        if sid in self._active:
            raise ServiceError(
                f"session {session.name!r} entered the admission gate twice"
            )
        if not self.scheduler.in_slice():
            self._active.add(sid)
            self.admissions += 1
            return 0.0
        if len(self._active) < self.max_active and not self._queue:
            self._active.add(sid)
            self.admissions += 1
            return 0.0
        self._queue.append(sid)
        self.max_queue_depth = max(self.max_queue_depth, len(self._queue))
        self.queued_admissions += 1
        started_s = self.scheduler.clock.elapsed_s
        try:
            self.scheduler.wait_for_admission(sid)
        except BaseException:
            # Cancelled (or otherwise unwound) while queued: withdraw so
            # the queue cannot block on a corpse.
            self.withdraw(sid)
            raise
        # leave() moved us from the queue into the active set already.
        self.admissions += 1
        return self.scheduler.clock.elapsed_s - started_s

    def leave(self, session: "Session") -> None:
        self._active.discard(session.session_id)
        self._promote()

    def withdraw(self, sid: int) -> None:
        """Remove a session wherever it is (queued or active)."""
        if sid in self._queue:
            self._queue.remove(sid)
        else:
            self._active.discard(sid)
        self._promote()

    def _promote(self) -> None:
        while self._queue and len(self._active) < self.max_active:
            head = self._queue.pop(0)
            self._active.add(head)
            self.scheduler.notify_admitted(head)

    @property
    def active_count(self) -> int:
        return len(self._active)

    @property
    def queue_depth(self) -> int:
        return len(self._queue)


class ResourceGovernor:
    """Budgets + cancellation + (optionally) the admission gate.

    One per :class:`~repro.service.QueryService`.  Sessions call
    :meth:`checkpoint` at every cooperative check point (page faults via
    the service's fault hook, batch boundaries in ``Session.execute``);
    the governor converts pending cancels and exceeded budgets into
    typed exceptions *in the session's own execution context*, so the
    operation unwinds through the normal abort path — cursors close,
    handles drop, the transaction's locks release.
    """

    def __init__(
        self,
        service: "QueryService",
        query_budget: QueryBudget | None = None,
        session_budget: QueryBudget | None = None,
        max_active: int | None = None,
    ):
        self.service = service
        self.query_budget = (
            query_budget if query_budget is not None and query_budget.armed
            else None
        )
        self.session_budget = (
            session_budget
            if session_budget is not None and session_budget.armed
            else None
        )
        self.gate = (
            AdmissionGate(service.scheduler, max_active)
            if max_active is not None
            else None
        )
        self._guards: dict[int, _StatementGuard] = {}
        self._cancelled: dict[int, str] = {}
        #: Cancels delivered by interrupting a blocked wait (the rest
        #: are delivered at a checkpoint).
        self.interrupts = 0
        #: Commits between MVCC vacuum sweeps (the governed background
        #: GC: every ``vacuum_interval``-th commit sweeps version chains
        #: up to the oldest active snapshot).
        self.vacuum_interval = 8
        self._commits_since_vacuum = 0
        #: Sweeps run / versions freed by the governed GC.
        self.vacuums = 0
        self.versions_swept = 0

    # -- MVCC garbage collection -----------------------------------------

    def note_commit(self, session: "Session") -> None:
        """Session commit hook: every ``vacuum_interval`` commits, run a
        version-chain sweep on the transaction manager.  Free for pure
        2PL runs (no MVCC enabled — the sweep is a no-op and charges
        nothing), so their cost timeline is untouched."""
        txm = self.service.txm
        if not txm.mvcc_enabled:
            return
        self._commits_since_vacuum += 1
        if self._commits_since_vacuum < self.vacuum_interval:
            return
        self._commits_since_vacuum = 0
        self.vacuums += 1
        self.versions_swept += txm.vacuum()

    # -- statements ------------------------------------------------------

    def begin_statement(self, session: "Session", cursor) -> None:
        if self.query_budget is None:
            return
        self.service._accrue()
        m = session.metrics
        self._guards[session.session_id] = _StatementGuard(
            started_s=self.service.db.clock.elapsed_s,
            busy0_s=m.busy_s,
            faults0=m.meters.client_faults,
            cursor=cursor,
        )

    def end_statement(self, session: "Session") -> None:
        self._guards.pop(session.session_id, None)

    # -- cancellation ----------------------------------------------------

    def cancel(self, session: "Session", reason: str = "cancelled") -> None:
        """Cancel ``session``'s current operation.  Safe from any other
        session (or from outside the run): the victim observes
        :class:`~repro.errors.QueryCancelledError` at its next check
        point, or immediately if it is blocked in a wait."""
        sid = session.session_id
        self._cancelled[sid] = reason
        task = session.task
        if task is None:
            return
        exc = QueryCancelledError(
            f"session {session.name!r}: {reason}"
        )
        txn = session.txn
        txn_id = txn.txn_id if txn is not None else None
        if self.service.scheduler.interrupt(task, exc, txn_id=txn_id):
            # Delivered at the victim's wait point right now; the
            # checkpoint path won't see it, so count it here.
            self._cancelled.pop(sid, None)
            session.metrics.cancelled += 1
            self.interrupts += 1

    def cancel_pending(self, session: "Session") -> bool:
        return session.session_id in self._cancelled

    # -- the check point -------------------------------------------------

    def checkpoint(self, session: "Session | None") -> None:
        """Raise the pending cancel / budget violation for ``session``,
        if any.  Called at page faults and batch boundaries; cheap when
        nothing is armed."""
        if session is None:
            return
        reason = self._cancelled.pop(session.session_id, None)
        if reason is not None:
            session.metrics.cancelled += 1
            raise QueryCancelledError(f"session {session.name!r}: {reason}")
        if self.query_budget is None and self.session_budget is None:
            return
        self.service._accrue()
        m = session.metrics
        if self.session_budget is not None:
            self._enforce(
                session, self.session_budget, "session",
                pages=m.meters.client_faults,
                busy_s=m.busy_s,
                live_rows=m.peak_rows,
                running_s=None,
            )
        guard = self._guards.get(session.session_id)
        if self.query_budget is not None and guard is not None:
            stats = getattr(guard.cursor, "stats", None)
            self._enforce(
                session, self.query_budget, "statement",
                pages=m.meters.client_faults - guard.faults0,
                busy_s=m.busy_s - guard.busy0_s,
                live_rows=stats.peak_rows if stats is not None else 0,
                running_s=self.service.db.clock.elapsed_s - guard.started_s,
            )

    def _enforce(
        self,
        session: "Session",
        budget: QueryBudget,
        scope: str,
        pages: int,
        busy_s: float,
        live_rows: int,
        running_s: float | None,
    ) -> None:
        name = session.name
        if budget.max_pages is not None and pages > budget.max_pages:
            session.metrics.over_budget += 1
            raise BudgetExceededError(
                f"session {name!r}: {scope} read {pages} pages "
                f"(budget {budget.max_pages})"
            )
        if budget.max_busy_s is not None and busy_s > budget.max_busy_s:
            session.metrics.over_budget += 1
            raise BudgetExceededError(
                f"session {name!r}: {scope} used {busy_s:.6f} busy s "
                f"(budget {budget.max_busy_s:g})"
            )
        if (
            budget.max_live_rows is not None
            and live_rows > budget.max_live_rows
        ):
            session.metrics.over_budget += 1
            raise BudgetExceededError(
                f"session {name!r}: {scope} buffered {live_rows} live rows "
                f"(budget {budget.max_live_rows})"
            )
        if (
            budget.statement_timeout_s is not None
            and running_s is not None
            and running_s > budget.statement_timeout_s
        ):
            session.metrics.over_budget += 1
            raise StatementTimeoutError(
                f"session {name!r}: statement ran {running_s:.6f} s "
                f"(timeout {budget.statement_timeout_s:g})"
            )
