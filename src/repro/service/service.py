"""The multi-client query service: one server, many sessions.

A :class:`QueryService` owns the *server* side of the paper's topology —
the shared disk, the shared server cache, one write-ahead log and one
lock manager — and any number of :class:`Session` objects, each modeling
one client workstation: a private client cache, a private handle table,
its own transactions and its own OQL entry point.

Concurrency is cooperative and deterministic
(:class:`~repro.service.scheduler.CooperativeScheduler`): session bodies
run interleaved at client page faults, lock waits and explicit
``pause()`` calls.  On every context switch the service attaches the
incoming session's client tier and handle table to the shared
:class:`~repro.buffer.ClientServerSystem` / object manager, and accrues
the outgoing session's share of the global clock and counters — so
per-session latency, throughput and cache traffic fall out of the same
single-timeline cost model the single-client benchmarks use.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Callable, Iterator

from repro.buffer import BufferCache, LRUPolicy
from repro.errors import ServiceError
from repro.objects.handle import HandleTable
from repro.opt import CostBasedOptimizer
from repro.oql import Catalog, OQLEngine
from repro.service.governor import QueryBudget, ResourceGovernor
from repro.service.scheduler import CooperativeScheduler, Task
from repro.simtime import Bucket, MeterSnapshot
from repro.storage.rid import Rid
from repro.txn import Transaction, TransactionManager

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.loader import DerbyDatabase


def _add_meters(a: MeterSnapshot, b: MeterSnapshot) -> MeterSnapshot:
    return MeterSnapshot(
        **{f.name: getattr(a, f.name) + getattr(b, f.name) for f in fields(a)}
    )


@dataclass
class SessionMetrics:
    """What one session did and what it cost."""

    committed: int = 0
    aborted: int = 0
    deadlocks: int = 0
    timeouts: int = 0
    #: First-committer-wins losers (snapshot isolation): aborts caused
    #: by :class:`~repro.errors.WriteConflictError`, retried like other
    #: transient lock conflicts.
    conflicts: int = 0
    #: Times this session blocked waiting for a lock.  Under SI, reader
    #: profiles must report zero — the measurable no-read-locks claim.
    lock_waits: int = 0
    #: Operations re-attempted after a deadlock / lock-timeout abort
    #: (counted separately from aborts so throughput stays honest).
    retries: int = 0
    #: Operations that exhausted their retry budget and were abandoned.
    gave_up: int = 0
    #: Operations stopped by :meth:`Session.cancel`.
    cancelled: int = 0
    #: Operations stopped by a resource budget / statement timeout.
    over_budget: int = 0
    #: Operations lost to an escalated (permanent) I/O failure.
    io_failures: int = 0
    queries: int = 0
    updates: int = 0
    rows: int = 0
    #: Batches consumed from pipelined queries.
    batches: int = 0
    #: Sum of per-query time-to-first-row (simulated seconds), over
    #: queries that produced at least one row.
    first_row_s_total: float = 0.0
    #: Queries that contributed to ``first_row_s_total``.
    first_row_samples: int = 0
    #: Highest pipeline live-row high-water mark over this session's
    #: queries.
    peak_rows: int = 0
    #: Simulated seconds charged while this session held the baton.
    busy_s: float = 0.0
    #: Simulated seconds spent suspended on lock waits.
    lock_wait_s: float = 0.0
    #: Simulated seconds spent queued in the admission gate.
    queue_wait_s: float = 0.0
    #: Per-committed-operation response times (submit -> commit, on the
    #: shared timeline, so they include time consumed by other sessions).
    latencies_s: list[float] = field(default_factory=list)
    meters: MeterSnapshot = field(default_factory=MeterSnapshot)

    @property
    def mean_latency_s(self) -> float:
        if not self.latencies_s:
            return 0.0
        return sum(self.latencies_s) / len(self.latencies_s)

    @property
    def mean_first_row_ms(self) -> float:
        if not self.first_row_samples:
            return 0.0
        return self.first_row_s_total * 1e3 / self.first_row_samples

    @property
    def max_latency_s(self) -> float:
        return max(self.latencies_s, default=0.0)


class Session:
    """One client connection to the query service."""

    def __init__(
        self,
        service: "QueryService",
        session_id: int,
        name: str,
        client_cache_pages: int | None = None,
        isolation: str | None = None,
    ):
        self.service = service
        self.session_id = session_id
        self.name = name
        #: Isolation level this session's transactions open at (defaults
        #: to the service-wide setting).
        self.isolation = isolation or service.isolation
        db = service.db
        self.cache: BufferCache = db.system.new_client_tier(
            client_cache_pages or service.client_cache_pages
        )
        self.handles = HandleTable(
            db.clock, db.params, db.counters, db.handles.mode
        )
        self.engine = OQLEngine(
            service.catalog, optimizer=service.plan_optimizer
        )
        #: Rows pulled per operator batch; the scheduler is offered the
        #: baton between batches.
        self.batch_size: int = self.engine.batch_size
        self.txn: Transaction | None = None
        self.metrics = SessionMetrics()
        self.task: Task | None = None

    # -- transactions -------------------------------------------------------

    def begin(self, isolation: str | None = None) -> Transaction:
        if self.txn is not None and self.txn.state == "active":
            raise ServiceError(
                f"session {self.name!r} already has an open transaction"
            )
        self.txn = self.service.txm.begin(
            logged=True, isolation=isolation or self.isolation
        )
        # If this session holds the baton right now, its new snapshot
        # must govern reads immediately (not only after the next switch).
        if self.service._active is self:
            self.service._install_read_view(self)
        return self.txn

    def commit(self) -> None:
        self._require_txn().commit()
        self.metrics.committed += 1
        self.service.governor.note_commit(self)

    def abort(self) -> None:
        self._require_txn().abort()
        self.metrics.aborted += 1

    def _require_txn(self) -> Transaction:
        if self.txn is None or self.txn.state != "active":
            raise ServiceError(f"session {self.name!r} has no open transaction")
        return self.txn

    @contextmanager
    def transaction(self) -> Iterator[Transaction]:
        """Begin a transaction scoped to the ``with`` block: committed on
        normal exit, aborted when the body raises.  The bracketed form
        workload operations use so a lock conflict, I/O failure or
        governor cancellation mid-operation can never leak an open
        transaction (and its locks) back to the retry loop."""
        txn = self.begin()
        try:
            yield txn
        except BaseException:
            if txn.state == "active":
                self.abort()
            raise
        if txn.state == "active":
            self.commit()

    # -- operations ---------------------------------------------------------

    def execute(self, oql: str) -> list:
        """Run an OQL query through this session's engine (and caches),
        yielding the scheduler baton at every operator batch boundary.
        The governor checks budgets/cancellation per batch; on any
        failure the cursor's context manager closes the pipeline, so no
        handle or buffer outlives the error."""
        governor = self.service.governor
        rows: list = []
        with self.execute_iter(oql) as cursor:
            for batch in cursor.batches():
                rows.extend(batch)
                governor.checkpoint(self)
                self.service.scheduler.batch_point()
        return rows

    def execute_iter(self, oql: str, batch_size: int | None = None):
        """Open a streaming cursor over an OQL query.  The caller pulls
        batches (and decides when to yield); metrics are folded in as
        batches arrive and when the pipeline closes.  The statement
        budget clock starts here and stops when the cursor closes."""
        cursor = self.engine.execute_iter(oql, batch_size or self.batch_size)
        metrics = self.metrics
        metrics.queries += 1
        governor = self.service.governor
        governor.begin_statement(self, cursor)

        def on_close() -> None:
            governor.end_statement(self)
            stats = cursor.stats
            metrics.rows += stats.rows
            metrics.batches += stats.batches
            if stats.first_row_s is not None:
                metrics.first_row_s_total += stats.first_row_s
                metrics.first_row_samples += 1
            metrics.peak_rows = max(metrics.peak_rows, stats.peak_rows)

        cursor.on_close = on_close
        return cursor

    def read_lock(self, rid: Rid) -> None:
        self._require_txn().read_lock(rid)

    def write_lock(self, rid: Rid) -> None:
        self._require_txn().write_lock(rid)

    def update_scalar(self, rid: Rid, attr: str, value: object) -> Rid:
        """Write-lock, update and log one scalar attribute.

        The transaction decides what "log" means: the legacy 8-byte cost
        record, or — when the service runs with ``recovery=True`` — a
        physical record with page images that a crash can be recovered
        from."""
        new_rid = self._require_txn().update_scalar(rid, attr, value)
        self.metrics.updates += 1
        return new_rid

    def get_attr(self, rid: Rid, attr: str) -> object:
        """Load an object (through this session's handle table) and read
        one attribute, paying the usual handle traffic."""
        om = self.service.db.manager
        with om.borrow(rid) as handle:
            return om.get_attr(handle, attr)

    def pause(self) -> None:
        """Voluntarily yield to the other sessions ("think time")."""
        self.service.scheduler.yield_point()

    def backoff(self, seconds: float) -> None:
        """Back off before a retry: charges ``seconds`` to the BACKOFF
        bucket on the shared clock — on a single deterministic timeline,
        sleeping means letting the other sessions spend that time — and
        yields the baton."""
        if seconds > 0:
            self.service.db.clock.charge_s(Bucket.BACKOFF, seconds)
        self.service.scheduler.yield_point()

    def cancel(self, reason: str = "cancelled") -> None:
        """Cancel this session's current operation (callable from any
        other session, or from outside the run).  Cooperative: the
        victim raises :class:`~repro.errors.QueryCancelledError` at its
        next page fault / batch boundary, or immediately at its wait
        point if it is blocked."""
        self.service.governor.cancel(self, reason)

    @contextmanager
    def admitted(self) -> Iterator["Session"]:
        """Hold an admission-gate slot for the duration (a no-op when
        the service has no admission control).  Enter *before*
        ``begin()`` — admission waiters must hold no locks, which is
        what keeps admission waits out of every deadlock cycle."""
        gate = self.service.governor.gate
        if gate is None:
            yield self
            return
        if self.txn is not None and self.txn.state == "active":
            raise ServiceError(
                f"session {self.name!r} entered admission holding an open "
                "transaction (waiters must hold no locks)"
            )
        waited_s = gate.enter(self)
        self.metrics.queue_wait_s += waited_s
        try:
            yield self
        finally:
            gate.leave(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Session {self.name}>"


class QueryService:
    """Shared server tier + session registry + cooperative scheduler."""

    def __init__(
        self,
        derby: "DerbyDatabase",
        lock_timeout_s: float | None = None,
        server_cache_pages: int | None = None,
        client_cache_pages: int | None = None,
        recovery: bool = False,
        query_budget: QueryBudget | None = None,
        session_budget: QueryBudget | None = None,
        max_active: int | None = None,
        optimizer: str = "heuristic",
        isolation: str = "2pl",
    ):
        if optimizer not in ("heuristic", "cost"):
            raise ServiceError(
                f"unknown optimizer {optimizer!r} "
                "(expected 'heuristic' or 'cost')"
            )
        if isolation not in ("2pl", "si"):
            raise ServiceError(
                f"unknown isolation {isolation!r} (expected '2pl' or 'si')"
            )
        if isolation == "si" and not recovery:
            raise ServiceError(
                "isolation='si' needs a service built with recovery=True "
                "(SI aborts roll back physically to the stashed pre-images)"
            )
        self.isolation = isolation
        self.derby = derby
        self.db = derby.db
        self.catalog = Catalog.from_derby(derby)
        #: Shared planner for every session when cost-based planning is
        #: requested; ``None`` keeps each engine's private heuristic
        #: planner.  Shared on purpose: one ``analyze`` (from any
        #: session) installs statistics for the whole service, the way
        #: a real server keeps one catalog of optimizer statistics.
        self.plan_optimizer = (
            CostBasedOptimizer(self.catalog) if optimizer == "cost" else None
        )
        self.recovery = recovery
        self.txm = TransactionManager(self.db, recovery=recovery)
        if isolation == "si":
            # Enable MVCC before any client runs, so every logged write
            # stashes its pre-image and no snapshot has a blind spot.
            self.txm.enable_mvcc()
        self.txm.locks.timeout_s = lock_timeout_s
        self.scheduler = CooperativeScheduler(
            self.db.clock, self.txm.locks, on_switch=self._on_switch
        )
        #: Budgets, cancellation and (with ``max_active``) admission
        #: control — see :mod:`repro.service.governor`.
        self.governor = ResourceGovernor(
            self,
            query_budget=query_budget,
            session_budget=session_budget,
            max_active=max_active,
        )
        self.client_cache_pages = client_cache_pages
        self.sessions: list[Session] = []
        self._task_session: dict[int, Session] = {}
        self._active: Session | None = None
        self._last_s = 0.0
        self._last_meters = self.db.counters.snapshot()
        self._base_client_cache = self.db.system.client_cache
        self._base_handles = self.db.handles
        self._base_server_cache: BufferCache | None = None
        if server_cache_pages is not None:
            self._base_server_cache = self.db.system.server_cache
            self.db.system.server_cache = BufferCache(
                server_cache_pages,
                LRUPolicy(),
                on_evict_dirty=self.db.system._write_back_to_disk,
            )

    # -- sessions -----------------------------------------------------------

    def open_session(
        self,
        name: str | None = None,
        client_cache_pages: int | None = None,
        isolation: str | None = None,
    ) -> Session:
        """Open a client connection.  ``isolation`` overrides the
        service-wide default for this session only (e.g. one ``si``
        reporting session against an otherwise-2pl service; the service
        must still have been built with ``recovery=True`` for si)."""
        if isolation is not None and isolation not in ("2pl", "si"):
            raise ServiceError(
                f"unknown isolation {isolation!r} (expected '2pl' or 'si')"
            )
        if isolation == "si" and not self.recovery:
            raise ServiceError(
                "isolation='si' needs a service built with recovery=True "
                "(SI aborts roll back physically to the stashed pre-images)"
            )
        session = Session(
            self,
            len(self.sessions),
            name or f"s{len(self.sessions)}",
            client_cache_pages,
            isolation=isolation,
        )
        self.sessions.append(session)
        return session

    def spawn(self, session: Session, fn: Callable[[], object]) -> Task:
        """Register ``fn`` as ``session``'s body for the next :meth:`run`."""
        task = self.scheduler.spawn(session.name, fn)
        session.task = task
        self._task_session[task.task_id] = session
        return task

    # -- the run ------------------------------------------------------------

    def run(self) -> list[Task]:
        """Interleave every spawned session body to completion."""
        system = self.db.system
        system.on_fault = self._fault_point
        self._last_s = self.db.clock.elapsed_s
        self._last_meters = self.db.counters.snapshot()
        try:
            tasks = self.scheduler.run()
        finally:
            system.on_fault = None
            self._accrue()
            self._activate(None)
        for session in self.sessions:
            if session.task is not None:
                session.metrics.lock_wait_s = session.task.lock_wait_s
                session.metrics.lock_waits = session.task.lock_waits
        return tasks

    @contextmanager
    def immediate(self, session: Session) -> Iterator[Session]:
        """Run ``session`` operations *without* the scheduler (the
        ``serve`` shell's mode): the session's client tier and handle
        table are attached for the duration and its share of the clock
        and counters is accrued on exit.  Lock conflicts are fail-fast
        here — with no scheduler there is nobody to wait for."""
        self._accrue()
        self._activate(session)
        try:
            yield session
        finally:
            self._accrue()
            self._activate(None)

    # -- crash and recovery -------------------------------------------------

    def checkpoint(self) -> None:
        """Flush the dirty-page table and log a checkpoint record.

        Requires ``recovery=True`` (without physical logging there is
        nothing for a checkpoint to bound)."""
        self._require_recovery("checkpoint")
        from repro.recovery import take_checkpoint

        take_checkpoint(self.db, self.txm)

    def crash(self) -> None:
        """Kill the server: every session's volatile state (client tier,
        handle table, open transaction) is lost along with the shared
        caches, lock table and unflushed log; the disk reverts to its
        durable page images.  Call :meth:`recover` before using the
        service again."""
        self._require_recovery("crash")
        from repro.recovery import crash_database

        for session in self.sessions:
            session.cache.clear()
            session.handles.clear()
            session.txn = None
        crash_database(self.db, self.txm)
        self._activate(None)

    def recover(self):
        """Run ARIES-lite restart (analysis/redo/undo) after
        :meth:`crash`; returns the
        :class:`~repro.recovery.RecoveryReport`."""
        self._require_recovery("recover")
        from repro.recovery import restart

        return restart(self.db, self.txm)

    def _require_recovery(self, op: str) -> None:
        if not self.recovery:
            raise ServiceError(
                f"{op}() needs a service built with recovery=True "
                "(physical logging is off)"
            )

    def close(self) -> None:
        """Flush every session's client tier and restore the database's
        original single-client configuration."""
        system = self.db.system
        for session in self.sessions:
            system.attach_client_tier(session.cache)
            for page in session.cache.dirty_pages():
                system._write_back_to_server(page)
        system.attach_client_tier(self._base_client_cache)
        self.db.handles = self._base_handles
        self.db.manager.handles = self._base_handles
        if self._base_server_cache is not None:
            for page in system.server_cache.dirty_pages():
                system._write_back_to_disk(page)
            system.server_cache = self._base_server_cache

    # -- switch accounting --------------------------------------------------

    def _fault_point(self) -> None:
        """The client-page-fault hook during :meth:`run`: a governor
        check point on both sides of the scheduler yield.  The check
        *after* the yield is what caps a cancelled scan's I/O — a cancel
        flagged while the victim was suspended is raised before the
        victim charges its next page."""
        governor = self.governor
        governor.checkpoint(self._active)
        self.scheduler.yield_point()
        governor.checkpoint(self._active)

    def _on_switch(self, task: Task) -> None:
        self._accrue()
        self._activate(self._task_session.get(task.task_id))

    def _accrue(self) -> None:
        now_s = self.db.clock.elapsed_s
        meters = self.db.counters.snapshot()
        if self._active is not None:
            m = self._active.metrics
            m.busy_s += now_s - self._last_s
            m.meters = _add_meters(m.meters, meters - self._last_meters)
        self._last_s = now_s
        self._last_meters = meters

    def _activate(self, session: Session | None) -> None:
        self._active = session
        if session is not None:
            self.db.system.attach_client_tier(session.cache)
            self.db.handles = session.handles
            self.db.manager.handles = session.handles
        else:
            self.db.system.attach_client_tier(self._base_client_cache)
            self.db.handles = self._base_handles
            self.db.manager.handles = self._base_handles
        self._install_read_view(session)

    def _install_read_view(self, session: Session | None) -> None:
        """Point the object manager's read path at the incoming
        session's snapshot (SI) or back at the live records (2PL /
        no open transaction) — part of every context switch, so a
        snapshot can never leak into another session's reads."""
        om = self.db.manager
        txn = session.txn if session is not None else None
        if (
            txn is not None
            and txn.state == "active"
            and txn.snapshot is not None
        ):
            om.read_view = txn.view
        else:
            om.read_view = None
