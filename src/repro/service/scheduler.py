"""Deterministic cooperative scheduling of concurrent sessions.

The simulator charges all costs to one :class:`~repro.simtime.SimClock`,
so "concurrency" means *deterministic interleaving*: every session runs
in its own thread, but exactly one thread holds the baton at any moment
and the baton is handed over only at explicit yield points — client page
faults / RPCs (the :attr:`ClientServerSystem.on_fault` hook), lock
waits, operator batch boundaries (:meth:`batch_point`, reached every
``batch_size`` rows of a pipelined query), and voluntary
:meth:`yield_point` calls.  Switch order is strict
round-robin over ready tasks, so a given workload on a given database
interleaves — and therefore costs — exactly the same way every run.

Lock waiting plugs in through :meth:`wait_for_lock` / ``notify_granted``
(the :meth:`repro.txn.locks.LockManager.attach` contract).  When every
live task is blocked the scheduler resolves the stall: first it aborts
waiters whose simulated wait exceeded the lock timeout
(:class:`~repro.errors.LockTimeoutError`), then it asks the lock manager
for a waits-for cycle and aborts the youngest transaction in it
(:class:`~repro.errors.DeadlockError`).  The victim's thread resumes
with the exception raised at its wait point.
"""

from __future__ import annotations

import enum
import threading
from typing import TYPE_CHECKING, Callable

from repro.errors import (
    DeadlockError,
    LockConflictError,
    LockTimeoutError,
    ServiceError,
)
from repro.simtime import SimClock
from repro.storage.rid import Rid

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.txn.locks import LockManager


class TaskState(enum.Enum):
    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"


class Task:
    """One schedulable session body."""

    def __init__(self, task_id: int, name: str, fn: Callable[[], object]):
        self.task_id = task_id
        self.name = name
        self.fn = fn
        self.state = TaskState.NEW
        self.thread: threading.Thread | None = None
        self.result: object = None
        self.error: BaseException | None = None
        #: Pending exception to raise at the task's lock-wait point
        #: (deadlock / timeout victim).
        self.abort_exc: BaseException | None = None
        #: Simulated seconds spent waiting for locks.
        self.lock_wait_s = 0.0
        #: Times this task blocked on a lock (SI scans must show zero).
        self.lock_waits = 0
        self.switches = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Task {self.name} {self.state.value}>"


class CooperativeScheduler:
    """Round-robin baton scheduler over session threads."""

    def __init__(
        self,
        clock: SimClock,
        locks: "LockManager | None" = None,
        on_switch: Callable[[Task], None] | None = None,
    ):
        self.clock = clock
        self.locks = locks
        #: Called (by the handing-over thread) whenever a new task is
        #: about to run — the query service swaps client caches here.
        self.on_switch = on_switch
        self._cv = threading.Condition()
        self._tasks: list[Task] = []
        self._current: Task | None = None
        self._rr_next = 0  # round-robin cursor
        self._blocked_txns: dict[int, Task] = {}
        #: session id -> task blocked in the admission gate's queue.
        self._blocked_admission: dict[int, Task] = {}
        self.context_switches = 0
        #: Yields taken at operator batch boundaries (see batch_point).
        self.batch_yields = 0
        if locks is not None:
            locks.attach(self.wait_for_lock, self.notify_granted)

    # -- task management ----------------------------------------------------

    def spawn(self, name: str, fn: Callable[[], object]) -> Task:
        """Register a task; it starts running only inside :meth:`run`."""
        task = Task(len(self._tasks), name, fn)
        self._tasks.append(task)
        return task

    @property
    def tasks(self) -> list[Task]:
        return list(self._tasks)

    # -- the main loop ------------------------------------------------------

    def run(self) -> list[Task]:
        """Run every spawned task to completion; returns the tasks.

        Task exceptions are captured on ``task.error`` (the scheduler
        itself only raises for scheduler bugs, e.g. an unresolvable
        stall, which :meth:`_resolve_stall` turns into
        :class:`~repro.errors.ServiceError`)."""
        if not self._tasks:
            return []
        for task in self._tasks:
            if task.state is TaskState.NEW:
                task.state = TaskState.READY
                task.thread = threading.Thread(
                    target=self._task_body, args=(task,), daemon=True,
                    name=f"repro-session-{task.name}",
                )
                task.thread.start()
        with self._cv:
            self._schedule_next()
            while any(t.state is not TaskState.DONE for t in self._tasks):
                self._cv.wait()
        for task in self._tasks:
            if task.thread is not None:
                task.thread.join()
        return list(self._tasks)

    def _task_body(self, task: Task) -> None:
        with self._cv:
            while self._current is not task:
                self._cv.wait()
        try:
            task.result = task.fn()
        # The trampoline boundary: a session's failure (abort, deadlock,
        # injected crash) is the *result* of its task; the workload
        # driver re-raises ``task.error``, so capturing here is delivery,
        # not swallowing.
        # simlint: ok[EXC] task errors are captured and re-raised by the driver
        except BaseException as exc:  # noqa: BLE001 - reported via .error
            task.error = exc
        finally:
            with self._cv:
                task.state = TaskState.DONE
                self._current = None
                self._schedule_next()
                self._cv.notify_all()

    # -- yield points -------------------------------------------------------

    def yield_point(self) -> None:
        """Hand the baton to the next ready task (no-op when this is the
        only live task).  Safe to call from any depth of session code."""
        with self._cv:
            me = self._current
            if me is None:
                return  # not inside a scheduled slice (e.g. warm-up I/O)
            me.state = TaskState.READY
            self._current = None
            self._schedule_next()
            while self._current is not me:
                self._cv.wait()

    def batch_point(self) -> None:
        """Yield point taken between operator batches of a pipelined
        query, so a long scan hands the baton over every ``batch_size``
        rows instead of only at page faults.  A no-op outside a
        scheduled slice (immediate mode, warm-up)."""
        with self._cv:
            if self._current is None:
                return
        self.batch_yields += 1
        self.yield_point()

    def wait_for_lock(self, txn_id: int, rid: Rid) -> None:
        """Block the current task until its lock request is granted.

        Raises the abort exception when this task is chosen as a
        deadlock/timeout victim (the ``LockManager.attach`` contract)."""
        with self._cv:
            me = self._current
            if me is None:
                # Not inside a scheduled slice (e.g. the serve shell's
                # immediate mode): nobody to wait for, so fail fast.
                raise LockConflictError(
                    f"txn {txn_id}: lock on {rid} is held by another "
                    "session (immediate mode is fail-fast)"
                )
            started_s = self.clock.elapsed_s
            me.state = TaskState.BLOCKED
            me.abort_exc = None
            me.lock_waits += 1
            self._blocked_txns[txn_id] = me
            self._current = None
            self._schedule_next()
            while self._current is not me:
                self._cv.wait()
            self._blocked_txns.pop(txn_id, None)
            me.lock_wait_s += self.clock.elapsed_s - started_s
            if me.abort_exc is not None:
                exc, me.abort_exc = me.abort_exc, None
                raise exc

    def notify_granted(self, txn_id: int) -> None:
        """A queued request was granted: make its task ready again."""
        with self._cv:  # re-entrant (Condition uses an RLock)
            task = self._blocked_txns.get(txn_id)
            if task is not None and task.state is TaskState.BLOCKED:
                task.state = TaskState.READY

    def wait_for_admission(self, session_id: int) -> None:
        """Block the current task until the admission gate promotes it
        (:meth:`notify_admitted`) — the admission-queue analogue of
        :meth:`wait_for_lock`.  Raises the abort exception when the
        waiter is cancelled while queued."""
        with self._cv:
            me = self._current
            if me is None:
                raise ServiceError(
                    "wait_for_admission outside a scheduled slice"
                )
            me.state = TaskState.BLOCKED
            me.abort_exc = None
            self._blocked_admission[session_id] = me
            self._current = None
            self._schedule_next()
            while self._current is not me:
                self._cv.wait()
            self._blocked_admission.pop(session_id, None)
            if me.abort_exc is not None:
                exc, me.abort_exc = me.abort_exc, None
                raise exc

    def notify_admitted(self, session_id: int) -> None:
        """A queued session reached the head of the admission queue."""
        with self._cv:
            task = self._blocked_admission.get(session_id)
            if task is not None and task.state is TaskState.BLOCKED:
                task.state = TaskState.READY

    def interrupt(
        self,
        task: Task | None,
        exc: BaseException,
        txn_id: int | None = None,
    ) -> bool:
        """Deliver ``exc`` at ``task``'s wait point *now*, if it is
        blocked (lock wait or admission wait); returns whether delivery
        happened.  A running/ready task cannot be interrupted here — its
        flag-based checkpoint will catch it instead."""
        with self._cv:
            if task is None or task.state is not TaskState.BLOCKED:
                return False
            if txn_id is not None and self.locks is not None:
                if self._blocked_txns.get(txn_id) is task:
                    self.locks.cancel_wait(txn_id)
            task.abort_exc = exc
            task.state = TaskState.READY
            return True

    def in_slice(self) -> bool:
        """Is the calling code running inside a scheduled slice?"""
        with self._cv:
            return self._current is not None

    # -- internals ----------------------------------------------------------

    def _schedule_next(self) -> None:
        """Pick the next task to run (caller holds the condition)."""
        self._expire_timeouts()
        task = self._next_ready()
        if task is None and any(
            t.state is TaskState.BLOCKED for t in self._tasks
        ):
            self._resolve_stall()
            task = self._next_ready()
        if task is None:
            self._cv.notify_all()  # all done (or main should re-check)
            return
        task.state = TaskState.RUNNING
        task.switches += 1
        self.context_switches += 1
        self._current = task
        if self.on_switch is not None:
            self.on_switch(task)
        self._cv.notify_all()

    def _next_ready(self) -> Task | None:
        n = len(self._tasks)
        for offset in range(n):
            task = self._tasks[(self._rr_next + offset) % n]
            if task.state is TaskState.READY:
                self._rr_next = (task.task_id + 1) % n
                return task
        return None

    def _expire_timeouts(self) -> None:
        if self.locks is None:
            return
        expired = self.locks.expired_waiters()
        if not expired:
            return
        # The effective timeout may be tightened by an injected
        # lock-timeout storm (see LockManager.effective_timeout_s).
        timeout_s = self.locks.effective_timeout_s()
        for txn_id in expired:
            task = self._blocked_txns.get(txn_id)
            if task is None or task.state is not TaskState.BLOCKED:
                continue
            self.locks.cancel_wait(txn_id)
            task.abort_exc = LockTimeoutError(
                f"txn {txn_id} ({task.name}) waited longer than "
                f"{timeout_s:g} simulated s for a lock"
            )
            task.state = TaskState.READY

    def _resolve_stall(self) -> None:
        """Every live task is blocked: break the tie or report a bug."""
        if self.locks is not None:
            victim = self.locks.find_deadlock_victim()
            if victim is not None:
                task = self._blocked_txns.get(victim)
                if task is not None:
                    self.locks.cancel_wait(victim)
                    task.abort_exc = DeadlockError(
                        f"txn {victim} ({task.name}) chosen as deadlock "
                        "victim (youngest in the waits-for cycle)"
                    )
                    task.state = TaskState.READY
                    return
        # No cycle and no timeout fired: a genuine stall (e.g. a lock
        # holder died without releasing).  Unwind every blocked task
        # with a ServiceError rather than hanging the run.
        blocked = [
            t.name for t in self._tasks if t.state is TaskState.BLOCKED
        ]
        for task in self._tasks:
            if task.state is TaskState.BLOCKED:
                task.abort_exc = ServiceError(
                    f"scheduler stalled: tasks {blocked} blocked with no "
                    "deadlock cycle and no timeout configured"
                )
                task.state = TaskState.READY
