"""Multi-client query service: sessions over one shared server tier.

The paper's experiments are strictly single-client; this package makes
"many concurrent clients against one server" a first-class, measurable
scenario:

* :class:`QueryService` — shared disk/server cache/WAL/lock manager plus
  any number of :class:`Session` objects (private client cache, private
  handle table, own transactions, own OQL engine);
* :class:`CooperativeScheduler` — deterministic round-robin interleaving
  of session bodies at page-fault, RPC and lock-wait boundaries;
* a lock *wait* protocol (FIFO queues, timeouts, waits-for deadlock
  detection) living in :class:`repro.txn.locks.LockManager`;
* :class:`WorkloadMixer` — parameterized navigator/scanner/updater mixes
  with per-session and aggregate throughput/latency/abort metrics;
* :class:`ResourceGovernor` — per-query/per-session budgets, cooperative
  cancellation, seeded retry backoff (:class:`RetryPolicy`) and FIFO
  admission control (:class:`AdmissionGate`);
* :mod:`repro.service.chaos` — the seeded chaos checker that runs mixes
  under injected transient faults and asserts the robustness contract.
"""

from repro.service.governor import (
    AdmissionGate,
    QueryBudget,
    ResourceGovernor,
    RetryPolicy,
)
from repro.service.scheduler import CooperativeScheduler, Task, TaskState
from repro.service.service import QueryService, Session, SessionMetrics
from repro.service.workload import (
    PROFILES,
    MixConfig,
    MixReport,
    SessionReport,
    WorkloadMixer,
)

__all__ = [
    "AdmissionGate",
    "CooperativeScheduler",
    "Task",
    "TaskState",
    "QueryBudget",
    "QueryService",
    "ResourceGovernor",
    "RetryPolicy",
    "Session",
    "SessionMetrics",
    "MixConfig",
    "MixReport",
    "SessionReport",
    "WorkloadMixer",
    "PROFILES",
]
