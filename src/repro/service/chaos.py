"""Seeded chaos checker: workload mixes under injected transient faults.

:mod:`repro.recovery.fuzz` crashes random workloads and verifies
restart; this checker covers the *survivable* fault family.  Each case
builds a fresh tiny Derby database, draws a mix shape, governor
configuration and a :class:`~repro.recovery.TransientFaultInjector`
(flaky page reads, lock-timeout storms) from one seeded stream, runs the
mix, and asserts the robustness contract:

* **nothing leaks** — when the run returns, the lock table holds zero
  locks and zero waiters, no transaction is still open, and every
  session's handle table is empty (live and parked);
* **committed-visible** — every write whose ``commit()`` ack returned is
  in the durable state; since the single timeline totally orders
  commits, the last acked write per rid must equal the value read back;
* **uncommitted-gone** — an age that was never committed never shows:
  every hot-set age equals either its preload value or some acked write;
* **determinism** — re-running the same seed on a fresh database
  reproduces an identical digest (per-session outcome counters, elapsed
  simulated time, final ages).

Lives in the service layer (not :mod:`repro.recovery`) because it
drives the :class:`~repro.service.WorkloadMixer`; the layering rule
forbids recovery → service imports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random

from repro.bench.report import Table
from repro.cluster import load_derby
from repro.derby import DerbyConfig
from repro.recovery.transient import TransientFaultInjector
from repro.service.workload import MixConfig, WorkloadMixer

#: Scale of the per-case database: ~30 patients, loads in milliseconds.
_SCALE = 0.00001


@dataclass
class ChaosResult:
    """Outcome of one seeded chaos case."""

    seed: int
    clients: int
    ops_per_client: int
    read_fault_rate: float
    storms: bool
    committed: int
    aborted: int
    retries: int
    io_faults: int
    isolation: str = "2pl"
    conflicts: int = 0
    failures: list[str] = field(default_factory=list)
    digest: tuple = ()

    @property
    def ok(self) -> bool:
        return not self.failures


def _draw_case(seed: int) -> tuple[MixConfig, TransientFaultInjector]:
    """The case generator: mix shape + governor + faults from one seed."""
    rng = Random(seed * 99_991 + 17)
    clients = rng.randint(2, 5)
    config = MixConfig.from_clients(
        clients,
        ops_per_client=rng.randint(2, 4),
        seed=seed,
        lock_timeout_s=rng.choice([0.25, 0.5, None]),
        max_retries=rng.randint(1, 3),
        retry_backoff_s=rng.choice([0.005, 0.02]),
        hot_set=rng.choice([4, 8]),
        max_active=rng.choice([None, None, max(1, clients - 1), 2]),
        statement_timeout_s=rng.choice([None, None, 2.0]),
        budget_pages=rng.choice([None, None, 2_000]),
        # A third of the cases run under MVCC snapshot isolation, so the
        # leak / committed-visible / determinism contract is exercised
        # with version chains, first-committer-wins aborts and the
        # governed GC sweep in play.
        isolation=rng.choice(["2pl", "2pl", "si"]),
    )
    faults = TransientFaultInjector(
        seed=seed,
        read_fault_rate=rng.choice([0.002, 0.01, 0.05]),
        read_fault_persistence=rng.choice([0.1, 0.5, 0.9]),
        storm_mean_gap_s=rng.choice([None, 0.2, 0.5]),
        storm_len_s=0.1,
        storm_timeout_s=0.002,
    )
    return config, faults


def _run_once(seed: int) -> tuple[ChaosResult, "WorkloadMixer"]:
    derby = load_derby(DerbyConfig.db_1to3(scale=_SCALE))
    config, faults = _draw_case(seed)
    # Preload ages *before* the run — the baseline the uncommitted-gone
    # check compares against (deterministic: same reads every run).
    hot = min(config.hot_set, len(derby.patient_rids))
    hot_rids = derby.patient_rids[:hot]
    preload = {
        rid: int(derby.db.manager.get_attr_at(rid, "age")) for rid in hot_rids
    }
    mixer = WorkloadMixer(derby, config, faults=faults)
    report = mixer.run()
    service = mixer.service
    assert service is not None

    failures: list[str] = []

    # -- nothing leaks --------------------------------------------------
    locks = service.txm.locks
    if locks.lock_count:
        failures.append(f"{locks.lock_count} locks leaked")
    if locks.waiting_count:
        failures.append(f"{locks.waiting_count} lock waiters leaked")
    if service.txm.active_count:
        failures.append(f"{service.txm.active_count} transactions left open")
    for session in service.sessions:
        if session.handles.live_count:
            failures.append(
                f"session {session.name}: {session.handles.live_count} "
                "live handles leaked"
            )
    gate = service.governor.gate
    if gate is not None and gate.queue_depth:
        failures.append(f"{gate.queue_depth} sessions stuck in admission")

    # -- SI reads are lock-free -----------------------------------------
    # Under snapshot isolation the reader profiles resolve version
    # chains instead of taking S locks; a single blocked read would
    # falsify the tentpole claim, so the chaos contract pins it to zero.
    if config.isolation == "si":
        for report_session in report.sessions:
            if report_session.profile == "updater":
                continue
            if report_session.metrics.lock_waits:
                failures.append(
                    f"session {report_session.name} ({report_session.profile})"
                    f" blocked on locks {report_session.metrics.lock_waits}x"
                    " under si (snapshot reads must be lock-free)"
                )

    # -- committed-visible / uncommitted-gone ---------------------------
    acked: dict = {}
    for rid, value in mixer.write_log:
        acked[rid] = value
    legal: dict = {}
    for rid in hot_rids:
        legal[rid] = {preload[rid]} | {
            v for r, v in mixer.write_log if r == rid
        }
    final = dict(preload)
    for rid in acked:
        if rid not in final:
            failures.append(f"acked write to non-hot rid {tuple(rid)}")
    for rid in hot_rids:
        value = int(derby.db.manager.get_attr_at(rid, "age"))
        final[rid] = value
        expected = acked.get(rid)
        if expected is not None and value != expected:
            failures.append(
                f"rid {tuple(rid)}: last acked write {expected}, "
                f"durable value {value} (lost update)"
            )
        if value not in legal[rid]:
            failures.append(
                f"rid {tuple(rid)}: durable value {value} was never "
                "committed (dirty write survived)"
            )

    digest = tuple(
        (
            s.name,
            s.metrics.committed,
            s.metrics.aborted,
            s.metrics.retries,
            s.metrics.deadlocks,
            s.metrics.timeouts,
            s.metrics.conflicts,
            s.metrics.lock_waits,
            s.metrics.cancelled,
            s.metrics.over_budget,
            s.metrics.io_failures,
            round(s.metrics.busy_s, 9),
        )
        for s in report.sessions
    ) + (
        round(report.elapsed_s, 9),
        report.context_switches,
        report.max_queue_depth,
        tuple(sorted((tuple(r), v) for r, v in final.items())),
    )
    result = ChaosResult(
        seed=seed,
        clients=config.total_clients,
        ops_per_client=config.ops_per_client,
        read_fault_rate=faults.read_fault_rate,
        storms=faults.storm_mean_gap_s is not None,
        isolation=config.isolation,
        committed=report.committed,
        aborted=report.aborted,
        retries=report.retries,
        conflicts=report.conflicts,
        io_faults=faults.faults_injected,
        failures=failures,
        digest=digest,
    )
    return result, mixer


def run_case(seed: int, check_determinism: bool = True) -> ChaosResult:
    """Run one seeded chaos case (twice when determinism-checked)."""
    result, __ = _run_once(seed)
    if check_determinism:
        again, __ = _run_once(seed)
        if again.digest != result.digest:
            result.failures.append(
                f"seed {seed}: re-run produced a different digest "
                "(determinism violated)"
            )
    return result


def run_chaos(
    cases: int, base_seed: int = 0, check_determinism: bool = True
) -> list[ChaosResult]:
    """Run ``cases`` seeded chaos cases; see the module docstring for
    what each asserts."""
    return [
        run_case(base_seed + i, check_determinism=check_determinism)
        for i in range(cases)
    ]


def summarize(results: list[ChaosResult]) -> Table:
    """Render a per-case summary table with an aggregate note."""
    table = Table(
        f"Chaos: {len(results)} seeded fault-injected mix runs",
        ["Seed", "Clients", "Ops", "FaultRate", "Storms", "Iso",
         "Committed", "Aborted", "Retries", "Conflicts", "IOFaults", "OK"],
    )
    for r in results:
        table.add(
            r.seed, r.clients, r.ops_per_client, r.read_fault_rate,
            "yes" if r.storms else "no", r.isolation, r.committed,
            r.aborted, r.retries, r.conflicts, r.io_faults,
            "ok" if r.ok else "FAIL",
        )
    bad = [r for r in results if not r.ok]
    committed = sum(r.committed for r in results)
    faults = sum(r.io_faults for r in results)
    table.note(
        f"{len(results) - len(bad)}/{len(results)} cases clean; "
        f"{committed} commits under {faults} injected read faults; "
        "invariants: zero leaked locks/handles, committed-visible, "
        "uncommitted-gone, lock-free si reads, deterministic re-runs"
    )
    return table
