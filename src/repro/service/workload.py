"""Parameterized multi-client workload mixes over a Derby database.

The paper ran every query as a single cold client; OCB and the dynamic
object-benchmark line of work argue that multi-user mixes are where
client/server systems earn (or lose) their keep.  A
:class:`WorkloadMixer` replays exactly that scenario deterministically:

* **navigators** pick a provider and walk its ``clients`` set — the
  pointer-chasing workload (shared locks, scattered page reads);
* **scanners** run an OQL selection over ``Patients`` — the associative
  workload (big sequential reads that fight everyone else for the
  shared server cache);
* **updaters** write-lock pairs of *hot-set* patients and update them —
  the workload that creates lock waits, timeouts and deadlocks.

All randomness is drawn from per-session ``random.Random`` instances
seeded from ``MixConfig.seed``, and the scheduler interleaves
deterministically, so a given mix on a given database always produces
the same commits, aborts, deadlocks and simulated times.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from random import Random
from typing import TYPE_CHECKING

from repro.bench.report import Table
from repro.errors import (
    DeadlockError,
    GovernorError,
    LockConflictError,
    LockTimeoutError,
    PermanentIOError,
    QueryCancelledError,
    ServiceError,
    SimulatedCrashError,
    WriteConflictError,
)
from repro.service.governor import QueryBudget, RetryPolicy
from repro.service.service import QueryService, Session, SessionMetrics
from repro.storage.rid import Rid

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.loader import DerbyDatabase
    from repro.recovery import CrashInjector, TransientFaultInjector
    from repro.stats.store import StatsDatabase

#: Profile names, in the order ``MixConfig.from_clients`` deals them.
PROFILES = ("navigator", "scanner", "updater")


@dataclass(frozen=True)
class MixConfig:
    """Shape of one multi-client mix."""

    navigators: int = 1
    scanners: int = 1
    updaters: int = 1
    #: Operations (transactions) each client attempts.
    ops_per_client: int = 4
    seed: int = 1
    #: Lock wait bound in simulated seconds (``None``: no timeout,
    #: deadlock detection only).
    lock_timeout_s: float | None = None
    #: Retries after a deadlock/timeout abort before giving up on an op.
    max_retries: int = 2
    #: Backoff before the first retry (simulated seconds; doubles per
    #: retry, jittered from the session's seeded stream).
    retry_backoff_s: float = 0.02
    #: Jitter fraction of the retry backoff (see ``RetryPolicy``).
    retry_jitter: float = 0.5
    #: Per-statement budgets (``None``: unbounded) — see ``QueryBudget``.
    budget_pages: int | None = None
    budget_busy_s: float | None = None
    budget_rows: int | None = None
    statement_timeout_s: float | None = None
    #: Admission control: sessions running an operation concurrently
    #: (``None``: no gate).  The rest queue FIFO.
    max_active: int | None = None
    #: Force physical logging even without a crash/fault injector.
    recovery: bool = False
    #: Concurrency control every session runs under: ``"2pl"`` (strict
    #: two-phase locking, readers take S locks) or ``"si"`` (MVCC
    #: snapshot isolation: readers resolve version chains lock-free,
    #: writers keep X locks and abort on first-committer-wins
    #: conflicts).  ``"si"`` forces ``recovery=True`` — aborts must
    #: physically restore pre-images or snapshots would see them.
    isolation: str = "2pl"
    #: What updaters write: ``"age"`` derives the new value from the age
    #: just read (the classic read-modify-write), ``"keyed"`` derives
    #: both the hot pair *and* the value from ``(seed, client, op)`` /
    #: the rid alone — order-independent by construction, so a 2pl and
    #: an si run of the same config commit the identical end state (the
    #: cross-isolation digest gate of ``benchmarks/bench_mvcc.py``).
    update_values: str = "age"
    #: Children a navigator visits per provider.
    navigator_fanout: int = 8
    #: Selectivity (percent) of the scanner's OQL selection.
    scan_selectivity_pct: float = 10.0
    #: Shared locks a scanner takes on hot-set patients per op.
    scanner_lock_samples: int = 2
    #: Updaters (and scanner samples) draw from the first ``hot_set``
    #: patients — small enough that write/write conflicts actually occur.
    hot_set: int = 16
    #: Overrides for the shared server tier / per-session client tiers.
    server_cache_pages: int | None = None
    client_cache_pages: int | None = None
    #: Rows per operator batch for every session's queries (``None``:
    #: the engine default).  Smaller batches yield the scheduler baton
    #: more often (see ``CooperativeScheduler.batch_point``).
    batch_size: int | None = None
    #: Planner every session uses: ``"heuristic"`` (the default
    #: rule-plus-cost planner) or ``"cost"`` (the statistics-driven
    #: :class:`repro.opt.CostBasedOptimizer`; the mixer bootstraps it by
    #: running one governed ``analyze`` statement before the mix).
    optimizer: str = "heuristic"

    @property
    def total_clients(self) -> int:
        return self.navigators + self.scanners + self.updaters

    @classmethod
    def from_clients(cls, n_clients: int, **overrides: object) -> "MixConfig":
        """Deal ``n_clients`` round-robin over navigator/scanner/updater."""
        if n_clients < 1:
            raise ServiceError("a mix needs at least one client")
        counts = {p: 0 for p in PROFILES}
        for i in range(n_clients):
            counts[PROFILES[i % len(PROFILES)]] += 1
        return replace(
            cls(
                navigators=counts["navigator"],
                scanners=counts["scanner"],
                updaters=counts["updater"],
            ),
            **overrides,  # type: ignore[arg-type]
        )


@dataclass
class SessionReport:
    """One session's outcome, flattened for tables and stats rows."""

    name: str
    profile: str
    metrics: SessionMetrics

    @property
    def throughput_ops_s(self) -> float:
        total = self.metrics.busy_s + self.metrics.lock_wait_s
        if total <= 0:
            return 0.0
        return self.metrics.committed / total


@dataclass
class MixReport:
    """Aggregate outcome of one mix run."""

    config: MixConfig
    sessions: list[SessionReport]
    #: Simulated seconds for the whole mix (the shared timeline).
    elapsed_s: float
    context_switches: int
    #: ``True`` when a :class:`~repro.recovery.CrashInjector` killed the
    #: run; the mixer's service is left crashed, awaiting ``recover()``.
    crashed: bool = False
    #: Deepest the admission gate's FIFO queue ever got (0 without
    #: admission control).
    max_queue_depth: int = 0

    @property
    def committed(self) -> int:
        return sum(s.metrics.committed for s in self.sessions)

    @property
    def aborted(self) -> int:
        return sum(s.metrics.aborted for s in self.sessions)

    @property
    def deadlocks(self) -> int:
        return sum(s.metrics.deadlocks for s in self.sessions)

    @property
    def timeouts(self) -> int:
        return sum(s.metrics.timeouts for s in self.sessions)

    @property
    def conflicts(self) -> int:
        """First-committer-wins aborts (snapshot isolation only)."""
        return sum(s.metrics.conflicts for s in self.sessions)

    @property
    def lock_waits(self) -> int:
        """Times any session blocked on a lock (SI scans contribute 0)."""
        return sum(s.metrics.lock_waits for s in self.sessions)

    @property
    def retries(self) -> int:
        return sum(s.metrics.retries for s in self.sessions)

    @property
    def gave_up(self) -> int:
        return sum(s.metrics.gave_up for s in self.sessions)

    @property
    def cancelled(self) -> int:
        return sum(s.metrics.cancelled for s in self.sessions)

    @property
    def over_budget(self) -> int:
        return sum(s.metrics.over_budget for s in self.sessions)

    @property
    def io_failures(self) -> int:
        return sum(s.metrics.io_failures for s in self.sessions)

    @property
    def queue_wait_s(self) -> float:
        return sum(s.metrics.queue_wait_s for s in self.sessions)

    @property
    def throughput_ops_s(self) -> float:
        """Committed transactions per simulated second, all sessions."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.committed / self.elapsed_s

    def table(self) -> Table:
        table = Table(
            f"Mix: {self.config.navigators} navigator(s) + "
            f"{self.config.scanners} scanner(s) + "
            f"{self.config.updaters} updater(s), "
            f"{self.config.ops_per_client} ops each",
            ["Session", "Profile", "Committed", "Aborted", "Retries",
             "Deadlocks", "Timeouts", "Conflicts", "LockWaits", "Cancel",
             "OverBudget", "Busy (s)", "Wait (s)", "Queue (s)",
             "Mean lat (s)", "Ops/s"],
        )
        for s in self.sessions:
            m = s.metrics
            table.add(
                s.name, s.profile, m.committed, m.aborted, m.retries,
                m.deadlocks, m.timeouts, m.conflicts, m.lock_waits,
                m.cancelled, m.over_budget,
                m.busy_s, m.lock_wait_s, m.queue_wait_s, m.mean_latency_s,
                s.throughput_ops_s,
            )
        note = (
            f"aggregate: {self.committed} committed, {self.aborted} "
            f"aborted ({self.retries} retried, {self.gave_up} gave up) in "
            f"{self.elapsed_s:.2f} simulated s -> "
            f"{self.throughput_ops_s:.3f} txn/s; "
            f"{self.context_switches} context switches"
        )
        if self.config.isolation == "si":
            note += (
                f"; isolation=si: {self.conflicts} write conflicts, "
                f"{self.lock_waits} lock waits"
            )
        if self.max_queue_depth:
            note += f"; admission queue depth peaked at {self.max_queue_depth}"
        table.note(note)
        return table


class WorkloadMixer:
    """Builds a :class:`QueryService`, spawns the mix, runs it."""

    def __init__(
        self,
        derby: "DerbyDatabase",
        config: MixConfig,
        stats: "StatsDatabase | None" = None,
        injector: "CrashInjector | None" = None,
        faults: "TransientFaultInjector | None" = None,
    ):
        self.derby = derby
        self.config = config
        self.stats = stats
        #: Arming an injector switches the service to ``recovery=True``
        #: (physical logging) so a mid-mix crash is recoverable.
        self.injector = injector
        #: Transient faults (flaky reads, lock-timeout storms) the run
        #: is expected to *survive*; also forces ``recovery=True`` so
        #: fault-driven aborts roll back physically.
        self.faults = faults
        #: The service of the last :meth:`run` — after a crash, call
        #: ``self.service.recover()`` on it.
        self.service: QueryService | None = None
        #: Committed writes in ack order: ``(rid, value)`` appended the
        #: moment each updater's ``commit()`` returns.  The single
        #: deterministic timeline totally orders commits, so the last
        #: write per rid is the expected durable value — the chaos
        #: checker's oracle.
        self.write_log: list[tuple[Rid, int]] = []

    # -- the run ------------------------------------------------------------

    def run(self, cold: bool = True) -> MixReport:
        config = self.config
        if config.total_clients < 1:
            raise ServiceError("a mix needs at least one client")
        if cold:
            self.derby.start_cold_run()
        self.write_log = []
        query_budget = QueryBudget(
            max_pages=config.budget_pages,
            max_busy_s=config.budget_busy_s,
            max_live_rows=config.budget_rows,
            statement_timeout_s=config.statement_timeout_s,
        )
        service = QueryService(
            self.derby,
            lock_timeout_s=config.lock_timeout_s,
            server_cache_pages=config.server_cache_pages,
            client_cache_pages=config.client_cache_pages,
            recovery=(
                config.recovery
                or config.isolation == "si"
                or self.injector is not None
                or self.faults is not None
            ),
            query_budget=query_budget if query_budget.armed else None,
            max_active=config.max_active,
            optimizer=config.optimizer,
            isolation=config.isolation,
        )
        self.service = service
        if service.plan_optimizer is not None:
            # Bootstrap the shared cost-based planner: one ``analyze``
            # statement, run as a governed session operation so its
            # (simulated) cost lands on the timeline like everything
            # else — the statistics are not free.
            analyst = service.open_session("analyst")
            with service.immediate(analyst):
                analyst.execute("analyze")
        if self.injector is not None:
            self.injector.arm(service.db, service.txm.log)
        if self.faults is not None:
            self.faults.arm(service.db, service.txm.locks)
        reports: list[SessionReport] = []
        start_s = self.derby.db.clock.elapsed_s
        spawned = 0
        for profile, count in (
            ("navigator", config.navigators),
            ("scanner", config.scanners),
            ("updater", config.updaters),
        ):
            for i in range(count):
                session = service.open_session(f"{profile}{i}")
                if config.batch_size is not None:
                    session.batch_size = config.batch_size
                rng = Random(config.seed * 10_007 + spawned)
                service.spawn(
                    session,
                    self._session_body(session, profile, rng, spawned),
                )
                reports.append(SessionReport(session.name, profile,
                                             session.metrics))
                spawned += 1
        try:
            tasks = service.run()
            crashed = any(
                isinstance(t.error, SimulatedCrashError) for t in tasks
            )
            if crashed:
                # Volatile state is meaningless past the crash point; do
                # NOT close() (that would flush post-crash pages to
                # disk).  Drop everything volatile so only durable state
                # remains, leaving self.service ready for recover().
                service.crash()
            else:
                service.close()
                for task in tasks:
                    if task.error is not None:
                        raise task.error
        finally:
            # The disk and derby outlive this service; leaving transient
            # faults armed would corrupt later runs on the same derby.
            if self.faults is not None:
                self.faults.disarm(service.db, service.txm.locks)
        gate = service.governor.gate
        report = MixReport(
            config=config,
            sessions=reports,
            elapsed_s=self.derby.db.clock.elapsed_s - start_s,
            context_switches=service.scheduler.context_switches,
            crashed=crashed,
            max_queue_depth=gate.max_queue_depth if gate is not None else 0,
        )
        if self.stats is not None and not crashed:
            self._record(report)
        return report

    # -- session bodies ------------------------------------------------------

    def _session_body(
        self, session: Session, profile: str, rng: Random, client_index: int
    ):
        op = {
            "navigator": self._navigator_op,
            "scanner": self._scanner_op,
            "updater": self._updater_op,
        }[profile]
        clock = self.derby.db.clock
        config = self.config
        policy = RetryPolicy(
            max_retries=config.max_retries,
            base_backoff_s=config.retry_backoff_s,
            jitter=config.retry_jitter,
        )

        def abort_open_txn() -> None:
            if session.txn is not None and session.txn.state == "active":
                session.abort()

        def body() -> None:
            metrics = session.metrics
            for op_index in range(config.ops_per_client):
                # Stable per-op key: a function of (seed, client, op)
                # only, so retries (which consume the session rng for
                # backoff jitter) never shift what later ops do.
                op_seed = (
                    config.seed * 1_000_003
                    + client_index * 8_191
                    + op_index
                )
                started_s = clock.elapsed_s
                attempt = 0
                while True:
                    try:
                        with session.admitted():
                            op(session, rng, op_seed)
                    except LockConflictError as exc:
                        # Transient: the victim of a deadlock, a lock
                        # timeout, or a first-committer-wins conflict
                        # retries with seeded backoff + jitter.
                        abort_open_txn()
                        if isinstance(exc, WriteConflictError):
                            metrics.conflicts += 1
                        elif isinstance(exc, DeadlockError):
                            metrics.deadlocks += 1
                        elif isinstance(exc, LockTimeoutError):
                            metrics.timeouts += 1
                        if attempt >= policy.max_retries:
                            metrics.gave_up += 1
                            break
                        metrics.retries += 1
                        session.backoff(policy.backoff_s(attempt, rng))
                        attempt += 1
                    except PermanentIOError:
                        # A read fault that out-lasted the disk's own
                        # retry budget: the op is lost, not retried (the
                        # page is "broken", trying again changes nothing).
                        abort_open_txn()
                        metrics.io_failures += 1
                        metrics.gave_up += 1
                        break
                    except GovernorError:
                        # Cancelled or over budget: stopped on purpose,
                        # never retried.  The governor already counted
                        # the outcome (cancelled / over_budget).
                        abort_open_txn()
                        break
                    else:
                        metrics.latencies_s.append(
                            clock.elapsed_s - started_s
                        )
                        break
                session.pause()  # think time between operations

        return body

    def _navigator_op(
        self, session: Session, rng: Random, op_seed: int
    ) -> None:
        derby = self.derby
        provider_rid = derby.provider_rids[
            rng.randrange(len(derby.provider_rids))
        ]
        with session.transaction():
            session.read_lock(provider_rid)
            clients = session.get_attr(provider_rid, "clients")
            child_rids = []
            for rid in derby.db.iter_set_rids(clients):
                child_rids.append(rid)
                if len(child_rids) >= self.config.navigator_fanout:
                    break
            for rid in child_rids:
                session.read_lock(rid)
                session.get_attr(rid, "age")
            session.metrics.queries += 1

    def _scanner_op(
        self, session: Session, rng: Random, op_seed: int
    ) -> None:
        derby = self.derby
        hot = min(self.config.hot_set, len(derby.patient_rids))
        threshold = derby.config.num_threshold(self.config.scan_selectivity_pct)
        with session.transaction():
            for __ in range(self.config.scanner_lock_samples):
                session.read_lock(derby.patient_rids[rng.randrange(hot)])
            session.execute(
                f"select p.age from p in Patients where p.num > {threshold}"
            )

    def _updater_op(
        self, session: Session, rng: Random, op_seed: int
    ) -> None:
        derby = self.derby
        hot = min(self.config.hot_set, len(derby.patient_rids))
        if hot < 2:
            raise ServiceError("updater needs at least two hot patients")
        keyed = self.config.update_values == "keyed"
        if keyed:
            # Pair and value depend only on (op_seed, rid): retries and
            # commit order cannot change the committed end state, so a
            # 2pl and an si run of this config produce the same digest.
            first, second = Random(op_seed).sample(range(hot), 2)
        else:
            first, second = rng.sample(range(hot), 2)
        rid_a = derby.patient_rids[first]
        rid_b = derby.patient_rids[second]
        writes: list[tuple[Rid, int]] = []
        with session.transaction():
            session.write_lock(rid_a)
            session.pause()  # the window in which opposite-order pairs deadlock
            session.write_lock(rid_b)
            for rid in (rid_a, rid_b):
                age = session.get_attr(rid, "age")
                if keyed:
                    value = (rid.page_no * 37 + rid.slot * 11) % 90 + 1
                else:
                    value = (int(age) % 90) + 1
                session.update_scalar(rid, "age", value)
                writes.append((rid, value))
        # Ack order on the single timeline == commit order: the oracle
        # the chaos checker verifies durable state against.
        self.write_log.extend(writes)

    # -- stats recording -----------------------------------------------------

    def _record(self, report: MixReport) -> None:
        assert self.stats is not None
        memory = self.derby.config.params.memory
        page = memory.page_size
        server_bytes = (
            self.config.server_cache_pages * page
            if self.config.server_cache_pages is not None
            else memory.server_cache_bytes
        )
        client_bytes = (
            self.config.client_cache_pages * page
            if self.config.client_cache_pages is not None
            else memory.client_cache_bytes
        )
        for s in report.sessions:
            self.stats.record_experiment(
                algo=f"mix-{s.profile}",
                cluster=self.derby.config.clustering.value,
                elapsed_s=s.metrics.busy_s + s.metrics.lock_wait_s,
                meters=s.metrics.meters,
                text=(
                    f"{s.profile} x{self.config.ops_per_client} in "
                    f"{self.config.total_clients}-client mix "
                    f"(seed {self.config.seed})"
                ),
                selectivity=round(self.config.scan_selectivity_pct),
                cold=True,
                server_cache_bytes=server_bytes,
                client_cache_bytes=client_bytes,
                first_row_ms=s.metrics.mean_first_row_ms,
                peak_rows=s.metrics.peak_rows,
                retries=s.metrics.retries,
                cancelled=s.metrics.cancelled,
                over_budget=s.metrics.over_budget,
            )
