"""Exception hierarchy for the repro object database.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also catching programming
errors (``TypeError``, ``KeyError``, ...) from their own code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class StorageError(ReproError):
    """Base class for storage-layer failures."""


class PageFullError(StorageError):
    """A record did not fit in the target page."""


class RecordNotFoundError(StorageError):
    """No record lives at the requested rid (deleted or never allocated)."""


class RecordTooLargeError(StorageError):
    """A record exceeds the maximum size a single page can hold."""


class PermanentIOError(StorageError):
    """A page read kept failing past the disk's bounded retry budget.

    Transient read faults (see
    :class:`~repro.recovery.TransientFaultInjector`) are retried with
    backoff inside :meth:`~repro.storage.disk.DiskManager.read_page`;
    when every retry fails too, the fault is escalated to this error and
    the operation aborts."""


class BufferError_(ReproError):
    """Base class for buffer-manager failures (trailing underscore avoids
    shadowing the builtin :class:`BufferError`)."""


class CachePinnedError(BufferError_):
    """All buffer frames are pinned; no frame can be evicted."""


class ObjectError(ReproError):
    """Base class for object-layer failures."""


class SchemaError(ObjectError):
    """Invalid schema definition or schema/instance mismatch."""


class DanglingReferenceError(ObjectError):
    """A reference points at a rid that no longer holds an object."""


class HandleError(ObjectError):
    """Misuse of the handle table (double unreference, stale handle...)."""


class RecordNotVisibleError(ObjectError):
    """A snapshot-isolation reader asked for a record that has no version
    visible at its snapshot (the object was created by a transaction that
    committed after the reader's begin timestamp, or by one still
    active).  Scans skip such rids; point reads surface the error."""


class IndexError_(ReproError):
    """Base class for index failures (named with a trailing underscore to
    avoid shadowing the builtin :class:`IndexError`)."""


class DuplicateIndexError(IndexError_):
    """An equivalent index already exists on the collection/key."""


class IndexSlotOverflowError(IndexError_):
    """An object belongs to more indexes than its header can record and
    the header could not be extended."""


class TransactionError(ReproError):
    """Base class for transaction failures."""


class TransactionMemoryError(TransactionError):
    """Too many objects created within one transaction — the simulated
    counterpart of O2's "out of memory" message (paper, Section 3.2)."""


class TransactionStateError(TransactionError):
    """Operation not legal in the transaction's current state."""


class LockConflictError(TransactionError):
    """A lock request conflicts with a lock held by another transaction.

    Raised immediately in *fail-fast* mode (no scheduler attached to the
    :class:`~repro.txn.locks.LockManager`); the subclasses below are the
    two ways a *waiting* request can end without a grant."""


class LockTimeoutError(LockConflictError):
    """A waiting lock request exceeded the configured lock timeout
    (simulated seconds) and the transaction must abort."""


class DeadlockError(LockConflictError):
    """The waits-for graph contains a cycle and this transaction was
    chosen as the victim (the youngest transaction in the cycle)."""


class WriteConflictError(LockConflictError):
    """First-committer-wins violation under snapshot isolation: another
    transaction committed a version of the record after this
    transaction's snapshot was taken.  Subclasses
    :class:`LockConflictError` so the mixer's existing retry loop
    (``RetryPolicy``) treats it as transient and retries."""


class ServiceError(ReproError):
    """Multi-client query-service failures (bad session, stalled
    scheduler, misconfigured workload mix)."""


class GovernorError(ServiceError):
    """Base class for resource-governor interventions.

    Deliberately *not* a :class:`LockConflictError`: lock victims are
    transient and worth retrying, a governed query was stopped on
    purpose and retrying it unchanged would only be stopped again."""


class QueryCancelledError(GovernorError):
    """The session's current operation was cancelled
    (:meth:`~repro.service.Session.cancel`).  Delivered cooperatively at
    the next page fault, batch boundary or wait point; the operation
    aborts cleanly (locks released, zero leaked handles)."""


class BudgetExceededError(GovernorError):
    """A per-query or per-session resource budget (pages read, simulated
    busy time, peak live rows) was exceeded.  Checked at the same
    cooperative points as cancellation; a budget that is *exactly*
    exhausted on the final batch does not trip."""


class StatementTimeoutError(BudgetExceededError):
    """A statement ran longer (on the shared simulated timeline) than
    the configured statement timeout."""


class RecoveryError(ReproError):
    """Crash-recovery subsystem failures (bad crash point, restart
    invoked on a system that did not crash, corrupt log)."""


class SimulatedCrashError(RecoveryError):
    """The :class:`~repro.recovery.CrashInjector` killed the system at
    its configured crash point.  Everything volatile — caches, unflushed
    log records, in-place page mutations that never reached the disk —
    is lost; only the durable state survives for restart."""


class QueryError(ReproError):
    """Base class for OQL front-end failures."""


class OQLSyntaxError(QueryError):
    """The OQL text could not be parsed."""


class OQLTypeError(QueryError):
    """The OQL query is syntactically valid but ill-typed against the
    schema (unknown name, bad attribute, non-collection in ``from``...)."""


class PlanError(QueryError):
    """The optimizer could not produce an executable plan."""


class BenchError(ReproError):
    """Benchmark-harness failures (unknown figure, bad configuration)."""


class DistError(ReproError):
    """Base class for distributed-execution (``repro.dist``) failures."""


class PartitionError(DistError):
    """Invalid partitioning request (bad scheme, bad shard count)."""


class DistPlanError(DistError):
    """The coordinator could not produce a distributed plan (unsupported
    query shape for the requested shipping strategy)."""


class TwoPCError(DistError):
    """Two-phase-commit protocol violation (commit on a non-active
    distributed transaction, unknown participant, bad crash point)."""


class ReplicationError(DistError):
    """Base class for per-shard replication failures (bad ship mode,
    broken ship sequence, failover protocol violation)."""


class StaleEpochError(ReplicationError):
    """A message carried a shard epoch older than the current one — the
    fence that rejects zombie-primary traffic.  A node deposed by
    failover keeps its old epoch; the coordinator bumped the shard's
    epoch in its decision log before promoting the replica, so any
    request still routed through the deposed node is refused rather
    than allowed to split-brain the shard."""


class ShardUnavailableError(ReplicationError):
    """A shard currently has no serving node: its primary is down and
    no replica has been (or can be) promoted.  Queries and transaction
    branches touching the shard fail fast with this error; the
    workload mixer's :class:`~repro.service.RetryPolicy` backs off and
    retries, so sessions ride through the failover window while other
    shards keep serving."""
