"""Exception hierarchy for the repro object database.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also catching programming
errors (``TypeError``, ``KeyError``, ...) from their own code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class StorageError(ReproError):
    """Base class for storage-layer failures."""


class PageFullError(StorageError):
    """A record did not fit in the target page."""


class RecordNotFoundError(StorageError):
    """No record lives at the requested rid (deleted or never allocated)."""


class RecordTooLargeError(StorageError):
    """A record exceeds the maximum size a single page can hold."""


class BufferError_(ReproError):
    """Base class for buffer-manager failures (trailing underscore avoids
    shadowing the builtin :class:`BufferError`)."""


class CachePinnedError(BufferError_):
    """All buffer frames are pinned; no frame can be evicted."""


class ObjectError(ReproError):
    """Base class for object-layer failures."""


class SchemaError(ObjectError):
    """Invalid schema definition or schema/instance mismatch."""


class DanglingReferenceError(ObjectError):
    """A reference points at a rid that no longer holds an object."""


class HandleError(ObjectError):
    """Misuse of the handle table (double unreference, stale handle...)."""


class IndexError_(ReproError):
    """Base class for index failures (named with a trailing underscore to
    avoid shadowing the builtin :class:`IndexError`)."""


class DuplicateIndexError(IndexError_):
    """An equivalent index already exists on the collection/key."""


class IndexSlotOverflowError(IndexError_):
    """An object belongs to more indexes than its header can record and
    the header could not be extended."""


class TransactionError(ReproError):
    """Base class for transaction failures."""


class TransactionMemoryError(TransactionError):
    """Too many objects created within one transaction — the simulated
    counterpart of O2's "out of memory" message (paper, Section 3.2)."""


class TransactionStateError(TransactionError):
    """Operation not legal in the transaction's current state."""


class LockConflictError(TransactionError):
    """A lock request conflicts with a lock held by another transaction.

    Raised immediately in *fail-fast* mode (no scheduler attached to the
    :class:`~repro.txn.locks.LockManager`); the subclasses below are the
    two ways a *waiting* request can end without a grant."""


class LockTimeoutError(LockConflictError):
    """A waiting lock request exceeded the configured lock timeout
    (simulated seconds) and the transaction must abort."""


class DeadlockError(LockConflictError):
    """The waits-for graph contains a cycle and this transaction was
    chosen as the victim (the youngest transaction in the cycle)."""


class ServiceError(ReproError):
    """Multi-client query-service failures (bad session, stalled
    scheduler, misconfigured workload mix)."""


class RecoveryError(ReproError):
    """Crash-recovery subsystem failures (bad crash point, restart
    invoked on a system that did not crash, corrupt log)."""


class SimulatedCrashError(RecoveryError):
    """The :class:`~repro.recovery.CrashInjector` killed the system at
    its configured crash point.  Everything volatile — caches, unflushed
    log records, in-place page mutations that never reached the disk —
    is lost; only the durable state survives for restart."""


class QueryError(ReproError):
    """Base class for OQL front-end failures."""


class OQLSyntaxError(QueryError):
    """The OQL text could not be parsed."""


class OQLTypeError(QueryError):
    """The OQL query is syntactically valid but ill-typed against the
    schema (unknown name, bad attribute, non-collection in ``from``...)."""


class PlanError(QueryError):
    """The optimizer could not produce an executable plan."""


class BenchError(ReproError):
    """Benchmark-harness failures (unknown figure, bad configuration)."""
