"""Selection scans — the pseudo-code of the paper's Figure 8.

Left algorithm (standard scan)::

    open scan on Patients
    for each Rid r returned by the scan
        get Handle h
        if get_att(h, num) > k
            add get_att(h, age) to the result
        unreference h

Right algorithm (sorted index scan)::

    open index scan on (Patients, num > k)
    for each Rid r returned by the index scan
        add r to Table T
    sort T on Rids
    for each r in T
        get Handle h
        add get_att(h, age) to the result
        unreference h

The unsorted variant (``sorted_rids=False``) fetches objects in key
order, which on an unclustered key means random page accesses — the
regime where Figure 6 shows the index reading *more* pages than a full
scan beyond a few percent selectivity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.exec.results import ResultBuilder
from repro.exec.sorter import sort_charged
from repro.index.btree import BTreeIndex
from repro.objects.database import Database, PersistentCollection
from repro.simtime import Bucket


@dataclass
class SelectionResult:
    """Outcome of a selection."""

    rows: list[object]
    scanned: int     # objects visited (whole collection for a scan)
    selected: int    # objects satisfying the predicate

    def __post_init__(self) -> None:
        if self.selected != len(self.rows):
            raise ValueError("selected count must match collected rows")


def select_scan(
    db: Database,
    collection: PersistentCollection,
    attr: str,
    predicate: Callable[[object], bool],
    project: str,
    transactional: bool = True,
) -> SelectionResult:
    """Figure 8, left: full collection scan, one handle per element."""
    om = db.manager
    result = ResultBuilder(db, transactional)
    scanned = 0
    for rid in collection.iter_rids():
        scanned += 1
        with om.borrow(rid) as handle:
            value = om.get_attr(handle, attr)
            db.clock.charge_us(Bucket.CPU, db.params.predicate_us)
            if predicate(value):
                result.append(om.get_attr(handle, project))
    return SelectionResult(result.rows, scanned, len(result))


def select_indexed(
    db: Database,
    index: BTreeIndex,
    low: object | None,
    high: object | None,
    project: str,
    sorted_rids: bool = False,
    include_low: bool = True,
    include_high: bool = True,
    transactional: bool = True,
) -> SelectionResult:
    """Figure 8, right (with ``sorted_rids=True``) or the plain
    unclustered index scan (``sorted_rids=False``)."""
    om = db.manager
    rids = [
        entry.rid
        for entry in index.range_scan(low, high, include_low, include_high)
    ]
    if sorted_rids:
        rids = sort_charged(rids, db.clock, db.params)
    result = ResultBuilder(db, transactional)
    for rid in rids:
        with om.borrow(rid) as handle:
            result.append(om.get_attr(handle, project))
    return SelectionResult(result.rows, len(rids), len(result))
