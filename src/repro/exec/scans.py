"""Selection scans — the pseudo-code of the paper's Figure 8.

Left algorithm (standard scan)::

    open scan on Patients
    for each Rid r returned by the scan
        get Handle h
        if get_att(h, num) > k
            add get_att(h, age) to the result
        unreference h

Right algorithm (sorted index scan)::

    open index scan on (Patients, num > k)
    for each Rid r returned by the index scan
        add r to Table T
    sort T on Rids
    for each r in T
        get Handle h
        add get_att(h, age) to the result
        unreference h

The unsorted variant (``sorted_rids=False``) fetches objects in key
order, which on an unclustered key means random page accesses — the
regime where Figure 6 shows the index reading *more* pages than a full
scan beyond a few percent selectivity.

Since the pipeline refactor these functions are drain-the-operator-tree
wrappers over :mod:`repro.exec.operators.scans`; they still return fully
materialized :class:`SelectionResult` values at identical charged cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.exec.operators.base import Cursor
from repro.exec.operators.scans import build_select_indexed, build_select_scan
from repro.index.btree import BTreeIndex
from repro.objects.database import Database, PersistentCollection


@dataclass
class SelectionResult:
    """Outcome of a selection."""

    rows: list[object]
    scanned: int     # objects visited (whole collection for a scan)
    selected: int    # objects satisfying the predicate

    def __post_init__(self) -> None:
        if self.selected != len(self.rows):
            raise ValueError("selected count must match collected rows")


def select_scan(
    db: Database,
    collection: PersistentCollection,
    attr: str,
    predicate: Callable[[object], bool],
    project: str,
    transactional: bool = True,
) -> SelectionResult:
    """Figure 8, left: full collection scan, one handle per element."""
    op = build_select_scan(db, collection, attr, predicate, project, transactional)
    with Cursor(op.ctx, op) as cursor:
        rows = cursor.drain()
    return SelectionResult(rows, op.scanned, len(rows))


def select_indexed(
    db: Database,
    index: BTreeIndex,
    low: object | None,
    high: object | None,
    project: str,
    sorted_rids: bool = False,
    include_low: bool = True,
    include_high: bool = True,
    transactional: bool = True,
) -> SelectionResult:
    """Figure 8, right (with ``sorted_rids=True``) or the plain
    unclustered index scan (``sorted_rids=False``)."""
    op = build_select_indexed(
        db, index, low, high, project, sorted_rids, include_low, include_high,
        transactional,
    )
    with Cursor(op.ctx, op) as cursor:
        rows = cursor.drain()
    return SelectionResult(rows, op.scanned, len(rows))
