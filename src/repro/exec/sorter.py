"""Charged sorting.

The paper's *sorted index scan* (Figure 8) sorts up to 1.8 million rids
before fetching objects; Figure 9 counts that sort as an explicit CPU
term.  ``sort_charged`` performs the sort and charges
``sort_per_element_log_us x n x log2(n)`` to the clock's SORT bucket.
"""

from __future__ import annotations

import math
from typing import Callable, TypeVar

from repro.simtime import Bucket, CostParams, SimClock

T = TypeVar("T")


def sort_charged(
    items: list[T],
    clock: SimClock,
    params: CostParams,
    key: Callable[[T], object] | None = None,
    bytes_per_item: int | None = None,
) -> list[T]:
    """Return ``sorted(items)``, charging the modeled comparison cost.

    When ``bytes_per_item`` is given, the sort's working set is checked
    against the query memory budget; the overflow is modeled as an
    external sort — one extra write+read pass over the spilled bytes —
    so sort-based plans pay for memory pressure just like hash-based
    ones (only with sequential run I/O instead of OS thrashing).
    """
    n = len(items)
    if n > 1:
        clock.charge_us(
            Bucket.SORT, params.sort_per_element_log_us * n * math.log2(n)
        )
    if bytes_per_item is not None and n > 0:
        total = n * bytes_per_item
        budget = params.memory.query_memory_bytes
        if budget and total > budget:
            from repro.units import pages_for_bytes

            spilled_pages = pages_for_bytes(total - budget)
            clock.charge_ms(
                Bucket.IO,
                spilled_pages * (params.page_write_ms + params.page_read_ms),
            )
    return sorted(items, key=key)  # type: ignore[type-var,arg-type]
